//! Integration tests for the `rtr` command-line driver: each subcommand
//! is exercised against real files, checking both output and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn rtr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtr"))
}

/// Writes `src` to a fresh temp file and returns its path.
fn fixture(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rtr-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("write fixture");
    path
}

const MAX_SRC: &str = r#"
(: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
(max 3 7)
"#;

#[test]
fn check_prints_the_type_result() {
    let path = fixture("max.rtr", MAX_SRC);
    let out = rtr().args(["check"]).arg(&path).output().expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Int"), "unexpected output: {stdout}");
}

#[test]
fn run_evaluates() {
    let path = fixture("max_run.rtr", MAX_SRC);
    let out = rtr().args(["run"]).arg(&path).output().expect("spawn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn expand_shows_the_core_term() {
    let path = fixture("max_expand.rtr", MAX_SRC);
    let out = rtr().args(["expand"]).arg(&path).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("letrec"),
        "defines elaborate to letrec: {stdout}"
    );
}

#[test]
fn lambda_tr_flag_changes_the_verdict() {
    let path = fixture("max_tr.rtr", MAX_SRC);
    let out = rtr()
        .args(["check", "--lambda-tr"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "λTR must reject the refined range");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expected"), "diagnostic expected: {stderr}");
}

#[test]
fn type_errors_exit_nonzero_with_diagnostics() {
    let path = fixture(
        "bad.rtr",
        r#"(: f : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (f s) 0)
(: g : Str -> Int)
(define (g s) (f s))"#,
    );
    let out = rtr().args(["check"]).arg(&path).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("argument"), "diagnostic expected: {stderr}");
}

#[test]
fn unchecked_run_skips_the_checker() {
    // Ill-typed (an Any-typed parameter reaches add1) but runs fine
    // dynamically, since the actual argument is an integer.
    let path = fixture("dyn.rtr", r#"((lambda ([x : Any]) (add1 x)) 1)"#);
    let checked = rtr().args(["run"]).arg(&path).output().expect("spawn");
    assert!(
        !checked.status.success(),
        "the checker must reject (add1 #f)"
    );
    let unchecked = rtr()
        .args(["run", "--unchecked"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(unchecked.status.success());
    assert_eq!(String::from_utf8_lossy(&unchecked.stdout).trim(), "2");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h", "help"] {
        let out = rtr().arg(flag).output().expect("spawn");
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("usage: rtr"),
            "usage text expected: {stdout}"
        );
        assert!(stdout.contains("check"), "subcommands listed: {stdout}");
    }
}

#[test]
fn missing_file_and_bad_usage_fail_cleanly() {
    let out = rtr()
        .args(["check", "/nonexistent/x.rtr"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = rtr().args(["frobnicate"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let out = rtr().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn version_flag_prints_the_version() {
    for flag in ["--version", "-V", "version"] {
        let out = rtr().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.starts_with("rtr ") && stdout.trim().len() > 4,
            "version expected: {stdout}"
        );
    }
}

#[test]
fn check_accepts_multiple_files_and_reports_each() {
    let ok = fixture("multi_ok.rtr", "(define (id [x : Int]) x) (id 1)");
    let bad = fixture("multi_bad.rtr", "(define (b [x : Int]) (add1 x)) (b #t)");
    let out = rtr()
        .args(["check"])
        .arg(&ok)
        .arg(&bad)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "one bad file fails the batch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "clean file reported: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("E0002") && stderr.contains("-->"),
        "located diagnostic expected: {stderr}"
    );
    // All clean → exit 0.
    let out = rtr()
        .args(["check"])
        .arg(&ok)
        .arg(&ok)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn inapplicable_flags_are_rejected_with_usage_errors() {
    let path = fixture("flags.rtr", "(+ 1 2)");
    for (args, rejected) in [
        (vec!["check", "--fuel", "9"], "--fuel"),
        (vec!["check", "--unchecked"], "--unchecked"),
        (vec!["run", "--json"], "--json"),
        (vec!["run", "--jobs", "2"], "--jobs"),
        (vec!["expand", "--lambda-tr"], "--lambda-tr"),
        (vec!["repl", "--unchecked"], "--unchecked"),
        (vec!["lsp", "--json"], "--json"),
        (vec!["lsp", "--jobs", "2"], "--jobs"),
        (vec!["lsp", "--once"], "--once"),
    ] {
        let out = rtr().args(&args).arg(&path).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(rejected) && stderr.contains("does not apply"),
            "{args:?}: {stderr}"
        );
    }
}

/// Combinations where each flag is individually valid but together one
/// of them would be silently ignored are rejected too, as are file
/// operands on `lsp` (its documents arrive over the protocol).
#[test]
fn contradictory_and_misplaced_operands_are_usage_errors() {
    let path = fixture("flags2.rtr", "(+ 1 2)");
    let once = rtr()
        .args(["watch", "--once", "--poll-ms", "50"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(once.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&once.stderr).contains("--poll-ms does nothing with --once"),
        "stderr: {}",
        String::from_utf8_lossy(&once.stderr)
    );
    let lsp = rtr().arg("lsp").arg(&path).output().expect("spawn");
    assert_eq!(lsp.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&lsp.stderr).contains("lsp takes no files"),
        "stderr: {}",
        String::from_utf8_lossy(&lsp.stderr)
    );
}

const WATCH_SRC: &str = "\
(: f : [x : Int] -> Int)
(define (f x) (+ x 1))
(: g : [x : Int] -> Int)
(define (g x) (f x))
(g 1)
";

#[test]
fn watch_once_emits_one_extended_json_report() {
    let path = fixture("watch_once.rtr", WATCH_SRC);
    let out = rtr()
        .args(["watch", "--once", "--json"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0), "clean file exits 0");
    let doc = rtr::json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("rtr-check-v1"));
    let stats = doc.get("files").unwrap().as_array().unwrap()[0]
        .get("stats")
        .expect("stats object");
    // A cold incremental pass re-checks everything and reuses nothing.
    assert!(
        stats
            .get("rechecked_items")
            .and_then(|v| v.as_f64())
            .unwrap()
            >= 3.0,
        "cold pass re-checks every item"
    );
    assert_eq!(
        stats.get("unchanged_items").and_then(|v| v.as_f64()),
        Some(0.0)
    );

    // Exit-code contract matches `check`.
    let bad = fixture("watch_once_bad.rtr", "(add1 #t)");
    let out = rtr()
        .args(["watch", "--once"])
        .arg(&bad)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let out = rtr()
        .args(["watch", "--once", "/nonexistent/x.rtr"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn watch_streams_a_delta_after_an_edit() {
    let path = fixture("watch_live.rtr", WATCH_SRC);
    let mut child = rtr()
        .args(["watch", "--json", "--poll-ms", "25"])
        .arg(&path)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn watch");
    let stdout = child.stdout.take().expect("stdout");
    // Each rtr-check-v1 document ends with an unindented `}` line; a
    // reader thread splits the stream there and forwards whole docs.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        use std::io::BufRead;
        let mut doc = String::new();
        for line in std::io::BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            doc.push_str(&line);
            doc.push('\n');
            if line == "}" && tx.send(std::mem::take(&mut doc)).is_err() {
                break;
            }
        }
    });
    let timeout = std::time::Duration::from_secs(60);
    let first = rx.recv_timeout(timeout).expect("initial report");
    let doc = rtr::json::parse(&first).expect("valid JSON");
    assert_eq!(
        doc.get("summary").unwrap().get("clean").unwrap().as_bool(),
        Some(true)
    );

    // Edit one body via atomic rename (no partially-written polls) and
    // wait for the delta: only `f` re-checks, the rest splices.
    let tmp = path.with_extension("rtr.tmp");
    std::fs::write(&tmp, WATCH_SRC.replace("(+ x 1)", "(+ x 2)")).expect("write tmp");
    std::fs::rename(&tmp, &path).expect("rename over");
    let second = rx.recv_timeout(timeout).expect("delta after edit");
    let doc = rtr::json::parse(&second).expect("valid JSON");
    let stats = doc.get("files").unwrap().as_array().unwrap()[0]
        .get("stats")
        .expect("stats object");
    assert_eq!(
        stats.get("rechecked_items").and_then(|v| v.as_f64()),
        Some(1.0),
        "only the edited definition re-checks: {second}"
    );
    assert!(
        stats
            .get("unchanged_items")
            .and_then(|v| v.as_f64())
            .unwrap()
            >= 2.0,
        "the dependent and the call splice: {second}"
    );
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn repl_type_command_checks_without_evaluating() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        // `:type` on a diverging-if-evaluated expression must not hang:
        // it only checks. (error : Bot, so the if types as Int.)
        .write_all(b":type (if #t 1 (error \"boom\"))\n:type (add1 #f)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Int"), "type expected: {stdout}");
    assert!(
        !stdout.contains("1 : "),
        "no evaluation result expected: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error"),
        "ill-typed :type reports: {stderr}"
    );
}

#[test]
fn repl_rejects_unknown_colon_commands() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b":types (add1 1)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown repl command :types"),
        "a :type typo must not be parsed as an expression: {stderr}"
    );
}

#[test]
fn repl_rejects_over_closed_forms() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"))\n(+ 1 2)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected closing delimiter"),
        "over-closed input must be rejected: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 : Int"),
        "the repl recovers afterwards: {stdout}"
    );
}

#[test]
fn repl_checks_and_evaluates_lines() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"(+ 1 2)\n(regexp-match? #rx\"[0-9]+\" \"42\")\n(add1 #f)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 : Int"),
        "arith result expected: {stdout}"
    );
    assert!(
        stdout.contains("#t : Bool"),
        "regex result expected: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error"),
        "ill-typed line must report: {stderr}"
    );
}

#[test]
fn multi_line_forms_continue_in_the_repl() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"(if #t\n    1\n    2)\n:quit\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 : Int"),
        "multi-line form must evaluate: {stdout}"
    );
}
