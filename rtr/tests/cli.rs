//! Integration tests for the `rtr` command-line driver: each subcommand
//! is exercised against real files, checking both output and exit codes.

use std::io::Write;
use std::process::{Command, Stdio};

fn rtr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rtr"))
}

/// Writes `src` to a fresh temp file and returns its path.
fn fixture(name: &str, src: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rtr-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, src).expect("write fixture");
    path
}

const MAX_SRC: &str = r#"
(: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
(define (max x y) (if (> x y) x y))
(max 3 7)
"#;

#[test]
fn check_prints_the_type_result() {
    let path = fixture("max.rtr", MAX_SRC);
    let out = rtr().args(["check"]).arg(&path).output().expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Int"), "unexpected output: {stdout}");
}

#[test]
fn run_evaluates() {
    let path = fixture("max_run.rtr", MAX_SRC);
    let out = rtr().args(["run"]).arg(&path).output().expect("spawn");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "7");
}

#[test]
fn expand_shows_the_core_term() {
    let path = fixture("max_expand.rtr", MAX_SRC);
    let out = rtr().args(["expand"]).arg(&path).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("letrec"),
        "defines elaborate to letrec: {stdout}"
    );
}

#[test]
fn lambda_tr_flag_changes_the_verdict() {
    let path = fixture("max_tr.rtr", MAX_SRC);
    let out = rtr()
        .args(["check", "--lambda-tr"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "λTR must reject the refined range");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("expected"), "diagnostic expected: {stderr}");
}

#[test]
fn type_errors_exit_nonzero_with_diagnostics() {
    let path = fixture(
        "bad.rtr",
        r#"(: f : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
(define (f s) 0)
(: g : Str -> Int)
(define (g s) (f s))"#,
    );
    let out = rtr().args(["check"]).arg(&path).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("argument"), "diagnostic expected: {stderr}");
}

#[test]
fn unchecked_run_skips_the_checker() {
    // Ill-typed (an Any-typed parameter reaches add1) but runs fine
    // dynamically, since the actual argument is an integer.
    let path = fixture("dyn.rtr", r#"((lambda ([x : Any]) (add1 x)) 1)"#);
    let checked = rtr().args(["run"]).arg(&path).output().expect("spawn");
    assert!(
        !checked.status.success(),
        "the checker must reject (add1 #f)"
    );
    let unchecked = rtr()
        .args(["run", "--unchecked"])
        .arg(&path)
        .output()
        .expect("spawn");
    assert!(unchecked.status.success());
    assert_eq!(String::from_utf8_lossy(&unchecked.stdout).trim(), "2");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    for flag in ["--help", "-h", "help"] {
        let out = rtr().arg(flag).output().expect("spawn");
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("usage: rtr"),
            "usage text expected: {stdout}"
        );
        assert!(stdout.contains("check"), "subcommands listed: {stdout}");
    }
}

#[test]
fn missing_file_and_bad_usage_fail_cleanly() {
    let out = rtr()
        .args(["check", "/nonexistent/x.rtr"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
    let out = rtr().args(["frobnicate"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let out = rtr().output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn version_flag_prints_the_version() {
    for flag in ["--version", "-V", "version"] {
        let out = rtr().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.starts_with("rtr ") && stdout.trim().len() > 4,
            "version expected: {stdout}"
        );
    }
}

#[test]
fn check_accepts_multiple_files_and_reports_each() {
    let ok = fixture("multi_ok.rtr", "(define (id [x : Int]) x) (id 1)");
    let bad = fixture("multi_bad.rtr", "(define (b [x : Int]) (add1 x)) (b #t)");
    let out = rtr()
        .args(["check"])
        .arg(&ok)
        .arg(&bad)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1), "one bad file fails the batch");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok"), "clean file reported: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("E0002") && stderr.contains("-->"),
        "located diagnostic expected: {stderr}"
    );
    // All clean → exit 0.
    let out = rtr()
        .args(["check"])
        .arg(&ok)
        .arg(&ok)
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn inapplicable_flags_are_rejected_with_usage_errors() {
    let path = fixture("flags.rtr", "(+ 1 2)");
    for (args, rejected) in [
        (vec!["check", "--fuel", "9"], "--fuel"),
        (vec!["check", "--unchecked"], "--unchecked"),
        (vec!["run", "--json"], "--json"),
        (vec!["run", "--jobs", "2"], "--jobs"),
        (vec!["expand", "--lambda-tr"], "--lambda-tr"),
        (vec!["repl", "--unchecked"], "--unchecked"),
    ] {
        let out = rtr().args(&args).arg(&path).output().expect("spawn");
        assert_eq!(out.status.code(), Some(2), "{args:?} must be a usage error");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(rejected) && stderr.contains("does not apply"),
            "{args:?}: {stderr}"
        );
    }
}

#[test]
fn repl_type_command_checks_without_evaluating() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        // `:type` on a diverging-if-evaluated expression must not hang:
        // it only checks. (error : Bot, so the if types as Int.)
        .write_all(b":type (if #t 1 (error \"boom\"))\n:type (add1 #f)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Int"), "type expected: {stdout}");
    assert!(
        !stdout.contains("1 : "),
        "no evaluation result expected: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error"),
        "ill-typed :type reports: {stderr}"
    );
}

#[test]
fn repl_rejects_unknown_colon_commands() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b":types (add1 1)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown repl command :types"),
        "a :type typo must not be parsed as an expression: {stderr}"
    );
}

#[test]
fn repl_rejects_over_closed_forms() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"))\n(+ 1 2)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected closing delimiter"),
        "over-closed input must be rejected: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 : Int"),
        "the repl recovers afterwards: {stdout}"
    );
}

#[test]
fn repl_checks_and_evaluates_lines() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"(+ 1 2)\n(regexp-match? #rx\"[0-9]+\" \"42\")\n(add1 #f)\n:q\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("3 : Int"),
        "arith result expected: {stdout}"
    );
    assert!(
        stdout.contains("#t : Bool"),
        "regex result expected: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("error"),
        "ill-typed line must report: {stderr}"
    );
}

#[test]
fn multi_line_forms_continue_in_the_repl() {
    let mut child = rtr()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn repl");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(b"(if #t\n    1\n    2)\n:quit\n")
        .expect("write");
    let out = child.wait_with_output().expect("wait");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("1 : Int"),
        "multi-line form must evaluate: {stdout}"
    );
}
