//! Cross-crate integration tests through the `rtr` facade's public API.

use rtr::prelude::*;

#[test]
fn prelude_covers_the_workflow() {
    let src = r#"
        (: abs : [x : Int] -> [z : Int #:where (and (>= z x) (>= z 0))])
        (define (abs x) (if (< x 0) (- 0 x) x))
        (abs -5)
    "#;
    let checker = Checker::default();
    let r = check_source(src, &checker).expect("abs verifies");
    assert!(matches!(r.ty, Ty::Refine(_)));
    let v = run_source(src, &checker, 10_000).unwrap();
    assert_eq!(v.to_string(), "5");
}

#[test]
fn layers_compose() {
    // solver → core → lang, each reachable from the facade.
    use rtr::solver::lin::{Constraint, FourierMotzkin, LinExpr, SolverVar};
    let x = LinExpr::var(SolverVar(0));
    let facts = [Constraint::ge(x.clone(), LinExpr::constant(3))];
    assert!(FourierMotzkin::default().entails(&facts, &Constraint::gt(x, LinExpr::constant(0))));

    let e = Expr::prim_app(Prim::Plus, vec![Expr::Int(20), Expr::Int(22)]);
    let r = Checker::default().check_program(&e).unwrap();
    assert_eq!(r.ty, Ty::Int);
    assert_eq!(eval_program(&e, 100).unwrap().to_string(), "42");
}

#[test]
fn corpus_is_reachable_and_consistent() {
    use rtr::corpus::classify::classify_library;
    use rtr::corpus::gen::{generate, Library};
    use rtr::corpus::profiles::libraries;

    let checker = Checker::default();
    let profile = &libraries()[0];
    let lib = generate(profile, 99);
    let sample = Library {
        profile: lib.profile.clone(),
        sites: lib.sites.into_iter().take(8).collect(),
        filler: Vec::new(),
    };
    let tally = classify_library(&sample, &checker);
    assert_eq!(tally.misclassified, 0);
    assert!(tally.total() > 0);
}

#[test]
fn error_types_are_std_errors() {
    fn takes_error<E: std::error::Error>(_: &E) {}
    let checker = Checker::default();
    let err = check_source("(add1 #t)", &checker).unwrap_err();
    takes_error(&err);
    let type_err: TypeError = match err {
        LangError::Type(t) => t,
        other => panic!("expected a type error, got {other}"),
    };
    assert!(type_err.to_string().contains("expected"));
}

#[test]
fn checker_is_configurable_through_the_facade() {
    let src = r#"
        (define (f [v : (Vecof Int)] [i : Int])
          (if (and (<= 0 i) (< i (len v))) (safe-vec-ref v i) 0))
    "#;
    assert!(check_source(src, &Checker::default()).is_ok());
    let tr = Checker::with_config(CheckerConfig::lambda_tr());
    assert!(check_source(src, &tr).is_err());
    let no_repr = CheckerConfig {
        representative_objects: false,
        ..CheckerConfig::default()
    };
    assert!(check_source(src, &Checker::with_config(no_repr)).is_ok());
}
