//! End-to-end tests for `rtr lsp`: the binary is spawned and spoken to
//! over real stdio with `Content-Length` framing (reusing
//! [`rtr::lsp::framing`] as the client side).
//!
//! * A **golden transcript** pins the whole dialogue byte-for-byte —
//!   initialize, an ill-typed `didOpen`, the fixing `didChange` delta, a
//!   hover on a definition and on a trailing expression, the
//!   unknown-method error path, `didClose` clearing, shutdown/exit.
//!   Regenerate after an intentional change with:
//!
//!   ```sh
//!   RTR_BLESS=1 cargo test -p rtr --test lsp_transcript
//!   ```
//!
//! * An **equivalence** suite asserts the LSP diagnostics carry exactly
//!   the codes and spans `rtr check --json` reports for the same text —
//!   over the committed golden fixtures and a seeded randomized edit
//!   script.
//!
//! * A **stale-version** test floods `didOpen` v1 + `didChange` v2
//!   without reading, and asserts v1's diagnostics are never published.

use std::io::{BufReader, Read, Write as _};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};

use rtr::core::diag::{LineIndex, Loc, Span};
use rtr::json::{escape, parse, Json};
use rtr::lsp::framing;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// A spawned `rtr lsp` child plus the client side of its transport.
struct Server {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: BufReader<ChildStdout>,
}

impl Server {
    fn spawn(extra_args: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_rtr"))
            .arg("lsp")
            .args(extra_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn rtr lsp");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Server {
            child,
            stdin: Some(stdin),
            stdout,
        }
    }

    fn send(&mut self, body: &str) {
        framing::write_message(self.stdin.as_mut().expect("stdin open"), body)
            .expect("write to server");
    }

    /// Frames several messages into one buffer and writes it in a
    /// single call, so they land in the server's input in one chunk
    /// (its reader thread then parses the later ones from its buffer —
    /// no pipe round trip — while the first is still being dispatched).
    fn send_batch(&mut self, bodies: &[&str]) {
        let mut wire = Vec::new();
        for body in bodies {
            framing::write_message(&mut wire, body).expect("frame message");
        }
        self.stdin
            .as_mut()
            .expect("stdin open")
            .write_all(&wire)
            .expect("write batch to server");
    }

    fn recv(&mut self) -> String {
        framing::read_message(&mut self.stdout)
            .expect("read from server")
            .expect("server closed the stream early")
    }

    /// Closes stdin, drains any remaining output, and reaps the child.
    /// Returns `(exit_code, remaining_bodies, stderr)`.
    fn finish(mut self) -> (i32, Vec<String>, String) {
        drop(self.stdin.take());
        let mut rest = Vec::new();
        while let Ok(Some(body)) = framing::read_message(&mut self.stdout) {
            rest.push(body);
        }
        let status = self.child.wait().expect("wait for server");
        let mut stderr = String::new();
        self.child
            .stderr
            .take()
            .unwrap()
            .read_to_string(&mut stderr)
            .expect("read server stderr");
        (status.code().unwrap_or(-1), rest, stderr)
    }
}

const URI: &str = "file:///test/main.rtr";

fn initialize_msg() -> String {
    r#"{"jsonrpc":"2.0","id":1,"method":"initialize","params":{"capabilities":{}}}"#.to_owned()
}

fn did_open(uri: &str, version: i64, text: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didOpen\",\"params\":{{\"textDocument\":{{\"uri\":\"{}\",\"languageId\":\"rtr\",\"version\":{version},\"text\":\"{}\"}}}}}}",
        escape(uri),
        escape(text)
    )
}

fn did_change(uri: &str, version: i64, text: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\",\"params\":{{\"textDocument\":{{\"uri\":\"{}\",\"version\":{version}}},\"contentChanges\":[{{\"text\":\"{}\"}}]}}}}",
        escape(uri),
        escape(text)
    )
}

fn hover(id: i64, uri: &str, line: u32, character: u32) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"textDocument/hover\",\"params\":{{\"textDocument\":{{\"uri\":\"{}\"}},\"position\":{{\"line\":{line},\"character\":{character}}}}}}}",
        escape(uri)
    )
}

fn did_close(uri: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didClose\",\"params\":{{\"textDocument\":{{\"uri\":\"{}\"}}}}}}",
        escape(uri)
    )
}

fn shutdown_msg(id: i64) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"id\":{id},\"method\":\"shutdown\",\"params\":null}}")
}

const EXIT: &str = r#"{"jsonrpc":"2.0","method":"exit"}"#;

/// The full paced dialogue, pinned against a committed golden file.
#[test]
fn golden_lsp_transcript() {
    let ill = "(define x : Int 1)\n(add1 #t)\n";
    let fixed = "(define x : Int 1)\n(add1 x)\n";
    let mut server = Server::spawn(&["--stats"]);
    let mut transcript = String::new();
    let mut exchange = |server: &mut Server, msg: &str, responses: usize| {
        transcript.push_str("<<< ");
        transcript.push_str(msg);
        transcript.push('\n');
        server.send(msg);
        for _ in 0..responses {
            transcript.push_str(">>> ");
            transcript.push_str(&server.recv());
            transcript.push('\n');
        }
    };
    exchange(&mut server, &initialize_msg(), 1);
    exchange(
        &mut server,
        r#"{"jsonrpc":"2.0","method":"initialized","params":{}}"#,
        0,
    );
    exchange(&mut server, &did_open(URI, 1, ill), 1);
    exchange(&mut server, &did_change(URI, 2, fixed), 1);
    exchange(&mut server, &hover(2, URI, 0, 9), 1); // on `x`
    exchange(&mut server, &hover(3, URI, 1, 2), 1); // in the trailing expr
    exchange(&mut server, &hover(4, URI, 5, 0), 1); // past the last item
    exchange(
        &mut server,
        &format!(
            "{{\"jsonrpc\":\"2.0\",\"id\":5,\"method\":\"textDocument/definition\",\"params\":{{\"textDocument\":{{\"uri\":\"{URI}\"}}}}}}"
        ),
        1,
    );
    exchange(&mut server, &did_close(URI), 1);
    exchange(&mut server, &shutdown_msg(6), 1);
    exchange(&mut server, EXIT, 0);
    let (code, rest, stderr) = server.finish();
    assert_eq!(code, 0, "exit after shutdown must be 0; stderr:\n{stderr}");
    assert!(rest.is_empty(), "unexpected trailing messages: {rest:?}");

    // The fixing didChange must have gone through the incremental
    // overlay: only the edited trailing expression re-judged.
    let warm = stderr
        .lines()
        .filter(|l| l.starts_with("lsp check:"))
        .nth(1)
        .expect("two check lines under --stats");
    assert!(
        warm.contains("rechecked=1") && warm.contains("unchanged=1"),
        "didChange was not an incremental re-check: {warm}"
    );

    let golden = golden_dir().join("lsp_transcript.golden");
    if std::env::var_os("RTR_BLESS").is_some() {
        std::fs::write(&golden, transcript.as_bytes()).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        transcript,
        expected,
        "LSP dialogue drifted from {}; re-bless with RTR_BLESS=1 if intentional",
        golden.display()
    );
}

/// `exit` without a preceding `shutdown` exits 1 per the protocol.
#[test]
fn exit_without_shutdown_is_nonzero() {
    let mut server = Server::spawn(&[]);
    server.send(&initialize_msg());
    let _ = server.recv();
    server.send(EXIT);
    let (code, _, _) = server.finish();
    assert_eq!(code, 1);
}

/// A `didChange` racing a `didOpen` check supersedes it: version 1's
/// diagnostics are never published, only version 2's.
#[test]
fn superseded_versions_are_never_published() {
    // Solver-hitting items make v1's check take milliseconds, while
    // the batched didChange reaches the reader thread's buffer in the
    // same chunk as the didOpen — the reader notes version 2 (and
    // revokes v1's token) several orders of magnitude before v1's
    // check can complete.
    let mut ill = String::from("(define v : (U Int Bool) #t)\n");
    for i in 0..150 {
        ill.push_str(&format!("(define s{i} (if (int? v) (+ v {i}) {i}))\n"));
    }
    ill.push_str("(add1 #t)\n");
    let fixed = ill.replace("(add1 #t)", "(add1 7)");

    let mut server = Server::spawn(&["--stats"]);
    server.send_batch(&[
        &initialize_msg(),
        &did_open(URI, 1, &ill),
        &did_change(URI, 2, &fixed),
        &shutdown_msg(2),
        EXIT,
    ]);
    let (code, bodies, stderr) = server.finish();
    assert_eq!(code, 0, "stderr:\n{stderr}");
    let publishes: Vec<&String> = bodies
        .iter()
        .filter(|b| b.contains("publishDiagnostics"))
        .collect();
    assert!(
        publishes.iter().all(|b| b.contains("\"version\":2")),
        "a superseded version was published: {publishes:?}"
    );
    assert_eq!(publishes.len(), 1, "exactly the newest version publishes");
    assert!(
        publishes[0].contains("\"diagnostics\":[]"),
        "v2 is clean: {}",
        publishes[0]
    );
    let summary = stderr
        .lines()
        .find(|l| l.starts_with("lsp stats:"))
        .expect("a stats summary line");
    assert!(
        !summary.contains("cancelled=0"),
        "the v1 check was neither skipped nor cancelled: {summary}"
    );
}

// ---------------------------------------------------------------------------
// Equivalence with `rtr check --json`
// ---------------------------------------------------------------------------

/// A diagnostic reduced to what both channels must agree on. `None`
/// span = the checker had no primary location (LSP renders it as a
/// zero-width range at 1:1).
type Key = (String, Option<Span>);

fn span_from_loc_pair(start: Loc, end: Loc) -> Option<Span> {
    if (start, end) == (Loc { line: 1, col: 1 }, Loc { line: 1, col: 1 }) {
        None
    } else {
        Some(Span::new(start, end))
    }
}

/// What `rtr lsp` publishes for `text` (one paced didOpen), reduced to
/// code/span keys.
fn lsp_keys(text: &str, extra_args: &[&str]) -> Vec<Key> {
    let mut server = Server::spawn(extra_args);
    server.send(&initialize_msg());
    let _ = server.recv();
    server.send(&did_open(URI, 1, text));
    let publish = server.recv();
    server.send(&shutdown_msg(9));
    let _ = server.recv();
    server.send(EXIT);
    let (code, _, stderr) = server.finish();
    assert_eq!(code, 0, "stderr:\n{stderr}");
    let doc = parse(&publish).expect("publish parses");
    let params = doc.get("params").expect("params");
    assert_eq!(
        params.get("uri").and_then(Json::as_str),
        Some(URI),
        "publish targets the opened document"
    );
    let ix = LineIndex::new(text);
    let mut keys: Vec<Key> = params
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics array")
        .iter()
        .map(|d| {
            let code = d
                .get("code")
                .and_then(Json::as_str)
                .expect("code")
                .to_owned();
            let pos = |which: &str, field: &str| -> f64 {
                d.get("range")
                    .and_then(|r| r.get(which))
                    .and_then(|p| p.get(field))
                    .and_then(Json::as_f64)
                    .expect("range member")
            };
            let loc = |which: &str| {
                ix.utf16_to_loc(
                    text,
                    rtr::core::diag::Utf16Pos {
                        line: pos(which, "line") as u32,
                        character: pos(which, "character") as u32,
                    },
                )
            };
            (code, span_from_loc_pair(loc("start"), loc("end")))
        })
        .collect();
    keys.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    keys
}

/// What `rtr check --json` reports for the file at `path`, reduced to
/// code/span keys.
fn check_keys(path: &std::path::Path, extra_args: &[&str]) -> Vec<Key> {
    let out = Command::new(env!("CARGO_BIN_EXE_rtr"))
        .arg("check")
        .arg("--json")
        .args(extra_args)
        .arg(path)
        .output()
        .expect("spawn rtr check");
    let doc = parse(&String::from_utf8(out.stdout).expect("utf-8 report")).expect("report parses");
    let files = doc.get("files").and_then(Json::as_array).expect("files");
    assert_eq!(files.len(), 1);
    let mut keys: Vec<Key> = files[0]
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("diagnostics")
        .iter()
        .map(|d| {
            let code = d
                .get("code")
                .and_then(Json::as_str)
                .expect("code")
                .to_owned();
            let span = d.get("span").and_then(|s| {
                let f = |k: &str| s.get(k).and_then(Json::as_f64).map(|n| n as u32);
                Some(Span::new(
                    Loc {
                        line: f("line")?,
                        col: f("col")?,
                    },
                    Loc {
                        line: f("end_line")?,
                        col: f("end_col")?,
                    },
                ))
            });
            (code, span)
        })
        .collect();
    keys.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    keys
}

/// One document's worth of equivalence: check the text through both
/// channels and compare the reduced keys.
fn assert_equivalent(text: &str, scratch: &std::path::Path, extra_args: &[&str], what: &str) {
    std::fs::write(scratch, text).expect("write scratch fixture");
    let lsp = lsp_keys(text, extra_args);
    let check = check_keys(scratch, extra_args);
    assert_eq!(
        lsp, check,
        "LSP and `check --json` disagree on {what}:\n{text}"
    );
}

/// A scratch path unique to this test process.
fn scratch_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rtr-lsp-eq-{}-{tag}.rtr", std::process::id()))
}

/// LSP diagnostics ≡ `rtr check --json` over the committed golden
/// fixtures (including the degraded-`E0202` one, which needs the same
/// budget flags on both sides).
#[test]
fn lsp_diagnostics_match_check_json_on_golden_fixtures() {
    let scratch = scratch_path("fixture");
    for (fixture, extra_args) in [
        ("multi_error", &[][..]),
        ("refinement", &[][..]),
        ("expansion", &[][..]),
        ("exhausted", &["--max-depth", "16"][..]),
    ] {
        let text = std::fs::read_to_string(golden_dir().join(format!("{fixture}.rtr")))
            .expect("read fixture");
        assert_equivalent(&text, &scratch, extra_args, fixture);
    }
    let _ = std::fs::remove_file(&scratch);
}

/// LSP diagnostics ≡ `rtr check --json` along a seeded random edit
/// script: each step rewrites one slot of a template module (sometimes
/// ill-typed), replays it as a `didChange`, and compares both channels.
#[test]
fn lsp_diagnostics_match_check_json_along_an_edit_script() {
    // Statement pool: index chooses the body of each slot; half are
    // type-correct, half are not, so the script crosses clean↔dirty.
    let bodies = [
        "(add1 n)",
        "(add1 #t)",
        "(if (int? v) (add1 v) 0)",
        "(if (int? v) v #t)",
        "(+ n nope)",
        "(+ n 2)",
    ];
    let render = |slots: &[usize]| -> String {
        let mut text = String::from("(define n : Int 4)\n(define v : (U Int Bool) #t)\n");
        for (i, &b) in slots.iter().enumerate() {
            text.push_str(&format!("(define s{i} {})\n", bodies[b]));
        }
        text
    };
    // A fixed-seed LCG stands in for a random source (the script must
    // be reproducible across runs and platforms).
    let mut state: u64 = 0x00c0_ffee;
    let mut next = |bound: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    let scratch = scratch_path("edits");
    let mut slots = vec![0usize; 4];
    let mut server = Server::spawn(&[]);
    server.send(&initialize_msg());
    let _ = server.recv();
    server.send(&did_open(URI, 1, &render(&slots)));
    for step in 0..8 {
        let publish = server.recv();
        let text = render(&slots);
        // Reduce the publish we just read and compare to a fresh
        // `check --json` of the identical text.
        let doc = parse(&publish).expect("publish parses");
        let ix = LineIndex::new(&text);
        let mut lsp: Vec<Key> = doc
            .get("params")
            .and_then(|p| p.get("diagnostics"))
            .and_then(Json::as_array)
            .expect("diagnostics")
            .iter()
            .map(|d| {
                let code = d
                    .get("code")
                    .and_then(Json::as_str)
                    .expect("code")
                    .to_owned();
                let at = |which: &str| {
                    let p = d.get("range").and_then(|r| r.get(which)).expect("pos");
                    ix.utf16_to_loc(
                        &text,
                        rtr::core::diag::Utf16Pos {
                            line: p.get("line").and_then(Json::as_f64).expect("line") as u32,
                            character: p.get("character").and_then(Json::as_f64).expect("char")
                                as u32,
                        },
                    )
                };
                (code, span_from_loc_pair(at("start"), at("end")))
            })
            .collect();
        lsp.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        std::fs::write(&scratch, &text).expect("write scratch");
        let check = check_keys(&scratch, &[]);
        assert_eq!(lsp, check, "step {step} disagrees on:\n{text}");
        // Mutate one slot and send the next version (paced: we already
        // consumed this version's publish, so nothing is superseded).
        let slot = next(slots.len());
        slots[slot] = next(bodies.len());
        server.send(&did_change(URI, 2 + step, &render(&slots)));
    }
    let _ = server.recv(); // the final edit's publish
    server.send(&shutdown_msg(99));
    let _ = server.recv();
    server.send(EXIT);
    let (code, _, stderr) = server.finish();
    assert_eq!(code, 0, "stderr:\n{stderr}");
    let _ = std::fs::remove_file(&scratch);
}
