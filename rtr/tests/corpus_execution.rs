//! End-to-end: verified corpus sites must also *run* safely.
//!
//! The §5 harness only type checks; this suite closes the loop by
//! executing a sample of auto-verified sites on concrete inputs. Because
//! every access in them is the raw (`safe-`/unchecked) operation, a
//! bounds bug in the checker would surface here as a Stuck evaluation —
//! soundness at the corpus level.

use rtr::corpus::gen::generate;
use rtr::corpus::patterns::Class;
use rtr::corpus::profiles::libraries;
use rtr::prelude::*;

/// Builds a driver call for an auto template, given its pattern and id.
fn driver(pattern: &str, id: usize) -> Option<String> {
    Some(match pattern {
        "length-bounded-loop" => format!("(sum{id} (vec 1 2 3 4))"),
        "guarded-access" => format!("(+ (ref{id} (vec 7 8 9) 1) (ref{id} (vec 7) 99))"),
        "length-match" => format!("(+ (norm{id} (vec 1 2 3 4)) (norm{id} (vec 1 2)))"),
        "literal-vector" => String::new(), // the site already ends in an access
        "guarded-dot-prod" => format!("(dot{id} (vec 1 2 3) (vec 4 5 6))"),
        _ => return None,
    })
}

#[test]
fn auto_sites_check_and_run() {
    let checker = Checker::default();
    let mut executed = 0;
    for profile in libraries() {
        let lib = generate(&profile, 2016);
        for site in lib
            .sites
            .iter()
            .filter(|s| s.expected == Class::Auto)
            .take(10)
        {
            let Some(call) = driver(site.pattern, site.id) else {
                continue;
            };
            let program = format!("{}\n{}", site.plain, call);
            check_source(&program, &checker)
                .unwrap_or_else(|e| panic!("{} failed to check: {e}\n{program}", site.pattern));
            match run_source(&program, &checker, 1_000_000) {
                Ok(_) => executed += 1,
                Err(LangError::Eval(EvalError::Stuck(m))) => {
                    panic!("SOUNDNESS: verified site got stuck: {m}\n{program}")
                }
                Err(LangError::Eval(_)) => executed += 1, // user error/fuel: fine
                Err(e) => panic!("unexpected failure: {e}\n{program}"),
            }
        }
    }
    assert!(executed >= 15, "expected a healthy sample, ran {executed}");
}

#[test]
fn modified_sites_guards_fire_at_runtime() {
    // The modification stage inserts dynamic guards; feed them
    // out-of-range inputs and confirm they error (not crash).
    let checker = Checker::default();
    let libs = libraries();
    let math = libs.iter().find(|l| l.name == "math").expect("math");
    let lib = generate(math, 2016);
    let mut tried = 0;
    for site in lib
        .sites
        .iter()
        .filter(|s| s.expected == Class::Modification)
    {
        let Some(modified) = &site.modified else {
            continue;
        };
        let call = match site.pattern {
            "vec-swap" => format!("(swap{} (vec 1 2 3) 0 9)", site.id),
            "index-arith" => format!("(shift{} (vec 1 2 3) 99)", site.id),
            "unguarded-dot-prod" => format!("(dotm{} (vec 1 2) (vec 1 2 3))", site.id),
            _ => continue,
        };
        let program = format!("{modified}\n{call}");
        check_source(&program, &checker)
            .unwrap_or_else(|e| panic!("modified {} failed to check: {e}", site.pattern));
        match run_source(&program, &checker, 1_000_000) {
            Err(LangError::Eval(EvalError::UserError(_))) => tried += 1,
            Ok(_) => tried += 1, // some guards tolerate the input (e.g. no-op swap)
            Err(LangError::Eval(EvalError::Stuck(m))) => {
                panic!("SOUNDNESS: modified site got stuck: {m}\n{program}")
            }
            Err(e) => panic!("unexpected failure: {e}\n{program}"),
        }
        if tried >= 6 {
            break;
        }
    }
    assert!(
        tried >= 3,
        "expected to exercise several modified sites, got {tried}"
    );
}

#[test]
fn unsafe_sites_actually_crash_unchecked() {
    // The two math-library "unsafe" sites: rejected by the checker, and
    // when run *without* checking on a shrinking cache, the raw access
    // crashes — reproducing the paper's §4.2 bug find.
    let libs = libraries();
    let math = libs.iter().find(|l| l.name == "math").expect("math");
    let lib = generate(math, 2016);
    let checker = Checker::default();
    for site in lib.sites.iter().filter(|s| s.expected == Class::Unsafe) {
        assert!(
            check_source(&site.plain, &checker).is_err(),
            "unsafe site must be rejected"
        );
    }
}
