//! Schema validation for the machine-readable check service: the
//! `rtr check --json` output (and the library emitter behind it)
//! round-trips through the in-tree JSON parser and matches the
//! documented `rtr-check-v1` shape, for a module producing three
//! distinct error codes.

use std::process::Command;

use rtr::json::{parse, reports_to_json, Json};
use rtr::prelude::*;

/// Three distinct error codes: E0002 (mismatch), E0004 (arity),
/// E0001 (unbound).
const THREE_CODES_SRC: &str = "\
(: f : [x : Int] -> Int)
(define (f x) #t)
(f 1 2)
(+ 1 nope)
";

fn validate_span(span: &Json) {
    for key in ["line", "col", "end_line", "end_col"] {
        let n = span
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("span.{key} must be a number: {span:?}"));
        assert!(n >= 1.0, "span.{key} is 1-based");
    }
}

fn validate_document(doc: &Json, expect_files: usize) {
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("rtr-check-v1"));
    let files = doc.get("files").unwrap().as_array().unwrap();
    assert_eq!(files.len(), expect_files);
    let summary = doc.get("summary").unwrap();
    let mut total_errors = 0.0;
    for file in files {
        assert!(file.get("name").unwrap().as_str().is_some());
        let clean = file.get("clean").unwrap().as_bool().unwrap();
        let stats = file.get("stats").unwrap();
        let errors = stats.get("errors").unwrap().as_f64().unwrap();
        total_errors += errors;
        assert_eq!(clean, errors == 0.0);
        for key in ["definitions", "warnings", "elapsed_us"] {
            assert!(stats.get(key).unwrap().as_f64().is_some());
        }
        for item in file.get("items").unwrap().as_array().unwrap() {
            assert!(item.get("poisoned").unwrap().as_bool().is_some());
        }
        let diagnostics = file.get("diagnostics").unwrap().as_array().unwrap();
        assert!(diagnostics.len() as f64 >= errors);
        for d in diagnostics {
            let code = d.get("code").unwrap().as_str().unwrap();
            assert!(
                code.len() == 5 && (code.starts_with('E') || code.starts_with('W')),
                "malformed code {code}"
            );
            assert!(matches!(
                d.get("severity").unwrap().as_str(),
                Some("error" | "warning" | "note")
            ));
            assert!(d.get("message").unwrap().as_str().is_some());
            match d.get("span").unwrap() {
                Json::Null => {}
                span => validate_span(span),
            }
            for label in d.get("labels").unwrap().as_array().unwrap() {
                assert!(label.get("message").unwrap().as_str().is_some());
            }
            let payload = d.get("payload").unwrap();
            let kind = payload.get("kind").unwrap().as_str().unwrap();
            assert!(
                [
                    "none",
                    "unbound",
                    "mismatch",
                    "not-a-function",
                    "arity",
                    "not-a-pair",
                    "cannot-infer",
                    "bad-assignment",
                    "exhausted",
                    "ice"
                ]
                .contains(&kind),
                "unknown payload kind {kind}"
            );
            if kind == "exhausted" {
                assert!(matches!(
                    payload.get("limit").unwrap().as_str(),
                    Some("steps" | "deadline" | "depth" | "injected-fault")
                ));
            }
            if kind == "ice" {
                assert!(payload.get("detail").unwrap().as_str().is_some());
            }
            for note in d.get("notes").unwrap().as_array().unwrap() {
                assert!(note.as_str().is_some());
            }
        }
    }
    assert_eq!(
        summary.get("errors").unwrap().as_f64(),
        Some(total_errors),
        "summary must aggregate per-file errors"
    );
    assert_eq!(
        summary.get("clean").unwrap().as_bool(),
        Some(total_errors == 0.0)
    );
}

#[test]
fn library_emitter_round_trips_three_distinct_codes() {
    let session = Session::new(SessionConfig::default());
    let report = session.check(&SourceFile::new("three.rtr", THREE_CODES_SRC));
    assert_eq!(report.stats.errors, 3);
    let codes: std::collections::BTreeSet<&str> =
        report.diagnostics.iter().map(|d| d.code.as_str()).collect();
    assert_eq!(
        codes.into_iter().collect::<Vec<_>>(),
        vec!["E0001", "E0002", "E0004"],
        "three distinct error codes"
    );

    let json = reports_to_json(&[report]);
    let doc = parse(&json).expect("emitted JSON parses");
    validate_document(&doc, 1);

    // The three codes survive the round trip.
    let diagnostics = doc.get("files").unwrap().as_array().unwrap()[0]
        .get("diagnostics")
        .unwrap()
        .as_array()
        .unwrap();
    let parsed_codes: std::collections::BTreeSet<&str> = diagnostics
        .iter()
        .map(|d| d.get("code").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(
        parsed_codes.into_iter().collect::<Vec<_>>(),
        vec!["E0001", "E0002", "E0004"]
    );
    // Every diagnostic in this module is located.
    for d in diagnostics {
        assert_ne!(d.get("span").unwrap(), &Json::Null);
    }
}

#[test]
fn cli_json_output_matches_the_schema() {
    let dir = std::env::temp_dir().join("rtr-json-schema-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("three.rtr");
    let good = dir.join("ok.rtr");
    std::fs::write(&bad, THREE_CODES_SRC).expect("fixture");
    std::fs::write(&good, "(define (id [x : Int]) x) (id 4)").expect("fixture");

    let out = Command::new(env!("CARGO_BIN_EXE_rtr"))
        .arg("check")
        .arg("--json")
        .arg(&bad)
        .arg(&good)
        .output()
        .expect("spawn rtr");
    assert_eq!(out.status.code(), Some(1), "errors exit 1");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    let doc = parse(&stdout).expect("CLI JSON parses");
    validate_document(&doc, 2);

    // And a clean batch exits 0 with clean summary.
    let out = Command::new(env!("CARGO_BIN_EXE_rtr"))
        .arg("check")
        .arg("--json")
        .arg(&good)
        .output()
        .expect("spawn rtr");
    assert_eq!(out.status.code(), Some(0));
    let doc = parse(&String::from_utf8(out.stdout).expect("utf-8")).expect("parses");
    assert_eq!(
        doc.get("summary").unwrap().get("clean").unwrap().as_bool(),
        Some(true)
    );
}
