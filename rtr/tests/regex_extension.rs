//! Cross-crate integration test for the regex theory (§7's anticipated
//! extension), through the facade crate's public API: solver layer, core
//! logic layer, and surface language all in one flow.

use rtr::prelude::*;
use rtr::solver::lin::SolverVar;
use rtr::solver::re::{ReConstraint, ReSolver, Regex};

#[test]
fn solver_layer_decides_inclusion() {
    let v = SolverVar(0);
    let hex = std::sync::Arc::new(Regex::parse("0x[0-9a-f]+").expect("parses"));
    let any = std::sync::Arc::new(Regex::parse(".+").expect("parses"));
    let solver = ReSolver::default();
    assert!(solver.entails(
        &[ReConstraint::member(v, hex.clone())],
        &ReConstraint::member(v, any.clone()),
    ));
    assert!(!solver.entails(
        &[ReConstraint::member(v, any)],
        &ReConstraint::member(v, hex)
    ));
}

#[test]
fn surface_to_runtime_round_trip() {
    // The full pipeline: read → expand → elaborate → check (regex + linear
    // theories) → evaluate (NFA matcher at runtime).
    let src = r#"
        (: checksum : [s : Str #:where (and (=~ s #rx"[0-9]+")
                                            (<= (string-length s) 4))] -> Int)
        (define (checksum s) (string-length s))

        (: safe-checksum : Str -> Int)
        (define (safe-checksum s)
          (if (regexp-match? #rx"[0-9]+" s)
              (if (<= (string-length s) 4)
                  (checksum s)
                  -1)
              -1))

        (+ (safe-checksum "123")
           (+ (safe-checksum "12345") (safe-checksum "abc")))
    "#;
    let checker = Checker::default();
    let r = check_source(src, &checker).expect("checks");
    assert_eq!(r.ty, Ty::Int);
    let v = run_source(src, &checker, 200_000).expect("runs");
    assert_eq!(v.to_string(), "1"); // 3 + (-1) + (-1)
}

#[test]
fn theories_are_independent_switches() {
    // A program needing only occurrence typing still checks under λTR,
    // while the regex-guarded one does not — same split as the paper's
    // vector study.
    let occurrence_only = r#"
        (: f : (U Str Int) -> Int)
        (define (f x) (if (string? x) (string-length x) x))
        (f "four")
    "#;
    let guarded = r#"
        (: g : [s : Str #:where (=~ s #rx"a*")] -> Int)
        (define (g s) 0)
        (: h : Str -> Int)
        (define (h s) (if (regexp-match? #rx"a*" s) (g s) 0))
    "#;
    let rtr = Checker::default();
    let tr = Checker::with_config(CheckerConfig::lambda_tr());
    assert!(check_source(occurrence_only, &rtr).is_ok());
    assert!(check_source(occurrence_only, &tr).is_ok());
    assert!(check_source(guarded, &rtr).is_ok());
    assert!(check_source(guarded, &tr).is_err());
}

#[test]
fn checker_rejects_theory_confusion() {
    // Regexes are values but not strings; strings are not regexes.
    let checker = Checker::default();
    assert!(check_source(r#"(string-length #rx"a")"#, &checker).is_err());
    assert!(check_source(r#"(regexp-match? "a" "a")"#, &checker).is_err());
    // And both are fine in their right places.
    assert!(check_source(r#"(regexp-match? #rx"a" "a")"#, &checker).is_ok());
}
