//! The seeded fault-injection property suite (`--features chaos`).
//!
//! Three-valued soundness under injected faults: for any fault
//! schedule, a verdict is either identical to the fault-free run or
//! degrades to the structured `E0202` "resource limit exceeded"
//! diagnostic — it never flips between well-typed and ill-typed. An
//! injected panic is isolated to its module item as one `E0203` ICE
//! while the surrounding items keep their fault-free verdicts,
//! byte-identically serial vs parallel.

#![cfg(feature = "chaos")]

use rtr::core::budget::{ChaosConfig, CHAOS_PANIC_MSG};
use rtr::core::diag::Code;
use rtr::json::diagnostic_json;
use rtr::prelude::*;

/// A mix of well-typed and ill-typed modules exercising all three
/// theories, so injected faults have interesting verdicts to threaten.
fn module_pool() -> Vec<SourceFile> {
    let sources: &[(&str, &str)] = &[
        (
            "lin_ok.rtr",
            "(: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
             (define (max x y) (if (> x y) x y))
             (max 3 7)",
        ),
        (
            "lin_bad.rtr",
            "(: f : [x : Int] -> [z : Int #:where (> z x)])
             (define (f x) x)",
        ),
        (
            "guard_ok.rtr",
            "(define (at [v : (Vecof Int)] [i : Int])
               (if (and (<= 0 i) (< i (len v))) (safe-vec-ref v i) 0))",
        ),
        (
            "mixed.rtr",
            "(: g : [x : Int] -> Int)
             (define (g x) #t)
             (define (ok [y : Int]) (add1 y))
             (+ 1 nope)",
        ),
    ];
    sources
        .iter()
        .map(|(n, s)| SourceFile::new(*n, *s))
        .collect()
}

fn session_with(chaos: Option<ChaosConfig>, jobs: usize) -> Session {
    let checker = CheckerConfig {
        chaos,
        ..CheckerConfig::default()
    };
    // From-scratch checking: this suite compares verdicts across seeds
    // and job counts, so every check must run the full module, not a
    // cache splice from an earlier check of the same path.
    Session::new(SessionConfig {
        checker,
        jobs,
        incremental: false,
        ..SessionConfig::default()
    })
}

/// A deterministic fingerprint of everything verdict-relevant in a
/// report (diagnostics, per-item outcomes, the module value) — stats
/// and timing excluded.
fn fingerprint(r: &CheckReport) -> String {
    let mut out = format!("file={}\n", r.file);
    for d in &r.diagnostics {
        out.push_str(&diagnostic_json(d));
        out.push('\n');
    }
    for item in &r.results {
        out.push_str(&format!(
            "item name={:?} ty={:?} poisoned={}\n",
            item.name.map(|s| s.to_string()),
            item.ty.as_ref().map(|t| t.to_string()),
            item.poisoned
        ));
    }
    out.push_str(&format!(
        "value={:?}\n",
        r.value.as_ref().map(|v| v.ty.to_string())
    ));
    out
}

/// Under any seed of trip/solver/flush faults (no panics), every
/// module's verdict is the fault-free one or a pure `E0202`
/// degradation — never a flip in either direction, and never a novel
/// non-exhaustion error.
#[test]
fn injected_faults_never_flip_a_verdict() {
    let files = module_pool();
    let fault_free: Vec<CheckReport> = {
        let s = session_with(None, 1);
        files.iter().map(|f| s.check(f)).collect()
    };
    for seed in 0..48u64 {
        let chaos = ChaosConfig {
            seed,
            trip_per_mille: 20,
            panic_per_mille: 0,
            flush_per_mille: 20,
            solver_per_mille: 30,
        };
        let s = session_with(Some(chaos), 1);
        for (file, base) in files.iter().zip(&fault_free) {
            let r = s.check(file);
            let base_codes: std::collections::BTreeSet<&str> =
                base.diagnostics.iter().map(|d| d.code.as_str()).collect();
            if r.is_clean() {
                assert!(
                    base.is_clean(),
                    "seed {seed}: chaos accepted {} which is ill-typed fault-free",
                    file.name
                );
            }
            if base.is_clean() {
                for d in &r.diagnostics {
                    assert_eq!(
                        d.code,
                        Code::ResourceExhausted,
                        "seed {seed}: chaos turned well-typed {} into {} (not E0202)",
                        file.name,
                        d.code
                    );
                }
            }
            // No novel failure reasons: every chaos-run error is a
            // fault-free error or the exhaustion degradation.
            for d in &r.diagnostics {
                assert!(
                    d.code == Code::ResourceExhausted || base_codes.contains(d.code.as_str()),
                    "seed {seed}: chaos invented {} on {}",
                    d.code,
                    file.name
                );
            }
        }
    }
}

/// A module of independent definitions, so a fault in one item cannot
/// legitimately change a neighbour's verdict.
fn independent_items() -> SourceFile {
    let mut text = String::new();
    for k in 0..8 {
        text.push_str(&format!("(define (ok{k} [x : Int]) (add1 x))\n"));
    }
    SourceFile::new("independent.rtr", text)
}

/// An injected panic yields one `E0203` ICE for its item; every other
/// item keeps its fault-free verdict, byte-identically serial vs
/// `--jobs N`.
#[test]
fn injected_panics_are_isolated_per_item() {
    let file = independent_items();
    let fault_free = session_with(None, 1).check(&file);
    assert!(fault_free.is_clean());
    let n_items = fault_free.results.len();

    // Find a seed that panics some but not all items: the schedule is
    // deterministic, so the first hit is stable across runs.
    let mut exercised = false;
    for seed in 0..64u64 {
        let chaos = ChaosConfig {
            seed,
            trip_per_mille: 0,
            panic_per_mille: 250,
            flush_per_mille: 0,
            solver_per_mille: 0,
        };
        let serial = session_with(Some(chaos), 1).check(&file);
        let ices: Vec<&Diagnostic> = serial
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::InternalError)
            .collect();
        if ices.is_empty() || ices.len() == n_items {
            continue;
        }
        exercised = true;
        // Every diagnostic is an ICE carrying the injected message…
        assert_eq!(serial.diagnostics.len(), ices.len());
        for d in ices {
            assert!(
                d.message.contains(CHAOS_PANIC_MSG),
                "unexpected ICE detail: {}",
                d.message
            );
        }
        // …the panicked items are poisoned at their declared types, and
        // the untouched items report their fault-free verdicts.
        assert_eq!(serial.results.len(), n_items);
        let poisoned = serial.results.iter().filter(|r| r.poisoned).count();
        assert_eq!(poisoned, serial.diagnostics.len());
        for (chaos_item, base_item) in serial.results.iter().zip(&fault_free.results) {
            assert_eq!(chaos_item.name, base_item.name);
            if !chaos_item.poisoned {
                assert_eq!(
                    chaos_item.ty.as_ref().map(|t| t.to_string()),
                    base_item.ty.as_ref().map(|t| t.to_string()),
                    "a fault in one item changed a fault-free neighbour's type"
                );
            }
        }
        // Parallel checking replays the same schedule bit-for-bit.
        let parallel = session_with(Some(chaos), 4).check(&file);
        assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    }
    assert!(
        exercised,
        "no seed in 0..64 produced a partial panic schedule; rates need retuning"
    );
}

/// Whole-batch determinism: a chaos run over many files is
/// byte-identical (in everything verdict-relevant) serial vs parallel.
#[test]
fn chaos_runs_are_deterministic_serial_vs_parallel() {
    let files = module_pool();
    let chaos = ChaosConfig {
        seed: 0xC0FFEE,
        trip_per_mille: 15,
        panic_per_mille: 15,
        flush_per_mille: 15,
        solver_per_mille: 15,
    };
    let serial: Vec<String> = session_with(Some(chaos), 1)
        .check_all(&files)
        .iter()
        .map(fingerprint)
        .collect();
    let parallel: Vec<String> = session_with(Some(chaos), 4)
        .check_all(&files)
        .iter()
        .map(fingerprint)
        .collect();
    assert_eq!(serial, parallel);
}
