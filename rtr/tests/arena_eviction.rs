//! Generational eviction smoke test: a long-lived [`Session`] checking
//! module after module must keep the interner's *fresh* arena region
//! bounded — ghost existentials minted for one module are garbage by the
//! next, and the session retires the region between checks once it
//! crosses its budget. (This file holds exactly one test on purpose:
//! eviction is skipped while any check is in flight, so a concurrent
//! test in the same binary would make the growth bound flaky.)

use rtr::core::intern;
use rtr::prelude::*;

/// The session layer's eviction threshold (`FRESH_ARENA_BUDGET`).
const BUDGET: usize = 1 << 14;

fn fresh_total() -> usize {
    let s = intern::arena_stats();
    s.fresh_tys + s.fresh_props + s.fresh_objs
}

/// A module whose applications mint ghost existentials (arguments with
/// no symbolic object), so every check grows the fresh region.
fn fresh_hungry_module() -> SourceFile {
    let mut src = String::from(
        "(: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
         (define (max x y) (if (> x y) x y))\n",
    );
    for k in 0..60 {
        // The inner call's result has no symbolic object, so the outer
        // application opens a ghost existential — fresh-region growth.
        src.push_str(&format!("(max (max {k} {}) {})\n", k + 1, k + 2));
    }
    SourceFile::new("fresh_hungry.rtr", src)
}

#[test]
fn repeated_session_checks_keep_the_fresh_arena_bounded() {
    // From-scratch sessions re-mint every ghost existential per check —
    // the workload this bound is about. (An incremental session splices
    // unchanged items instead, so the fresh region barely grows and the
    // eviction epoch never needs to advance; cache invalidation across
    // evictions is covered by the epoch-guard tests in rtr-core.)
    let session = Session::new(SessionConfig {
        incremental: false,
        ..SessionConfig::default()
    });
    let file = fresh_hungry_module();
    let epoch_before = intern::evict_epoch();

    // Calibrate: one check's worth of fresh minting must be far below
    // the budget, or "bounded" would be vacuous.
    let base = fresh_total();
    assert!(session.check(&file).is_clean());
    let per_check = fresh_total().saturating_sub(base);
    assert!(per_check > 0, "workload mints no fresh entries");
    assert!(
        per_check < BUDGET / 4,
        "one check minted {per_check} fresh entries — too close to the {BUDGET} budget"
    );

    // Grind: without eviction the region would grow linearly without
    // bound; with it, the high-water mark stays within one budget plus
    // one check's overshoot.
    let mut high_water = fresh_total();
    for _ in 0..(2 * BUDGET / per_check + 4) {
        assert!(session.check(&file).is_clean());
        high_water = high_water.max(fresh_total());
    }
    assert!(
        intern::evict_epoch() > epoch_before,
        "the fresh region was never evicted (high water {high_water})"
    );
    assert!(
        high_water <= BUDGET + 2 * per_check,
        "fresh arena grew past its budget: {high_water} entries (budget {BUDGET}, \
         per-check {per_check})"
    );
    // And the verdict after all that recycling is still the same one.
    assert!(session.check(&file).is_clean());
}
