//! Golden-file tests for rendered diagnostics: the `rtr check` human
//! output (source snippets with caret underlines, secondary labels,
//! notes) is pinned byte-for-byte against committed golden files.
//!
//! Regenerate after an intentional rendering change with:
//!
//! ```sh
//! RTR_BLESS=1 cargo test -p rtr --test golden_diagnostics
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs `rtr check` on the committed fixture and compares the full
/// stderr stream to the committed golden file.
fn check_golden(name: &str, expect_success: bool) {
    let fixture = golden_dir().join(format!("{name}.rtr"));
    let golden = golden_dir().join(format!("{name}.stderr"));
    let out = Command::new(env!("CARGO_BIN_EXE_rtr"))
        .arg("check")
        .arg(&fixture)
        .output()
        .expect("spawn rtr");
    assert_eq!(
        out.status.success(),
        expect_success,
        "unexpected exit status; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The fixture path embedded in `--> file:line:col` markers varies
    // with the checkout location; normalize it to the bare name.
    let stderr = String::from_utf8_lossy(&out.stderr)
        .replace(&fixture.display().to_string(), &format!("{name}.rtr"));
    if std::env::var_os("RTR_BLESS").is_some() {
        std::fs::write(&golden, stderr.as_bytes()).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        stderr,
        expected,
        "rendered diagnostics drifted from {}; re-bless with RTR_BLESS=1 if intentional",
        golden.display()
    );
}

#[test]
fn multi_error_module_renders_snippets_and_carets() {
    check_golden("multi_error", false);
}

#[test]
fn refinement_failure_names_the_theory() {
    check_golden("refinement", false);
}

#[test]
fn macro_expansion_provenance_points_at_the_surface_form() {
    check_golden("expansion", false);
}
