//! Golden-file tests for rendered diagnostics: the `rtr check` human
//! output (source snippets with caret underlines, secondary labels,
//! notes) is pinned byte-for-byte against committed golden files.
//!
//! Regenerate after an intentional rendering change with:
//!
//! ```sh
//! RTR_BLESS=1 cargo test -p rtr --test golden_diagnostics
//! ```

use std::path::PathBuf;
use std::process::Command;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs `rtr check` on the committed fixture and compares the full
/// stderr stream to the committed golden file.
fn check_golden(name: &str, expect_success: bool) {
    check_golden_with(name, &[], if expect_success { 0 } else { 1 });
}

/// Like [`check_golden`], with extra `rtr check` flags and an exact
/// expected exit code.
fn check_golden_with(name: &str, extra_args: &[&str], expect_code: i32) {
    let fixture = golden_dir().join(format!("{name}.rtr"));
    let golden = golden_dir().join(format!("{name}.stderr"));
    let out = Command::new(env!("CARGO_BIN_EXE_rtr"))
        .arg("check")
        .args(extra_args)
        .arg(&fixture)
        .output()
        .expect("spawn rtr");
    assert_eq!(
        out.status.code(),
        Some(expect_code),
        "unexpected exit status; stderr:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The fixture path embedded in `--> file:line:col` markers varies
    // with the checkout location; normalize it to the bare name.
    let stderr = String::from_utf8_lossy(&out.stderr)
        .replace(&fixture.display().to_string(), &format!("{name}.rtr"));
    if std::env::var_os("RTR_BLESS").is_some() {
        std::fs::write(&golden, stderr.as_bytes()).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        stderr,
        expected,
        "rendered diagnostics drifted from {}; re-bless with RTR_BLESS=1 if intentional",
        golden.display()
    );
}

#[test]
fn multi_error_module_renders_snippets_and_carets() {
    check_golden("multi_error", false);
}

#[test]
fn refinement_failure_names_the_theory() {
    check_golden("refinement", false);
}

#[test]
fn macro_expansion_provenance_points_at_the_surface_form() {
    check_golden("expansion", false);
}

/// A starved depth budget degrades to a located `E0202` on the deep
/// item while the shallow item in the same module still checks.
#[test]
fn depth_limit_degrades_to_a_located_e0202() {
    check_golden_with("exhausted", &["--max-depth", "16"], 1);
}

/// Compares an in-process rendered string against a committed golden
/// file, honoring `RTR_BLESS` like [`check_golden`].
fn string_golden(name: &str, actual: &str) {
    let golden = golden_dir().join(format!("{name}.golden"));
    if std::env::var_os("RTR_BLESS").is_some() {
        std::fs::write(&golden, actual.as_bytes()).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden.display()));
    assert_eq!(
        actual,
        expected,
        "rendered output drifted from {}; re-bless with RTR_BLESS=1 if intentional",
        golden.display()
    );
}

/// An isolated internal error (`E0203`) cannot be provoked
/// deterministically without the `chaos` feature, so the golden pins
/// the renderer and the `rtr-check-v1` emitter against a synthetic
/// [`Diagnostic::ice`] (and, for symmetry, a synthetic `E0202`).
#[test]
fn ice_and_exhausted_rendering_is_pinned() {
    use rtr::core::diag::{render, Diagnostic};
    use rtr::json::diagnostic_json;
    use rtr::prelude::LimitKind;

    let ice = Diagnostic::ice(
        "the definition of `f`".to_string(),
        "index out of bounds: the len is 3 but the index is 7".to_string(),
    );
    let exhausted = Diagnostic::exhausted("the definition of `g`".to_string(), LimitKind::Deadline);
    let mut out = String::new();
    for d in [&ice, &exhausted] {
        out.push_str(&render(d, "synthetic.rtr", ""));
        out.push_str(&diagnostic_json(d));
        out.push('\n');
    }
    string_golden("ice_synthetic", &out);
}
