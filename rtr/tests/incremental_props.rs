//! Incremental ≡ from-scratch: randomized edit-script equivalence.
//!
//! One warm incremental [`Session`] replays a script of edits against a
//! synthetic module; after every step, the report is compared against a
//! from-scratch check of the same text. Diagnostic codes, primary
//! spans, per-item verdicts, the module value type, and the whole
//! human rendering must agree. (The single permitted normalization:
//! fresh existential names `%N` are numbered per *run*, not per
//! module, so their digits are stripped before comparison — the same
//! caveat the core equivalence tests document.)
//!
//! Edits cover every cache-relevant transition: body tweaks, flipping
//! an item clean ↔ ill-typed ↔ unbound, insertion, deletion,
//! reordering, dependency rewiring, and whitespace/comment-only
//! touches that must splice everything.

use rtr::prelude::*;

/// A deterministic LCG (no rand dependency); high bits are the usable
/// ones.
struct Rng(u64);

impl Rng {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound.max(1)
    }
}

/// How a definition's body is shaped this step.
#[derive(Clone, Copy, PartialEq)]
enum Body {
    /// `(+ (* a x) y)` — well typed, self-contained.
    Clean,
    /// `(+ (u<dep> x y) a)` — well typed, *depends on* `u<dep>` (which
    /// may or may not exist: an unbound dep is a legal ill-typed step).
    Calls(usize),
    /// `(+ x #t)` — a type error; the definition is poisoned.
    IllTyped,
    /// `(+ x zzz)` — an unbound variable; also poisoned.
    Unbound,
}

#[derive(Clone)]
enum Item {
    Define {
        name: usize,
        a: i64,
        body: Body,
    },
    /// A trailing expression `(u<callee> <arg> 2)`.
    Call {
        callee: usize,
        arg: i64,
    },
}

fn render(items: &[Item], rng: &mut Rng) -> String {
    let mut src = String::new();
    for item in items {
        // Whitespace and comments between items must never force a
        // re-check on their own (the textual key ignores trivia).
        match rng.next(3) {
            0 => src.push('\n'),
            1 => src.push_str("  ; trivia\n"),
            _ => {}
        }
        match item {
            Item::Define { name, a, body } => {
                src.push_str(&format!("(: u{name} : [x : Int] [y : Int] -> Int)\n"));
                let body = match body {
                    Body::Clean => format!("(+ (* {a} x) y)"),
                    Body::Calls(dep) => format!("(+ (u{dep} x y) {a})"),
                    Body::IllTyped => "(+ x #t)".to_owned(),
                    Body::Unbound => "(+ x zzz)".to_owned(),
                };
                src.push_str(&format!("(define (u{name} x y) {body})\n"));
            }
            Item::Call { callee, arg } => src.push_str(&format!("(u{callee} {arg} 2)\n")),
        }
    }
    src
}

/// Strips the digits after `%`: fresh existentials are numbered per
/// process-wide counter, so two runs of the same module differ only
/// there.
fn normalize(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '%' {
            while chars.peek().is_some_and(char::is_ascii_digit) {
                chars.next();
            }
        }
    }
    out
}

/// Everything observable about a report, up to `%N` renaming.
fn report_key(r: &CheckReport, source: &str) -> String {
    let mut out = String::new();
    for d in &r.diagnostics {
        out.push_str(d.code.as_str());
        if let Some(s) = d.primary {
            out.push_str(&format!(
                " @{}:{}-{}:{}",
                s.start.line, s.start.col, s.end.line, s.end.col
            ));
        }
        out.push('\n');
    }
    for i in &r.results {
        out.push_str(&format!(
            "{:?} : {:?} poisoned={}\n",
            i.name.map(|n| n.as_str().to_owned()),
            i.ty.as_ref().map(|t| normalize(&t.to_string())),
            i.poisoned
        ));
    }
    out.push_str(&format!(
        "value {:?}\n",
        r.value.as_ref().map(|v| normalize(&v.ty.to_string()))
    ));
    out.push_str(&format!(
        "clean {} errors {}\n",
        r.is_clean(),
        r.stats.errors
    ));
    out.push_str(&normalize(&r.render_human(source)));
    out
}

fn mutate(items: &mut Vec<Item>, rng: &mut Rng, fresh_name: &mut usize) {
    let bodies = [
        Body::Clean,
        Body::Calls(rng.next(*fresh_name)),
        Body::IllTyped,
        Body::Unbound,
    ];
    match rng.next(6) {
        // Tweak a definition's coefficient (the classic one-line edit).
        0 => {
            let at = rng.next(items.len());
            if let Some(Item::Define { a, .. }) = items.get_mut(at) {
                *a += 1;
            }
        }
        // Flip a definition's body shape (clean / calls / ill-typed /
        // unbound) — exercises poisoning going stale in both directions.
        1 => {
            let (at, shape) = (rng.next(items.len()), rng.next(bodies.len()));
            if let Some(Item::Define { body, .. }) = items.get_mut(at) {
                *body = bodies[shape];
            }
        }
        // Insert a new definition or call at a random position.
        2 => {
            let at = rng.next(items.len() + 1);
            let item = if rng.next(2) == 0 {
                let name = *fresh_name;
                *fresh_name += 1;
                Item::Define {
                    name,
                    a: rng.next(9) as i64,
                    body: bodies[rng.next(bodies.len())],
                }
            } else {
                Item::Call {
                    callee: rng.next(*fresh_name),
                    arg: rng.next(9) as i64,
                }
            };
            items.insert(at, item);
        }
        // Delete an item (callers of a deleted define go unbound).
        3 => {
            if items.len() > 1 {
                items.remove(rng.next(items.len()));
            }
        }
        // Swap two items (reorder; FIFO key matching must stay sound).
        4 => {
            let (i, j) = (rng.next(items.len()), rng.next(items.len()));
            items.swap(i, j);
        }
        // Tweak a call site.
        _ => {
            let at = rng.next(items.len());
            if let Some(Item::Call { arg, .. }) = items.get_mut(at) {
                *arg += 1;
            }
        }
    }
}

#[test]
fn random_edit_scripts_match_the_from_scratch_path() {
    for seed in 1..=12u64 {
        let warm = Session::new(SessionConfig::default());
        let scratch = Session::new(SessionConfig {
            incremental: false,
            ..SessionConfig::default()
        });
        let mut rng = Rng(seed);
        let mut fresh_name = 4;
        let mut items: Vec<Item> = (0..4)
            .map(|name| Item::Define {
                name,
                a: name as i64,
                body: if name == 0 {
                    Body::Clean
                } else {
                    Body::Calls(name - 1)
                },
            })
            .collect();
        items.push(Item::Call { callee: 3, arg: 1 });

        for step in 0..10 {
            // Step 0 checks the seed module cold; later steps mutate
            // (and sometimes only re-render trivia, exercising the
            // pure-splice path).
            if step > 0 && rng.next(8) != 0 {
                mutate(&mut items, &mut rng, &mut fresh_name);
            }
            let src = render(&items, &mut rng);
            let file = SourceFile::new("props.rtr", &src);
            let incremental = warm.check(&file);
            let full = scratch.check(&file);
            assert!(
                full.stats.rechecked_items.is_none(),
                "the comparator must run from scratch"
            );
            assert_eq!(
                report_key(&incremental, &src),
                report_key(&full, &src),
                "seed {seed} step {step} diverged; source:\n{src}"
            );
        }
    }
}

#[test]
fn one_item_edit_reuses_the_unchanged_items() {
    let session = Session::new(SessionConfig::default());
    let mut rng = Rng(7);
    let items: Vec<Item> = (0..6)
        .map(|name| Item::Define {
            name,
            a: name as i64,
            body: Body::Clean,
        })
        .collect();
    let src = render(&items, &mut rng);
    let cold = session.check(&SourceFile::new("edit.rtr", &src));
    assert!(cold.is_clean());

    // Edit one body; everything else must splice.
    let mut edited = items;
    if let Item::Define { a, .. } = &mut edited[2] {
        *a = 99;
    }
    let src2 = render(&edited, &mut rng);
    let warm = session.check(&SourceFile::new("edit.rtr", &src2));
    assert!(warm.is_clean());
    assert_eq!(
        warm.stats.rechecked_items,
        Some(1),
        "exactly the edited item"
    );
    assert!(
        warm.stats.unchanged_items.is_some_and(|u| u >= 4),
        "the other defines must be reused, got {:?}",
        warm.stats.unchanged_items
    );
}
