//! In-place insertion sort with every vector operation statically
//! verified — the kind of loop-heavy, index-juggling code the paper's
//! case study measures.
//!
//! The inner loop walks an index downward while swapping; its invariant
//! (`0 ≤ j ≤ len v`) is exactly the §5.1 "annotations added" pattern:
//! a refinement annotation on the loop parameter makes every raw access
//! provably in bounds.
//!
//! ```sh
//! cargo run --example insertion_sort
//! ```

use rtr::prelude::*;

const SORT_LIB: &str = r#"
    ;; Insert v[k] into the sorted prefix v[0..k], shifting as we go.
    ;; j counts down from k; the refinement carries the loop invariant —
    ;; there is no dynamic upper-bound test in the loop at all.
    (: insert! : [v : (Vecof Int)]
                 [k : (Refine [k : Int] (and (<= 0 k) (< k (len v))))] -> Unit)
    (define (insert! v k)
      (let loop : Unit ([j : (Refine [j : Int] (and (<= 0 j) (< j (len v)))) k])
        (when (> j 0)
          (let ([a (safe-vec-ref v (- j 1))]
                [b (safe-vec-ref v j)])
            (when (> a b)
              (begin
                (safe-vec-set! v (- j 1) b)
                (safe-vec-set! v j a)
                (loop (- j 1))))))))

    ;; Sort by inserting each element in turn.
    (: sort! : [v : (Vecof Int)] -> Unit)
    (define (sort! v)
      (let outer : Unit ([k : (Refine [k : Int] (<= 0 k (len v))) 0])
        (when (< k (len v))
          (begin
            (insert! v k)
            (outer (+ k 1))))))

    ;; Is the vector sorted? (for checking the result). Note the invariant
    ;; needs BOTH bounds — 1 ≤ i justifies the (- i 1) access — and the
    ;; initial call needs the length guard to establish it.
    (: sorted? : [v : (Vecof Int)] -> Bool)
    (define (sorted? v)
      (if (< (len v) 2)
          #t
          (let walk : Bool ([i : (Refine [i : Int] (<= 1 i (len v))) 1])
            (cond
              [(>= i (len v)) #t]
              [(> (safe-vec-ref v (- i 1)) (safe-vec-ref v i)) #f]
              [else (walk (+ i 1))]))))
"#;

fn main() {
    let checker = Checker::default();
    check_source(SORT_LIB, &checker).expect("the sort library verifies");
    println!("insertion sort verifies: every access and store statically in bounds\n");

    let program = format!(
        "{SORT_LIB}
         (define data (vec 5 3 8 1 9 2 7))
         (begin
           (sort! data)
           (if (sorted? data) (vec-ref data 0) (error \"not sorted!\")))"
    );
    let v = run_source(&program, &checker, 2_000_000).expect("sorting runs");
    println!("sorted (vec 5 3 8 1 9 2 7); minimum = {v}");
    assert_eq!(v.to_string(), "1");

    // Weaken the inner annotation and the accesses no longer verify:
    // nothing in the loop tests the upper bound dynamically.
    let broken = SORT_LIB.replace(
        "[j : (Refine [j : Int] (and (<= 0 j) (< j (len v)))) k]",
        "[j : Int k]",
    );
    match check_source(&broken, &checker) {
        Err(e) => println!("\nwithout the loop invariant the swap is rejected:\n  {e}"),
        Ok(_) => unreachable!("Int-typed j must not verify the swap"),
    }

    // And the λTR baseline can't verify any of it.
    let tr = Checker::with_config(CheckerConfig::lambda_tr());
    assert!(check_source(SORT_LIB, &tr).is_err());
    println!("\nλTR baseline rejects the library (no theory reasoning) — as expected");
}
