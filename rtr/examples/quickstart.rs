//! Quickstart: Fig. 1's `max` — refinement types riding on occurrence
//! typing.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rtr::prelude::*;

fn main() {
    // The paper's Fig. 1, in the surface syntax: the range promises the
    // result is at least both arguments, and the ordinary conditional in
    // the body is what proves it — no changes to the code, no proof
    // terms, just occurrence typing + the linear-arithmetic theory.
    let src = r#"
        (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        (max 3 7)
    "#;

    let checker = Checker::default();
    let result = check_source(src, &checker).expect("max type checks");
    println!("type of (max 3 7): {}", result.ty);

    let value = run_source(src, &checker, 10_000).expect("max runs");
    println!("value of (max 3 7): {value}");

    // The same program with a *wrong* specification is rejected: swap the
    // comparison so the body computes min while the type still claims max.
    let wrong = src.replace("(if (> x y) x y)", "(if (> x y) y x)");
    match check_source(&wrong, &checker) {
        Err(e) => println!("\nwrong body correctly rejected:\n  {e}"),
        Ok(_) => unreachable!("min body must not satisfy max's type"),
    }

    // And without the theory (stock occurrence typing, the λTR baseline)
    // even the correct body cannot satisfy the refined range.
    let baseline = Checker::with_config(CheckerConfig::lambda_tr());
    match check_source(src, &baseline) {
        Err(_) => println!("\nλTR baseline (no theories) cannot verify the range — as expected"),
        Ok(_) => unreachable!("λTR must not prove refinements"),
    }
}
