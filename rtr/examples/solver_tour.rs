//! A tour of the solver substrate (`rtr-solver`) on its own: the pieces
//! the type system consults through rule L-Theory.
//!
//! ```sh
//! cargo run --example solver_tour
//! ```

use rtr::solver::bv::{BvAtom, BvLit, BvSolver, BvTerm};
use rtr::solver::lin::{Constraint, FourierMotzkin, LinExpr, SolverVar};
use rtr::solver::sat::{Cnf, Lit, SatResult, Solver};

fn main() {
    // --- linear integer arithmetic: Fourier–Motzkin --------------------
    // The vector-bounds query behind safe-vec-ref:
    //   0 ≤ i, i < len(A), len(A) = len(B)  ⊢  i < len(B)
    let i = LinExpr::var(SolverVar(0));
    let len_a = LinExpr::var(SolverVar(1));
    let len_b = LinExpr::var(SolverVar(2));
    let facts = [
        Constraint::ge(i.clone(), LinExpr::constant(0)),
        Constraint::lt(i.clone(), len_a.clone()),
        Constraint::eq(len_a.clone(), len_b.clone()),
    ];
    let goal = Constraint::lt(i.clone(), len_b.clone());
    let fm = FourierMotzkin::default();
    println!(
        "FM: {{0≤i, i<len A, len A = len B}} ⊢ i < len B : {}",
        fm.entails(&facts, &goal)
    );
    let weak = [
        Constraint::ge(i.clone(), LinExpr::constant(0)),
        Constraint::lt(i, len_a),
    ];
    println!(
        "FM: without the length equation          : {}",
        fm.entails(&weak, &goal)
    );

    // Integer tightening at work: 0 < x < 1 has rational but no integer
    // solutions.
    let x = LinExpr::var(SolverVar(7));
    let gap = [
        Constraint::gt(x.clone(), LinExpr::constant(0)),
        Constraint::lt(x, LinExpr::constant(1)),
    ];
    println!(
        "FM: 0 < x < 1 over ℤ is unsat            : {}",
        fm.check(&gap).is_unsat()
    );

    // --- SAT: the CDCL core ----------------------------------------------
    let mut cnf = Cnf::new();
    let a = cnf.fresh_var();
    let b = cnf.fresh_var();
    let c = cnf.fresh_var();
    cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
    cnf.add_clause([Lit::neg(a), Lit::pos(c)]);
    cnf.add_clause([Lit::neg(b), Lit::neg(c)]);
    match Solver::new().solve(&cnf) {
        SatResult::Sat(model) => println!(
            "SAT: (a∨b)(¬a∨c)(¬b∨¬c) satisfied by a={} b={} c={}",
            model.value(a),
            model.value(b),
            model.value(c)
        ),
        other => println!("SAT: unexpected {other:?}"),
    }

    // --- bitvectors: bit-blasting ------------------------------------------
    // The xtime obligation: num ≤ 0xff ⊢ ((2·num) & 0xff) ⊕ 0x1b ≤ 0xff.
    let num = BvTerm::var(SolverVar(0), 16);
    let byte = |v: u64| BvTerm::constant(v, 16);
    let fact = BvLit::positive(BvAtom::ule(num.clone(), byte(0xff)));
    let masked = num.mul(byte(2)).and(byte(0xff)).xor(byte(0x1b));
    let goal = BvLit::positive(BvAtom::ule(masked, byte(0xff)));
    let bv = BvSolver::default();
    println!(
        "BV: xtime's else-branch bound            : {}",
        bv.entails(std::slice::from_ref(&fact), &goal)
    );

    // …and the same goal *without* the mask is refutable.
    let num = BvTerm::var(SolverVar(0), 16);
    let unmasked = num.mul(byte(2)).xor(byte(0x1b));
    let goal = BvLit::positive(BvAtom::ule(unmasked, byte(0xff)));
    println!(
        "BV: without the #xff mask                : {}",
        bv.entails(&[fact], &goal)
    );
}
