//! Safe vector access (§2.1): the workload behind the paper's case study.
//!
//! Walks through the paper's progression: the dynamically-checked
//! `vec-ref`, the statically-verified `safe-vec-ref`, the `safe-dot-prod`
//! program that *fails* (with the paper's error message), and the
//! `dot-prod` middle ground whose single dynamic length check verifies
//! the whole loop.
//!
//! ```sh
//! cargo run --example safe_vectors
//! ```

use rtr::prelude::*;

fn main() {
    let checker = Checker::default();

    // 1. A guarded access: the conditional proves the index in bounds, so
    //    the *unsafe* (unchecked) primitive is safe to call.
    let guarded = r#"
        (: my-vec-ref : [v : (Vecof Int)] [i : Int] -> Int)
        (define (my-vec-ref v i)
          (if (<= 0 i)
              (if (< i (len v))
                  (safe-vec-ref v i)
                  (error "invalid vector index!"))
              (error "invalid vector index!")))
        (my-vec-ref (vec 10 20 30) 2)
    "#;
    check_source(guarded, &checker).expect("guarded access verifies");
    println!(
        "guarded vec-ref verifies; runs to: {}",
        run_source(guarded, &checker, 10_000).unwrap()
    );

    // 2. safe-dot-prod: indexing B with a bound derived from A. Nothing
    //    relates the two lengths, so the access into B is rejected — this
    //    is the paper's §2.1 error message.
    let unguarded = r#"
        (: safe-dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
        (define (safe-dot-prod A B)
          (for/sum ([i (in-range (len A))])
            (* (safe-vec-ref A i) (safe-vec-ref B i))))
    "#;
    match check_source(unguarded, &checker) {
        Err(e) => println!("\nsafe-dot-prod rejected (as in the paper):\n  {e}"),
        Ok(_) => unreachable!("nothing relates len A and len B"),
    }

    // 3. dot-prod: one dynamic check makes every access in the loop
    //    statically verifiable — the paper's middle ground between legacy
    //    clients and full static proof.
    let dot_prod = r#"
        (: dot-prod : [A : (Vecof Int)] [B : (Vecof Int)] -> Int)
        (define (dot-prod A B)
          (begin
            (unless (= (len A) (len B))
              (error "invalid vector lengths!"))
            (for/sum ([i (in-range (len A))])
              (* (safe-vec-ref A i) (safe-vec-ref B i)))))
        (dot-prod (vec 1 2 3) (vec 4 5 6))
    "#;
    check_source(dot_prod, &checker).expect("dot-prod verifies");
    println!(
        "\ndot-prod verifies with one dynamic guard; (dot-prod (vec 1 2 3) (vec 4 5 6)) = {}",
        run_source(dot_prod, &checker, 100_000).unwrap()
    );

    // 4. §4.2: a test on a *mutable* variable proves nothing — the
    //    pattern behind the real bug the paper found in the math library.
    let mutable = r#"
        (define (f [data : (Vecof Int)])
          (let ([cache-size 0])
            (begin
              (set! cache-size (len data))
              (if (< 0 cache-size)
                  (safe-vec-ref data (- cache-size 1))
                  0))))
    "#;
    match check_source(mutable, &checker) {
        Err(e) => println!("\nmutable cache guard correctly rejected (§4.2):\n  {e}"),
        Ok(_) => unreachable!("mutable guards are unsound"),
    }
}
