//! The §5 case study end to end: generate the synthetic corpora, run the
//! staged verification methodology, print Figure 9.
//!
//! ```sh
//! cargo run --release --example case_study            # full 1,085 ops
//! cargo run --release --example case_study -- --quick # sampled subset
//! ```

use rtr::corpus::classify::classify_library;
use rtr::corpus::gen::{generate, Library};
use rtr::corpus::report::{fig9_table, math_breakdown, run_case_study, stats_table};
use rtr::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    if quick {
        // A sampled run: ~60 sites instead of all of them.
        let checker = Checker::default();
        println!("quick sample (first 20 sites per library):\n");
        for profile in rtr::corpus::profiles::libraries() {
            let lib = generate(&profile, 2016);
            let sample = Library {
                profile: lib.profile.clone(),
                sites: lib.sites.into_iter().take(20).collect(),
                filler: Vec::new(),
            };
            let tally = classify_library(&sample, &checker);
            println!(
                "{:<8} sampled {:>3} ops: auto {:>4.1}%  +annot {:>4.1}%  +modif {:>4.1}%",
                profile.name,
                tally.total(),
                tally.pct(tally.auto_ops),
                tally.pct(tally.annotated_ops),
                tally.pct(tally.modified_ops),
            );
        }
        println!("\n(run without --quick for the full Figure 9 numbers)");
        return;
    }

    let study = run_case_study(2016, true);
    println!("{}", stats_table(&study));
    println!("{}", fig9_table(&study));
    println!("{}", math_breakdown(&study));
}
