//! The bitvector theory (§2.2): verifying AES's `xtime` helper.
//!
//! `xtime` multiplies an element of GF(2⁸) by x, representing field
//! elements as bytes. The paper verifies it by adding the theory of
//! bitvectors (via Z3); this reproduction discharges the same
//! propositions with an in-tree bit-blasting solver, so the same program
//! type checks.
//!
//! ```sh
//! cargo run --example aes_xtime
//! ```

use rtr::prelude::*;

fn main() {
    let checker = Checker::default();

    // Byte is sugar for {b : BitVec | b ≤bv #xff} — a refinement over
    // 16-bit vectors, so the bound is a real proof obligation.
    let src = r#"
        (: xtime : [num : Byte] -> Byte)
        (define (xtime num)
          (let ([n (AND (bv* #x02 num) #xff)])
            (cond
              [(bv= #x00 (AND num #x80)) n]
              [else (XOR n #x1b)])))
        (xtime #x57)
    "#;
    check_source(src, &checker).expect("xtime verifies with the bitvector theory");
    println!("xtime type checks: both branches provably return a Byte");

    // Multiply 0x57 (x⁶+x⁴+x²+x+1) through the field a few times —
    // the classic AES test vector chain: 0x57 → 0xae → 0x47 → 0x8e.
    for (input, expected) in [(0x57u64, 0xaeu64), (0xae, 0x47), (0x8e, 0x07)] {
        let call = src.replace("(xtime #x57)", &format!("(xtime #x{input:02x})"));
        let v = run_source(&call, &checker, 10_000).unwrap();
        println!("xtime(#x{input:02x}) = {v}   (expected #x{expected:02x})");
        assert_eq!(v.to_string(), format!("#x{expected:x}"));
    }

    // Drop the mask and the bound is no longer provable: 2·num can exceed
    // #xff at width 16, so the checker rejects the unmasked version.
    let unmasked = src.replace("(AND (bv* #x02 num) #xff)", "(bv* #x02 num)");
    match check_source(&unmasked, &checker) {
        Err(e) => println!("\nunmasked product correctly rejected:\n  {e}"),
        Ok(_) => unreachable!("2·num needs the #xff mask to stay a Byte"),
    }
}
