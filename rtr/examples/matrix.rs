//! A small verified matrix library: flat row-major vectors with
//! statically-checked 2-D indexing.
//!
//! Demonstrates what the linear-arithmetic theory buys beyond single
//! indices: the access offset `4·i + j` is a *linear combination*, so it
//! is a symbolic object (§3.4's `n·o + o`), and the guard `i < rows ∧
//! j < 4` proves `0 ≤ 4i + j < len m` — a multi-variable entailment
//! discharged by Fourier–Motzkin.
//!
//! ```sh
//! cargo run --example matrix
//! ```

use rtr::prelude::*;

const MATRIX_LIB: &str = r#"
    ;; A 4-column, row-major integer matrix is a (Vecof Int) whose length
    ;; is a multiple of four; rows = len/4 is threaded explicitly.

    ;; Verified 2-D access: the guard proves 0 <= 4i+j < len m.
    (: mat-ref : [m : (Vecof Int)] [rows : Int] [i : Int] [j : Int] -> Int)
    (define (mat-ref m rows i j)
      (begin
        (unless (= (len m) (* 4 rows))
          (error "not a 4-column matrix"))
        (if (and (<= 0 i) (< i rows) (<= 0 j) (< j 4))
            (safe-vec-ref m (+ (* 4 i) j))
            (error "matrix index out of range"))))

    ;; Trace of the top-left 2x2 block, all accesses verified.
    (: trace2 : [m : (Vecof Int)] [rows : Int] -> Int)
    (define (trace2 m rows)
      (+ (mat-ref m rows 0 0) (mat-ref m rows 1 1)))

    ;; Row sum via for/sum: the loop index is verified by the §4.4
    ;; expansion + heuristic.
    (: row0-sum : [m : (Vecof Int)] -> Int)
    (define (row0-sum m)
      (begin
        (unless (<= 4 (len m)) (error "matrix too small"))
        (for/sum ([j (in-range 4)])
          (safe-vec-ref m j))))
"#;

fn main() {
    let checker = Checker::default();
    check_source(MATRIX_LIB, &checker).expect("the matrix library verifies");
    println!("matrix library verifies: every access statically in bounds\n");

    // Drive it: a 2×4 matrix [[1,2,3,4],[5,6,7,8]].
    let program = format!(
        "{MATRIX_LIB}
         (define m (vec 1 2 3 4 5 6 7 8))
         (+ (* 100 (trace2 m 2)) (row0-sum m))"
    );
    let v = run_source(&program, &checker, 1_000_000).expect("runs");
    // trace2 = 1 + 6 = 7; row0-sum = 1+2+3+4 = 10 → 710.
    println!("trace2·100 + row0-sum = {v}");
    assert_eq!(v.to_string(), "710");

    // Drop one conjunct of the guard and verification fails — the
    // missing `j < 4` bound leaves 4i+j potentially out of range.
    let broken = MATRIX_LIB.replace(
        "(and (<= 0 i) (< i rows) (<= 0 j) (< j 4))",
        "(and (<= 0 i) (< i rows) (<= 0 j))",
    );
    match check_source(&broken, &checker) {
        Err(e) => println!("\nwithout `j < 4` the access is rejected:\n  {e}"),
        Ok(_) => unreachable!("the weakened guard must not verify"),
    }

    // At runtime the guard actually protects: out-of-range requests error.
    let oob = format!("{MATRIX_LIB} (mat-ref (vec 1 2 3 4) 1 0 9)");
    match run_source(&oob, &checker, 100_000) {
        Err(LangError::Eval(EvalError::UserError(m))) => {
            println!("\nruntime guard fires for (mat-ref m 1 0 9): {m}");
        }
        other => unreachable!("expected the dynamic guard, got {other:?}"),
    }
}
