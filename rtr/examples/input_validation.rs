//! Input validation with the regex theory — the extension the paper's
//! conclusion anticipates ("theories of regular expressions", §7).
//!
//! The shape is exactly the §2.1 vector story transposed to strings: a
//! refinement-typed "safe" function demands a proof about its input, and
//! an ordinary `regexp-match?` test in the caller is what supplies the
//! proof, via occurrence typing.
//!
//! ```sh
//! cargo run --example input_validation
//! ```

use rtr::prelude::*;

fn main() {
    // A tiny request router. `serve-port` refuses to be called unless the
    // port string is provably all digits; `route` validates with an
    // ordinary regex test — no casts, no proof terms.
    let src = r#"
        (: serve-port : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
        (define (serve-port s) (string-length s))

        (: route : Str -> Int)
        (define (route req)
          (if (regexp-match? #rx"[0-9]+" req)
              (serve-port req)
              -1))

        (+ (route "8080") (route "not-a-port"))
    "#;

    let checker = Checker::default();
    let result = check_source(src, &checker).expect("router type checks");
    println!("type of the module: {}", result.ty);
    let value = run_source(src, &checker, 100_000).expect("router runs");
    println!("(route \"8080\") + (route \"not-a-port\") = {value}");

    // Forget the validation and the call is rejected at compile time.
    let unvalidated = r#"
        (: serve-port : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
        (define (serve-port s) (string-length s))
        (: route : Str -> Int)
        (define (route req) (serve-port req))
    "#;
    match check_source(unvalidated, &checker) {
        Err(e) => println!("\nunvalidated call correctly rejected:\n  {e}"),
        Ok(_) => unreachable!("the unvalidated router must not type check"),
    }

    // Subtyping is language inclusion, decided by the automata solver: a
    // four-digit year is in particular a digit string…
    let inclusion = r#"
        (: any-digits : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
        (define (any-digits s) 0)
        (: year->n : [y : Str #:where (=~ y #rx"[0-9]{4}")] -> Int)
        (define (year->n y) (any-digits y))
    "#;
    check_source(inclusion, &checker).expect("L([0-9]{4}) ⊆ L([0-9]+)");
    println!("\nL([0-9]{{4}}) ⊆ L([0-9]+): year->n may call any-digits — verified");

    // …but not conversely.
    let bad_inclusion = r#"
        (: year-only : [y : Str #:where (=~ y #rx"[0-9]{4}")] -> Int)
        (define (year-only y) 0)
        (: leaky : [s : Str #:where (=~ s #rx"[0-9]+")] -> Int)
        (define (leaky s) (year-only s))
    "#;
    match check_source(bad_inclusion, &checker) {
        Err(e) => println!("reverse inclusion correctly rejected:\n  {e}"),
        Ok(_) => unreachable!("[0-9]+ is not contained in [0-9]{{4}}"),
    }

    // Two theories about one variable: the regex theory knows the shape,
    // the linear theory knows the length (string-length emits the same
    // `len` field object vectors use).
    let combined = r#"
        (: short-code : [s : Str #:where (and (=~ s #rx"[A-Z]+")
                                              (<= (string-length s) 8))] -> Int)
        (define (short-code s) (string-length s))

        (: intake : Str -> Int)
        (define (intake s)
          (if (regexp-match? #rx"[A-Z]+" s)
              (if (<= (string-length s) 8)
                  (short-code s)
                  -1)
              -1))

        (intake "PLDI")
    "#;
    let v = run_source(combined, &checker, 100_000).expect("combined theories verify");
    println!("\n(intake \"PLDI\") = {v}  — regex + linear facts on one string");

    // The λTR baseline (no theories) cannot verify any of it.
    let baseline = Checker::with_config(CheckerConfig::lambda_tr());
    match check_source(src, &baseline) {
        Err(_) => println!("\nλTR baseline (no theories) rejects the router — as expected"),
        Ok(_) => unreachable!("λTR must not prove regex refinements"),
    }
}
