//! `rtr` — the command-line driver: type check and run RTR programs.
//!
//! ```sh
//! rtr check program.rtr          # type check, print the type-result
//! rtr run program.rtr            # type check, then evaluate
//! rtr expand program.rtr         # show the elaborated core expression
//! rtr repl                       # interactive read-check-eval loop
//! ```
//!
//! Flags:
//!
//! * `--lambda-tr` — use the λTR baseline (occurrence typing only, no
//!   solver-backed theories), the paper's implicit comparison point.
//! * `--unchecked` — with `run`, skip type checking (dynamically-typed
//!   Racket semantics; unsafe primitives can get stuck).
//! * `--fuel N` — evaluation step budget (default 1,000,000).
//! * `--stats` — with `check`, print memo-table hit/miss counters after
//!   checking (requires a build with the `stats` Cargo feature).

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use rtr::prelude::*;

struct Options {
    lambda_tr: bool,
    unchecked: bool,
    fuel: u64,
    stats: bool,
}

const USAGE: &str =
    "usage: rtr <check|run|expand> [--lambda-tr] [--unchecked] [--fuel N] [--stats] <file.rtr>\n\
                     \x20      rtr repl [--lambda-tr]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        return usage();
    };
    if matches!(command.as_str(), "--help" | "-h" | "help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let mut opts = Options {
        lambda_tr: false,
        unchecked: false,
        fuel: 1_000_000,
        stats: false,
    };
    let mut file: Option<String> = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lambda-tr" => opts.lambda_tr = true,
            "--unchecked" => opts.unchecked = true,
            "--stats" => opts.stats = true,
            "--fuel" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => opts.fuel = n,
                None => return usage(),
            },
            _ if file.is_none() && !a.starts_with('-') => file = Some(a),
            _ => return usage(),
        }
    }
    let checker = if opts.lambda_tr {
        Checker::with_config(CheckerConfig::lambda_tr())
    } else {
        Checker::default()
    };
    match command.as_str() {
        "repl" => repl(&checker, &opts),
        "check" | "run" | "expand" => {
            let Some(path) = file else { return usage() };
            let src = match std::fs::read_to_string(&path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("rtr: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            run_command(&command, &src, &checker, &opts)
        }
        _ => usage(),
    }
}

fn run_command(command: &str, src: &str, checker: &Checker, opts: &Options) -> ExitCode {
    match command {
        "expand" => match elaborate_module(src) {
            Ok(core) => {
                println!("{core}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rtr: {e}");
                ExitCode::FAILURE
            }
        },
        "check" => match check_source(src, checker) {
            Ok(r) => {
                println!("{r}");
                if opts.stats {
                    print_cache_stats(checker);
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rtr: {e}");
                ExitCode::FAILURE
            }
        },
        "run" => {
            let outcome = if opts.unchecked {
                rtr::lang::run_source_unchecked(src, opts.fuel)
            } else {
                run_source(src, checker, opts.fuel)
            };
            match outcome {
                Ok(v) => {
                    println!("{v}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("rtr: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => unreachable!("dispatched in main"),
    }
}

/// Prints per-table memo hit/miss counters (cache effectiveness),
/// environment-map sharing stats and interner arena-region sizes.
#[cfg(feature = "stats")]
fn print_cache_stats(checker: &Checker) {
    let s = checker.cache_stats();
    eprintln!("cache stats (hits/misses):");
    for (name, (hits, misses)) in [
        ("subtype", s.subtype),
        ("proves", s.proves),
        ("inconsistent", s.inconsistent),
        ("empty", s.empty),
        ("update", s.update),
        ("overlap", s.overlap),
        ("solver/lin", s.lin),
        ("solver/bv", s.bv),
        ("solver/re", s.re),
    ] {
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        eprintln!("  {name:<14} {hits:>10} / {misses:<10} ({rate:.1}% hit)");
    }
    let e = rtr::core::env::env_stats();
    eprintln!("environment maps:");
    eprintln!(
        "  snapshots      {:>10}   unbind fast-path {}/{}",
        e.snapshots, e.unbind_fast, e.unbind_total
    );
    let share = if e.pmap_entries_spared == 0 {
        100.0
    } else {
        (1.0 - e.pmap_nodes_cloned as f64 / e.pmap_entries_spared as f64) * 100.0
    };
    eprintln!(
        "  pmap writes    {:>10}   nodes cloned {} / entries spared {} ({share:.1}% structural share)",
        e.pmap_writes, e.pmap_nodes_cloned, e.pmap_entries_spared
    );
    let a = rtr::core::intern::arena_stats();
    eprintln!("interner arenas (permanent / fresh-region):");
    eprintln!(
        "  types {} / {}   props {} / {}   objects {} / {}",
        a.tys, a.fresh_tys, a.props, a.fresh_props, a.objs, a.fresh_objs
    );
}

#[cfg(not(feature = "stats"))]
fn print_cache_stats(_checker: &Checker) {
    eprintln!(
        "rtr: --stats requires a build with the `stats` feature (cargo build --features stats)"
    );
}

/// A line-oriented REPL: each line is checked in isolation and, when well
/// typed, evaluated. Multi-line forms can be built up with trailing
/// backslashes are not needed — unbalanced parentheses simply continue
/// the form on the next line.
fn repl(checker: &Checker, opts: &Options) -> ExitCode {
    println!(
        "rtr repl — occurrence typing modulo theories{}",
        if opts.lambda_tr {
            " (λTR baseline)"
        } else {
            ""
        }
    );
    println!("enter a module form or expression; :quit exits\n");
    let stdin = std::io::stdin();
    let mut pending = String::new();
    prompt(&pending);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim() == ":quit" || line.trim() == ":q" {
            break;
        }
        pending.push_str(&line);
        pending.push('\n');
        if !balanced(&pending) {
            prompt(&pending);
            continue;
        }
        let src = std::mem::take(&mut pending);
        if src.trim().is_empty() {
            prompt(&pending);
            continue;
        }
        match check_source(&src, checker) {
            Err(e) => eprintln!("error: {e}"),
            Ok(r) => match run_source(&src, checker, opts.fuel) {
                Ok(v) => println!("{v} : {}", r.ty),
                Err(e) => eprintln!("runtime error: {e}"),
            },
        }
        prompt(&pending);
    }
    ExitCode::SUCCESS
}

fn prompt(pending: &str) {
    let p = if pending.is_empty() { "rtr> " } else { "...> " };
    print!("{p}");
    let _ = std::io::stdout().flush();
}

/// Are the parentheses/brackets of `src` balanced (ignoring strings and
/// comments)? Used to detect multi-line forms.
fn balanced(src: &str) -> bool {
    let mut depth: i64 = 0;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => depth -= 1,
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '"' => {
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    depth <= 0
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICKSTART: &str = r#"
        (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        (max 3 7)
    "#;

    fn opts() -> Options {
        Options {
            lambda_tr: false,
            unchecked: false,
            fuel: 100_000,
            stats: false,
        }
    }

    #[test]
    fn check_accepts_the_quickstart_program() {
        let checker = Checker::default();
        assert_eq!(
            run_command("check", QUICKSTART, &checker, &opts()),
            ExitCode::SUCCESS
        );
    }

    #[test]
    fn run_evaluates_the_quickstart_program() {
        let checker = Checker::default();
        assert_eq!(
            run_command("run", QUICKSTART, &checker, &opts()),
            ExitCode::SUCCESS
        );
    }

    #[test]
    fn expand_elaborates_the_quickstart_program() {
        let checker = Checker::default();
        assert_eq!(
            run_command("expand", QUICKSTART, &checker, &opts()),
            ExitCode::SUCCESS
        );
    }

    #[test]
    fn check_rejects_an_ill_typed_program() {
        let checker = Checker::default();
        assert_eq!(
            run_command("check", "(+ 1 #t)", &checker, &opts()),
            ExitCode::FAILURE
        );
    }

    #[test]
    fn balanced_tracks_parens_strings_and_comments() {
        assert!(balanced("(+ 1 2)"));
        assert!(!balanced("(let ([x 1])"));
        assert!(balanced("\"(\" ; (((\n"));
        assert!(balanced(""));
    }
}
