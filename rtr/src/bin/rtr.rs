//! `rtr` — the command-line driver: type check and run RTR programs.
//!
//! ```sh
//! rtr check program.rtr more.rtr  # check files, print every diagnostic
//! rtr check --json program.rtr   # machine-readable rtr-check-v1 report
//! rtr watch program.rtr          # re-check on change, incrementally
//! rtr lsp                        # language server over stdio
//! rtr run program.rtr            # type check, then evaluate
//! rtr expand program.rtr         # show the elaborated core expression
//! rtr repl                       # interactive read-check-eval loop
//! rtr --version                  # print the version
//! ```
//!
//! `check` is a thin client over the [`rtr::session::Session`] API: each
//! file yields *all* of its diagnostics (source snippets with caret
//! underlines on stderr, or the documented JSON schema on stdout with
//! `--json`). Exit codes: `0` clean, `1` at least one error-severity
//! diagnostic (or a runtime error under `run`), `2` usage or I/O
//! failure.
//!
//! Flags (each is rejected on subcommands that would ignore it):
//!
//! * `--lambda-tr` — use the λTR baseline (occurrence typing only, no
//!   solver-backed theories); `check`, `run` and `repl`.
//! * `--json` — with `check`, emit the `rtr-check-v1` report on stdout.
//! * `--jobs N` — with `check`, shard multiple files over N worker
//!   threads (default: serial).
//! * `--stats` — with `check`, print memo-table hit/miss counters and
//!   budget-consumption gauges after checking (requires a build with
//!   the `stats` Cargo feature).
//! * `--timeout-ms N` — with `check`, a wall-clock budget per file;
//!   items past the deadline degrade to `E0202` diagnostics instead of
//!   running forever (see the README's Robustness section).
//! * `--max-depth N` — with `check`, cap the typing-judgment recursion
//!   depth (default 50,000); deeper programs degrade to `E0202`.
//! * `--unchecked` — with `run`, skip type checking (dynamically-typed
//!   Racket semantics; unsafe primitives can get stuck).
//! * `--fuel N` — with `run` and `repl`, the evaluation step budget
//!   (default 1,000,000).
//! * `--once` — with `watch`, run a single (cold) pass and exit with
//!   `check`'s exit-code contract; for scripting and CI smoke tests.
//! * `--poll-ms N` — with `watch`, the change-detection polling
//!   interval (default 200 ms); rejected together with `--once`, which
//!   never polls.
//!
//! `lsp` serves the Language Server Protocol over stdio (see
//! [`rtr::lsp`] and the README's Editor integration section): live
//! diagnostics on every keystroke through the same incremental session
//! `watch` uses, hover types, and version-aware cancellation. It takes
//! no files — documents arrive over the protocol. `--stats` additionally
//! accounts requests served, checks cancelled and overlay hits on
//! stderr.
//!
//! `watch` holds one incremental [`rtr::session::Session`] and polls
//! the files (mtime, then a content hash — no OS watcher dependency);
//! each time a file changes it is re-checked *incrementally* (only
//! edited definitions and their dependents are re-judged) and a fresh
//! report delta is streamed: human renderings on stderr, or one
//! `rtr-check-v1` JSON document per batch on stdout with `--json`, each
//! carrying the additive `rechecked_items`/`unchanged_items` stats.
//!
//! `check` exits `3` when an internal checker error was isolated to an
//! item (`E0203`): the other items' verdicts are still reported, but
//! the run is suspect. Builds with the `chaos` feature read the
//! `RTR_CHAOS` environment variable (`seed[,trip,panic,flush,solver]`
//! per-mille rates) to inject deterministic faults for harness testing.

use std::io::{BufRead, Write as _};
use std::process::ExitCode;

use rtr::json::reports_to_json;
use rtr::prelude::*;

const USAGE: &str = "\
usage: rtr check [--lambda-tr] [--json] [--jobs N] [--stats]
                 [--timeout-ms N] [--max-depth N] <file.rtr>...
       rtr watch [--lambda-tr] [--json] [--once] [--poll-ms N] [--stats]
                 [--timeout-ms N] [--max-depth N] <file.rtr>...
       rtr lsp   [--lambda-tr] [--stats] [--timeout-ms N] [--max-depth N]
       rtr run   [--lambda-tr] [--unchecked] [--fuel N] <file.rtr>
       rtr expand <file.rtr>
       rtr repl  [--lambda-tr] [--fuel N]
       rtr --version
exit codes: 0 clean, 1 diagnostics, 2 usage or I/O error,
            3 isolated internal checker error (E0203)";

#[derive(Default)]
struct Options {
    lambda_tr: bool,
    unchecked: bool,
    json: bool,
    stats: bool,
    once: bool,
    jobs: usize,
    fuel: u64,
    poll_ms: u64,
    timeout_ms: Option<u64>,
    max_depth: Option<u32>,
    files: Vec<String>,
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("rtr: {message}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match command.as_str() {
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "--version" | "-V" | "version" => {
            println!("rtr {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        "check" | "watch" | "lsp" | "run" | "expand" | "repl" => {}
        other => return usage_error(&format!("unknown command `{other}`")),
    }

    let mut opts = Options {
        fuel: 1_000_000,
        poll_ms: 200,
        ..Options::default()
    };
    let mut seen: Vec<&'static str> = Vec::new();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--lambda-tr" => {
                opts.lambda_tr = true;
                seen.push("--lambda-tr");
            }
            "--unchecked" => {
                opts.unchecked = true;
                seen.push("--unchecked");
            }
            "--json" => {
                opts.json = true;
                seen.push("--json");
            }
            "--stats" => {
                opts.stats = true;
                seen.push("--stats");
            }
            "--once" => {
                opts.once = true;
                seen.push("--once");
            }
            "--poll-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => {
                    opts.poll_ms = n;
                    seen.push("--poll-ms");
                }
                _ => return usage_error("--poll-ms needs a positive number"),
            },
            "--jobs" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => {
                    opts.jobs = n;
                    seen.push("--jobs");
                }
                _ => return usage_error("--jobs needs a positive number"),
            },
            "--fuel" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => {
                    opts.fuel = n;
                    seen.push("--fuel");
                }
                None => return usage_error("--fuel needs a number"),
            },
            "--timeout-ms" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => {
                    opts.timeout_ms = Some(n);
                    seen.push("--timeout-ms");
                }
                _ => return usage_error("--timeout-ms needs a positive number"),
            },
            "--max-depth" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => {
                    opts.max_depth = Some(n);
                    seen.push("--max-depth");
                }
                _ => return usage_error("--max-depth needs a positive number"),
            },
            _ if !a.starts_with('-') => opts.files.push(a),
            other => return usage_error(&format!("unknown flag `{other}`")),
        }
    }

    // Flags are rejected, not silently ignored, on subcommands that
    // would do nothing with them.
    let allowed: &[&str] = match command.as_str() {
        "check" => &[
            "--lambda-tr",
            "--json",
            "--jobs",
            "--stats",
            "--timeout-ms",
            "--max-depth",
        ],
        "watch" => &[
            "--lambda-tr",
            "--json",
            "--once",
            "--poll-ms",
            "--stats",
            "--timeout-ms",
            "--max-depth",
        ],
        "lsp" => &["--lambda-tr", "--stats", "--timeout-ms", "--max-depth"],
        "run" => &["--lambda-tr", "--unchecked", "--fuel"],
        "repl" => &["--lambda-tr", "--fuel"],
        _ => &[], // expand takes no flags
    };
    if let Some(flag) = seen.iter().find(|f| !allowed.contains(f)) {
        return usage_error(&format!("{flag} does not apply to `{command}`"));
    }
    if opts.once && seen.contains(&"--poll-ms") {
        return usage_error("--poll-ms does nothing with --once (a single cold pass never polls)");
    }

    match command.as_str() {
        "repl" => {
            if !opts.files.is_empty() {
                return usage_error("repl takes no files");
            }
            repl(&opts)
        }
        "check" => check_command(&opts),
        "watch" => watch_command(&opts),
        "lsp" => {
            if !opts.files.is_empty() {
                return usage_error("lsp takes no files (documents arrive over the protocol)");
            }
            lsp_command(&opts)
        }
        "run" | "expand" => {
            let [path] = opts.files.as_slice() else {
                return usage_error(&format!("{command} takes exactly one file"));
            };
            let src = match std::fs::read_to_string(path) {
                Ok(src) => src,
                Err(e) => {
                    eprintln!("rtr: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            if command == "expand" {
                expand_command(&src)
            } else {
                run_command(&src, &opts)
            }
        }
        _ => unreachable!("validated above"),
    }
}

fn checker_config(opts: &Options) -> CheckerConfig {
    let mut config = if opts.lambda_tr {
        CheckerConfig::lambda_tr()
    } else {
        CheckerConfig::default()
    };
    config.timeout_ms = opts.timeout_ms;
    if let Some(d) = opts.max_depth {
        config.max_depth = d;
    }
    #[cfg(feature = "chaos")]
    {
        config.chaos = chaos_from_env();
    }
    config
}

/// Parses the `RTR_CHAOS` environment variable into a fault-injection
/// schedule: `seed[,trip,panic,flush,solver]` (per-mille rates, each
/// defaulting to 10 when omitted). Unset or malformed = no injection.
#[cfg(feature = "chaos")]
fn chaos_from_env() -> Option<rtr::core::budget::ChaosConfig> {
    let spec = std::env::var("RTR_CHAOS").ok()?;
    let mut parts = spec.split(',').map(str::trim);
    let seed = parts.next()?.parse().ok()?;
    let mut rate = |default: u16| -> Option<u16> {
        match parts.next() {
            None => Some(default),
            Some(p) => p.parse().ok(),
        }
    };
    Some(rtr::core::budget::ChaosConfig {
        seed,
        trip_per_mille: rate(10)?,
        panic_per_mille: rate(10)?,
        flush_per_mille: rate(10)?,
        solver_per_mille: rate(10)?,
    })
}

/// `rtr check`: a thin client over the session API. Every file is
/// checked (recovering per definition); diagnostics render to stderr
/// with source snippets, or the whole batch becomes one `rtr-check-v1`
/// JSON document on stdout.
fn check_command(opts: &Options) -> ExitCode {
    if opts.files.is_empty() {
        return usage_error("check needs at least one file");
    }
    let mut sources = Vec::with_capacity(opts.files.len());
    for path in &opts.files {
        match SourceFile::read(path) {
            Ok(f) => sources.push(f),
            Err(e) => {
                eprintln!("rtr: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    // A one-shot `check` has no prior run to reuse: stay on the
    // from-scratch path (incremental reports would only add the
    // additive stats fields to the JSON without reusing anything).
    let session = Session::new(SessionConfig {
        checker: checker_config(opts),
        jobs: if opts.jobs == 0 { 1 } else { opts.jobs },
        incremental: false,
        ..SessionConfig::default()
    });
    let reports = session.check_all(&sources);

    if opts.json {
        print!("{}", reports_to_json(&reports));
    } else {
        let single = reports.len() == 1;
        for (report, source) in reports.iter().zip(&sources) {
            eprint!("{}", report.render_human(&source.text));
            if report.is_clean() {
                match (&report.value, single) {
                    (Some(v), true) => println!("{v}"),
                    _ => println!(
                        "{}: ok ({} definition{})",
                        report.file,
                        report.stats.definitions,
                        if report.stats.definitions == 1 {
                            ""
                        } else {
                            "s"
                        }
                    ),
                }
            } else {
                eprintln!(
                    "{}: {} error{}",
                    report.file,
                    report.stats.errors,
                    if report.stats.errors == 1 { "" } else { "s" }
                );
            }
        }
    }
    if opts.stats {
        print_cache_stats(session.checker());
    }
    batch_exit_code(&reports)
}

/// The `check`/`watch --once` exit-code contract for a batch of
/// reports: `3` when an internal error was isolated (the run is
/// suspect), `0` clean, `1` otherwise.
fn batch_exit_code(reports: &[CheckReport]) -> ExitCode {
    let any_ice = reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .any(|d| d.code == rtr::core::diag::Code::InternalError);
    if any_ice {
        // An isolated internal error: every other item's verdict was
        // still reported, but the run is suspect.
        ExitCode::from(3)
    } else if reports.iter().all(CheckReport::is_clean) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// FNV-1a over the file contents: confirms that an mtime change
/// actually changed the text, so touch-without-edit saves (common
/// editor behaviour) do not re-emit a report.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The one-line verdict for a `watch` delta, with the incremental
/// counters when the re-check spliced from a cache.
fn watch_summary(report: &CheckReport) -> String {
    let delta = match (report.stats.rechecked_items, report.stats.unchanged_items) {
        (Some(r), Some(u)) => format!("; {r} rechecked, {u} unchanged"),
        _ => String::new(),
    };
    if report.is_clean() {
        format!(
            "{}: ok ({} definition{}{delta})",
            report.file,
            report.stats.definitions,
            if report.stats.definitions == 1 {
                ""
            } else {
                "s"
            },
        )
    } else {
        format!(
            "{}: {} error{}{delta}",
            report.file,
            report.stats.errors,
            if report.stats.errors == 1 { "" } else { "s" },
        )
    }
}

/// `rtr watch`: one incremental [`Session`] plus a dependency-free
/// polling watcher. Each poll probes mtimes and confirms real changes
/// with a content hash; changed files are re-checked incrementally
/// (only edited definitions and their dependents are re-judged) and
/// the batch streams as a delta — human renderings on stderr, or one
/// `rtr-check-v1` document on stdout with `--json`, whose `stats`
/// carry the additive `rechecked_items`/`unchanged_items` fields.
/// `rtr lsp`: a Language Server over stdio. Holds one incremental
/// [`Session`] and serves editor buffers from an in-memory overlay, so
/// every keystroke is an incremental re-check of just the edited item.
/// `--stats` logs one line per check and a summary of served requests /
/// cancelled checks / overlay hits on stderr at exit.
fn lsp_command(opts: &Options) -> ExitCode {
    let session = Session::new(SessionConfig {
        checker: checker_config(opts),
        jobs: 1,
        incremental: true,
        ..SessionConfig::default()
    });
    let stdin = std::io::BufReader::new(std::io::stdin());
    let code = rtr::lsp::run(stdin, std::io::stdout().lock(), session, opts.stats);
    ExitCode::from(u8::try_from(code).unwrap_or(1))
}

/// `--once` stops after the initial (cold) pass and exits with
/// `check`'s code, for scripting and CI smoke tests.
fn watch_command(opts: &Options) -> ExitCode {
    if opts.files.is_empty() {
        return usage_error("watch needs at least one file");
    }
    struct Watched {
        path: String,
        mtime: Option<std::time::SystemTime>,
        hash: u64,
        /// Whether an unchanged mtime proves the content unchanged.
        /// File timestamps tick on the kernel's coarse clock, so an
        /// edit landing in the same tick as the version we hashed
        /// keeps the old mtime — the racy-timestamp hazard git's
        /// index also handles. A hash recorded while the mtime was
        /// still inside that window never trusts the mtime gate;
        /// every poll re-reads until the mtime ages out.
        trusted: bool,
    }
    /// Comfortably past any coarse-clock tick (jiffies: 1–10 ms).
    const RACY_WINDOW: std::time::Duration = std::time::Duration::from_secs(1);
    let session = Session::new(SessionConfig {
        checker: checker_config(opts),
        jobs: 1,
        incremental: true,
        ..SessionConfig::default()
    });
    let mut watched: Vec<Watched> = opts
        .files
        .iter()
        .map(|p| Watched {
            path: p.clone(),
            mtime: None,
            hash: 0,
            trusted: false,
        })
        .collect();
    let mut first = true;
    loop {
        let mut batch: Vec<SourceFile> = Vec::new();
        for w in &mut watched {
            let mtime = std::fs::metadata(&w.path).and_then(|m| m.modified()).ok();
            if !first && w.trusted && mtime == w.mtime {
                continue;
            }
            match SourceFile::read(&w.path) {
                Ok(f) => {
                    let hash = fnv1a(f.text.as_bytes());
                    // The age is measured after the read: a same-tick
                    // edit racing the read keeps `trusted` false, so
                    // the next poll re-reads and catches it.
                    w.trusted = mtime
                        .and_then(|m| std::time::SystemTime::now().duration_since(m).ok())
                        .is_some_and(|age| age >= RACY_WINDOW);
                    if first || hash != w.hash {
                        w.hash = hash;
                        batch.push(f);
                    }
                    w.mtime = mtime;
                }
                Err(e) => {
                    if first {
                        eprintln!("rtr: cannot read {}: {e}", w.path);
                        return ExitCode::from(2);
                    }
                    // Mid-watch read failures are usually an editor's
                    // save dance (rename-over); retry on the next poll.
                }
            }
        }
        if !batch.is_empty() {
            let reports: Vec<CheckReport> = batch.iter().map(|f| session.check(f)).collect();
            if opts.json {
                print!("{}", reports_to_json(&reports));
                let _ = std::io::stdout().flush();
            } else {
                for (report, source) in reports.iter().zip(&batch) {
                    eprint!("{}", report.render_human(&source.text));
                    eprintln!("{}", watch_summary(report));
                }
            }
            if opts.stats {
                print_cache_stats(session.checker());
            }
            if opts.once {
                return batch_exit_code(&reports);
            }
        }
        first = false;
        std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms));
    }
}

fn expand_command(src: &str) -> ExitCode {
    match elaborate_module(src) {
        Ok(core) => {
            println!("{core}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rtr: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_command(src: &str, opts: &Options) -> ExitCode {
    let checker = Checker::with_config(checker_config(opts));
    let outcome = if opts.unchecked {
        rtr::lang::run_source_unchecked(src, opts.fuel)
    } else {
        run_source(src, &checker, opts.fuel)
    };
    match outcome {
        Ok(v) => {
            println!("{v}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("rtr: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Prints per-table memo hit/miss counters (cache effectiveness),
/// environment-map sharing stats and interner arena-region sizes.
#[cfg(feature = "stats")]
fn print_cache_stats(checker: &Checker) {
    let s = checker.cache_stats();
    eprintln!("cache stats (hits/misses):");
    for (name, (hits, misses)) in [
        ("subtype", s.subtype),
        ("proves", s.proves),
        ("inconsistent", s.inconsistent),
        ("empty", s.empty),
        ("update", s.update),
        ("overlap", s.overlap),
        ("solver/lin", s.lin),
        ("solver/bv", s.bv),
        ("solver/re", s.re),
        ("clause-meta", s.clause_meta),
    ] {
        let total = hits + misses;
        let rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64 * 100.0
        };
        eprintln!("  {name:<14} {hits:>10} / {misses:<10} ({rate:.1}% hit)");
    }
    let (units, taken, deferred) = s.splits;
    eprintln!("case splits:");
    eprintln!("  taken {taken}   unit-propagated {units}   deferred to 2nd pass {deferred}");
    let re = s.re_session;
    eprintln!("regex session (hits/misses):");
    eprintln!(
        "  dfa {} / {}   product {} / {}   witness {} / {}",
        re.dfa_hits,
        re.dfa_misses,
        re.product_hits,
        re.product_misses,
        re.witness_hits,
        re.witness_misses
    );
    let e = rtr::core::env::env_stats();
    eprintln!("environment maps:");
    eprintln!(
        "  snapshots      {:>10}   unbind fast-path {}/{}",
        e.snapshots, e.unbind_fast, e.unbind_total
    );
    let share = if e.pmap_entries_spared == 0 {
        100.0
    } else {
        (1.0 - e.pmap_nodes_cloned as f64 / e.pmap_entries_spared as f64) * 100.0
    };
    eprintln!(
        "  pmap writes    {:>10}   nodes cloned {} / entries spared {} ({share:.1}% structural share)",
        e.pmap_writes, e.pmap_nodes_cloned, e.pmap_entries_spared
    );
    let a = rtr::core::intern::arena_stats();
    eprintln!("interner arenas (permanent / fresh-region):");
    eprintln!(
        "  types {} / {}   props {} / {}   objects {} / {}",
        a.tys, a.fresh_tys, a.props, a.fresh_props, a.objs, a.fresh_objs
    );
    let b = checker.budget_stats();
    eprintln!("budget (steps per judgment):");
    eprintln!(
        "  synth {}   proves {}   subtype {}   update {}",
        b.steps_synth, b.steps_proves, b.steps_subtype, b.steps_update
    );
    let margin = match b.deadline_margin_us {
        None => "no deadline".to_owned(),
        Some(us) => format!("{us} µs min margin"),
    };
    eprintln!(
        "  depth high-water {}   deadline {margin}   limit trips {}",
        b.depth_high_water, b.trips
    );
    let i = rtr::core::incremental::stats::incr_stats();
    eprintln!("incremental re-checking (per-item fingerprints):");
    eprintln!(
        "  cache lookups  {:>10} usable / {:<10} missing",
        i.fp_hits, i.fp_misses
    );
    eprintln!(
        "  items          rechecked {}   spliced {}   early-cutoff stops {}",
        i.rechecked, i.skipped, i.cutoff_stopped
    );
}

#[cfg(not(feature = "stats"))]
fn print_cache_stats(_checker: &Checker) {
    eprintln!(
        "rtr: --stats requires a build with the `stats` feature (cargo build --features stats)"
    );
}

/// How the delimiters of a pending REPL form stand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ParenBalance {
    /// More opens than closes: keep reading lines.
    Open,
    /// Balanced: the form is complete.
    Complete,
    /// More closes than opens: no continuation can fix it — reject
    /// instead of sending garbage to the reader.
    OverClosed,
}

/// A line-oriented REPL: each form is checked in isolation and, when
/// well typed, evaluated. Multi-line forms need no continuation marks —
/// unbalanced parentheses simply continue the form on the next line.
/// `:type <expr>` checks without evaluating; `:quit` exits.
fn repl(opts: &Options) -> ExitCode {
    let checker = Checker::with_config(checker_config(opts));
    println!(
        "rtr repl — occurrence typing modulo theories{}",
        if opts.lambda_tr {
            " (λTR baseline)"
        } else {
            ""
        }
    );
    println!("enter a module form or expression; :type <expr> checks only; :quit exits\n");
    let stdin = std::io::stdin();
    let mut pending = String::new();
    prompt(&pending);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if pending.is_empty() && trimmed.starts_with(':') {
            let (command, rest) = match trimmed.split_once(char::is_whitespace) {
                Some((c, r)) => (c, r.trim()),
                None => (trimmed, ""),
            };
            match command {
                ":quit" | ":q" => break,
                ":type" if rest.is_empty() => eprintln!("error: usage `:type <expr>`"),
                ":type" => match check_source(rest, &checker) {
                    Ok(r) => println!("{}", r.ty),
                    Err(e) => eprintln!("error: {e}"),
                },
                other => eprintln!("error: unknown repl command {other}"),
            }
            prompt(&pending);
            continue;
        }
        pending.push_str(&line);
        pending.push('\n');
        match balance(&pending) {
            ParenBalance::Open => {
                prompt(&pending);
                continue;
            }
            ParenBalance::OverClosed => {
                eprintln!("error: unexpected closing delimiter");
                pending.clear();
                prompt(&pending);
                continue;
            }
            ParenBalance::Complete => {}
        }
        let src = std::mem::take(&mut pending);
        if src.trim().is_empty() {
            prompt(&pending);
            continue;
        }
        match check_source(&src, &checker) {
            Err(e) => eprintln!("error: {e}"),
            Ok(r) => match run_source(&src, &checker, opts.fuel) {
                Ok(v) => println!("{v} : {}", r.ty),
                Err(e) => eprintln!("runtime error: {e}"),
            },
        }
        prompt(&pending);
    }
    ExitCode::SUCCESS
}

fn prompt(pending: &str) {
    let p = if pending.is_empty() { "rtr> " } else { "...> " };
    print!("{p}");
    let _ = std::io::stdout().flush();
}

/// Classifies the delimiter balance of `src` (ignoring strings and
/// comments). Negative depth anywhere is reported as
/// [`ParenBalance::OverClosed`]: `"))"` is *not* a completable form and
/// must not reach the reader as one.
fn balance(src: &str) -> ParenBalance {
    let mut depth: i64 = 0;
    let mut chars = src.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' | '[' => depth += 1,
            ')' | ']' => {
                depth -= 1;
                if depth < 0 {
                    return ParenBalance::OverClosed;
                }
            }
            ';' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '"' => {
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    if depth == 0 {
        ParenBalance::Complete
    } else {
        ParenBalance::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICKSTART: &str = r#"
        (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
        (define (max x y) (if (> x y) x y))
        (max 3 7)
    "#;

    fn opts() -> Options {
        Options {
            fuel: 100_000,
            ..Options::default()
        }
    }

    #[test]
    fn run_evaluates_the_quickstart_program() {
        assert_eq!(run_command(QUICKSTART, &opts()), ExitCode::SUCCESS);
    }

    #[test]
    fn expand_elaborates_the_quickstart_program() {
        assert_eq!(expand_command(QUICKSTART), ExitCode::SUCCESS);
    }

    #[test]
    fn run_rejects_an_ill_typed_program() {
        assert_eq!(run_command("(+ 1 #t)", &opts()), ExitCode::FAILURE);
    }

    #[test]
    fn watch_summary_carries_the_incremental_delta_counters() {
        let session = Session::new(SessionConfig::default());
        let file = SourceFile::new("m.rtr", QUICKSTART);
        session.check(&file);
        let warm = session.check(&file);
        let line = watch_summary(&warm);
        assert!(line.starts_with("m.rtr: ok ("), "got {line:?}");
        assert!(line.contains("rechecked") && line.contains("unchanged"));

        // From-scratch reports keep the plain summary shape.
        let scratch = Session::new(SessionConfig {
            incremental: false,
            ..SessionConfig::default()
        });
        let cold = watch_summary(&scratch.check(&file));
        assert!(!cold.contains("rechecked"), "got {cold:?}");
    }

    #[test]
    fn content_hash_distinguishes_text_not_touches() {
        assert_eq!(fnv1a(b"(+ 1 2)"), fnv1a(b"(+ 1 2)"));
        assert_ne!(fnv1a(b"(+ 1 2)"), fnv1a(b"(+ 1 3)"));
    }

    #[test]
    fn balance_tracks_parens_strings_comments_and_overclosing() {
        assert_eq!(balance("(+ 1 2)"), ParenBalance::Complete);
        assert_eq!(balance("(let ([x 1])"), ParenBalance::Open);
        assert_eq!(balance("\"(\" ; (((\n"), ParenBalance::Complete);
        assert_eq!(balance(""), ParenBalance::Complete);
        // Over-closed input is rejected, not treated as complete.
        assert_eq!(balance("))"), ParenBalance::OverClosed);
        assert_eq!(balance("(a))"), ParenBalance::OverClosed);
        // A negative prefix is over-closed even if later opens rebalance.
        assert_eq!(balance(") ("), ParenBalance::OverClosed);
    }
}
