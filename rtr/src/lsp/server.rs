//! The server state machine: document overlays, version-aware
//! cancellation, diagnostics publishing and hover.
//!
//! # Threading
//!
//! Two threads. The **reader** thread owns the input transport: it
//! decodes frames, parses each message, and forwards it over a channel
//! — but *before* forwarding a `didOpen`/`didChange` it records the
//! document's newest version in shared state and revokes the
//! [`CancelToken`] of any in-flight check of an older version of the
//! same document. The **main** thread pops messages in order and
//! dispatches them synchronously (checking included), so document
//! state only ever changes in protocol order.
//!
//! # The stale-version contract
//!
//! A check is published only if its document version is still the
//! newest *after* the check completes (and its token was never
//! tripped). A `didChange` that arrives mid-check therefore either
//! cancels the running check (which degrades within one budget poll
//! and is discarded) or, if the check was not yet started, causes it
//! to be skipped outright — in both cases the superseded version's
//! diagnostics are **never** published, and the newer version's check
//! follows immediately from its own queued notification.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use rtr_core::budget::CancelToken;
use rtr_core::diag::LineIndex;
use rtr_core::module::ItemSummary;

use crate::json::{escape, Json};
use crate::session::{Session, SourceFile};

use super::framing;
use super::protocol::{self, Incoming};

/// Counters the server reports on exit (and per check) under
/// `rtr lsp --stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct LspStats {
    /// Requests answered (initialize, hover, shutdown, …).
    pub requests: u64,
    /// Notifications processed.
    pub notifications: u64,
    /// Checks started.
    pub checks: u64,
    /// Checks abandoned because a newer document version arrived —
    /// cancelled mid-flight or skipped before starting. None of their
    /// diagnostics were published.
    pub cancelled: u64,
    /// Checks that engaged the incremental overlay path (a warm
    /// per-document item cache was spliced against the buffer).
    pub overlay_hits: u64,
    /// Total items re-judged across incremental checks.
    pub rechecked_items: u64,
    /// Total items spliced from warm caches across incremental checks.
    pub unchanged_items: u64,
    /// `publishDiagnostics` notifications sent.
    pub published: u64,
}

/// One open document's overlay: the newest buffer contents the client
/// sent, which shadow whatever is on disk.
struct Doc {
    version: i64,
    text: String,
}

/// What the last *published* check of a document learned, kept for
/// hover. The text snapshot pins the coordinate system: positions are
/// resolved against the text that was checked, not a newer buffer.
struct Checked {
    text: String,
    results: Vec<ItemSummary>,
}

/// State the reader thread shares with the dispatcher.
#[derive(Default)]
struct Shared {
    /// Newest version the reader has *seen* per uri (which may be ahead
    /// of what the dispatcher has processed).
    latest: Mutex<HashMap<String, i64>>,
    /// The in-flight check, if any: uri, version, revocation handle.
    current: Mutex<Option<(String, i64, CancelToken)>>,
}

impl Shared {
    fn latest_version(&self, uri: &str) -> Option<i64> {
        self.lock_latest().get(uri).copied()
    }

    fn lock_latest(&self) -> std::sync::MutexGuard<'_, HashMap<String, i64>> {
        self.latest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_current(&self) -> std::sync::MutexGuard<'_, Option<(String, i64, CancelToken)>> {
        self.current
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Runs a language server over the given transport until the client
/// disconnects or sends `exit`. Returns the process exit code per the
/// protocol: `0` when `exit` follows a `shutdown` request, `1`
/// otherwise.
///
/// The input end moves to a reader thread (hence `Send + 'static`);
/// the output end stays on the calling thread, which dispatches every
/// message in arrival order.
pub fn run(
    input: impl BufRead + Send + 'static,
    output: impl Write,
    session: Session,
    stats: bool,
) -> i32 {
    let shared = Arc::new(Shared::default());
    let (tx, rx) = mpsc::channel::<Result<Incoming, String>>();
    let reader_shared = Arc::clone(&shared);
    let reader = std::thread::spawn(move || read_loop(input, &tx, &reader_shared));

    let mut server = Server {
        out: output,
        session,
        docs: HashMap::new(),
        checked: HashMap::new(),
        shared,
        stats: LspStats::default(),
        stats_enabled: stats,
        shutdown_requested: false,
        exited: false,
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            Ok(m) => server.dispatch(&m),
            Err(e) => server.send(&protocol::error_response(None, protocol::PARSE_ERROR, &e)),
        }
        if server.exited {
            break;
        }
    }
    drop(rx); // makes any in-flight reader send fail fast
    if !server.exited {
        // The loop ended because the reader hit EOF or a transport
        // error and closed the channel, so it has already returned.
        let _ = reader.join();
    }
    // On `exit` the reader is likely still parked in a blocking read on
    // the transport; the protocol requires exiting promptly even if the
    // client keeps the pipe open, so the thread is detached — the
    // process teardown reclaims it.
    if server.stats_enabled {
        server.report_stats();
    }
    i32::from(!server.shutdown_requested)
}

/// The reader thread: frame → parse → (version bookkeeping) → forward.
fn read_loop(
    mut input: impl BufRead,
    tx: &mpsc::Sender<Result<Incoming, String>>,
    shared: &Shared,
) {
    loop {
        match framing::read_message(&mut input) {
            Ok(Some(body)) => {
                let msg = protocol::parse_message(&body);
                if let Ok(m) = &msg {
                    note_version(m, shared);
                }
                if tx.send(msg).is_err() {
                    return; // dispatcher exited
                }
            }
            Ok(None) => return, // clean EOF: channel closes, run() returns
            Err(e) => {
                let _ = tx.send(Err(format!("transport error: {e}")));
                return;
            }
        }
    }
}

/// Records the newest version per document as messages *arrive* and
/// revokes the in-flight check the moment it is superseded — this is
/// what makes a keystroke cancel a stale check that the dispatcher is
/// still inside.
fn note_version(m: &Incoming, shared: &Shared) {
    if m.method != "textDocument/didChange" && m.method != "textDocument/didOpen" {
        return;
    }
    let Some(uri) = protocol::text_document_uri(&m.params) else {
        return;
    };
    let Some(version) = protocol::text_document_version(&m.params) else {
        return;
    };
    let mut latest = shared.lock_latest();
    let entry = latest.entry(uri.to_owned()).or_insert(version);
    if version > *entry {
        *entry = version;
    }
    drop(latest);
    if let Some((cur_uri, cur_version, token)) = shared.lock_current().as_ref() {
        if cur_uri == uri && version > *cur_version {
            token.cancel();
        }
    }
}

struct Server<W: Write> {
    out: W,
    session: Session,
    docs: HashMap<String, Doc>,
    checked: HashMap<String, Checked>,
    shared: Arc<Shared>,
    stats: LspStats,
    stats_enabled: bool,
    shutdown_requested: bool,
    exited: bool,
}

impl<W: Write> Server<W> {
    fn send(&mut self, body: &str) {
        // A dead transport surfaces as EOF on the reader side; nothing
        // useful to do with the error here.
        let _ = framing::write_message(&mut self.out, body);
    }

    fn dispatch(&mut self, m: &Incoming) {
        match (&m.id, m.method.as_str()) {
            (Some(id), "initialize") => {
                self.stats.requests += 1;
                let id = id.clone();
                self.send(&protocol::response(
                    &id,
                    "{\"capabilities\":{\"textDocumentSync\":1,\"hoverProvider\":true},\
                     \"serverInfo\":{\"name\":\"rtr\"}}",
                ));
            }
            (Some(id), "shutdown") => {
                self.stats.requests += 1;
                self.shutdown_requested = true;
                let id = id.clone();
                self.send(&protocol::response(&id, "null"));
            }
            (Some(id), "textDocument/hover") => {
                self.stats.requests += 1;
                let id = id.clone();
                let result = self.hover(&m.params);
                self.send(&protocol::response(&id, &result));
            }
            (Some(id), _) => {
                self.stats.requests += 1;
                let id = id.clone();
                self.send(&protocol::error_response(
                    Some(&id),
                    protocol::METHOD_NOT_FOUND,
                    &format!("unsupported method `{}`", m.method),
                ));
            }
            (None, "exit") => {
                self.exited = true;
            }
            (None, "textDocument/didOpen") => {
                self.stats.notifications += 1;
                let (Some(uri), Some(version), Some(text)) = (
                    protocol::text_document_uri(&m.params),
                    protocol::text_document_version(&m.params),
                    protocol::text_document_text(&m.params),
                ) else {
                    return;
                };
                let uri = uri.to_owned();
                self.docs.insert(
                    uri.clone(),
                    Doc {
                        version,
                        text: text.to_owned(),
                    },
                );
                self.check_and_publish(&uri);
            }
            (None, "textDocument/didChange") => {
                self.stats.notifications += 1;
                let (Some(uri), Some(version), Some(text)) = (
                    protocol::text_document_uri(&m.params),
                    protocol::text_document_version(&m.params),
                    protocol::last_content_change(&m.params),
                ) else {
                    return;
                };
                let uri = uri.to_owned();
                let text = text.to_owned();
                match self.docs.get_mut(&uri) {
                    Some(doc) => {
                        doc.version = version;
                        doc.text = text;
                    }
                    None => {
                        self.docs.insert(uri.clone(), Doc { version, text });
                    }
                }
                self.check_and_publish(&uri);
            }
            (None, "textDocument/didSave") => {
                self.stats.notifications += 1;
                if let Some(uri) = protocol::text_document_uri(&m.params) {
                    // Full sync keeps the overlay authoritative; a save
                    // just re-validates the current buffer.
                    self.check_and_publish(uri);
                }
            }
            (None, "textDocument/didClose") => {
                self.stats.notifications += 1;
                if let Some(uri) = protocol::text_document_uri(&m.params) {
                    let uri = uri.to_owned();
                    self.docs.remove(&uri);
                    self.checked.remove(&uri);
                    self.session.forget(&uri_to_path(&uri));
                    self.shared.lock_latest().remove(&uri);
                    // Clear the document's diagnostics client-side.
                    let params = format!("{{\"uri\":\"{}\",\"diagnostics\":[]}}", escape(&uri));
                    self.send(&protocol::notification(
                        "textDocument/publishDiagnostics",
                        &params,
                    ));
                }
            }
            (None, _) => {
                // `initialized`, `$/cancelRequest`, `setTrace`, … —
                // nothing to do, but they count as handled.
                self.stats.notifications += 1;
            }
        }
    }

    /// Checks `uri`'s overlay and publishes diagnostics — unless the
    /// version is (or becomes) superseded, in which case nothing is
    /// published and the newer version's own notification re-checks.
    fn check_and_publish(&mut self, uri: &str) {
        let Some(doc) = self.docs.get(uri) else {
            return;
        };
        let version = doc.version;
        if self.shared.latest_version(uri).is_some_and(|v| v > version) {
            // Already superseded before we even started.
            self.stats.cancelled += 1;
            return;
        }
        let token = CancelToken::new();
        *self.shared.lock_current() = Some((uri.to_owned(), version, token.clone()));
        let file = SourceFile::new(uri_to_path(uri), doc.text.clone());
        let report = self.session.check_cancellable(&file, &token);
        *self.shared.lock_current() = None;
        self.stats.checks += 1;
        let (rechecked, unchanged) = (report.stats.rechecked_items, report.stats.unchanged_items);
        if let (Some(r), Some(u)) = (rechecked, unchanged) {
            self.stats.rechecked_items += u64::from(r);
            self.stats.unchanged_items += u64::from(u);
            if u > 0 {
                self.stats.overlay_hits += 1;
            }
        }
        let stale =
            token.is_cancelled() || self.shared.latest_version(uri).is_some_and(|v| v > version);
        if self.stats_enabled {
            eprintln!(
                "lsp check: uri={} version={} errors={} rechecked={} unchanged={} stale={} elapsed_us={}",
                uri,
                version,
                report.stats.errors,
                rechecked.map_or_else(|| "-".into(), |n| n.to_string()),
                unchanged.map_or_else(|| "-".into(), |n| n.to_string()),
                stale,
                report.stats.elapsed.as_micros(),
            );
        }
        if stale {
            // Never publish a superseded version's diagnostics: the
            // newer version's notification is already queued (or being
            // processed next) and will publish its own.
            self.stats.cancelled += 1;
            return;
        }
        let text = doc.text.clone();
        let ix = LineIndex::new(&text);
        let params =
            protocol::publish_diagnostics_params(uri, version, &ix, &text, &report.diagnostics);
        self.send(&protocol::notification(
            "textDocument/publishDiagnostics",
            &params,
        ));
        self.stats.published += 1;
        self.checked.insert(
            uri.to_owned(),
            Checked {
                text,
                results: report.results,
            },
        );
    }

    /// `textDocument/hover`: the checked type of the item enclosing the
    /// cursor, from the last published check of that document.
    fn hover(&self, params: &Json) -> String {
        let looked_up = protocol::text_document_uri(params)
            .and_then(|uri| self.checked.get(uri))
            .and_then(|checked| {
                let pos = protocol::position(params)?;
                let ix = LineIndex::new(&checked.text);
                let loc = ix.utf16_to_loc(&checked.text, pos);
                let item = checked.results.iter().find(|item| {
                    item.span.is_some_and(|s| {
                        let at = (loc.line, loc.col);
                        (s.start.line, s.start.col) <= at && at < (s.end.line, s.end.col)
                    })
                })?;
                let ty = item.ty.as_ref()?;
                let rendered = match item.name {
                    Some(name) => format!("{name} : {ty}"),
                    None => ty.to_string(),
                };
                let value = format!(
                    "```rtr\n{}\n```{}",
                    rendered,
                    if item.poisoned {
                        "\n*(assumed: this definition failed to check)*"
                    } else {
                        ""
                    }
                );
                Some(format!(
                    "{{\"contents\":{{\"kind\":\"markdown\",\"value\":\"{}\"}},\"range\":{}}}",
                    escape(&value),
                    protocol::range_json(&ix, &checked.text, item.span.unwrap_or_default()),
                ))
            });
        looked_up.unwrap_or_else(|| "null".to_owned())
    }

    fn report_stats(&self) {
        let s = &self.stats;
        eprintln!(
            "lsp stats: requests={} notifications={} checks={} cancelled={} overlay_hits={} rechecked_items={} unchanged_items={} published={}",
            s.requests,
            s.notifications,
            s.checks,
            s.cancelled,
            s.overlay_hits,
            s.rechecked_items,
            s.unchanged_items,
            s.published,
        );
    }
}

/// The session cache key (and display path) for a document uri:
/// `file://` uris lose their scheme so they match what `rtr check`
/// would be invoked with; other uris are used verbatim. (Percent
/// escapes are left as-is — the string only needs to be *stable* per
/// document for the overlay cache to work.)
fn uri_to_path(uri: &str) -> String {
    uri.strip_prefix("file://").unwrap_or(uri).to_owned()
}
