//! JSON-RPC 2.0 message shapes and the `Diagnostic` → LSP mapping.
//!
//! Parsing reuses the in-tree [`crate::json`] parser; emission is
//! hand-rendered like the `rtr-check-v1` emitter, so field order (and
//! therefore the golden transcripts) is deterministic.
//!
//! Positions: the checker's [`Span`]s are 1-based line/*character*
//! columns, LSP wants 0-based line/UTF-16 code-unit columns. Every
//! conversion goes through [`rtr_core::diag::LineIndex`] against the
//! exact document text the diagnostics were produced from.

use rtr_core::diag::{Diagnostic, LineIndex, Loc, Severity, Span, Utf16Pos};

use crate::json::{escape, parse, Json};

/// JSON-RPC error code: method not found.
pub const METHOD_NOT_FOUND: i64 = -32601;
/// JSON-RPC error code: invalid params.
pub const INVALID_PARAMS: i64 = -32602;
/// JSON-RPC error code: parse error.
pub const PARSE_ERROR: i64 = -32700;
/// LSP error code: the server received a request before `initialize`.
pub const SERVER_NOT_INITIALIZED: i64 = -32002;

/// One incoming JSON-RPC message: a request (`id` present) or a
/// notification (`id` absent).
#[derive(Clone, Debug)]
pub struct Incoming {
    /// The request id (`Json::Num` or `Json::Str`); `None` for
    /// notifications.
    pub id: Option<Json>,
    /// The method name.
    pub method: String,
    /// The `params` member (`Json::Null` when absent).
    pub params: Json,
}

/// Parses one message body.
///
/// # Errors
///
/// A human-readable message on malformed JSON or a missing `method`.
pub fn parse_message(body: &str) -> Result<Incoming, String> {
    let doc = parse(body)?;
    let method = doc
        .get("method")
        .and_then(Json::as_str)
        .ok_or("message has no method")?
        .to_owned();
    let id = doc.get("id").filter(|v| !matches!(v, Json::Null)).cloned();
    let params = doc.get("params").cloned().unwrap_or(Json::Null);
    Ok(Incoming { id, method, params })
}

/// Renders a request id back out (numbers stay integral, strings are
/// re-escaped; anything else — which [`parse_message`] filters — maps
/// to `null`).
pub fn id_json(id: &Json) -> String {
    match id {
        Json::Num(n) if n.fract() == 0.0 => format!("{}", *n as i64),
        Json::Num(n) => format!("{n}"),
        Json::Str(s) => format!("\"{}\"", escape(s)),
        _ => "null".to_owned(),
    }
}

/// A successful response envelope. `result` must already be rendered
/// JSON.
pub fn response(id: &Json, result: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{},\"result\":{result}}}",
        id_json(id)
    )
}

/// An error response envelope.
pub fn error_response(id: Option<&Json>, code: i64, message: &str) -> String {
    format!(
        "{{\"jsonrpc\":\"2.0\",\"id\":{},\"error\":{{\"code\":{code},\"message\":\"{}\"}}}}",
        id.map_or_else(|| "null".to_owned(), id_json),
        escape(message)
    )
}

/// A server-to-client notification envelope. `params` must already be
/// rendered JSON.
pub fn notification(method: &str, params: &str) -> String {
    format!("{{\"jsonrpc\":\"2.0\",\"method\":\"{method}\",\"params\":{params}}}")
}

/// Renders an LSP `Position` from a checker [`Loc`].
fn position_json(pos: Utf16Pos) -> String {
    format!("{{\"line\":{},\"character\":{}}}", pos.line, pos.character)
}

/// Renders an LSP `Range` from a checker [`Span`].
pub fn range_json(ix: &LineIndex, text: &str, span: Span) -> String {
    let (start, end) = ix.span_to_utf16(text, span);
    format!(
        "{{\"start\":{},\"end\":{}}}",
        position_json(start),
        position_json(end)
    )
}

/// The LSP `DiagnosticSeverity` for a checker [`Severity`]
/// (1 = Error, 2 = Warning, 3 = Information).
pub fn lsp_severity(s: Severity) -> u8 {
    match s {
        Severity::Error => 1,
        Severity::Warning => 2,
        Severity::Note => 3,
    }
}

/// Renders one checker [`Diagnostic`] as an LSP `Diagnostic` object.
///
/// * `range` — the primary span through the UTF-16 index (diagnostics
///   without a located primary anchor at the top of the file),
/// * `severity`/`code`/`source` — [`lsp_severity`], the stable `E0xxx`
///   string, `"rtr"`,
/// * `message` — the rendered message, with the diagnostic's notes
///   appended on their own lines,
/// * labels become `relatedInformation` entries pointing back into the
///   same document.
pub fn diagnostic_json(uri: &str, ix: &LineIndex, text: &str, d: &Diagnostic) -> String {
    let range = d
        .primary
        .unwrap_or_else(|| Span::point(Loc { line: 1, col: 1 }));
    let mut message = d.message.clone();
    for note in &d.notes {
        message.push('\n');
        message.push_str("note: ");
        message.push_str(note);
    }
    let related: Vec<String> = d
        .labels
        .iter()
        .filter_map(|l| {
            let span = l.span?;
            Some(format!(
                "{{\"location\":{{\"uri\":\"{}\",\"range\":{}}},\"message\":\"{}\"}}",
                escape(uri),
                range_json(ix, text, span),
                escape(&l.message)
            ))
        })
        .collect();
    let related = if related.is_empty() {
        String::new()
    } else {
        format!(",\"relatedInformation\":[{}]", related.join(","))
    };
    format!(
        "{{\"range\":{},\"severity\":{},\"code\":\"{}\",\"source\":\"rtr\",\"message\":\"{}\"{related}}}",
        range_json(ix, text, range),
        lsp_severity(d.severity),
        d.code.as_str(),
        escape(&message)
    )
}

/// Renders the `textDocument/publishDiagnostics` params for one
/// document version.
pub fn publish_diagnostics_params(
    uri: &str,
    version: i64,
    ix: &LineIndex,
    text: &str,
    diagnostics: &[Diagnostic],
) -> String {
    let list: Vec<String> = diagnostics
        .iter()
        .map(|d| diagnostic_json(uri, ix, text, d))
        .collect();
    format!(
        "{{\"uri\":\"{}\",\"version\":{version},\"diagnostics\":[{}]}}",
        escape(uri),
        list.join(",")
    )
}

// ---------------------------------------------------------------------------
// Param extraction helpers
// ---------------------------------------------------------------------------

/// `params.textDocument.uri`.
pub fn text_document_uri(params: &Json) -> Option<&str> {
    params.get("textDocument")?.get("uri")?.as_str()
}

/// `params.textDocument.version` (an integer in the protocol).
pub fn text_document_version(params: &Json) -> Option<i64> {
    let v = params.get("textDocument")?.get("version")?.as_f64()?;
    Some(v as i64)
}

/// `params.position` as a [`Utf16Pos`].
pub fn position(params: &Json) -> Option<Utf16Pos> {
    let p = params.get("position")?;
    Some(Utf16Pos {
        line: p.get("line")?.as_f64()? as u32,
        character: p.get("character")?.as_f64()? as u32,
    })
}

/// The full text carried by `didOpen` (`textDocument.text`).
pub fn text_document_text(params: &Json) -> Option<&str> {
    params.get("textDocument")?.get("text")?.as_str()
}

/// The last full-sync text of a `didChange` (`contentChanges[-1].text`
/// — with full-document sync every change carries the whole buffer, so
/// the final element wins).
pub fn last_content_change(params: &Json) -> Option<&str> {
    params
        .get("contentChanges")?
        .as_array()?
        .last()?
        .get("text")?
        .as_str()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_notifications_parse() {
        let req =
            parse_message(r#"{"jsonrpc":"2.0","id":3,"method":"initialize","params":{"a":1}}"#)
                .unwrap();
        assert_eq!(req.method, "initialize");
        assert_eq!(req.id.as_ref().map(id_json).as_deref(), Some("3"));
        let note = parse_message(r#"{"jsonrpc":"2.0","method":"exit"}"#).unwrap();
        assert!(note.id.is_none());
        assert!(parse_message(r#"{"jsonrpc":"2.0"}"#).is_err());
    }

    #[test]
    fn ranges_are_utf16_zero_based() {
        let text = "(define x 1)\n(𝒳 #t)\n";
        let ix = LineIndex::new(text);
        // The second line's form spans the whole line: chars 1..=7.
        let span = Span::new(Loc { line: 2, col: 1 }, Loc { line: 2, col: 7 });
        let range = range_json(&ix, text, span);
        // 𝒳 is two UTF-16 units, so the end lands at character 7.
        assert_eq!(
            range,
            "{\"start\":{\"line\":1,\"character\":0},\"end\":{\"line\":1,\"character\":7}}"
        );
    }

    #[test]
    fn string_ids_round_trip() {
        assert_eq!(id_json(&Json::Str("a\"b".into())), "\"a\\\"b\"");
        assert_eq!(id_json(&Json::Num(7.0)), "7");
    }
}
