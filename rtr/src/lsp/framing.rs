//! `Content-Length` framing: the base-protocol transport LSP runs over.
//!
//! Every message in either direction is a MIME-ish header block — at
//! minimum `Content-Length: <bytes>` — a blank line, then exactly that
//! many bytes of JSON-RPC payload. Headers are ASCII, `\r\n`-separated;
//! unknown headers (`Content-Type`, …) are skipped. The reader is
//! lenient about a bare `\n` separator (some clients under test
//! harnesses emit it); the writer always emits the canonical `\r\n`.

use std::io::{self, BufRead, Write};

/// Longest header block we accept before declaring the stream corrupt
/// (a well-formed block is two short lines).
const MAX_HEADER_BYTES: usize = 4 * 1024;

/// Largest single message we accept (a whole editor buffer fits many
/// times over; anything larger is a corrupt or hostile length).
const MAX_CONTENT_BYTES: usize = 64 * 1024 * 1024;

/// Reads one framed message body. Returns `Ok(None)` on a clean EOF at
/// a message boundary.
///
/// # Errors
///
/// An [`io::Error`] on transport failure, a malformed or oversized
/// header block, a missing `Content-Length`, or a truncated payload.
pub fn read_message(input: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut content_length: Option<usize> = None;
    let mut header = String::new();
    let mut read_any = false;
    loop {
        header.clear();
        let n = input.read_line(&mut header)?;
        if n == 0 {
            return if read_any {
                Err(corrupt("eof inside a header block"))
            } else {
                Ok(None)
            };
        }
        read_any = true;
        if header.len() > MAX_HEADER_BYTES {
            return Err(corrupt("oversized header line"));
        }
        let line = header.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break; // end of headers
        }
        if let Some(v) = line
            .split_once(':')
            .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .map(|(_, v)| v.trim())
        {
            let len: usize = v
                .parse()
                .map_err(|_| corrupt("unparseable Content-Length"))?;
            if len > MAX_CONTENT_BYTES {
                return Err(corrupt("Content-Length exceeds the message cap"));
            }
            content_length = Some(len);
        }
        // Other headers (Content-Type, …) are ignored.
    }
    let len = content_length.ok_or_else(|| corrupt("missing Content-Length header"))?;
    let mut body = vec![0u8; len];
    input.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(Some)
        .map_err(|_| corrupt("message body is not UTF-8"))
}

/// Writes one framed message and flushes (clients block on partial
/// messages, so every write must reach the transport whole).
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_message(out: &mut impl Write, body: &str) -> io::Result<()> {
    write!(out, "Content-Length: {}\r\n\r\n{}", body.len(), body)?;
    out.flush()
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("lsp framing: {what}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut wire = Vec::new();
        write_message(&mut wire, r#"{"jsonrpc":"2.0"}"#).unwrap();
        write_message(&mut wire, "☃").unwrap();
        let mut input = io::BufReader::new(wire.as_slice());
        assert_eq!(
            read_message(&mut input).unwrap().as_deref(),
            Some(r#"{"jsonrpc":"2.0"}"#)
        );
        assert_eq!(read_message(&mut input).unwrap().as_deref(), Some("☃"));
        assert_eq!(read_message(&mut input).unwrap(), None, "clean EOF");
    }

    #[test]
    fn unknown_headers_and_bare_newlines_are_tolerated() {
        let wire = "Content-Type: application/vscode-jsonrpc\nContent-Length: 2\n\nhi";
        let mut input = io::BufReader::new(wire.as_bytes());
        assert_eq!(read_message(&mut input).unwrap().as_deref(), Some("hi"));
    }

    #[test]
    fn missing_length_and_truncated_payloads_error() {
        let mut input = io::BufReader::new("X-Header: 1\r\n\r\nbody".as_bytes());
        assert!(read_message(&mut input).is_err());
        let mut input = io::BufReader::new("Content-Length: 99\r\n\r\nshort".as_bytes());
        assert!(read_message(&mut input).is_err());
    }
}
