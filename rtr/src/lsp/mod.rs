//! A Language Server Protocol front end over the incremental
//! [`Session`](crate::session::Session).
//!
//! `rtr lsp` speaks JSON-RPC 2.0 over stdio with the standard
//! `Content-Length` framing ([`framing`]), using the in-tree
//! [`crate::json`] parser — no external dependencies. The server keeps
//! an in-memory overlay of every open buffer and runs each
//! `didOpen`/`didChange`/`didSave` through the session's per-document
//! item cache, so a keystroke re-judges only the item that changed
//! ([`protocol`] maps the resulting diagnostics to LSP shapes).
//!
//! Supported requests: `initialize`, `shutdown`, `textDocument/hover`
//! (the checked type of the item enclosing the cursor). Notifications:
//! `initialized`, `exit`, `textDocument/didOpen`, `didChange` (full
//! sync), `didSave`, `didClose`, `$/cancelRequest` (accepted, no-op —
//! cancellation is version-driven, see [`server`]).
//!
//! Diagnostics published here carry exactly the codes and spans
//! `rtr check --json` reports for the same text (an equivalence test
//! pins this), translated into 0-based UTF-16 ranges.

pub mod framing;
pub mod protocol;
pub mod server;

pub use server::{run, LspStats};
