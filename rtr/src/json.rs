//! Machine-readable check reports: the `rtr-check-v1` JSON schema.
//!
//! [`reports_to_json`] renders [`CheckReport`]s against a stable,
//! documented schema (no external serialization crates — the emitter
//! and the validating [`parse`]r are self-contained):
//!
//! ```json
//! {
//!   "schema": "rtr-check-v1",
//!   "files": [
//!     {
//!       "name": "demo.rtr",
//!       "clean": false,
//!       "items": [ {"name": "f", "type": "([x : Int] -> Int)", "poisoned": true} ],
//!       "value_type": null,
//!       "diagnostics": [
//!         {
//!           "code": "E0002",
//!           "severity": "error",
//!           "message": "type checker error in …: expected Int but given True",
//!           "span": {"line": 2, "col": 15, "end_line": 2, "end_col": 17},
//!           "labels": [ {"span": {"line": 1, "col": 1, "end_line": 1, "end_col": 25},
//!                        "message": "f is declared here"} ],
//!           "payload": {"kind": "mismatch", "expected": "Int", "got": "True",
//!                        "failed_prop": null, "theories": []},
//!           "notes": ["the definition of f is poisoned: …"]
//!         }
//!       ],
//!       "stats": {"definitions": 1, "errors": 1, "warnings": 0, "elapsed_us": 180}
//!     }
//!   ],
//!   "summary": {"files": 1, "errors": 1, "warnings": 0, "clean": false}
//! }
//! ```
//!
//! Schema contract:
//!
//! * `schema` is always `"rtr-check-v1"`; additive changes bump the
//!   suffix.
//! * `code` is a stable [`rtr_core::diag::Code`] string (`E0xxx` errors,
//!   `W0xxx` warnings); `severity` is `"error" | "warning" | "note"`.
//! * `span` is `null` or 1-based `line`/`col` (inclusive start) +
//!   `end_line`/`end_col` (exclusive end) into the file's text.
//! * `payload.kind` is one of `none`, `unbound`, `mismatch`,
//!   `not-a-function`, `arity`, `not-a-pair`, `cannot-infer`,
//!   `bad-assignment`, `exhausted`, `ice`; types and propositions are
//!   rendered in the surface syntax, `theories` lists the solver
//!   theories a failed refinement mentions.
//! * An `exhausted` payload (code `E0202`) carries `limit`: which
//!   resource-governance limit tripped (`steps`, `deadline`, `depth`,
//!   or `injected-fault` under the chaos harness). An `ice` payload
//!   (code `E0203`) carries `detail`: the isolated internal error. Both
//!   are additive — consumers unaware of them still parse every report.
//! * When a report comes from an incremental re-check (sessions with
//!   [`crate::session::SessionConfig::incremental`], including `rtr
//!   watch`), `stats` additionally carries `rechecked_items` and
//!   `unchanged_items`: how many definitions were actually re-judged
//!   versus spliced from the per-item fingerprint cache. Both fields
//!   are additive and absent on from-scratch runs.
//! * Exit-code contract of `rtr check --json`: `0` clean, `1` at least
//!   one error-severity diagnostic, `2` usage or I/O failure, `3` at
//!   least one internal checker error (`E0203`) was isolated — results
//!   for other items are still reported but the run is suspect.

use rtr_core::diag::{theory_names, Diagnostic, Payload, Span};

use crate::session::CheckReport;

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

/// Escapes `s` as the body of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn str_lit(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

fn opt_str(s: Option<String>) -> String {
    match s {
        Some(s) => str_lit(&s),
        None => "null".to_owned(),
    }
}

fn span_json(span: Option<Span>) -> String {
    match span {
        None => "null".to_owned(),
        Some(s) => format!(
            "{{\"line\": {}, \"col\": {}, \"end_line\": {}, \"end_col\": {}}}",
            s.start.line, s.start.col, s.end.line, s.end.col
        ),
    }
}

fn payload_json(p: &Payload) -> String {
    let kind = format!("\"kind\": {}", str_lit(p.kind()));
    match p {
        Payload::None => format!("{{{kind}}}"),
        Payload::Unbound { var } => format!("{{{kind}, \"var\": {}}}", str_lit(var.as_str())),
        Payload::Mismatch {
            expected,
            got,
            failed_prop,
            theories,
        } => {
            let theory_list = theory_names(*theories)
                .iter()
                .map(|n| str_lit(n))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{{kind}, \"expected\": {}, \"got\": {}, \"failed_prop\": {}, \"theories\": [{theory_list}]}}",
                str_lit(&expected.to_string()),
                str_lit(&got.to_string()),
                opt_str(failed_prop.as_ref().map(|p| p.to_string())),
            )
        }
        Payload::NotAFunction { got } => {
            format!("{{{kind}, \"got\": {}}}", str_lit(&got.to_string()))
        }
        Payload::Arity { expected, got } => {
            format!("{{{kind}, \"expected\": {expected}, \"got\": {got}}}")
        }
        Payload::NotAPair { got } => {
            format!("{{{kind}, \"got\": {}}}", str_lit(&got.to_string()))
        }
        Payload::CannotInfer { reason } => {
            format!("{{{kind}, \"reason\": {}}}", str_lit(reason))
        }
        Payload::BadAssignment { var, expected, got } => format!(
            "{{{kind}, \"var\": {}, \"expected\": {}, \"got\": {}}}",
            str_lit(var.as_str()),
            str_lit(&expected.to_string()),
            str_lit(&got.to_string()),
        ),
        Payload::Exhausted { limit } => {
            format!("{{{kind}, \"limit\": {}}}", str_lit(limit.as_str()))
        }
        Payload::Ice { detail } => {
            format!("{{{kind}, \"detail\": {}}}", str_lit(detail))
        }
    }
}

/// One diagnostic as a schema object.
pub fn diagnostic_json(d: &Diagnostic) -> String {
    let labels = d
        .labels
        .iter()
        .map(|l| {
            format!(
                "{{\"span\": {}, \"message\": {}}}",
                span_json(l.span),
                str_lit(&l.message)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let notes = d
        .notes
        .iter()
        .map(|n| str_lit(n))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"code\": {}, \"severity\": {}, \"message\": {}, \"span\": {}, \"labels\": [{labels}], \"payload\": {}, \"notes\": [{notes}]}}",
        str_lit(d.code.as_str()),
        str_lit(d.severity.as_str()),
        str_lit(&d.message),
        span_json(d.primary),
        payload_json(&d.payload),
    )
}

fn report_json(r: &CheckReport) -> String {
    let items = r
        .results
        .iter()
        .map(|i| {
            format!(
                "{{\"name\": {}, \"type\": {}, \"poisoned\": {}}}",
                opt_str(i.name.map(|n| n.as_str().to_owned())),
                opt_str(i.ty.as_ref().map(|t| t.to_string())),
                i.poisoned
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let diagnostics = r
        .diagnostics
        .iter()
        .map(diagnostic_json)
        .collect::<Vec<_>>()
        .join(",\n        ");
    // Incremental counters are additive: absent on from-scratch runs,
    // so `rtr-check-v1` consumers unaware of them keep parsing.
    let mut incr = String::new();
    if let Some(n) = r.stats.rechecked_items {
        incr.push_str(&format!(", \"rechecked_items\": {n}"));
    }
    if let Some(n) = r.stats.unchanged_items {
        incr.push_str(&format!(", \"unchanged_items\": {n}"));
    }
    format!(
        "{{\n      \"name\": {},\n      \"clean\": {},\n      \"items\": [{items}],\n      \"value_type\": {},\n      \"diagnostics\": [\n        {diagnostics}\n      ],\n      \"stats\": {{\"definitions\": {}, \"errors\": {}, \"warnings\": {}, \"elapsed_us\": {}{incr}}}\n    }}",
        str_lit(&r.file),
        r.is_clean(),
        opt_str(r.value.as_ref().map(|v| v.ty.to_string())),
        r.stats.definitions,
        r.stats.errors,
        r.stats.warnings,
        r.stats.elapsed.as_micros(),
    )
}

/// The whole `rtr-check-v1` document for a batch of reports.
pub fn reports_to_json(reports: &[CheckReport]) -> String {
    let files = reports
        .iter()
        .map(report_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let errors: usize = reports.iter().map(|r| r.stats.errors).sum();
    let warnings: usize = reports.iter().map(|r| r.stats.warnings).sum();
    format!(
        "{{\n  \"schema\": \"rtr-check-v1\",\n  \"files\": [\n    {files}\n  ],\n  \"summary\": {{\"files\": {}, \"errors\": {errors}, \"warnings\": {warnings}, \"clean\": {}}}\n}}\n",
        reports.len(),
        errors == 0,
    )
}

// ---------------------------------------------------------------------------
// Parsing (for schema validation and machine consumers)
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a JSON document (strict: exactly one value plus whitespace).
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut at = 0usize;
    let value = parse_value(src, bytes, &mut at)?;
    skip_ws(bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing data at byte {at}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && matches!(bytes[*at], b' ' | b'\t' | b'\n' | b'\r') {
        *at += 1;
    }
}

fn expect(bytes: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    if *at < bytes.len() && bytes[*at] == c {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {at}", c as char))
    }
}

fn parse_value(src: &str, bytes: &[u8], at: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *at += 1;
            let mut members = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b'}') {
                *at += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, at);
                let key = parse_string(src, bytes, at)?;
                skip_ws(bytes, at);
                expect(bytes, at, b':')?;
                let value = parse_value(src, bytes, at)?;
                members.push((key, value));
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b'}') => {
                        *at += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {at}")),
                }
            }
        }
        Some(b'[') => {
            *at += 1;
            let mut items = Vec::new();
            skip_ws(bytes, at);
            if bytes.get(*at) == Some(&b']') {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(src, bytes, at)?);
                skip_ws(bytes, at);
                match bytes.get(*at) {
                    Some(b',') => *at += 1,
                    Some(b']') => {
                        *at += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {at}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(src, bytes, at)?)),
        Some(b't') if src[*at..].starts_with("true") => {
            *at += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if src[*at..].starts_with("false") => {
            *at += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if src[*at..].starts_with("null") => {
            *at += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *at;
            while *at < bytes.len()
                && matches!(bytes[*at], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *at += 1;
            }
            src[start..*at]
                .parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

fn parse_string(src: &str, bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect(bytes, at, b'"')?;
    let mut out = String::new();
    let mut chars = src[*at..].char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                *at += i + 1;
                return Ok(out);
            }
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'b')) => out.push('\u{8}'),
                Some((_, 'f')) => out.push('\u{c}'),
                Some((j, 'u')) => {
                    let hex = src
                        .get(*at + j + 1..*at + j + 5)
                        .ok_or("truncated \\u escape")?;
                    let code =
                        u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_owned())?;
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    for _ in 0..4 {
                        chars.next();
                    }
                }
                _ => return Err("bad string escape".to_owned()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionConfig, SourceFile};

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "line\n\"quote\" \\ tab\t √ nul\u{1}";
        let json = format!("{{\"s\": {}}}", str_lit(nasty));
        let parsed = parse(&json).expect("parses");
        assert_eq!(parsed.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn parser_handles_the_basics() {
        let v = parse("[1, -2.5, true, false, null, {\"k\": [\"v\"]}]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_f64(), Some(1.0));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[2].as_bool(), Some(true));
        assert_eq!(items[4], Json::Null);
        assert_eq!(
            items[5].get("k").unwrap().as_array().unwrap()[0].as_str(),
            Some("v")
        );
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} extra").is_err());
    }

    #[test]
    fn incremental_counters_are_additive_stats_fields() {
        let session = Session::new(SessionConfig::default());
        let file = SourceFile::new(
            "ok.rtr",
            "(: f : [x : Int] -> Int)\n(define (f x) x)\n(f 2)",
        );
        session.check(&file);
        let warm = session.check(&file);
        let json = reports_to_json(&[warm]);
        let doc = parse(&json).expect("emitted JSON must parse");
        let stats = doc.get("files").unwrap().as_array().unwrap()[0]
            .get("stats")
            .expect("stats object");
        assert!(stats
            .get("rechecked_items")
            .and_then(Json::as_f64)
            .is_some());
        assert!(
            stats.get("unchanged_items").and_then(Json::as_f64).unwrap() >= 1.0,
            "a warm identical re-check must splice at least one item"
        );

        // From-scratch sessions must not grow the fields.
        let scratch = Session::new(SessionConfig {
            incremental: false,
            ..SessionConfig::default()
        });
        let report = scratch.check(&file);
        let doc = parse(&reports_to_json(&[report])).unwrap();
        let stats = doc.get("files").unwrap().as_array().unwrap()[0]
            .get("stats")
            .unwrap();
        assert!(stats.get("rechecked_items").is_none());
        assert!(stats.get("unchanged_items").is_none());
    }

    #[test]
    fn emitted_reports_parse_and_carry_the_schema_header() {
        let session = Session::new(SessionConfig::default());
        let report = session.check(&SourceFile::new("ok.rtr", "(+ 1 2)"));
        let json = reports_to_json(&[report]);
        let doc = parse(&json).expect("emitted JSON must parse");
        assert_eq!(doc.get("schema").unwrap().as_str(), Some("rtr-check-v1"));
        assert_eq!(
            doc.get("summary").unwrap().get("clean").unwrap().as_bool(),
            Some(true)
        );
    }
}
