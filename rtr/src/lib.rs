//! # RTR — *Occurrence Typing Modulo Theories* (PLDI 2016) in Rust
//!
//! A from-scratch reproduction of Kent, Kempe & Tobin-Hochstadt's
//! Refinement Typed Racket: occurrence typing (the type discipline behind
//! Typed Racket) extended with dependent refinement types whose
//! propositions are discharged by pluggable, solver-backed theories —
//! linear integer arithmetic (Fourier–Motzkin), fixed-width bitvectors
//! (bit-blasting onto an in-tree CDCL SAT solver), and — the extension
//! the paper's conclusion anticipates — regular expressions (an in-tree
//! regex engine with an automata-based membership decision procedure).
//!
//! The workspace is layered; this facade crate re-exports each layer:
//!
//! * [`solver`] (`rtr-solver`) — exact rationals, linear constraints,
//!   Fourier–Motzkin elimination, CDCL SAT, bitvector bit-blasting.
//! * [`core`] (`rtr-core`) — the λ_RTR calculus: syntax, typing judgment,
//!   subtyping, proof system, `update` metafunctions, big-step semantics
//!   and the executable model relation used to property-test soundness.
//! * [`lang`] (`rtr-lang`) — the Racket-style surface language: reader,
//!   macro expansion (`for/sum` → `letrec`, §4.4), elaboration, and the
//!   enriched base environment.
//! * [`corpus`] (`rtr-corpus`) — the §5 case study: synthetic corpora
//!   shaped like the paper's `math`/`plot`/`pict3d` libraries and the
//!   staged classification harness that regenerates Figure 9.
//!
//! On top of the layers sits the diagnostics-first service surface:
//!
//! * [`session`] — `Session::check`/`check_all`: every file yields *all*
//!   of its located diagnostics (failing definitions are poisoned and
//!   checking continues), per-item outcomes and stats.
//! * [`json`] — the documented `rtr-check-v1` machine-readable schema
//!   (emitter plus a validating parser).
//!
//! # Quick start
//!
//! ```
//! use rtr::prelude::*;
//!
//! // Fig. 1: max, with a range refined by the linear-arithmetic theory.
//! let src = r#"
//!     (: max : [x : Int] [y : Int] -> [z : Int #:where (and (>= z x) (>= z y))])
//!     (define (max x y) (if (> x y) x y))
//!     (max 3 7)
//! "#;
//! let checker = Checker::default();
//! let result = check_source(src, &checker).expect("max verifies");
//! assert_eq!(result.ty.to_string(), "{z : Int | ((3 ≤ z) ∧ (7 ≤ z))}");
//!
//! // And it runs.
//! let value = run_source(src, &checker, 10_000).unwrap();
//! assert_eq!(value.to_string(), "7");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rtr_core as core;
pub use rtr_corpus as corpus;
pub use rtr_lang as lang;
pub use rtr_solver as solver;

pub mod json;
pub mod lsp;
pub mod session;

/// The most common imports for working with RTR.
pub mod prelude {
    pub use rtr_core::budget::LimitKind;
    pub use rtr_core::check::Checker;
    pub use rtr_core::config::CheckerConfig;
    pub use rtr_core::diag::{Code, Diagnostic, Severity, Span};
    pub use rtr_core::errors::TypeError;
    pub use rtr_core::interp::{eval_program, EvalError, Value};
    pub use rtr_core::syntax::{Expr, Obj, Prim, Prop, Symbol, Ty, TyResult};
    pub use rtr_lang::{
        check_module_source, check_source, elaborate_module, run_source, LangError, ModuleReport,
    };

    pub use crate::session::{CheckReport, Session, SessionConfig, SourceFile};
}
