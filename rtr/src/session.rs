//! The diagnostics-first session API — the embeddable check service.
//!
//! A [`Session`] owns one configured checker (with its warm memo and
//! solver caches) and checks any number of source files against it,
//! producing structured [`CheckReport`]s instead of a fail-fast
//! `Result`: every file yields *all* of its located diagnostics (the
//! recovering module checker poisons failing definitions and keeps
//! going), per-definition outcomes, and timing stats. This is the layer
//! editors, CI gates and batch library checks build on; the `rtr check`
//! CLI is a thin client over it, and [`crate::json`] renders reports
//! against the documented machine-readable schema.
//!
//! ```
//! use rtr::session::{Session, SessionConfig, SourceFile};
//!
//! let session = Session::new(SessionConfig::default());
//! let report = session.check(&SourceFile::new(
//!     "demo.rtr",
//!     "(: f : [x : Int] -> Int)\n(define (f x) #t)\n(define (g [y : Int]) #t)\n",
//! ));
//! assert_eq!(report.stats.errors, 1); // f's body; g is fine
//! let d = &report.diagnostics[0];
//! assert_eq!(d.code.as_str(), "E0002");
//! assert_eq!(d.primary.expect("located").start.line, 2);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use rtr_core::budget::CancelToken;
use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::diag::{Diagnostic, Severity};
use rtr_core::module::ItemSummary;
use rtr_core::syntax::TyResult;
use rtr_lang::{check_module_source, check_module_source_incremental, ModuleCache};

/// Retire the interner's fresh-id region once it holds this many entries
/// and no check is in flight. Fresh names never recur across modules, so
/// the region is garbage between checks; evicting it bounds arena growth
/// in a long-lived session (memo tables reconcile via the eviction epoch).
const FRESH_ARENA_BUDGET: usize = 1 << 14;

/// Configuration for a [`Session`].
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The checker configuration (theories, budgets, ablations).
    pub checker: CheckerConfig,
    /// Worker threads for [`Session::check_all`]; `0` means one per
    /// available core. Reports are returned in input order regardless.
    pub jobs: usize,
    /// Re-check edited files incrementally (the default): the session
    /// keeps a per-file item cache and only re-checks changed
    /// definitions and the dependents the early cutoff cannot clear.
    /// `false` keeps the from-scratch reference path.
    pub incremental: bool,
    /// Most distinct files the session keeps incremental caches for;
    /// past the cap the least-recently-checked file's cache is dropped
    /// (it simply re-checks from scratch next time). Keeps a long-lived
    /// server's memory flat when clients wander across a large tree.
    /// `0` means unbounded.
    pub max_cached_files: usize,
}

impl SessionConfig {
    /// The default [`SessionConfig::max_cached_files`].
    pub const DEFAULT_MAX_CACHED_FILES: usize = 64;
}

impl Default for SessionConfig {
    fn default() -> SessionConfig {
        SessionConfig {
            checker: CheckerConfig::default(),
            jobs: 0,
            incremental: true,
            max_cached_files: SessionConfig::DEFAULT_MAX_CACHED_FILES,
        }
    }
}

/// A named source file to check.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Display name (path) used in reports and rendered diagnostics.
    pub name: String,
    /// The full source text.
    pub text: String,
}

impl SourceFile {
    /// A source file from a name and its text.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> SourceFile {
        SourceFile {
            name: name.into(),
            text: text.into(),
        }
    }

    /// Reads a source file from disk.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn read(path: impl AsRef<std::path::Path>) -> std::io::Result<SourceFile> {
        let path = path.as_ref();
        Ok(SourceFile {
            name: path.display().to_string(),
            text: std::fs::read_to_string(path)?,
        })
    }
}

/// Timing and tallies for one checked file.
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Definitions processed (including poisoned ones).
    pub definitions: usize,
    /// Error-severity diagnostics.
    pub errors: usize,
    /// Warning-severity diagnostics.
    pub warnings: usize,
    /// Wall-clock time for the whole check (parse → diagnostics).
    pub elapsed: Duration,
    /// Items re-checked by the incremental path (`None` when the check
    /// ran from scratch).
    pub rechecked_items: Option<u32>,
    /// Items the incremental path reused without re-checking (`None`
    /// when the check ran from scratch).
    pub unchanged_items: Option<u32>,
}

/// Everything learned from checking one [`SourceFile`].
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The file's display name.
    pub file: String,
    /// Per-item outcomes (definitions first, then trailing
    /// expressions), including which bindings were poisoned.
    pub results: Vec<ItemSummary>,
    /// Every diagnostic, spans resolved into the surface source.
    pub diagnostics: Vec<Diagnostic>,
    /// The type-result of the module's final trailing expression.
    pub value: Option<TyResult>,
    /// Tallies and timing.
    pub stats: CheckStats,
}

impl CheckReport {
    /// No error-severity diagnostics (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.stats.errors == 0
    }

    /// Renders every diagnostic in the human format (snippets with
    /// caret underlines), given the file's source text.
    pub fn render_human(&self, source: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&rtr_core::diag::render(d, &self.file, source));
        }
        out
    }
}

/// A checking session: one configured checker, shared caches, any
/// number of files.
///
/// Cloning a `Session` is cheap and shares the caches (the underlying
/// memo tables are keyed on globally unique environment generations and
/// interned ids, so sharing is sound — see `rtr_core::cache`).
#[derive(Clone, Debug)]
pub struct Session {
    checker: Checker,
    jobs: usize,
    incremental: bool,
    /// Per-file incremental caches, keyed by file name. Shared across
    /// clones (like the checker's memo tables); a file's cache is taken
    /// out while it is being checked, so concurrent checks of the same
    /// name simply miss rather than conflict.
    caches: Arc<Mutex<CacheMap>>,
}

/// The per-file cache store with least-recently-checked eviction: each
/// entry remembers the logical tick of its last use, and inserts past
/// the cap evict the stalest entry.
#[derive(Debug, Default)]
struct CacheMap {
    /// `0` means unbounded.
    cap: usize,
    tick: u64,
    entries: HashMap<String, (u64, ModuleCache)>,
}

impl CacheMap {
    fn take(&mut self, name: &str) -> Option<ModuleCache> {
        self.entries.remove(name).map(|(_, c)| c)
    }

    fn insert(&mut self, name: String, cache: ModuleCache) {
        self.tick += 1;
        self.entries.insert(name, (self.tick, cache));
        if self.cap != 0 && self.entries.len() > self.cap {
            if let Some(stalest) = self
                .entries
                .iter()
                .min_by_key(|(_, (t, _))| *t)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&stalest);
            }
        }
    }
}

impl Default for Session {
    fn default() -> Session {
        Session::new(SessionConfig::default())
    }
}

impl Session {
    /// A session with the given configuration.
    pub fn new(config: SessionConfig) -> Session {
        Session {
            checker: Checker::with_config(config.checker),
            jobs: config.jobs,
            incremental: config.incremental,
            caches: Arc::new(Mutex::new(CacheMap {
                cap: config.max_cached_files,
                ..CacheMap::default()
            })),
        }
    }

    /// A session wrapping an existing checker (sharing its caches).
    pub fn from_checker(checker: Checker) -> Session {
        Session {
            checker,
            jobs: 0,
            incremental: true,
            caches: Arc::new(Mutex::new(CacheMap {
                cap: SessionConfig::DEFAULT_MAX_CACHED_FILES,
                ..CacheMap::default()
            })),
        }
    }

    /// The session's checker.
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    fn lock_caches(&self) -> std::sync::MutexGuard<'_, CacheMap> {
        // A poisoned lock only means another check panicked mid-insert;
        // the map itself is always in a consistent state.
        self.caches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of files the session currently holds incremental caches
    /// for (bounded by [`SessionConfig::max_cached_files`]).
    pub fn cached_file_count(&self) -> usize {
        self.lock_caches().entries.len()
    }

    /// Drops the incremental cache for `name` (e.g. when an editor
    /// closes the document). The next check of that file runs from
    /// scratch; harmless if no cache exists.
    pub fn forget(&self, name: &str) {
        self.lock_caches().take(name);
    }

    /// Checks one file, reporting every diagnostic. Never fails: reader
    /// and syntax errors become located diagnostics too, and an internal
    /// checker panic that escapes the per-item isolation in
    /// `check_module` is caught here as a file-level `E0203`.
    pub fn check(&self, file: &SourceFile) -> CheckReport {
        self.check_inner(file, &self.checker)
    }

    /// Like [`Session::check`], but revocable: once `token` is
    /// cancelled (from any thread), the in-flight check trips
    /// [`rtr_core::budget::LimitKind::Cancelled`] at the next budget
    /// poll and degrades immediately — remaining items come back as
    /// `E0202` (`limit: "cancelled"`) verdicts, which are never written
    /// to the persistent caches, so the next check of the same file
    /// re-checks them against the still-warm cache.
    ///
    /// This is the overlay entry point for editor servers: pass the
    /// unsaved buffer contents as [`SourceFile::text`] under the
    /// document's path and the session's per-path item cache carries
    /// between keystrokes, making each `didChange` an incremental
    /// re-check; cancel the token when a newer document version arrives
    /// and discard the stale report.
    pub fn check_cancellable(&self, file: &SourceFile, token: &CancelToken) -> CheckReport {
        let checker = self.checker.with_cancel_token(token.clone());
        self.check_inner(file, &checker)
    }

    fn check_inner(&self, file: &SourceFile, checker: &Checker) -> CheckReport {
        let start = Instant::now();
        // Take the file's cache out for the duration of the check: a
        // panic leaves it dropped (next check runs cold), concurrent
        // checks of the same name just miss.
        let old_cache = self
            .incremental
            .then(|| self.lock_caches().take(&file.name))
            .flatten();
        let (report, new_cache, incr_stats) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.incremental {
                    check_module_source_incremental(&file.text, checker, old_cache.as_ref())
                } else {
                    (check_module_source(&file.text, checker), None, None)
                }
            }))
            .unwrap_or_else(|p| {
                (
                    rtr_lang::ModuleReport {
                        diagnostics: vec![Diagnostic::ice(
                            format!("the module {}", file.name),
                            rtr_core::check::panic_detail(&*p),
                        )],
                        ..rtr_lang::ModuleReport::default()
                    },
                    None,
                    None,
                )
            });
        if self.incremental {
            // A fallback run (`new_cache` = None) keeps the previous
            // cache: textual matching re-validates it against whatever
            // the file looks like next time.
            if let Some(cache) = new_cache.or(old_cache) {
                self.lock_caches().insert(file.name.clone(), cache);
            }
        }
        // Reports hold owned trees, never interned ids, so retiring the
        // fresh interner region between checks cannot invalidate them.
        // The eviction is skipped while any other check is in flight —
        // and the item caches stored above carry the eviction epoch, so
        // a retirement here just makes the next run rebuild them.
        rtr_core::intern::maybe_evict_fresh(FRESH_ARENA_BUDGET);
        let elapsed = start.elapsed();
        let stats = CheckStats {
            definitions: report.results.iter().filter(|r| r.name.is_some()).count(),
            errors: report.error_count(),
            warnings: report
                .diagnostics
                .iter()
                .filter(|d| d.severity == Severity::Warning)
                .count(),
            elapsed,
            rechecked_items: incr_stats.map(|s| s.rechecked),
            unchanged_items: incr_stats.map(|s| s.skipped),
        };
        CheckReport {
            file: file.name.clone(),
            results: report.results,
            diagnostics: report.diagnostics,
            value: report.value,
            stats,
        }
    }

    /// Checks many files, sharding them across scoped worker threads
    /// (PR 3's thread-scope pattern: the checker is shared by reference,
    /// so workers transparently share memo and solver-cache verdicts).
    /// Reports come back in input order.
    pub fn check_all(&self, files: &[SourceFile]) -> Vec<CheckReport> {
        let jobs = match self.jobs {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
        .min(files.len().max(1));
        if jobs <= 1 {
            return files.iter().map(|f| self.check(f)).collect();
        }
        let chunk = files.len().div_ceil(jobs);
        let mut out: Vec<Vec<CheckReport>> = Vec::with_capacity(jobs);
        std::thread::scope(|scope| {
            let handles: Vec<_> = files
                .chunks(chunk)
                .map(|shard| scope.spawn(move || shard.iter().map(|f| self.check(f)).collect()))
                .collect();
            for h in handles {
                out.push(h.join().expect("check worker must not panic"));
            }
        });
        out.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_core::diag::Code;

    #[test]
    fn a_module_with_three_bad_defines_yields_three_located_diagnostics() {
        let text = "\
(: f : [x : Int] -> Int)
(define (f x) #t)
(: g : [x : Int] -> [z : Int #:where (>= z 0)])
(define (g x) x)
(define (h [v : (Vecof Int)] [i : Int]) (safe-vec-ref v i))
(define (ok [x : Int]) (add1 x))
";
        let session = Session::new(SessionConfig::default());
        let report = session.check(&SourceFile::new("three.rtr", text));
        assert_eq!(report.stats.errors, 3, "{:#?}", report.diagnostics);
        for d in &report.diagnostics {
            assert_eq!(d.code, Code::TypeMismatch);
            let span = d.primary.expect("located");
            assert!((1..=5).contains(&span.start.line));
        }
        // The lines are distinct: one per failing definition.
        let mut lines: Vec<u32> = report
            .diagnostics
            .iter()
            .map(|d| d.primary.unwrap().start.line)
            .collect();
        lines.dedup();
        assert_eq!(lines.len(), 3);
        assert_eq!(report.stats.definitions, 4);
        assert_eq!(report.results.iter().filter(|r| r.poisoned).count(), 3);
    }

    #[test]
    fn check_all_is_order_preserving_and_parallel_equals_serial() {
        let files: Vec<SourceFile> = (0..12)
            .map(|k| {
                let text = if k % 3 == 0 {
                    format!("(define (f{k} [x : Int]) (add1 x)) (f{k} #t)")
                } else {
                    format!("(define (f{k} [x : Int]) (add1 x)) (f{k} {k})")
                };
                SourceFile::new(format!("m{k}.rtr"), text)
            })
            .collect();
        let serial = Session::new(SessionConfig {
            jobs: 1,
            ..SessionConfig::default()
        });
        let parallel = Session::new(SessionConfig {
            jobs: 4,
            ..SessionConfig::default()
        });
        let a = serial.check_all(&files);
        let b = parallel.check_all(&files);
        assert_eq!(a.len(), files.len());
        for ((ra, rb), f) in a.iter().zip(&b).zip(&files) {
            assert_eq!(ra.file, f.name);
            assert_eq!(ra.is_clean(), rb.is_clean());
            assert_eq!(ra.stats.errors, rb.stats.errors);
            assert_eq!(
                ra.diagnostics.iter().map(|d| d.code).collect::<Vec<_>>(),
                rb.diagnostics.iter().map(|d| d.code).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reader_errors_become_diagnostics() {
        let session = Session::new(SessionConfig::default());
        let report = session.check(&SourceFile::new("bad.rtr", "(define (f x"));
        assert_eq!(report.stats.errors, 1);
        assert_eq!(report.diagnostics[0].code, Code::ReadError);
        assert!(report.diagnostics[0].primary.is_some());
    }

    #[test]
    fn item_summaries_carry_surface_spans_on_both_paths() {
        let text = "(define (f [x : Int]) (add1 x))\n(f 3)\n";
        for incremental in [false, true] {
            let session = Session::new(SessionConfig {
                incremental,
                ..SessionConfig::default()
            });
            // Two checks: the second exercises the warm splice path.
            session.check(&SourceFile::new("s.rtr", text));
            let report = session.check(&SourceFile::new("s.rtr", text));
            let f = &report.results[0];
            let span = f.span.expect("definition span");
            assert_eq!(span.start.line, 1);
            assert_eq!(span.start.col, 1);
            assert_eq!(span.end.col, 32, "just past the closing paren");
            let trailing = &report.results[1];
            assert_eq!(trailing.span.expect("expr span").start.line, 2);
        }
    }

    #[test]
    fn the_cache_map_caps_at_max_cached_files() {
        let session = Session::new(SessionConfig {
            max_cached_files: 3,
            ..SessionConfig::default()
        });
        for k in 0..10 {
            let file = SourceFile::new(format!("m{k}.rtr"), "(define x 1)".to_string());
            session.check(&file);
        }
        assert_eq!(session.cached_file_count(), 3);
        // The surviving caches are the most recently checked ones.
        let warm = session.check(&SourceFile::new("m9.rtr", "(define x 1)".to_string()));
        assert_eq!(warm.stats.rechecked_items, Some(0), "m9 stayed cached");
        let cold = session.check(&SourceFile::new("m0.rtr", "(define x 1)".to_string()));
        assert!(
            cold.stats.rechecked_items.is_none() || cold.stats.rechecked_items == Some(1),
            "m0 was evicted and re-checks"
        );
        session.forget("m9.rtr");
        assert!(session.cached_file_count() <= 3);
    }

    #[test]
    fn a_pre_cancelled_check_degrades_to_e0202_and_is_not_cached() {
        let session = Session::new(SessionConfig::default());
        let file = SourceFile::new(
            "c.rtr",
            "(define (f [x : Int]) (add1 x))\n(define (g [y : Int]) (f y))\n",
        );
        let token = CancelToken::new();
        token.cancel();
        let report = session.check_cancellable(&file, &token);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == Code::ResourceExhausted),
            "{:#?}",
            report.diagnostics
        );
        // The degraded verdicts must not persist: a fresh (un-cancelled)
        // check of the same file comes back clean.
        let clean = session.check(&file);
        assert!(clean.is_clean(), "{:#?}", clean.diagnostics);
    }
}
