//! A minimal, deterministic, dependency-free stand-in for the `rand`
//! crate, providing exactly the API subset this workspace uses:
//! [`Rng::gen_range`] over integer ranges, [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`].
//!
//! The workspace builds fully offline; this shim keeps `use rand::...`
//! imports source-compatible with the real crate for the call sites we
//! have. The generator is splitmix64 — statistically fine for corpus
//! synthesis and benchmarks, not cryptographic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit values.
pub trait RngCore {
    /// Produce the next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can sample a value of `T` from a random source.
pub trait SampleRange<T> {
    /// Sample uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample a bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let a = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&a));
            let b = rng.gen_range(0..5u8);
            assert!(b < 5);
            let c = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&c));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }
}
