//! A minimal, dependency-free stand-in for the `criterion` benchmarking
//! crate, source-compatible with the API subset this workspace's bench
//! targets use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `sample_size`, `throughput`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! a fixed number of batches; mean and min per-iteration wall time are
//! printed in a criterion-like one-line format. This is deliberately
//! simple — the goal is that `cargo bench` produces useful numbers and
//! `cargo bench --no-run` keeps every bench target compiling, without any
//! network dependency.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    /// Substring filter taken from the command line, as `cargo bench -- <filter>`.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo passes `--bench` (and test-harness-style flags) to bench
        // binaries; anything that is not a flag is a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 60,
            throughput: None,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let id = id.to_string();
        if self.matches(&id) {
            run_one(&id, 60, None, |b| f(b));
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare the amount of work per iteration (reported as a rate).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, self.throughput, |b| f(b));
        }
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(&full, self.sample_size, self.throughput, |b| f(b, input));
        }
        self
    }

    /// Finish the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work-per-iteration declaration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iteration processes this many abstract elements.
    Elements(u64),
    /// Iteration processes this many bytes.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Calibrate an iteration count so one sample takes roughly `target`.
fn calibrate<F: FnMut(&mut Bencher)>(f: &mut F, target: Duration) -> u64 {
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            return iters.max(1);
        }
        // Aim straight for the target, with headroom for noise.
        let per_iter = b.elapsed.as_nanos().max(1) / iters as u128;
        let goal = (target.as_nanos() / per_iter).clamp(iters as u128 + 1, (iters as u128) * 16);
        iters = goal as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let iters = calibrate(&mut f, Duration::from_millis(5));
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!(
        "{id:<48} mean {:>12}  min {:>12}{rate}",
        fmt_time(mean),
        fmt_time(min)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a group-runner function from benchmark functions, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` from group-runner functions, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
