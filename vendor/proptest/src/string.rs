//! String generation from a small regex subset.
//!
//! Real proptest lets a `&str` literal act as a strategy generating
//! strings matching the regex. This shim supports the subset the
//! workspace's tests use: literal characters, escaped characters,
//! character classes `[..]` (with ranges and escapes), `\PC` ("any
//! printable"), `.`, and the repetitions `*`, `+`, `?`, `{m}`, `{m,n}`.

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
enum Atom {
    /// A fixed character.
    Literal(char),
    /// Any character from the listed inclusive ranges.
    Class(Vec<(char, char)>),
    /// Any printable ASCII character plus a few common unicode chars.
    Printable,
}

#[derive(Clone, Copy, Debug)]
struct Rep {
    min: u32,
    max: u32,
}

/// Generate a string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for (atom, rep) in &atoms {
        let span = u64::from(rep.max - rep.min) + 1;
        let n = rep.min + rng.below(span) as u32;
        for _ in 0..n {
            out.push(gen_atom(atom, rng));
        }
    }
    out
}

fn gen_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut k = rng.below(total);
            for (lo, hi) in ranges {
                let size = (*hi as u64) - (*lo as u64) + 1;
                if k < size {
                    return char::from_u32(*lo as u32 + k as u32).unwrap_or(*lo);
                }
                k -= size;
            }
            unreachable!("class sampling is exhaustive")
        }
        Atom::Printable => {
            // Printable ASCII most of the time, occasional unicode.
            if rng.below(8) == 0 {
                ['λ', 'é', '中', '∀', '🦀'][rng.below(5) as usize]
            } else {
                (b' ' + rng.below(95) as u8) as char
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<(Atom, Rep)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // `\PC` / `\pC`-style unicode category: treat as printable.
                        i += 1; // skip the category letter
                        Atom::Printable
                    }
                    Some(&c) => Atom::Literal(unescape(c)),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                }
            }
            '[' => {
                let (class, next) = parse_class(&chars, i + 1, pattern);
                i = next - 1; // will be advanced below
                class
            }
            '.' => Atom::Printable,
            c => Atom::Literal(c),
        };
        i += 1;
        let rep = match chars.get(i) {
            Some('*') => {
                i += 1;
                Rep { min: 0, max: 12 }
            }
            Some('+') => {
                i += 1;
                Rep { min: 1, max: 12 }
            }
            Some('?') => {
                i += 1;
                Rep { min: 0, max: 1 }
            }
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{..}} in pattern {pattern:?}"));
                let spec: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                let (min, max) = match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().unwrap_or_else(|_| panic!("bad repeat {spec:?}")),
                        hi.parse().unwrap_or_else(|_| panic!("bad repeat {spec:?}")),
                    ),
                    None => {
                        let n = spec
                            .parse()
                            .unwrap_or_else(|_| panic!("bad repeat {spec:?}"));
                        (n, n)
                    }
                };
                Rep { min, max }
            }
            _ => Rep { min: 1, max: 1 },
        };
        out.push((atom, rep));
    }
    out
}

fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Atom, usize) {
    let mut ranges: Vec<(char, char)> = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = *chars
            .get(i)
            .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
        match c {
            ']' => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                assert!(
                    !ranges.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                return (Atom::Class(ranges), i + 1);
            }
            '\\' => {
                i += 1;
                let e = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in class in {pattern:?}"));
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(unescape(e));
                i += 1;
            }
            '-' if pending.is_some() && chars.get(i + 1).is_some_and(|&n| n != ']') => {
                let lo = pending.take().expect("checked above");
                i += 1;
                let mut hi = chars[i];
                if hi == '\\' {
                    i += 1;
                    hi = unescape(chars[i]);
                }
                assert!(lo <= hi, "inverted class range in pattern {pattern:?}");
                ranges.push((lo, hi));
                i += 1;
            }
            _ => {
                if let Some(p) = pending.take() {
                    ranges.push((p, p));
                }
                pending = Some(c);
                i += 1;
            }
        }
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case(123, 0)
    }

    #[test]
    fn star_repeats_class() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[ab]*", &mut rng);
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s:?}");
        }
    }

    #[test]
    fn paren_soup_pattern_parses() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate_from_pattern("[()\\[\\] a-z0-9#:;\"\\\\.-]*", &mut rng);
            for c in s.chars() {
                assert!(
                    "()[] #:;\"\\.-".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "unexpected char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn printable_star() {
        let mut rng = rng();
        let s = generate_from_pattern("\\PC*", &mut rng);
        assert!(s.len() <= 64);
    }

    #[test]
    fn bounded_repeat() {
        let mut rng = rng();
        for _ in 0..50 {
            let s = generate_from_pattern("[a-z]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
        }
    }
}
