//! A minimal, dependency-free stand-in for the `proptest` crate,
//! source-compatible with the API subset this workspace's property tests
//! use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, `prop_filter`, `boxed`; [`strategy::BoxedStrategy`],
//!   [`strategy::Union`], [`strategy::Just`];
//! * integer ranges, tuples of strategies, string literals (a small regex
//!   subset) as strategies; [`collection::vec`]; [`arbitrary::any`];
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, and
//!   [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_oneof!`];
//! * [`test_runner::ProptestConfig`], [`test_runner::TestCaseError`].
//!
//! Differences from real proptest: generation is purely random (fixed
//! deterministic seed per test name and case index, so runs are
//! reproducible) and there is **no shrinking** — on failure the full
//! failing input's `Debug` form is printed instead. That trade keeps the
//! shim small while preserving the tests' semantics: each property is
//! still checked on the configured number of generated cases.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::collection::vec(..)` etc. resolve.
    pub mod prop {
        pub use crate::{collection, strategy};
    }
}

/// Random choice between several strategies with the same value type.
///
/// Each arm is boxed and the union picks one uniformly per generated
/// case. The weighted `w => strategy` arm form of real proptest is not
/// supported (unused in this workspace).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Fail the current test case with a formatted message unless `$cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current test case unless `$left == $right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current test case unless `$left != $right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strategies = ($($strategy,)+);
            $crate::test_runner::TestRunner::new(config).run_named(
                stringify!($name),
                &strategies,
                |__proptest_values| {
                    let ($($pat,)+) = __proptest_values;
                    let _: () = $body;
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}
