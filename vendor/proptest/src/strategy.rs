//! The [`Strategy`] trait and its combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Retry generation until `f` accepts the value (bounded; panics if
    /// the predicate rejects too often).
    fn prop_filter<R, F>(self, reason: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            f,
        }
    }

    /// Build recursive values: `recurse` receives a strategy for the
    /// previous level and returns the strategy for one level deeper.
    /// `depth` bounds the recursion; the size hints are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut current: BoxedStrategy<Self::Value> = self.clone().boxed();
        for _ in 0..depth {
            // Each level chooses between bottoming out at a leaf and
            // recursing one level further.
            let deeper = recurse(current);
            current = Union::new(vec![self.clone().boxed(), deeper.boxed()]).boxed();
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T>
    where
        Self: Sized + 'static,
    {
        self
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of a common value type.
#[derive(Clone, Debug)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Build a union; `options` must be non-empty.
    pub fn new(options: impl IntoIterator<Item = S>) -> Self {
        let options: Vec<S> = options.into_iter().collect();
        assert!(
            !options.is_empty(),
            "Union::new requires at least one option"
        );
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot generate from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot generate from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);
impl_tuple_strategy!(A, B, C, D, E, F2, G);
impl_tuple_strategy!(A, B, C, D, E, F2, G, H);

impl Strategy for &'static str {
    type Value = String;

    /// String literals act as regex-shaped generators (see [`crate::string`]).
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
