//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical [`Strategy`] (shim version of proptest's
/// `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Sample an unconstrained value.
    fn sample(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn sample(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for char {
    fn sample(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{fffd}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}
