//! Solver substrate for *Occurrence Typing Modulo Theories* (PLDI 2016).
//!
//! The paper's type system λ_RTR is parameterized by external theories with
//! sound solvers (§3.4: rule L-Theory consults "a solver for theory T with
//! the relevant knowledge from Γ"). This crate provides those solvers,
//! implemented from scratch:
//!
//! * [`lin`] — the theory of **linear integer arithmetic**, decided by
//!   Fourier–Motzkin elimination with integer tightening, exactly the
//!   "lightweight solver" the paper used for the vector-bounds case study;
//!   plus a brute-force baseline used as a test oracle and benchmark
//!   comparator.
//! * [`sat`] — a CDCL **SAT solver** (watched literals, first-UIP clause
//!   learning, activity heuristics, restarts).
//! * [`bv`] — the theory of fixed-width **bitvectors**, bit-blasted onto
//!   the SAT solver; this replaces the paper's use of Z3 (§2.2) with an
//!   equally complete in-tree decision procedure.
//! * [`re`] — the theory of **regular expressions** (the extension the
//!   paper's conclusion anticipates, §7): a from-scratch regex engine with
//!   an automata-based decision procedure for membership constraints.
//! * [`rational`] — exact rational arithmetic underpinning the linear
//!   solver.
//!
//! The crate is deliberately ignorant of the type system: it speaks only
//! [`lin::SolverVar`]s, linear constraints, CNF and bitvector terms. The
//! `rtr-core` crate translates type-level symbolic objects into these
//! vocabularies.
//!
//! # Examples
//!
//! Proving the bound check that makes a vector access safe (§2.1):
//!
//! ```
//! use rtr_solver::lin::{Constraint, FourierMotzkin, LinExpr, SolverVar};
//!
//! let i = LinExpr::var(SolverVar(0));
//! let len = LinExpr::var(SolverVar(1));
//! let facts = [
//!     Constraint::ge(i.clone(), LinExpr::constant(0)),
//!     Constraint::lt(i.clone(), len.clone()),
//! ];
//! // facts ⊢ i ≤ len - 1
//! let goal = Constraint::le(i, len.sub(&LinExpr::constant(1)));
//! assert!(FourierMotzkin::default().entails(&facts, &goal));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bv;
pub mod fxhash;
pub mod lin;
pub mod rational;
pub mod re;
pub mod sat;
