//! The theory of **regular expressions** — the extension the paper's
//! conclusion anticipates ("we anticipate that other programs, ranging
//! from fixed-width arithmetic to theories of regular expressions, can
//! similarly benefit", §7).
//!
//! Following the §3.4 recipe for integrating a new theory, this module
//! provides the solver side: a from-scratch regex engine (parser →
//! Thompson NFA → subset-construction DFA) and a decision procedure for
//! conjunctions of (possibly negated) membership constraints
//! `s ∈ L(r)` / `s ∉ L(r)`. `rtr-core` lifts `(regexp-match? #rx"…" s)`
//! tests into these constraints exactly the way `(≤ i (len v))` tests are
//! lifted into linear arithmetic.
//!
//! Matching is **anchored** (the whole string must match) and the alphabet
//! is ASCII; non-ASCII strings match no regex, in both the runtime matcher
//! and the solver, so the two semantics agree everywhere — which is what
//! the model relation (M-Theory) requires.
//!
//! # Examples
//!
//! Deciding that a validated string is a well-formed decimal number:
//!
//! ```
//! use std::sync::Arc;
//! use rtr_solver::lin::SolverVar;
//! use rtr_solver::re::{ReConstraint, ReSolver, Regex};
//!
//! let s = SolverVar(0);
//! let decimal = Arc::new(Regex::parse("-?[0-9]+")?);
//! let digits = Arc::new(Regex::parse("[0-9]+")?);
//! let solver = ReSolver::default();
//!
//! // s ∈ [0-9]+ ⊢ s ∈ -?[0-9]+   (membership is monotone in the language)
//! assert!(solver.entails(&[ReConstraint::member(s, digits)], &ReConstraint::member(s, decimal)));
//! # Ok::<(), rtr_solver::re::ReParseError>(())
//! ```

mod dfa;
mod nfa;
mod session;
mod solver;
mod syntax;

pub use dfa::Dfa;
pub use nfa::Nfa;
pub use session::{ReSession, ReSessionStats};
pub use solver::{ReConfig, ReConstraint, ReResult, ReSolver};
pub use syntax::{ClassSet, ReParseError, Regex, ALPHABET};
