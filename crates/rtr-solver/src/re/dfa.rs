//! Deterministic automata: subset construction, boolean combinations and
//! emptiness — the decision procedures behind the regex theory.
//!
//! Satisfiability of a conjunction of memberships `s ∈ L(r₁) ∧ … ∧
//! s ∉ L(rₖ)` reduces to non-emptiness of `⋂ L(rᵢ) ∩ ⋂ L(rⱼ)ᶜ`; DFAs make
//! complement trivial (they are complete by construction) and product
//! automata give intersection.

use std::collections::HashMap;

use super::nfa::{Nfa, StateId};
use super::syntax::{Regex, ALPHABET};

/// A complete deterministic finite automaton over the ASCII alphabet.
///
/// Every state has a transition on every symbol (a dead state is materialized
/// during construction), which makes [`Dfa::complement`] a pure accept-flip.
///
/// # Examples
///
/// ```
/// use rtr_solver::re::{Dfa, Regex};
///
/// let digits = Dfa::compile(&Regex::parse("[0-9]+")?, 1 << 12).unwrap();
/// assert!(digits.matches(b"42"));
/// let no_digits = digits.complement();
/// assert!(no_digits.matches(b"forty-two"));
/// assert!(!no_digits.matches(b"42"));
/// # Ok::<(), rtr_solver::re::ReParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Dfa {
    /// `trans[s][c]` — the successor of state `s` on symbol `c`.
    /// Rows are boxed on purpose: growing the outer `Vec` then moves
    /// 8-byte pointers instead of 1 KiB rows.
    #[allow(clippy::vec_box)]
    trans: Vec<Box<[StateId; ALPHABET]>>,
    accept: Vec<bool>,
    start: StateId,
}

impl Dfa {
    /// Compiles a regex into a DFA via Thompson + subset construction,
    /// giving up (returning `None`) if more than `max_states` DFA states
    /// materialize. Callers treat `None` as *unknown* (conservative).
    pub fn compile(re: &Regex, max_states: usize) -> Option<Dfa> {
        Dfa::from_nfa(&Nfa::compile(re), max_states)
    }

    /// Subset construction.
    pub fn from_nfa(nfa: &Nfa, max_states: usize) -> Option<Dfa> {
        let mut start_set = vec![nfa.start()];
        nfa.eps_closure(&mut start_set);

        let mut builder = Builder::<Vec<StateId>>::default();
        let start = builder
            .intern(start_set, |set| set.iter().any(|&s| nfa.is_accept(s)))
            .0;
        let mut work = vec![start];
        while let Some(id) = work.pop() {
            if builder.keys.len() > max_states {
                return None;
            }
            let set = builder.keys[id as usize].clone();
            for c in 0..ALPHABET as u8 {
                let mut next = nfa.step(&set, c);
                nfa.eps_closure(&mut next);
                let (next_id, is_new) =
                    builder.intern(next, |set| set.iter().any(|&s| nfa.is_accept(s)));
                if is_new {
                    work.push(next_id);
                }
                builder.trans[id as usize][c as usize] = next_id;
            }
        }
        Some(builder.finish(start))
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.trans.len()
    }

    /// The complement automaton (`L(self)ᶜ` within ASCII strings).
    pub fn complement(&self) -> Dfa {
        Dfa {
            trans: self.trans.clone(),
            accept: self.accept.iter().map(|a| !a).collect(),
            start: self.start,
        }
    }

    /// The product automaton accepting `L(self) ∩ L(other)`, or `None` if
    /// it would exceed `max_states` (treated as unknown by callers).
    pub fn intersect(&self, other: &Dfa, max_states: usize) -> Option<Dfa> {
        let accepts =
            |(a, b): &(StateId, StateId)| self.accept[*a as usize] && other.accept[*b as usize];
        let mut builder = Builder::<(StateId, StateId)>::default();
        let start = builder.intern((self.start, other.start), accepts).0;
        let mut work = vec![start];
        while let Some(id) = work.pop() {
            if builder.keys.len() > max_states {
                return None;
            }
            let (a, b) = builder.keys[id as usize];
            for c in 0..ALPHABET {
                let next = (self.trans[a as usize][c], other.trans[b as usize][c]);
                let (next_id, is_new) = builder.intern(next, accepts);
                if is_new {
                    work.push(next_id);
                }
                builder.trans[id as usize][c] = next_id;
            }
        }
        Some(builder.finish(start))
    }

    /// Is the accepted language empty?
    pub fn is_empty(&self) -> bool {
        self.shortest_accepted().is_none()
    }

    /// A shortest accepted string (BFS), or `None` if the language is
    /// empty. This is the *witness* the solver returns in models.
    pub fn shortest_accepted(&self) -> Option<Vec<u8>> {
        // parent[s] = (predecessor, symbol) along a shortest path.
        let mut parent: Vec<Option<(StateId, u8)>> = vec![None; self.trans.len()];
        let mut visited = vec![false; self.trans.len()];
        let mut queue = std::collections::VecDeque::new();
        visited[self.start as usize] = true;
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            if self.accept[s as usize] {
                let mut out = Vec::new();
                let mut cur = s;
                while let Some((prev, c)) = parent[cur as usize] {
                    out.push(c);
                    cur = prev;
                }
                out.reverse();
                return Some(out);
            }
            for c in 0..ALPHABET as u8 {
                let t = self.trans[s as usize][c as usize];
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    parent[t as usize] = Some((s, c));
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Anchored match (deterministic run). Non-ASCII input is rejected.
    pub fn matches(&self, input: &[u8]) -> bool {
        self.matches_inner(input)
    }

    /// The minimal equivalent DFA (Moore's partition refinement).
    ///
    /// Construction only creates reachable states, so minimization is
    /// pure block refinement: start from the accept/reject partition and
    /// split blocks until every state in a block has the same
    /// block-transition signature. The solver minimizes between product
    /// steps to keep intersection chains from compounding.
    pub fn minimize(&self) -> Dfa {
        let n = self.trans.len();
        // Initial partition: accepting vs non-accepting.
        let mut block: Vec<u32> = self.accept.iter().map(|&a| a as u32).collect();
        let mut num_blocks = {
            let accepting = self.accept.iter().filter(|&&a| a).count();
            if accepting == 0 || accepting == n {
                // Single block; normalize ids.
                block.iter_mut().for_each(|b| *b = 0);
                1
            } else {
                2
            }
        };
        loop {
            let mut ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next = vec![0u32; n];
            for s in 0..n {
                let sig = (
                    block[s],
                    (0..ALPHABET)
                        .map(|c| block[self.trans[s][c] as usize])
                        .collect::<Vec<u32>>(),
                );
                let fresh = ids.len() as u32;
                next[s] = *ids.entry(sig).or_insert(fresh);
            }
            let refined = ids.len();
            block = next;
            if refined == num_blocks {
                break;
            }
            num_blocks = refined;
        }
        // One representative state per block.
        let mut repr: Vec<Option<usize>> = vec![None; num_blocks];
        for (s, &b) in block.iter().enumerate() {
            if repr[b as usize].is_none() {
                repr[b as usize] = Some(s);
            }
        }
        let mut trans = Vec::with_capacity(num_blocks);
        let mut accept = Vec::with_capacity(num_blocks);
        for r in &repr {
            let s = r.expect("every block has a member");
            let mut row = Box::new([0u32; ALPHABET]);
            for c in 0..ALPHABET {
                row[c] = block[self.trans[s][c] as usize];
            }
            trans.push(row);
            accept.push(self.accept[s]);
        }
        Dfa {
            trans,
            accept,
            start: block[self.start as usize],
        }
    }
}

/// Shared state-interning machinery for the two worklist constructions
/// (subset construction keyed by NFA-state sets, products keyed by state
/// pairs).
struct Builder<K> {
    ids: HashMap<K, StateId>,
    keys: Vec<K>,
    /// Boxed rows, same rationale as [`Dfa::trans`].
    #[allow(clippy::vec_box)]
    trans: Vec<Box<[StateId; ALPHABET]>>,
    accept: Vec<bool>,
}

impl<K> Default for Builder<K> {
    fn default() -> Builder<K> {
        Builder {
            ids: HashMap::new(),
            keys: Vec::new(),
            trans: Vec::new(),
            accept: Vec::new(),
        }
    }
}

impl<K: Clone + Eq + std::hash::Hash> Builder<K> {
    /// Returns the id for `key`, creating a state (and computing its
    /// acceptance) the first time; the flag reports whether it was new.
    fn intern(&mut self, key: K, accepts: impl Fn(&K) -> bool) -> (StateId, bool) {
        if let Some(&id) = self.ids.get(&key) {
            return (id, false);
        }
        let id = self.keys.len() as StateId;
        self.accept.push(accepts(&key));
        self.ids.insert(key.clone(), id);
        self.keys.push(key);
        self.trans.push(Box::new([0; ALPHABET]));
        (id, true)
    }

    fn finish(self, start: StateId) -> Dfa {
        Dfa {
            trans: self.trans,
            accept: self.accept,
            start,
        }
    }
}

impl Dfa {
    fn matches_inner(&self, input: &[u8]) -> bool {
        let mut s = self.start;
        for &c in input {
            if c as usize >= ALPHABET {
                return false;
            }
            s = self.trans[s as usize][c as usize];
        }
        self.accept[s as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 1 << 12;

    fn dfa(pattern: &str) -> Dfa {
        Dfa::compile(&Regex::parse(pattern).expect("pattern parses"), BUDGET)
            .expect("within budget")
    }

    /// All strings over {a, b} up to length `n`.
    fn strings_up_to(n: usize) -> Vec<Vec<u8>> {
        let mut out = vec![Vec::new()];
        let mut frontier = vec![Vec::new()];
        for _ in 0..n {
            let mut next = Vec::new();
            for s in &frontier {
                for c in [b'a', b'b'] {
                    let mut t = s.clone();
                    t.push(c);
                    out.push(t.clone());
                    next.push(t);
                }
            }
            frontier = next;
        }
        out
    }

    #[test]
    fn dfa_agrees_with_nfa() {
        for pattern in ["(a|b)*a", "a*b*", "(ab)+", "a{2,4}", "[^b]*"] {
            let re = Regex::parse(pattern).expect("pattern parses");
            let nfa = Nfa::compile(&re);
            let d = Dfa::from_nfa(&nfa, BUDGET).expect("within budget");
            for s in strings_up_to(6) {
                assert_eq!(
                    d.matches(&s),
                    nfa.matches(&s),
                    "{pattern} on {:?}",
                    String::from_utf8_lossy(&s)
                );
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa("(a|b)*a");
        let c = d.complement();
        for s in strings_up_to(5) {
            assert_ne!(d.matches(&s), c.matches(&s));
        }
        // Complement is involutive.
        let cc = c.complement();
        for s in strings_up_to(4) {
            assert_eq!(d.matches(&s), cc.matches(&s));
        }
    }

    #[test]
    fn intersection_is_conjunction() {
        let d1 = dfa("a*b*");
        let d2 = dfa("(ab)*|a+");
        let i = d1.intersect(&d2, BUDGET).expect("within budget");
        for s in strings_up_to(5) {
            assert_eq!(i.matches(&s), d1.matches(&s) && d2.matches(&s));
        }
    }

    #[test]
    fn emptiness_and_witnesses() {
        assert!(Dfa::compile(&Regex::Empty, BUDGET).unwrap().is_empty());
        let d = dfa("a+b");
        let w = d.shortest_accepted().expect("nonempty");
        assert_eq!(w, b"ab");
        assert!(d.matches(&w));
        // a+ ∩ b+ is empty.
        let i = dfa("a+")
            .intersect(&dfa("b+"), BUDGET)
            .expect("within budget");
        assert!(i.is_empty());
        // a* ∩ (a|b)*b is nonempty? No: strings of a's never end in b —
        // except the intersection contains nothing. Check the machinery.
        let i = dfa("a*")
            .intersect(&dfa("(a|b)*b"), BUDGET)
            .expect("within budget");
        assert!(i.is_empty());
    }

    #[test]
    fn shortest_witness_is_shortest() {
        let d = dfa("aaa|a");
        assert_eq!(d.shortest_accepted().expect("nonempty"), b"a");
        let e = dfa("a*");
        assert_eq!(e.shortest_accepted().expect("nonempty"), b"");
    }

    #[test]
    fn minimize_preserves_the_language() {
        for pattern in ["(a|b)*a", "a*b*", "(ab)+|a", "a{2,4}", "[^b]*b?"] {
            let d = dfa(pattern);
            let m = d.minimize();
            assert!(m.num_states() <= d.num_states());
            for s in strings_up_to(6) {
                assert_eq!(
                    m.matches(&s),
                    d.matches(&s),
                    "{pattern} on {:?}",
                    String::from_utf8_lossy(&s)
                );
            }
        }
    }

    #[test]
    fn minimize_is_canonical_up_to_state_count() {
        // Two syntactically different regexes for the same language reach
        // the same minimal size.
        let m1 = dfa("(ab)*").minimize();
        let m2 = dfa("((ab)*)?|(ab)*").minimize();
        assert_eq!(m1.num_states(), m2.num_states());
        // Minimization is idempotent.
        assert_eq!(m1.minimize().num_states(), m1.num_states());
    }

    #[test]
    fn minimize_collapses_redundancy() {
        // a|aa|aaa|aa has duplicate alternatives whose Thompson NFA
        // produces redundant subset states.
        let d = dfa("a|aa|aaa|aa");
        let m = d.minimize();
        // Minimal complete DFA for {a, aa, aaa}: start, a, aa, aaa, dead.
        assert_eq!(m.num_states(), 5, "from {} states", d.num_states());
        assert!(m.matches(b"aa") && !m.matches(b"aaaa"));
    }

    #[test]
    fn minimize_handles_trivial_partitions() {
        // All-rejecting (∅) and all-accepting (Σ* via [^]-complement)
        // collapse to a single state.
        let empty = Dfa::compile(&Regex::Empty, BUDGET).unwrap().minimize();
        assert_eq!(empty.num_states(), 1);
        assert!(empty.is_empty());
        let all = dfa(".*").minimize();
        assert_eq!(all.num_states(), 1);
        assert!(all.matches(b"anything"));
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // A regex whose DFA needs > 2 states with budget 1.
        let re = Regex::parse("ab").expect("pattern parses");
        assert!(Dfa::compile(&re, 1).is_none());
    }

    #[test]
    fn non_ascii_rejected() {
        let d = dfa(".*");
        assert!(!d.matches("é".as_bytes()));
        assert!(d.matches(b"e"));
    }
}
