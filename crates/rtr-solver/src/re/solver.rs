//! The regex theory solver: satisfiability and entailment for
//! conjunctions of (possibly negated) regex-membership constraints.
//!
//! Constraints mention string-valued solver variables; constraints on
//! *different* variables are independent, so the solver decides each
//! variable's conjunction separately by intersecting membership DFAs with
//! complements of non-membership DFAs and testing emptiness. The check is
//! a *decision procedure* (complete) up to the configurable DFA state
//! budget; budget exhaustion yields [`ReResult::Unknown`], which the type
//! checker treats as "not proved" — conservative, like the paper's other
//! theories.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::dfa::Dfa;
use super::syntax::Regex;
use crate::lin::SolverVar;

/// One membership literal: `var ∈ L(regex)` (or `∉` when not positive).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReConstraint {
    /// The string-valued variable.
    pub var: SolverVar,
    /// The regular expression.
    pub regex: Arc<Regex>,
    /// `true` for membership, `false` for non-membership.
    pub positive: bool,
}

impl ReConstraint {
    /// A positive membership constraint.
    pub fn member(var: SolverVar, regex: Arc<Regex>) -> ReConstraint {
        ReConstraint {
            var,
            regex,
            positive: true,
        }
    }

    /// A negative membership constraint.
    pub fn not_member(var: SolverVar, regex: Arc<Regex>) -> ReConstraint {
        ReConstraint {
            var,
            regex,
            positive: false,
        }
    }

    /// The negated literal.
    pub fn negate(&self) -> ReConstraint {
        ReConstraint {
            positive: !self.positive,
            ..self.clone()
        }
    }
}

/// Outcome of a satisfiability check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReResult {
    /// Satisfiable, with a witness string per constrained variable.
    Sat(BTreeMap<SolverVar, String>),
    /// Unsatisfiable.
    Unsat,
    /// The DFA state budget was exhausted; treat as "not proved".
    Unknown,
}

impl ReResult {
    /// Is this `Unsat`?
    pub fn is_unsat(&self) -> bool {
        matches!(self, ReResult::Unsat)
    }
}

/// Budget configuration for [`ReSolver`].
#[derive(Clone, Copy, Debug)]
pub struct ReConfig {
    /// Maximum DFA states per construction/product before giving up.
    pub max_dfa_states: usize,
}

impl Default for ReConfig {
    fn default() -> ReConfig {
        ReConfig {
            max_dfa_states: 1 << 13,
        }
    }
}

/// Decision procedure for the regex theory.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use rtr_solver::lin::SolverVar;
/// use rtr_solver::re::{ReConstraint, ReSolver, Regex};
///
/// let s = SolverVar(0);
/// let digits = Arc::new(Regex::parse("[0-9]+")?);
/// let nonempty = Arc::new(Regex::parse(".+")?);
/// // s ∈ [0-9]+ ⊢ s ∈ .+
/// let solver = ReSolver::default();
/// assert!(solver.entails(
///     &[ReConstraint::member(s, digits.clone())],
///     &ReConstraint::member(s, nonempty),
/// ));
/// // but not the converse
/// assert!(!solver.entails(
///     &[ReConstraint::member(s, Arc::new(Regex::parse(".+")?))],
///     &ReConstraint::member(s, digits),
/// ));
/// # Ok::<(), rtr_solver::re::ReParseError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ReSolver {
    config: ReConfig,
    /// Optional wall-clock cutoff: past it, remaining constraints are
    /// skipped exactly like budget-blown ones (verdict degrades to
    /// [`ReResult::Unknown`], never flips).
    deadline: Option<std::time::Instant>,
}

impl ReSolver {
    /// A solver with the given budget.
    pub fn new(config: ReConfig) -> ReSolver {
        ReSolver {
            config,
            deadline: None,
        }
    }

    /// Installs (or clears) a wall-clock deadline. Past it, queries degrade
    /// to [`ReResult::Unknown`] rather than being cut off mid-verdict.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Is the conjunction of `constraints` satisfiable?
    ///
    /// Returns a witness assignment on success. Unconstrained variables do
    /// not appear in the model.
    pub fn check(&self, constraints: &[ReConstraint]) -> ReResult {
        let budget = self.config.max_dfa_states;
        let mut by_var: BTreeMap<SolverVar, Vec<&ReConstraint>> = BTreeMap::new();
        for c in constraints {
            by_var.entry(c.var).or_default().push(c);
        }
        let mut model = BTreeMap::new();
        let mut unknown = false;
        for (var, cs) in by_var {
            // Start from Σ* and intersect each literal's language.
            let mut acc: Option<Dfa> = None;
            for c in cs {
                if self.past_deadline() {
                    unknown = true;
                    break;
                }
                let Some(mut d) = Dfa::compile(&c.regex, budget) else {
                    unknown = true;
                    continue;
                };
                if !c.positive {
                    d = d.complement();
                }
                // Minimizing between steps keeps intersection chains from
                // compounding state counts.
                let d = d.minimize();
                acc = Some(match acc {
                    None => d,
                    Some(prev) => match prev.intersect(&d, budget) {
                        Some(i) => i.minimize(),
                        None => {
                            unknown = true;
                            prev
                        }
                    },
                });
            }
            match acc.as_ref().and_then(Dfa::shortest_accepted) {
                Some(witness) => {
                    let s =
                        String::from_utf8(witness).expect("witnesses are ASCII by construction");
                    model.insert(var, s);
                }
                None => {
                    if acc.is_some() {
                        // The (possibly partial) intersection is empty.
                        // Dropping budget-blown literals only *grows* the
                        // language, so emptiness of the partial
                        // intersection still refutes the full conjunction.
                        return ReResult::Unsat;
                    }
                    // Every literal for this variable blew the budget.
                    unknown = true;
                }
            }
        }
        if unknown {
            // Witnesses found for other variables are still valid, but a
            // skipped literal somewhere means the conjunction as a whole is
            // undecided.
            return ReResult::Unknown;
        }
        ReResult::Sat(model)
    }

    /// Do `facts` entail `goal`? Decided as UNSAT of `facts ∧ ¬goal`;
    /// `Unknown` is conservatively `false`.
    pub fn entails(&self, facts: &[ReConstraint], goal: &ReConstraint) -> bool {
        let mut query: Vec<ReConstraint> = facts.to_vec();
        query.push(goal.negate());
        self.check(&query).is_unsat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Arc<Regex> {
        Arc::new(Regex::parse(p).expect("pattern parses"))
    }
    fn v(n: u32) -> SolverVar {
        SolverVar(n)
    }

    #[test]
    fn single_membership_is_sat_with_witness() {
        let solver = ReSolver::default();
        match solver.check(&[ReConstraint::member(v(0), re("ab*c"))]) {
            ReResult::Sat(m) => {
                let w = &m[&v(0)];
                assert!(Regex::parse("ab*c").unwrap().is_match(w), "witness {w:?}");
                assert_eq!(w, "ac", "BFS gives the shortest witness");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_memberships_are_unsat() {
        let solver = ReSolver::default();
        let cs = [
            ReConstraint::member(v(0), re("a+")),
            ReConstraint::member(v(0), re("b+")),
        ];
        assert_eq!(solver.check(&cs), ReResult::Unsat);
        // Positive and negative of the same language.
        let cs = [
            ReConstraint::member(v(0), re("a*")),
            ReConstraint::not_member(v(0), re("a*")),
        ];
        assert_eq!(solver.check(&cs), ReResult::Unsat);
    }

    #[test]
    fn distinct_variables_are_independent() {
        let solver = ReSolver::default();
        let cs = [
            ReConstraint::member(v(0), re("a+")),
            ReConstraint::member(v(1), re("b+")),
        ];
        match solver.check(&cs) {
            ReResult::Sat(m) => {
                assert_eq!(m[&v(0)], "a");
                assert_eq!(m[&v(1)], "b");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn entailment_by_language_inclusion() {
        let solver = ReSolver::default();
        // x ∈ [0-9]{4} ⊢ x ∈ [0-9]+
        assert!(solver.entails(
            &[ReConstraint::member(v(0), re("[0-9]{4}"))],
            &ReConstraint::member(v(0), re("[0-9]+")),
        ));
        // x ∈ [0-9]+ ⊬ x ∈ [0-9]{4}
        assert!(!solver.entails(
            &[ReConstraint::member(v(0), re("[0-9]+"))],
            &ReConstraint::member(v(0), re("[0-9]{4}")),
        ));
        // x ∈ a+, x ∉ aa* a ⊢ x ∈ a  (a+ minus aa+ is exactly "a")
        assert!(solver.entails(
            &[
                ReConstraint::member(v(0), re("a+")),
                ReConstraint::not_member(v(0), re("aaa*")),
            ],
            &ReConstraint::member(v(0), re("a")),
        ));
    }

    #[test]
    fn negative_goals() {
        let solver = ReSolver::default();
        // x ∈ a+ ⊢ x ∉ b+
        assert!(solver.entails(
            &[ReConstraint::member(v(0), re("a+"))],
            &ReConstraint::not_member(v(0), re("b+")),
        ));
        // x ∈ (a|b)+ ⊬ x ∉ b+
        assert!(!solver.entails(
            &[ReConstraint::member(v(0), re("(a|b)+"))],
            &ReConstraint::not_member(v(0), re("b+")),
        ));
    }

    #[test]
    fn no_facts_entail_only_tautologies() {
        let solver = ReSolver::default();
        // ⊢ x ∈ .* (every string matches)
        assert!(solver.entails(&[], &ReConstraint::member(v(0), re(".*"))));
        // ⊬ x ∈ a+
        assert!(!solver.entails(&[], &ReConstraint::member(v(0), re("a+"))));
    }

    #[test]
    fn empty_constraint_set_is_sat() {
        assert_eq!(
            ReSolver::default().check(&[]),
            ReResult::Sat(BTreeMap::new())
        );
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_wrong() {
        let solver = ReSolver::new(ReConfig { max_dfa_states: 1 });
        let cs = [ReConstraint::member(v(0), re("abc"))];
        assert_eq!(solver.check(&cs), ReResult::Unknown);
        // Entailment under an exhausted budget is conservatively false.
        assert!(!solver.entails(&[], &ReConstraint::member(v(0), re("abc"))));
    }

    #[test]
    fn unsat_survives_partial_budget_exhaustion() {
        // One literal blows the tiny budget but the remaining two already
        // contradict: dropping literals only grows the language, so the
        // refutation is still sound.
        let solver = ReSolver::new(ReConfig { max_dfa_states: 4 });
        let cs = [
            ReConstraint::member(v(0), re("a{40,60}b{40,60}")), // too big
            ReConstraint::member(v(0), re("a")),
            ReConstraint::member(v(0), re("b")),
        ];
        assert_eq!(solver.check(&cs), ReResult::Unsat);
    }
}
