//! Thompson construction and NFA simulation.
//!
//! The NFA is the runtime matcher (linear in `|input| · |regex|`) and the
//! input to the DFA's subset construction.

use super::syntax::{ClassSet, Regex};

/// A state index within an [`Nfa`].
pub type StateId = u32;

#[derive(Clone, Debug, Default)]
struct State {
    /// ε-transitions.
    eps: Vec<StateId>,
    /// Character-class transitions.
    trans: Vec<(ClassSet, StateId)>,
}

/// A Thompson-constructed nondeterministic finite automaton with a single
/// accepting state.
///
/// # Examples
///
/// ```
/// use rtr_solver::re::{Nfa, Regex};
///
/// let nfa = Nfa::compile(&Regex::parse("(ab)+")?);
/// assert!(nfa.matches(b"abab"));
/// assert!(!nfa.matches(b"aba"));
/// # Ok::<(), rtr_solver::re::ReParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
    accept: StateId,
}

impl Nfa {
    /// Compiles a regex via Thompson's construction (one fragment per AST
    /// node, ε-wired).
    pub fn compile(re: &Regex) -> Nfa {
        let mut nfa = Nfa {
            states: Vec::new(),
            start: 0,
            accept: 0,
        };
        let (s, a) = nfa.fragment(re);
        nfa.start = s;
        nfa.accept = a;
        nfa
    }

    /// Number of states (used to bound subset-construction inputs).
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Is `s` the accepting state?
    pub fn is_accept(&self, s: StateId) -> bool {
        s == self.accept
    }

    fn fresh(&mut self) -> StateId {
        self.states.push(State::default());
        (self.states.len() - 1) as StateId
    }

    fn eps(&mut self, from: StateId, to: StateId) {
        self.states[from as usize].eps.push(to);
    }

    /// Builds the fragment for `re`, returning `(entry, exit)`.
    fn fragment(&mut self, re: &Regex) -> (StateId, StateId) {
        match re {
            Regex::Empty => (self.fresh(), self.fresh()), // disconnected
            Regex::Epsilon => {
                let s = self.fresh();
                (s, s)
            }
            Regex::Class(cls) => {
                let s = self.fresh();
                let a = self.fresh();
                self.states[s as usize].trans.push((*cls, a));
                (s, a)
            }
            Regex::Concat(rs) => {
                let first = self.fresh();
                let mut cur = first;
                for r in rs {
                    let (s, a) = self.fragment(r);
                    self.eps(cur, s);
                    cur = a;
                }
                (first, cur)
            }
            Regex::Alt(rs) => {
                let s = self.fresh();
                let a = self.fresh();
                for r in rs {
                    let (rs_, ra) = self.fragment(r);
                    self.eps(s, rs_);
                    self.eps(ra, a);
                }
                (s, a)
            }
            Regex::Star(r) => {
                let s = self.fresh();
                let a = self.fresh();
                let (rs_, ra) = self.fragment(r);
                self.eps(s, rs_);
                self.eps(s, a);
                self.eps(ra, rs_);
                self.eps(ra, a);
                (s, a)
            }
        }
    }

    /// The ε-closure of `set`, in sorted order without duplicates.
    pub(crate) fn eps_closure(&self, set: &mut Vec<StateId>) {
        let mut seen: Vec<bool> = vec![false; self.states.len()];
        let mut stack: Vec<StateId> = Vec::with_capacity(set.len());
        for &s in set.iter() {
            if !seen[s as usize] {
                seen[s as usize] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &t in &self.states[s as usize].eps {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        set.clear();
        set.extend((0..self.states.len() as StateId).filter(|&s| seen[s as usize]));
    }

    /// All states reachable from `set` on character `c` (before closure).
    pub(crate) fn step(&self, set: &[StateId], c: u8) -> Vec<StateId> {
        let mut out = Vec::new();
        for &s in set {
            for (cls, t) in &self.states[s as usize].trans {
                if cls.contains(c) && !out.contains(t) {
                    out.push(*t);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Anchored match: does the NFA accept exactly `input`? Bytes ≥ 128
    /// match no class, so non-ASCII input is always rejected.
    pub fn matches(&self, input: &[u8]) -> bool {
        let mut current = vec![self.start];
        self.eps_closure(&mut current);
        for &c in input {
            if current.is_empty() {
                return false;
            }
            let mut next = self.step(&current, c);
            self.eps_closure(&mut next);
            current = next;
        }
        current.contains(&self.accept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &str) -> bool {
        Nfa::compile(&Regex::parse(pattern).expect("pattern parses")).matches(input.as_bytes())
    }

    #[test]
    fn literal_matching_is_anchored() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "abcd"));
        assert!(!m("abc", "xabc"));
        assert!(!m("abc", ""));
    }

    #[test]
    fn alternation_and_star() {
        assert!(m("a|b", "a"));
        assert!(m("a|b", "b"));
        assert!(!m("a|b", "ab"));
        assert!(m("(ab)*", ""));
        assert!(m("(ab)*", "ababab"));
        assert!(!m("(ab)*", "aba"));
    }

    #[test]
    fn plus_opt_classes() {
        assert!(m("[0-9]+", "2016"));
        assert!(!m("[0-9]+", ""));
        assert!(m("-?[0-9]+", "-7"));
        assert!(m("-?[0-9]+", "7"));
        assert!(!m("-?[0-9]+", "--7"));
    }

    #[test]
    fn empty_language_matches_nothing() {
        let nfa = Nfa::compile(&Regex::Empty);
        assert!(!nfa.matches(b""));
        assert!(!nfa.matches(b"a"));
    }

    #[test]
    fn epsilon_matches_only_empty() {
        let nfa = Nfa::compile(&Regex::Epsilon);
        assert!(nfa.matches(b""));
        assert!(!nfa.matches(b"a"));
    }

    #[test]
    fn non_ascii_input_never_matches() {
        assert!(!m(".*", "héllo")); // é is multi-byte, ≥ 0x80
        assert!(m(".*", "hello"));
    }

    #[test]
    fn nested_stars_terminate() {
        // (a*)* has ε-cycles; closure must not loop.
        assert!(m("(a*)*", ""));
        assert!(m("(a*)*", "aaaa"));
        assert!(!m("(a*)*", "b"));
    }

    #[test]
    fn realistic_patterns() {
        let ipish = r"\d{1,3}(\.\d{1,3}){3}";
        assert!(m(ipish, "192.168.0.1"));
        assert!(!m(ipish, "192.168.0"));
        let ident = r"[A-Za-z_]\w*";
        assert!(m(ident, "safe_vec_ref2"));
        assert!(!m(ident, "2fast"));
    }
}
