//! Regular-expression syntax: character classes, the regex AST, and a
//! parser for the surface pattern language.
//!
//! The alphabet is ASCII (bytes `0..=127`). Strings containing non-ASCII
//! bytes match no regex — a deliberate, conservative choice shared by the
//! runtime matcher and the solver so their verdicts always agree.

use std::fmt;

/// Number of symbols in the regex alphabet (ASCII).
pub const ALPHABET: usize = 128;

/// A set of ASCII characters, stored as a 128-bit set.
///
/// # Examples
///
/// ```
/// use rtr_solver::re::ClassSet;
///
/// let digits = ClassSet::range(b'0', b'9');
/// assert!(digits.contains(b'7'));
/// assert!(!digits.contains(b'a'));
/// assert_eq!(digits.len(), 10);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ClassSet {
    bits: [u64; 2],
}

impl ClassSet {
    /// The empty class (matches no character).
    pub fn empty() -> ClassSet {
        ClassSet::default()
    }

    /// The full class (any ASCII character) — the class of `.`.
    pub fn full() -> ClassSet {
        ClassSet {
            bits: [u64::MAX, u64::MAX],
        }
    }

    /// The singleton class `{c}`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not ASCII.
    pub fn singleton(c: u8) -> ClassSet {
        let mut s = ClassSet::empty();
        s.insert(c);
        s
    }

    /// The inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not ASCII or `lo > hi`.
    pub fn range(lo: u8, hi: u8) -> ClassSet {
        assert!(lo <= hi, "empty class range");
        let mut s = ClassSet::empty();
        for c in lo..=hi {
            s.insert(c);
        }
        s
    }

    /// Adds a character to the class.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not ASCII.
    pub fn insert(&mut self, c: u8) {
        assert!((c as usize) < ALPHABET, "non-ASCII character in class");
        self.bits[(c >> 6) as usize] |= 1 << (c & 63);
    }

    /// Does the class contain `c`? Non-ASCII bytes are never contained.
    pub fn contains(&self, c: u8) -> bool {
        (c as usize) < ALPHABET && self.bits[(c >> 6) as usize] & (1 << (c & 63)) != 0
    }

    /// Set union.
    pub fn union(&self, other: &ClassSet) -> ClassSet {
        ClassSet {
            bits: [self.bits[0] | other.bits[0], self.bits[1] | other.bits[1]],
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &ClassSet) -> ClassSet {
        ClassSet {
            bits: [self.bits[0] & other.bits[0], self.bits[1] & other.bits[1]],
        }
    }

    /// Complement within the ASCII alphabet.
    pub fn complement(&self) -> ClassSet {
        ClassSet {
            bits: [!self.bits[0], !self.bits[1]],
        }
    }

    /// Is the class empty?
    pub fn is_empty(&self) -> bool {
        self.bits == [0, 0]
    }

    /// Number of characters in the class.
    pub fn len(&self) -> usize {
        (self.bits[0].count_ones() + self.bits[1].count_ones()) as usize
    }

    /// Iterates over the members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..ALPHABET as u8).filter(move |&c| self.contains(c))
    }

    /// `\d` — ASCII digits.
    pub fn digits() -> ClassSet {
        ClassSet::range(b'0', b'9')
    }

    /// `\w` — word characters (`[A-Za-z0-9_]`).
    pub fn word() -> ClassSet {
        ClassSet::range(b'a', b'z')
            .union(&ClassSet::range(b'A', b'Z'))
            .union(&ClassSet::digits())
            .union(&ClassSet::singleton(b'_'))
    }

    /// `\s` — whitespace (`[ \t\n\r\x0b\x0c]`).
    pub fn space() -> ClassSet {
        let mut s = ClassSet::empty();
        for c in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
            s.insert(c);
        }
        s
    }
}

impl fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassSet[")?;
        let mut first = true;
        // Render as compact ranges.
        let mut it = self.iter().peekable();
        while let Some(lo) = it.next() {
            let mut hi = lo;
            while it.peek() == Some(&(hi + 1)) {
                hi = it.next().expect("peeked");
            }
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if lo == hi {
                write!(f, "{:?}", lo as char)?;
            } else {
                write!(f, "{:?}-{:?}", lo as char, hi as char)?;
            }
        }
        write!(f, "]")
    }
}

/// A regular expression over the ASCII alphabet.
///
/// Matching is *anchored* (full-match semantics): a regex used as a
/// type-level refinement describes the whole string, the same convention
/// Racket's `#rx"^…$"` patterns and type-level regex proposals use.
///
/// # Examples
///
/// ```
/// use rtr_solver::re::Regex;
///
/// let r = Regex::parse("[0-9]+").unwrap();
/// assert!(r.is_match("2016"));
/// assert!(!r.is_match("pldi16"));   // anchored: the whole string must match
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// The empty language ∅ (matches nothing).
    Empty,
    /// The empty string ε.
    Epsilon,
    /// One character drawn from a class.
    Class(ClassSet),
    /// Concatenation `r₁ r₂ …`.
    Concat(Vec<Regex>),
    /// Alternation `r₁ | r₂ | …`.
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// The single-character regex `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is not ASCII.
    pub fn char(c: u8) -> Regex {
        Regex::Class(ClassSet::singleton(c))
    }

    /// The literal string `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not ASCII.
    pub fn lit(s: &str) -> Regex {
        Regex::concat(s.bytes().map(Regex::char).collect())
    }

    /// Concatenation with unit/absorption simplification.
    pub fn concat(rs: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(rs.len());
        for r in rs {
            match r {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => out.extend(inner),
                r => out.push(r),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().expect("len checked"),
            _ => Regex::Concat(out),
        }
    }

    /// Alternation with unit simplification; single-character
    /// alternatives fuse into one class (`a|b|c` ≡ `[abc]`), which keeps
    /// the automata small.
    pub fn alt(rs: Vec<Regex>) -> Regex {
        let mut classes = ClassSet::empty();
        let mut has_class = false;
        let mut out = Vec::with_capacity(rs.len());
        let mut push = |r: Regex, classes: &mut ClassSet, has_class: &mut bool| match r {
            Regex::Empty => {}
            Regex::Class(s) => {
                *classes = classes.union(&s);
                *has_class = true;
            }
            r => {
                if !out.contains(&r) {
                    out.push(r);
                }
            }
        };
        for r in rs {
            match r {
                Regex::Alt(inner) => {
                    for r in inner {
                        push(r, &mut classes, &mut has_class);
                    }
                }
                r => push(r, &mut classes, &mut has_class),
            }
        }
        if has_class && !classes.is_empty() {
            out.insert(0, Regex::Class(classes));
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().expect("len checked"),
            _ => Regex::Alt(out),
        }
    }

    /// Kleene star, simplifying `∅* = ε* = ε` and `(r*)* = r*`.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            r @ Regex::Star(_) => r,
            r => Regex::Star(Box::new(r)),
        }
    }

    /// `r+ = r r*`.
    pub fn plus(r: Regex) -> Regex {
        Regex::concat(vec![r.clone(), Regex::star(r)])
    }

    /// `r? = ε | r`.
    pub fn opt(r: Regex) -> Regex {
        Regex::alt(vec![Regex::Epsilon, r])
    }

    /// Does the regex accept the empty string? (Syntactic nullability.)
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Class(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(rs) => rs.iter().all(Regex::nullable),
            Regex::Alt(rs) => rs.iter().any(Regex::nullable),
        }
    }

    /// AST node count (bounds solver budgets and fuzzers).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Class(_) => 1,
            Regex::Concat(rs) | Regex::Alt(rs) => 1 + rs.iter().map(Regex::size).sum::<usize>(),
            Regex::Star(r) => 1 + r.size(),
        }
    }

    /// Matches `input` against the whole regex (anchored) by compiling a
    /// Thompson NFA and simulating it. Non-ASCII input never matches.
    ///
    /// This is the *runtime* matcher (the `regexp-match?` primitive); the
    /// solver decides satisfiability questions over the same semantics.
    pub fn is_match(&self, input: &str) -> bool {
        crate::re::Nfa::compile(self).matches(input.as_bytes())
    }

    /// Parses a pattern. See the module docs for the supported syntax:
    /// alternation `|`, postfix `*` `+` `?` `{m}` `{m,}` `{m,n}`, groups
    /// `(…)`, classes `[a-z]` `[^…]`, `.`, and escapes
    /// (`\d \D \w \W \s \S \n \t \r` and `\c` for literal punctuation).
    ///
    /// # Errors
    ///
    /// Returns [`ReParseError`] (with a byte position) on malformed
    /// patterns, non-ASCII patterns, and counted repetitions that would
    /// expand past an internal size limit.
    pub fn parse(pattern: &str) -> Result<Regex, ReParseError> {
        Parser {
            input: pattern.as_bytes(),
            pos: 0,
        }
        .parse_top()
    }
}

impl fmt::Display for Regex {
    /// Renders the regex back to pattern syntax.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn class(f: &mut fmt::Formatter<'_>, s: &ClassSet) -> fmt::Result {
            if *s == ClassSet::full() {
                return write!(f, ".");
            }
            if s.len() == 1 {
                let c = s.iter().next().expect("len checked");
                return write!(f, "{}", escape_char(c));
            }
            write!(f, "[")?;
            let mut it = s.iter().peekable();
            while let Some(lo) = it.next() {
                let mut hi = lo;
                while it.peek() == Some(&(hi + 1)) {
                    hi = it.next().expect("peeked");
                }
                if hi > lo + 1 {
                    write!(f, "{}-{}", escape_in_class(lo), escape_in_class(hi))?;
                } else {
                    write!(f, "{}", escape_in_class(lo))?;
                    if hi > lo {
                        write!(f, "{}", escape_in_class(hi))?;
                    }
                }
            }
            write!(f, "]")
        }
        fn go(f: &mut fmt::Formatter<'_>, r: &Regex, prec: u8) -> fmt::Result {
            match r {
                // ∅ has no primitive syntax; an empty class is equivalent.
                Regex::Empty => write!(f, "[^\\x00-\\x7f]"),
                Regex::Epsilon => write!(f, "()"),
                Regex::Class(s) => class(f, s),
                Regex::Concat(rs) => {
                    let wrap = prec > 1;
                    if wrap {
                        write!(f, "(")?;
                    }
                    for r in rs {
                        go(f, r, 2)?;
                    }
                    if wrap {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Alt(rs) => {
                    let wrap = prec > 0;
                    if wrap {
                        write!(f, "(")?;
                    }
                    for (i, r) in rs.iter().enumerate() {
                        if i > 0 {
                            write!(f, "|")?;
                        }
                        go(f, r, 1)?;
                    }
                    if wrap {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(r) => {
                    go(f, r, 3)?;
                    write!(f, "*")
                }
            }
        }
        go(f, self, 0)
    }
}

fn escape_char(c: u8) -> String {
    match c {
        b'\\' | b'|' | b'*' | b'+' | b'?' | b'(' | b')' | b'[' | b']' | b'{' | b'}' | b'.'
        | b'^' | b'$' => format!("\\{}", c as char),
        b'\n' => "\\n".into(),
        b'\t' => "\\t".into(),
        b'\r' => "\\r".into(),
        c if (0x20..0x7f).contains(&c) => (c as char).to_string(),
        c => format!("\\x{c:02x}"),
    }
}

fn escape_in_class(c: u8) -> String {
    match c {
        b'\\' | b']' | b'^' | b'-' => format!("\\{}", c as char),
        b'\n' => "\\n".into(),
        b'\t' => "\\t".into(),
        b'\r' => "\\r".into(),
        c if (0x20..0x7f).contains(&c) => (c as char).to_string(),
        c => format!("\\x{c:02x}"),
    }
}

/// A regex pattern parse failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReParseError {
    /// Byte offset of the failure within the pattern.
    pub pos: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ReParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ReParseError {}

/// Counted repetitions expand; cap the result so `a{64}{64}` cannot blow
/// up the AST.
const MAX_EXPANDED_SIZE: usize = 4096;

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ReParseError> {
        Err(ReParseError {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn parse_top(&mut self) -> Result<Regex, ReParseError> {
        if let Some(c) = self.input.iter().find(|c| !c.is_ascii()) {
            return self.err(format!("non-ASCII byte 0x{c:02x} in pattern"));
        }
        let r = self.parse_alt()?;
        if self.pos != self.input.len() {
            return self.err(format!("unexpected '{}'", self.input[self.pos] as char));
        }
        Ok(r)
    }

    fn parse_alt(&mut self) -> Result<Regex, ReParseError> {
        let mut arms = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            arms.push(self.parse_concat()?);
        }
        Ok(Regex::alt(arms))
    }

    fn parse_concat(&mut self) -> Result<Regex, ReParseError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == b'|' || c == b')' {
                break;
            }
            parts.push(self.parse_postfix()?);
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, ReParseError> {
        let mut r = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    r = Regex::star(r);
                }
                Some(b'+') => {
                    self.bump();
                    r = Regex::plus(r);
                }
                Some(b'?') => {
                    self.bump();
                    r = Regex::opt(r);
                }
                Some(b'{') => {
                    self.bump();
                    r = self.parse_counted(r)?;
                }
                _ => return Ok(r),
            }
        }
    }

    /// `{m}`, `{m,}`, `{m,n}` — expanded into concatenations.
    fn parse_counted(&mut self, r: Regex) -> Result<Regex, ReParseError> {
        let lo = self.parse_count()?;
        let hi = match self.peek() {
            Some(b',') => {
                self.bump();
                if self.peek() == Some(b'}') {
                    None // {m,}
                } else {
                    Some(self.parse_count()?)
                }
            }
            _ => Some(lo), // {m}
        };
        if self.bump() != Some(b'}') {
            return self.err("expected '}' after repetition count");
        }
        if let Some(hi) = hi {
            if hi < lo {
                return self.err(format!("repetition range {{{lo},{hi}}} is backwards"));
            }
        }
        let mut parts: Vec<Regex> = std::iter::repeat_n(r.clone(), lo).collect();
        match hi {
            None => parts.push(Regex::star(r)),
            Some(hi) => parts.extend(std::iter::repeat_n(Regex::opt(r), hi - lo)),
        }
        let out = Regex::concat(parts);
        if out.size() > MAX_EXPANDED_SIZE {
            return self.err("counted repetition expands past the size limit");
        }
        Ok(out)
    }

    fn parse_count(&mut self) -> Result<usize, ReParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return self.err("expected a repetition count");
        }
        let digits = std::str::from_utf8(&self.input[start..self.pos]).expect("ASCII digits");
        match digits.parse::<usize>() {
            Ok(n) if n <= 256 => Ok(n),
            _ => self.err("repetition count too large (max 256)"),
        }
    }

    fn parse_atom(&mut self) -> Result<Regex, ReParseError> {
        match self.bump() {
            None => self.err("expected an atom"),
            Some(b'(') => {
                let r = self.parse_alt()?;
                if self.bump() != Some(b')') {
                    return self.err("unclosed group");
                }
                Ok(r)
            }
            Some(b'[') => self.parse_class(),
            Some(b'.') => Ok(Regex::Class(ClassSet::full())),
            Some(b'\\') => Ok(Regex::Class(self.parse_escape()?)),
            Some(c @ (b'*' | b'+' | b'?' | b'{')) => {
                self.pos -= 1;
                self.err(format!("dangling quantifier '{}'", c as char))
            }
            Some(c @ (b')' | b']' | b'}')) => {
                self.pos -= 1;
                self.err(format!("unmatched '{}'", c as char))
            }
            Some(b'^') | Some(b'$') => {
                // Matching is always anchored; explicit anchors at the ends
                // are harmless no-ops for familiarity.
                Ok(Regex::Epsilon)
            }
            Some(c) => Ok(Regex::char(c)),
        }
    }

    fn parse_escape(&mut self) -> Result<ClassSet, ReParseError> {
        match self.bump() {
            None => self.err("dangling escape"),
            Some(b'd') => Ok(ClassSet::digits()),
            Some(b'D') => Ok(ClassSet::digits().complement()),
            Some(b'w') => Ok(ClassSet::word()),
            Some(b'W') => Ok(ClassSet::word().complement()),
            Some(b's') => Ok(ClassSet::space()),
            Some(b'S') => Ok(ClassSet::space().complement()),
            Some(b'n') => Ok(ClassSet::singleton(b'\n')),
            Some(b't') => Ok(ClassSet::singleton(b'\t')),
            Some(b'r') => Ok(ClassSet::singleton(b'\r')),
            Some(b'x') => {
                let hex = |p: &mut Parser<'_>| -> Result<u8, ReParseError> {
                    match p.bump() {
                        Some(c) if c.is_ascii_hexdigit() => {
                            Ok((c as char).to_digit(16).expect("hex digit") as u8)
                        }
                        _ => p.err("expected two hex digits after \\x"),
                    }
                };
                let hi = hex(self)?;
                let lo = hex(self)?;
                let c = hi * 16 + lo;
                if c as usize >= ALPHABET {
                    return self.err("\\x escape beyond ASCII");
                }
                Ok(ClassSet::singleton(c))
            }
            Some(c) if c.is_ascii_alphanumeric() => {
                self.pos -= 1;
                self.err(format!("unknown escape \\{}", c as char))
            }
            Some(c) => Ok(ClassSet::singleton(c)),
        }
    }

    fn parse_class(&mut self) -> Result<Regex, ReParseError> {
        let negated = self.peek() == Some(b'^');
        if negated {
            self.bump();
        }
        let mut set = ClassSet::empty();
        let mut first = true;
        loop {
            match self.peek() {
                None => return self.err("unclosed character class"),
                Some(b']') if !first => {
                    self.bump();
                    break;
                }
                _ => {}
            }
            first = false;
            let item = self.parse_class_item()?;
            // A range `a-z` requires a single-char left side and a
            // single-char right side separated by '-'.
            if self.peek() == Some(b'-') && self.input.get(self.pos + 1).is_some_and(|&c| c != b']')
            {
                self.bump(); // '-'
                let (Some(lo), rhs) = (one_char(&item), self.parse_class_item()?) else {
                    return self.err("class range must start with a single character");
                };
                let Some(hi) = one_char(&rhs) else {
                    return self.err("class range must end with a single character");
                };
                if lo > hi {
                    return self.err(format!(
                        "class range {}-{} is backwards",
                        lo as char, hi as char
                    ));
                }
                set = set.union(&ClassSet::range(lo, hi));
            } else {
                set = set.union(&item);
            }
        }
        if negated {
            set = set.complement();
        }
        Ok(Regex::Class(set))
    }

    fn parse_class_item(&mut self) -> Result<ClassSet, ReParseError> {
        match self.bump() {
            None => self.err("unclosed character class"),
            Some(b'\\') => self.parse_escape(),
            Some(c) => Ok(ClassSet::singleton(c)),
        }
    }
}

/// The single character of a singleton class, if it is one.
fn one_char(s: &ClassSet) -> Option<u8> {
    if s.len() == 1 {
        s.iter().next()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Regex {
        Regex::parse(s).unwrap_or_else(|e| panic!("{s:?}: {e}"))
    }

    #[test]
    fn class_set_basics() {
        let d = ClassSet::digits();
        assert_eq!(d.len(), 10);
        assert!(d.contains(b'0') && d.contains(b'9') && !d.contains(b'a'));
        assert!(!d.contains(200)); // non-ASCII is never contained
        assert_eq!(d.union(&d), d);
        assert_eq!(d.intersect(&d.complement()), ClassSet::empty());
        assert_eq!(d.union(&d.complement()), ClassSet::full());
        assert_eq!(ClassSet::full().len(), ALPHABET);
    }

    #[test]
    fn smart_constructors_simplify() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(
            Regex::concat(vec![Regex::Epsilon, Regex::char(b'a')]),
            Regex::char(b'a')
        );
        assert_eq!(
            Regex::concat(vec![Regex::char(b'a'), Regex::Empty]),
            Regex::Empty
        );
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(
            Regex::alt(vec![Regex::Empty, Regex::char(b'a')]),
            Regex::char(b'a')
        );
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(
            Regex::star(Regex::star(Regex::char(b'a'))),
            Regex::star(Regex::char(b'a'))
        );
    }

    #[test]
    fn nullability() {
        assert!(Regex::Epsilon.nullable());
        assert!(p("a*").nullable());
        assert!(p("a?b?").nullable());
        assert!(!p("a+").nullable());
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn parse_literals_and_alternation() {
        assert_eq!(p("abc"), Regex::lit("abc"));
        assert_eq!(
            p("a|b|c"),
            Regex::alt(vec![
                Regex::char(b'a'),
                Regex::char(b'b'),
                Regex::char(b'c')
            ])
        );
        assert_eq!(p(""), Regex::Epsilon);
        assert_eq!(p("(ab)*"), Regex::star(Regex::lit("ab")));
    }

    #[test]
    fn parse_classes() {
        assert_eq!(p("[abc]"), p("a|b|c"));
        assert_eq!(p("[a-c]"), p("[abc]"));
        let Regex::Class(s) = p("[^a]") else {
            panic!("expected class")
        };
        assert!(!s.contains(b'a') && s.contains(b'b') && s.contains(b'\n'));
        // ']' immediately after '[' is a literal.
        let Regex::Class(s) = p("[]a]") else {
            panic!("expected class")
        };
        assert!(s.contains(b']') && s.contains(b'a'));
        // Trailing '-' is a literal.
        let Regex::Class(s) = p("[a-]") else {
            panic!("expected class")
        };
        assert!(s.contains(b'a') && s.contains(b'-'));
    }

    #[test]
    fn parse_escapes() {
        assert_eq!(p(r"\d"), Regex::Class(ClassSet::digits()));
        assert_eq!(p(r"\."), Regex::char(b'.'));
        assert_eq!(p(r"\x41"), Regex::char(b'A'));
        assert_eq!(p(r"\n"), Regex::char(b'\n'));
        assert!(Regex::parse(r"\q").is_err());
        assert!(Regex::parse(r"\x8f").is_err());
    }

    #[test]
    fn parse_counted_repetition() {
        assert_eq!(p("a{3}"), Regex::lit("aaa"));
        assert_eq!(
            p("a{2,}"),
            Regex::concat(vec![
                Regex::char(b'a'),
                Regex::char(b'a'),
                Regex::star(Regex::char(b'a')),
            ])
        );
        assert!(p("a{1,3}").is_match("aa"));
        assert!(!p("a{1,3}").is_match(""));
        assert!(!p("a{1,3}").is_match("aaaa"));
        assert!(Regex::parse("a{3,1}").is_err());
        assert!(Regex::parse("a{999}").is_err());
        assert!(Regex::parse("(a{64}){64}{64}").is_err(), "expansion limit");
    }

    #[test]
    fn parse_errors_have_positions() {
        for bad in ["(a", "a)", "[a", "*a", "a{", "a{2", "a\\"] {
            let err = Regex::parse(bad).unwrap_err();
            assert!(err.pos <= bad.len(), "{bad:?} gave position {}", err.pos);
            assert!(!err.to_string().is_empty());
        }
        let err = Regex::parse("héllo").unwrap_err();
        assert!(err.msg.contains("non-ASCII"));
    }

    #[test]
    fn anchors_are_no_ops() {
        assert_eq!(p("^abc$"), Regex::lit("abc"));
    }

    #[test]
    fn display_round_trips_through_parse() {
        for s in [
            "abc",
            "a|bc",
            "(a|b)*c",
            "[a-z0-9]+",
            "[^x]",
            r"\d{2,4}",
            "a?b+",
            r"\.\*",
            ".*",
        ] {
            let r = p(s);
            let printed = r.to_string();
            let back = Regex::parse(&printed)
                .unwrap_or_else(|e| panic!("reparse of {printed:?} (from {s:?}): {e}"));
            assert_eq!(back, r, "round-trip of {s:?} via {printed:?}");
        }
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(Regex::char(b'a').size(), 1);
        assert_eq!(p("ab").size(), 3);
        assert_eq!(p("a*").size(), 2);
    }
}
