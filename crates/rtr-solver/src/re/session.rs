//! Incremental regex solving sessions.
//!
//! A [`ReSession`] keeps compiled automata alive across queries, the way
//! [`crate::bv::BvSession`] keeps one growing CNF: regexes are interned
//! session-locally, each literal's (possibly complemented) minimized DFA
//! is compiled once, intersection products are memoized per *language* —
//! the sorted set of literal ids actually intersected — and emptiness
//! witnesses are cached per language. Repeated queries over a warm fact
//! set (the common shape: one string variable tested against the same
//! refinements at every use site) skip compilation, product construction
//! and emptiness search entirely.
//!
//! Verdicts agree exactly with the one-shot [`super::ReSolver`]: the
//! fold below is the same input-order intersection chain, and every
//! cache key identifies a canonical intermediate. Minimized DFAs of the
//! same language are isomorphic, product construction explores
//! isomorphic pair-graphs state-for-state, so cached DFAs blow (or fit)
//! the state budget exactly when the one-shot run's would. Skipping a
//! *duplicate* literal is likewise exact: the product of a DFA with
//! itself only reaches diagonal states, so the one-shot intersection
//! returns an isomorphic automaton without ever exceeding the budget.

use std::collections::BTreeMap;
use std::sync::Arc;

use super::dfa::Dfa;
use super::solver::{ReConfig, ReConstraint, ReResult};
use super::syntax::Regex;
use crate::fxhash::FxHashMap;
use crate::lin::SolverVar;

/// A session-local literal: interned regex id plus polarity.
type LitId = (u32, bool);

/// A canonical language: the sorted, deduplicated set of literals whose
/// DFAs were actually intersected (budget-blown literals are dropped,
/// exactly as the one-shot solver drops them).
type LangKey = Vec<LitId>;

/// Cache-effectiveness counters for one session.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReSessionStats {
    /// Literal-DFA cache hits (compile + complement + minimize skipped).
    pub dfa_hits: u64,
    /// Literal-DFA cache misses.
    pub dfa_misses: u64,
    /// Product cache hits (one intersection + minimization skipped).
    pub product_hits: u64,
    /// Product cache misses.
    pub product_misses: u64,
    /// Emptiness/witness cache hits.
    pub witness_hits: u64,
    /// Emptiness/witness cache misses.
    pub witness_misses: u64,
}

/// A persistent regex solving session (see module docs).
#[derive(Clone, Debug, Default)]
pub struct ReSession {
    config: ReConfig,
    /// Session-local regex interning.
    regex_ids: FxHashMap<Arc<Regex>, u32>,
    /// Minimized literal DFAs; `None` records a blown compile budget.
    literals: FxHashMap<LitId, Option<Arc<Dfa>>>,
    /// Minimized intersection products per language.
    products: FxHashMap<LangKey, Arc<Dfa>>,
    /// Fold steps that blew the product budget, keyed by the incoming
    /// language and the literal whose intersection overflowed. (Blowing
    /// is a function of the *predecessor* language, not the target set —
    /// a different fold order can reach the same set within budget.)
    blown: FxHashMap<(LangKey, LitId), ()>,
    /// Shortest accepted word per language; `None` = empty language.
    witnesses: FxHashMap<LangKey, Option<Vec<u8>>>,
    stats: ReSessionStats,
    /// Optional wall-clock cutoff. Past it, remaining constraints are
    /// skipped (verdict degrades to `Unknown`) *without* writing cache
    /// entries — a deadline trip is transient, unlike a budget blow, so it
    /// must not poison the warm caches for later, unhurried queries.
    deadline: Option<std::time::Instant>,
}

impl ReSession {
    /// Creates an empty session with the given DFA state budget.
    pub fn new(config: ReConfig) -> ReSession {
        ReSession {
            config,
            ..ReSession::default()
        }
    }

    /// Installs (or clears) a wall-clock deadline. Past it, checks degrade
    /// to [`ReResult::Unknown`] rather than being cut off mid-verdict.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The session-local id of `re`, interning on first use.
    fn regex_id(&mut self, re: &Arc<Regex>) -> u32 {
        if let Some(&id) = self.regex_ids.get(re) {
            return id;
        }
        let id = self.regex_ids.len() as u32;
        self.regex_ids.insert(re.clone(), id);
        id
    }

    /// The literal's minimized DFA, compiling (and complementing, for
    /// negative literals) on first use. `None` = compile budget blown.
    fn literal_dfa(&mut self, lit: LitId, re: &Regex) -> Option<Arc<Dfa>> {
        if let Some(cached) = self.literals.get(&lit) {
            self.stats.dfa_hits += 1;
            return cached.clone();
        }
        self.stats.dfa_misses += 1;
        let compiled = Dfa::compile(re, self.config.max_dfa_states).map(|mut d| {
            if !lit.1 {
                d = d.complement();
            }
            Arc::new(d.minimize())
        });
        self.literals.insert(lit, compiled.clone());
        compiled
    }

    /// Is the conjunction of `constraints` satisfiable? Same verdicts as
    /// [`super::ReSolver::check`], with warm-cache reuse.
    pub fn check(&mut self, constraints: &[ReConstraint]) -> ReResult {
        let budget = self.config.max_dfa_states;
        let mut by_var: BTreeMap<SolverVar, Vec<&ReConstraint>> = BTreeMap::new();
        for c in constraints {
            by_var.entry(c.var).or_default().push(c);
        }
        let mut model = BTreeMap::new();
        let mut unknown = false;
        for (var, cs) in by_var {
            let mut acc: Option<Arc<Dfa>> = None;
            let mut lang: LangKey = Vec::new();
            for c in cs {
                if self.past_deadline() {
                    unknown = true;
                    break;
                }
                let lit = (self.regex_id(&c.regex), c.positive);
                let Some(d) = self.literal_dfa(lit, &c.regex) else {
                    unknown = true;
                    continue;
                };
                acc = Some(match acc {
                    None => {
                        lang.push(lit);
                        d
                    }
                    // Duplicate literal: L ∩ L = L.
                    Some(prev) if lang.binary_search(&lit).is_ok() => prev,
                    Some(prev) if self.blown.contains_key(&(lang.clone(), lit)) => {
                        self.stats.product_hits += 1;
                        unknown = true;
                        prev
                    }
                    Some(prev) => {
                        let at = lang.binary_search(&lit).unwrap_err();
                        let mut next = lang.clone();
                        next.insert(at, lit);
                        if let Some(cached) = self.products.get(&next) {
                            self.stats.product_hits += 1;
                            lang = next;
                            cached.clone()
                        } else {
                            self.stats.product_misses += 1;
                            match prev.intersect(&d, budget) {
                                Some(i) => {
                                    let m = Arc::new(i.minimize());
                                    self.products.insert(next.clone(), m.clone());
                                    lang = next;
                                    m
                                }
                                None => {
                                    self.blown.insert((lang.clone(), lit), ());
                                    unknown = true;
                                    prev
                                }
                            }
                        }
                    }
                });
            }
            let witness = match acc {
                None => {
                    // Every literal for this variable blew the budget.
                    unknown = true;
                    continue;
                }
                Some(acc) => {
                    if let Some(cached) = self.witnesses.get(&lang) {
                        self.stats.witness_hits += 1;
                        cached.clone()
                    } else {
                        self.stats.witness_misses += 1;
                        let w = acc.shortest_accepted();
                        self.witnesses.insert(lang.clone(), w.clone());
                        w
                    }
                }
            };
            match witness {
                Some(w) => {
                    let s = String::from_utf8(w).expect("witnesses are ASCII by construction");
                    model.insert(var, s);
                }
                // The (possibly partial) intersection is empty. Dropping
                // budget-blown literals only *grows* the language, so
                // emptiness still refutes the full conjunction.
                None => return ReResult::Unsat,
            }
        }
        if unknown {
            return ReResult::Unknown;
        }
        ReResult::Sat(model)
    }

    /// Do `facts` entail `goal`? Decided as UNSAT of `facts ∧ ¬goal`;
    /// `Unknown` is conservatively `false`.
    pub fn entails(&mut self, facts: &[ReConstraint], goal: &ReConstraint) -> bool {
        let mut query: Vec<ReConstraint> = facts.to_vec();
        query.push(goal.negate());
        self.check(&query).is_unsat()
    }

    /// Total DFA states held across the literal and product caches — a
    /// growth gauge callers use to decide when to retire a session.
    pub fn num_states(&self) -> usize {
        self.literals
            .values()
            .flatten()
            .map(|d| d.num_states())
            .sum::<usize>()
            + self
                .products
                .values()
                .map(|d| d.num_states())
                .sum::<usize>()
    }

    /// Cache-effectiveness counters.
    pub fn stats(&self) -> ReSessionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::re::ReSolver;

    fn re(p: &str) -> Arc<Regex> {
        Arc::new(Regex::parse(p).expect("pattern parses"))
    }
    fn v(n: u32) -> SolverVar {
        SolverVar(n)
    }

    #[test]
    fn session_agrees_with_one_shot() {
        let mut session = ReSession::default();
        let one_shot = ReSolver::default();
        let digits = re("[0-9]+");
        let four = re("[0-9]{4}");
        let alpha = re("[a-z]+");
        let queries: Vec<Vec<ReConstraint>> = vec![
            vec![ReConstraint::member(v(0), digits.clone())],
            vec![
                ReConstraint::member(v(0), digits.clone()),
                ReConstraint::member(v(0), alpha.clone()),
            ],
            vec![
                ReConstraint::member(v(0), four.clone()),
                ReConstraint::not_member(v(0), digits.clone()),
            ],
            vec![
                ReConstraint::member(v(0), digits.clone()),
                ReConstraint::member(v(1), alpha.clone()),
            ],
            vec![
                ReConstraint::member(v(0), digits.clone()),
                ReConstraint::member(v(0), digits.clone()),
            ],
        ];
        for q in &queries {
            assert_eq!(session.check(q), one_shot.check(q), "on {q:?}");
        }
        // Entailments agree too.
        assert_eq!(
            session.entails(
                &[ReConstraint::member(v(0), four.clone())],
                &ReConstraint::member(v(0), digits.clone())
            ),
            one_shot.entails(
                &[ReConstraint::member(v(0), four)],
                &ReConstraint::member(v(0), digits)
            ),
        );
    }

    #[test]
    fn caches_are_shared_across_queries() {
        let mut session = ReSession::default();
        let digits = re("[0-9]+");
        let nonempty = re(".+");
        let facts = [ReConstraint::member(v(0), digits.clone())];
        assert!(session.entails(&facts, &ReConstraint::member(v(0), nonempty.clone())));
        let states = session.num_states();
        let stats = session.stats();
        assert!(stats.dfa_misses > 0 && stats.product_misses > 0);
        // The warm re-run compiles and intersects nothing new.
        assert!(session.entails(&facts, &ReConstraint::member(v(0), nonempty)));
        assert_eq!(session.num_states(), states);
        let warm = session.stats();
        assert_eq!(warm.dfa_misses, stats.dfa_misses);
        assert_eq!(warm.product_misses, stats.product_misses);
        assert_eq!(warm.witness_misses, stats.witness_misses);
        assert!(warm.dfa_hits > stats.dfa_hits);
        assert!(warm.witness_hits > stats.witness_hits);
    }

    #[test]
    fn budget_exhaustion_is_unknown_not_wrong() {
        let mut session = ReSession::new(ReConfig { max_dfa_states: 1 });
        let one_shot = ReSolver::new(ReConfig { max_dfa_states: 1 });
        let cs = [ReConstraint::member(v(0), re("abc"))];
        assert_eq!(session.check(&cs), ReResult::Unknown);
        assert_eq!(session.check(&cs), one_shot.check(&cs));
        // A blown product is remembered without poisoning other orders.
        let mut session = ReSession::new(ReConfig { max_dfa_states: 4 });
        let one_shot = ReSolver::new(ReConfig { max_dfa_states: 4 });
        let cs = [
            ReConstraint::member(v(0), re("a{40,60}b{40,60}")),
            ReConstraint::member(v(0), re("a")),
            ReConstraint::member(v(0), re("b")),
        ];
        for _ in 0..2 {
            assert_eq!(session.check(&cs), ReResult::Unsat);
            assert_eq!(session.check(&cs), one_shot.check(&cs));
        }
    }
}
