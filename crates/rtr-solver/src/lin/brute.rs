//! Brute-force integer model search over a bounded box.
//!
//! This is the differential-testing oracle and benchmark baseline for
//! [`FourierMotzkin`](super::FourierMotzkin): it enumerates every integer
//! assignment in `[-bound, bound]^n` and reports whether any satisfies the
//! conjunction. Complete *within the box* only, so in tests it is used in
//! the direction "brute found a model ⇒ FM must not say Unsat" and, with a
//! box large enough for the generated coefficients, "brute found none ⇒ FM
//! must not say Sat".

use super::constraint::Constraint;
use super::{LinResult, SolverVar};
use crate::rational::Rat;

/// Exhaustive integer search within `[-bound, bound]` per variable.
#[derive(Clone, Copy, Debug)]
pub struct BruteForce {
    /// Half-width of the search box.
    pub bound: i64,
    /// Cap on the number of assignments tried before giving up.
    pub max_assignments: u64,
}

impl Default for BruteForce {
    fn default() -> BruteForce {
        BruteForce {
            bound: 6,
            max_assignments: 2_000_000,
        }
    }
}

impl BruteForce {
    /// Searches the box for a model of the conjunction.
    ///
    /// Returns [`LinResult::Sat`] with certainty, [`LinResult::Unsat`]
    /// meaning "no model *in the box*", or [`LinResult::Unknown`] if the
    /// assignment budget was exhausted.
    pub fn check(&self, constraints: &[Constraint]) -> LinResult {
        let mut vars: Vec<SolverVar> = Vec::new();
        for c in constraints {
            for x in c.expr.vars() {
                if !vars.contains(&x) {
                    vars.push(x);
                }
            }
        }
        vars.sort();
        let width = (2 * self.bound + 1) as u64;
        let total: u64 = match width.checked_pow(vars.len() as u32) {
            Some(t) => t,
            None => return LinResult::Unknown,
        };
        if total > self.max_assignments {
            return LinResult::Unknown;
        }
        let mut assignment = vec![0i64; vars.len()];
        'outer: for idx in 0..total {
            let mut rem = idx;
            for slot in assignment.iter_mut() {
                *slot = (rem % width) as i64 - self.bound;
                rem /= width;
            }
            for c in constraints {
                let ok = c.holds(|x| {
                    let pos = vars.binary_search(&x).expect("var collected above");
                    Rat::from(assignment[pos])
                });
                if ok != Some(true) {
                    continue 'outer;
                }
            }
            return LinResult::Sat;
        }
        LinResult::Unsat
    }

    /// Finds a model if one exists in the box, for debugging and tests.
    pub fn find_model(&self, constraints: &[Constraint]) -> Option<Vec<(SolverVar, i64)>> {
        let mut vars: Vec<SolverVar> = Vec::new();
        for c in constraints {
            for x in c.expr.vars() {
                if !vars.contains(&x) {
                    vars.push(x);
                }
            }
        }
        vars.sort();
        let width = (2 * self.bound + 1) as u64;
        let total = width.checked_pow(vars.len() as u32)?;
        if total > self.max_assignments {
            return None;
        }
        let mut assignment = vec![0i64; vars.len()];
        'outer: for idx in 0..total {
            let mut rem = idx;
            for slot in assignment.iter_mut() {
                *slot = (rem % width) as i64 - self.bound;
                rem /= width;
            }
            for c in constraints {
                let ok = c.holds(|x| {
                    let pos = vars.binary_search(&x).expect("var collected above");
                    Rat::from(assignment[pos])
                });
                if ok != Some(true) {
                    continue 'outer;
                }
            }
            return Some(
                vars.iter()
                    .copied()
                    .zip(assignment.iter().copied())
                    .collect(),
            );
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::LinExpr;

    fn v(i: u32) -> LinExpr {
        LinExpr::var(SolverVar(i))
    }
    fn k(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }

    #[test]
    fn finds_models() {
        let cs = [Constraint::ge(v(0), k(2)), Constraint::le(v(0), k(3))];
        let brute = BruteForce::default();
        assert!(brute.check(&cs).is_sat());
        let model = brute.find_model(&cs).unwrap();
        assert!(model[0].1 == 2 || model[0].1 == 3);
    }

    #[test]
    fn reports_box_unsat() {
        let cs = [Constraint::gt(v(0), k(0)), Constraint::lt(v(0), k(1))];
        assert!(BruteForce::default().check(&cs).is_unsat());
    }

    #[test]
    fn budget() {
        let brute = BruteForce {
            bound: 6,
            max_assignments: 10,
        };
        let cs = [
            Constraint::le(v(0), v(1)),
            Constraint::le(v(1), v(2)),
            Constraint::le(v(2), v(3)),
        ];
        assert_eq!(brute.check(&cs), LinResult::Unknown);
    }
}
