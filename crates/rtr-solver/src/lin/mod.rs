//! Linear integer arithmetic: expressions, constraints, and a
//! Fourier–Motzkin decision procedure.
//!
//! This is the "lightweight solver" the paper attaches to λ_RTR for the
//! theory of linear integer inequalities (§2.1): *"we can extend our new
//! system to consider propositions from the theory of linear integer
//! arithmetic (with a simple implementation of Fourier-Motzkin elimination
//! as a lightweight solver)"*.
//!
//! The pipeline is:
//!
//! 1. Callers build [`LinExpr`]s over opaque [`SolverVar`]s and combine them
//!    into [`Constraint`]s (`e ≤ 0`, `e < 0`, `e = 0`, `e ≠ 0`).
//! 2. [`FourierMotzkin::check`] decides satisfiability of a conjunction over
//!    the **integers**, conservatively: `Unsat` is a proof, `Sat` means a
//!    rational model exists after integer tightening (sound for the prover
//!    direction, see below), `Unknown` means a resource bound was hit.
//!
//! The prover use-site in `rtr-core` asks "do the facts entail the goal?" by
//! checking `facts ∧ ¬goal` for unsatisfiability, so only `Unsat` answers
//! are ever used as proofs; incompleteness merely makes the type checker
//! conservative, exactly as in the paper.
//!
//! # Examples
//!
//! ```
//! use rtr_solver::lin::{Constraint, FourierMotzkin, LinExpr, SolverVar};
//!
//! let x = SolverVar(0);
//! let i = LinExpr::var(x);
//! // i >= 0 and i < 0 is unsatisfiable.
//! let cs = [Constraint::ge(i.clone(), LinExpr::constant(0)),
//!           Constraint::lt(i, LinExpr::constant(0))];
//! assert!(FourierMotzkin::default().check(&cs).is_unsat());
//! ```

mod brute;
mod constraint;
mod fourier_motzkin;
mod linexpr;

pub use brute::BruteForce;
pub use constraint::{Cmp, Constraint};
pub use fourier_motzkin::{FmConfig, FmTrace, FourierMotzkin};
pub use linexpr::LinExpr;

/// An opaque solver variable.
///
/// The type checker maps each symbolic object path (e.g. `x`, `(len v)`) to
/// a distinct `SolverVar` before handing constraints to the solver; the
/// solver itself knows nothing about programs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SolverVar(pub u32);

impl std::fmt::Display for SolverVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Verdict of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinResult {
    /// A model exists (over the rationals after integer tightening; see
    /// module docs for the soundness discussion).
    Sat,
    /// No integer model exists. This verdict is a proof.
    Unsat,
    /// The solver gave up (resource budget exhausted or arithmetic
    /// overflow). Callers must treat this as "not proved".
    Unknown,
}

impl LinResult {
    /// Returns `true` for [`LinResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == LinResult::Unsat
    }

    /// Returns `true` for [`LinResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == LinResult::Sat
    }
}
