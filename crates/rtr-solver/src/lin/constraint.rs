//! Linear constraints in the normal form `e ⋈ 0`.

use std::fmt;

use super::linexpr::LinExpr;
use crate::rational::Rat;

/// Comparison operator of a normalized constraint `e ⋈ 0`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cmp {
    /// `e ≤ 0`
    Le,
    /// `e < 0`
    Lt,
    /// `e = 0`
    Eq,
    /// `e ≠ 0` (arises from negated equalities; the solver case-splits it)
    Ne,
}

/// A linear constraint `expr ⋈ 0` over integer-valued variables.
///
/// Constructors take the intuitive two-sided form and normalize, e.g.
/// [`Constraint::le(a, b)`](Constraint::le) represents `a - b ≤ 0`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Constraint {
    /// Left-hand side; the relation is `expr ⋈ 0`.
    pub expr: LinExpr,
    /// The relation against zero.
    pub cmp: Cmp,
}

impl Constraint {
    /// `a ≤ b`.
    pub fn le(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint {
            expr: a.sub(&b),
            cmp: Cmp::Le,
        }
    }

    /// `a < b`.
    pub fn lt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint {
            expr: a.sub(&b),
            cmp: Cmp::Lt,
        }
    }

    /// `a ≥ b`.
    pub fn ge(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::le(b, a)
    }

    /// `a > b`.
    pub fn gt(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint::lt(b, a)
    }

    /// `a = b`.
    pub fn eq(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint {
            expr: a.sub(&b),
            cmp: Cmp::Eq,
        }
    }

    /// `a ≠ b`.
    pub fn ne(a: LinExpr, b: LinExpr) -> Constraint {
        Constraint {
            expr: a.sub(&b),
            cmp: Cmp::Ne,
        }
    }

    /// The logical negation of this constraint (`¬(e ≤ 0)` is `e > 0`, etc.).
    pub fn negate(&self) -> Constraint {
        match self.cmp {
            Cmp::Le => Constraint {
                expr: self.expr.scale(Rat::from_int(-1)),
                cmp: Cmp::Lt,
            },
            Cmp::Lt => Constraint {
                expr: self.expr.scale(Rat::from_int(-1)),
                cmp: Cmp::Le,
            },
            Cmp::Eq => Constraint {
                expr: self.expr.clone(),
                cmp: Cmp::Ne,
            },
            Cmp::Ne => Constraint {
                expr: self.expr.clone(),
                cmp: Cmp::Eq,
            },
        }
    }

    /// Evaluates the constraint under an integer assignment.
    pub fn holds<F>(&self, lookup: F) -> Option<bool>
    where
        F: FnMut(super::SolverVar) -> Rat,
    {
        let v = self.expr.eval(lookup)?;
        Some(match self.cmp {
            Cmp::Le => v <= Rat::ZERO,
            Cmp::Lt => v < Rat::ZERO,
            Cmp::Eq => v.is_zero(),
            Cmp::Ne => !v.is_zero(),
        })
    }

    /// If the constraint has no variables, returns its truth value.
    pub fn constant_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant_part();
        Some(match self.cmp {
            Cmp::Le => c <= Rat::ZERO,
            Cmp::Lt => c < Rat::ZERO,
            Cmp::Eq => c.is_zero(),
            Cmp::Ne => !c.is_zero(),
        })
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.cmp {
            Cmp::Le => "≤",
            Cmp::Lt => "<",
            Cmp::Eq => "=",
            Cmp::Ne => "≠",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::SolverVar;

    fn x() -> LinExpr {
        LinExpr::var(SolverVar(0))
    }

    #[test]
    fn normal_forms() {
        // x <= 5  ==>  x - 5 <= 0
        let c = Constraint::le(x(), LinExpr::constant(5));
        assert_eq!(c.cmp, Cmp::Le);
        assert_eq!(c.expr.constant_part(), Rat::from_int(-5));
        // x > 2  ==>  2 - x < 0
        let c = Constraint::gt(x(), LinExpr::constant(2));
        assert_eq!(c.cmp, Cmp::Lt);
        assert_eq!(c.expr.coeff(SolverVar(0)), Rat::from_int(-1));
    }

    #[test]
    fn negation_is_involutive_on_truth() {
        let c = Constraint::le(x(), LinExpr::constant(5));
        let n = c.negate();
        // x = 5 satisfies c, falsifies ¬c.
        let at5 = |_| Rat::from_int(5);
        assert_eq!(c.holds(at5), Some(true));
        assert_eq!(n.holds(at5), Some(false));
        // x = 6 falsifies c, satisfies ¬c.
        let at6 = |_| Rat::from_int(6);
        assert_eq!(c.holds(at6), Some(false));
        assert_eq!(n.holds(at6), Some(true));
    }

    #[test]
    fn constant_truth() {
        let t = Constraint::le(LinExpr::constant(1), LinExpr::constant(2));
        assert_eq!(t.constant_truth(), Some(true));
        let f = Constraint::eq(LinExpr::constant(1), LinExpr::constant(2));
        assert_eq!(f.constant_truth(), Some(false));
        let open = Constraint::le(x(), LinExpr::constant(2));
        assert_eq!(open.constant_truth(), None);
    }

    #[test]
    fn display() {
        let c = Constraint::lt(x(), LinExpr::constant(3));
        assert_eq!(c.to_string(), "1·v0 - 3 < 0");
    }
}
