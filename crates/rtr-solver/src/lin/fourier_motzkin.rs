//! Fourier–Motzkin elimination with integer tightening.
//!
//! The classic algorithm (Dantzig & Eaves 1973, cited by the paper) decides
//! satisfiability of a conjunction of linear inequalities by repeatedly
//! eliminating a variable: every pair of a lower and an upper bound on `x`
//! yields a resolvent without `x`. We extend the textbook procedure with the
//! standard integer strengthenings, which is what makes it useful as the
//! theory solver for *integer* vector indices:
//!
//! * strict `e < 0` over integer coefficients becomes `e + 1 ≤ 0`;
//! * each row is divided by the gcd of its variable coefficients and the
//!   constant is rounded (floor), cutting off rational-only solutions;
//! * equalities are eliminated by exact Gaussian substitution, after a gcd
//!   divisibility test;
//! * disequalities `e ≠ 0` are case-split into `e ≤ -1 ∨ e ≥ 1`.
//!
//! The procedure is sound for `Unsat` over the integers and may answer `Sat`
//! for integer-infeasible systems whose rational relaxation (after
//! tightening) is feasible — the conservative direction for a type checker
//! that only consumes `Unsat` as proof.

use std::collections::HashSet;

use super::constraint::{Cmp, Constraint};
use super::linexpr::LinExpr;
use super::{LinResult, SolverVar};
use crate::rational::Rat;

/// Resource budget and behaviour switches for [`FourierMotzkin`].
#[derive(Clone, Copy, Debug)]
pub struct FmConfig {
    /// Maximum number of rows the eliminator may materialize before giving
    /// up with [`LinResult::Unknown`].
    pub max_rows: usize,
    /// Maximum number of disequality case-splits (the search explores at
    /// most `2^max_splits` branches).
    pub max_splits: usize,
    /// Apply integer tightening (gcd normalization + constant rounding).
    /// Disabling this yields the pure rational procedure; the ablation
    /// benchmark measures what it buys.
    pub integer_tightening: bool,
}

impl Default for FmConfig {
    fn default() -> FmConfig {
        FmConfig {
            max_rows: 50_000,
            max_splits: 8,
            integer_tightening: true,
        }
    }
}

/// The Fourier–Motzkin decision procedure.
///
/// # Examples
///
/// ```
/// use rtr_solver::lin::{Constraint, FourierMotzkin, LinExpr, SolverVar};
///
/// let i = LinExpr::var(SolverVar(0));
/// let len = LinExpr::var(SolverVar(1));
/// // 0 ≤ i ∧ i < len ∧ len ≤ i   is unsatisfiable.
/// let cs = [
///     Constraint::ge(i.clone(), LinExpr::constant(0)),
///     Constraint::lt(i.clone(), len.clone()),
///     Constraint::le(len, i),
/// ];
/// assert!(FourierMotzkin::default().check(&cs).is_unsat());
/// ```
#[derive(Clone, Debug, Default)]
pub struct FourierMotzkin {
    config: FmConfig,
    /// Optional wall-clock cutoff: once reached, in-flight eliminations
    /// return [`LinResult::Unknown`] (the conservative verdict) instead of
    /// running to their row budget.
    deadline: Option<std::time::Instant>,
}

/// A replayable record of one satisfiable elimination run, enabling
/// *incremental* Fourier–Motzkin: the trace remembers the Gaussian
/// substitutions and, for every eliminated variable, the lower/upper
/// bound rows consumed at that step. Checking the same system plus a few
/// new constraints then only resolves the *new* rows against the stored
/// bounds — the old×old resolvents are already folded into later steps —
/// instead of re-eliminating the whole system
/// ([`FourierMotzkin::check_with_trace`]).
#[derive(Clone, Debug, Default)]
pub struct FmTrace {
    /// Gaussian substitutions `x := e`, in application order.
    substs: Vec<(SolverVar, LinExpr)>,
    /// One entry per eliminated variable, in elimination order.
    steps: Vec<FmStep>,
}

impl FmTrace {
    /// Rough size gauge (rows held), for cache accounting.
    pub fn num_rows(&self) -> usize {
        self.steps
            .iter()
            .map(|s| s.lower.len() + s.upper.len())
            .sum::<usize>()
            + self.substs.len()
    }
}

/// The bound rows consumed when one variable was eliminated.
#[derive(Clone, Debug)]
struct FmStep {
    var: SolverVar,
    /// Rows with a negative coefficient on `var` (lower bounds).
    lower: Vec<Constraint>,
    /// Rows with a positive coefficient on `var` (upper bounds).
    upper: Vec<Constraint>,
}

impl FourierMotzkin {
    /// Creates a solver with the given configuration.
    pub fn new(config: FmConfig) -> FourierMotzkin {
        FourierMotzkin {
            config,
            deadline: None,
        }
    }

    /// Installs (or clears) a wall-clock deadline. Past it, queries degrade
    /// to [`LinResult::Unknown`] rather than being cut off mid-verdict.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Decides satisfiability of the conjunction of `constraints` over the
    /// integers (conservatively; see module docs).
    pub fn check(&self, constraints: &[Constraint]) -> LinResult {
        self.check_split(constraints.to_vec(), self.config.max_splits)
    }

    /// Returns `true` when `facts` entail `goal`, i.e. `facts ∧ ¬goal` is
    /// unsatisfiable. This is the only judgment the type checker trusts.
    pub fn entails(&self, facts: &[Constraint], goal: &Constraint) -> bool {
        let mut cs = facts.to_vec();
        cs.push(goal.negate());
        self.check(&cs).is_unsat()
    }

    /// Like [`FourierMotzkin::check`], additionally recording a
    /// replayable elimination trace when the system is satisfiable and
    /// disequality-free. The trace is `None` for `Unsat`/`Unknown`
    /// verdicts (an unsat base never needs extending: any superset is
    /// unsat too) and for systems needing case splits.
    pub fn check_traced(&self, constraints: &[Constraint]) -> (LinResult, Option<FmTrace>) {
        if constraints.iter().any(|c| c.cmp == Cmp::Ne) {
            return (self.check(constraints), None);
        }
        let mut trace = FmTrace::default();
        let result = self.eliminate(constraints.to_vec(), Some(&mut trace));
        match result {
            LinResult::Sat => (result, Some(trace)),
            _ => (result, None),
        }
    }

    /// Decides satisfiability of `base ∪ delta`, where `trace` records a
    /// satisfiable run over `base`, without re-eliminating `base`. Returns
    /// `None` when the delta needs work the trace cannot replay
    /// (arithmetic overflow, row budget); callers fall back to a full
    /// [`FourierMotzkin::check`] then.
    ///
    /// Delta equalities are handled by the standard `e = 0 ⇔ e ≤ 0 ∧
    /// -e ≤ 0` split (after the gcd divisibility test in `tighten`);
    /// delta disequalities case-split exactly like the one-shot solver.
    pub fn check_with_trace(&self, trace: &FmTrace, delta: &[Constraint]) -> Option<LinResult> {
        self.extend_split(trace, delta.to_vec(), self.config.max_splits)
    }

    fn extend_split(
        &self,
        trace: &FmTrace,
        delta: Vec<Constraint>,
        splits_left: usize,
    ) -> Option<LinResult> {
        if let Some(pos) = delta.iter().position(|c| c.cmp == Cmp::Ne) {
            if splits_left == 0 {
                return Some(LinResult::Unknown);
            }
            let mut rest = delta;
            let ne = rest.swap_remove(pos);
            let lo = Constraint {
                expr: ne.expr.checked_add(&LinExpr::constant(1))?,
                cmp: Cmp::Le,
            };
            let hi = Constraint {
                expr: ne
                    .expr
                    .checked_scale(Rat::from_int(-1))?
                    .checked_add(&LinExpr::constant(1))?,
                cmp: Cmp::Le,
            };
            let mut lhs = rest.clone();
            lhs.push(lo);
            match self.extend_split(trace, lhs, splits_left - 1)? {
                LinResult::Sat => return Some(LinResult::Sat),
                LinResult::Unsat => {}
                LinResult::Unknown => return Some(LinResult::Unknown),
            }
            let mut rhs = rest;
            rhs.push(hi);
            return self.extend_split(trace, rhs, splits_left - 1);
        }
        self.extend(trace, delta)
    }

    fn extend(&self, trace: &FmTrace, delta: Vec<Constraint>) -> Option<LinResult> {
        // Replay the base's Gaussian substitutions on the new rows, then
        // normalize them exactly as the base run normalized its own.
        let mut rows: Vec<Constraint> = Vec::with_capacity(delta.len());
        for c in delta {
            let mut expr = c.expr;
            for (x, sol) in &trace.substs {
                expr = expr.substitute(*x, sol)?;
            }
            match self.tighten(Constraint { expr, cmp: c.cmp }) {
                Tightened::True => {}
                Tightened::False => return Some(LinResult::Unsat),
                Tightened::Overflow => return None,
                Tightened::Row(c) if c.cmp == Cmp::Eq => {
                    // e = 0 ⇔ e ≤ 0 ∧ -e ≤ 0 (gcd infeasibility was already
                    // caught by `tighten`). Substituting instead would
                    // rewrite the stored steps, defeating the reuse.
                    let neg = c.expr.checked_scale(Rat::from_int(-1))?;
                    rows.push(Constraint {
                        expr: c.expr,
                        cmp: Cmp::Le,
                    });
                    rows.push(Constraint {
                        expr: neg,
                        cmp: Cmp::Le,
                    });
                }
                Tightened::Row(c) => rows.push(c),
            }
        }
        // Push the new rows through the recorded elimination pipeline:
        // at each step, only resolvents involving a new row are computed —
        // old×old ones are already folded into later steps of the trace.
        for step in &trace.steps {
            if self.past_deadline() {
                return Some(LinResult::Unknown);
            }
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            let mut rest = Vec::new();
            for c in rows.drain(..) {
                let a = c.expr.coeff(step.var);
                if a.is_zero() {
                    rest.push(c);
                } else if a.is_positive() {
                    upper.push(c);
                } else {
                    lower.push(c);
                }
            }
            if lower.is_empty() && upper.is_empty() {
                rows = rest;
                continue;
            }
            for lo in &lower {
                for up in step.upper.iter().chain(upper.iter()) {
                    match self.resolve_tightened(lo, up, step.var)? {
                        Tightened::True => {}
                        Tightened::False => return Some(LinResult::Unsat),
                        Tightened::Overflow => return None,
                        Tightened::Row(c) => rest.push(c),
                    }
                    if rest.len() > self.config.max_rows {
                        return None;
                    }
                }
            }
            for up in &upper {
                for lo in &step.lower {
                    match self.resolve_tightened(lo, up, step.var)? {
                        Tightened::True => {}
                        Tightened::False => return Some(LinResult::Unsat),
                        Tightened::Overflow => return None,
                        Tightened::Row(c) => rest.push(c),
                    }
                    if rest.len() > self.config.max_rows {
                        return None;
                    }
                }
            }
            rows = rest;
        }
        // Whatever survives mentions only variables the base never saw
        // (base rows were fully eliminated); finish them off normally.
        Some(self.eliminate(rows, None))
    }

    /// The tightened resolvent of a lower and an upper bound on `x`.
    /// `None` on coefficient overflow.
    fn resolve_tightened(
        &self,
        lo: &Constraint,
        up: &Constraint,
        x: SolverVar,
    ) -> Option<Tightened> {
        let a = up.expr.coeff(x); // > 0
        let b = lo.expr.coeff(x).abs(); // > 0 after abs
        let expr = up
            .expr
            .checked_scale(b)
            .and_then(|l| lo.expr.checked_scale(a).and_then(|r| l.checked_add(&r)))?;
        let cmp = match (up.cmp, lo.cmp) {
            (Cmp::Le, Cmp::Le) => Cmp::Le,
            _ => Cmp::Lt,
        };
        Some(self.tighten(Constraint { expr, cmp }))
    }

    fn check_split(&self, constraints: Vec<Constraint>, splits_left: usize) -> LinResult {
        // Pull out the first disequality and case-split on it.
        if let Some(pos) = constraints.iter().position(|c| c.cmp == Cmp::Ne) {
            if splits_left == 0 {
                return LinResult::Unknown;
            }
            let mut rest = constraints;
            let ne = rest.swap_remove(pos);
            // e ≠ 0  ⇒  e ≤ -1 ∨ e ≥ 1  (integer-valued e).
            let lo = Constraint {
                expr: ne.expr.add(&LinExpr::constant(1)),
                cmp: Cmp::Le,
            };
            let hi = Constraint {
                expr: ne.expr.scale(Rat::from_int(-1)).add(&LinExpr::constant(1)),
                cmp: Cmp::Le,
            };
            let mut lhs = rest.clone();
            lhs.push(lo);
            match self.check_split(lhs, splits_left - 1) {
                LinResult::Sat => return LinResult::Sat,
                LinResult::Unsat => {}
                LinResult::Unknown => return LinResult::Unknown,
            }
            let mut rhs = rest;
            rhs.push(hi);
            return self.check_split(rhs, splits_left - 1);
        }
        self.eliminate(constraints, None)
    }

    /// Core loop over a disequality-free system. When `trace` is given,
    /// records the substitutions and per-variable bound rows for
    /// [`FourierMotzkin::check_with_trace`].
    fn eliminate(
        &self,
        constraints: Vec<Constraint>,
        mut trace: Option<&mut FmTrace>,
    ) -> LinResult {
        let mut rows: Vec<Constraint> = Vec::with_capacity(constraints.len());
        for c in constraints {
            match self.tighten(c) {
                Tightened::True => {}
                Tightened::False => return LinResult::Unsat,
                Tightened::Row(c) => rows.push(c),
                Tightened::Overflow => return LinResult::Unknown,
            }
        }

        loop {
            if self.past_deadline() {
                return LinResult::Unknown;
            }
            // Gaussian elimination of equalities first: cheap and exact.
            if let Some(pos) = rows
                .iter()
                .position(|c| c.cmp == Cmp::Eq && !c.expr.is_constant())
            {
                let eq = rows.swap_remove(pos);
                // Integer gcd test: Σ aᵢxᵢ + c = 0 with integer aᵢ is
                // infeasible when gcd(aᵢ) ∤ c.
                if self.config.integer_tightening && gcd_test_infeasible(&eq.expr) {
                    return LinResult::Unsat;
                }
                // Solve for the variable with the smallest absolute
                // coefficient to keep numbers small.
                let (x, a) = eq
                    .expr
                    .iter()
                    .min_by_key(|&(_, c)| c.abs())
                    .expect("non-constant equality has a variable");
                // x = -(rest)/a
                let mut rest = eq.expr.clone();
                rest.add_term(a.checked_neg().expect("coefficient overflow"), x);
                let Some(solution) = a
                    .checked_recip()
                    .and_then(|ra| rest.checked_scale(ra.checked_neg()?))
                else {
                    return LinResult::Unknown;
                };
                if let Some(t) = trace.as_deref_mut() {
                    t.substs.push((x, solution.clone()));
                }
                let mut next = Vec::with_capacity(rows.len());
                for c in rows.drain(..) {
                    let Some(expr) = c.expr.substitute(x, &solution) else {
                        return LinResult::Unknown;
                    };
                    match self.tighten(Constraint { expr, cmp: c.cmp }) {
                        Tightened::True => {}
                        Tightened::False => return LinResult::Unsat,
                        Tightened::Row(c) => next.push(c),
                        Tightened::Overflow => return LinResult::Unknown,
                    }
                }
                rows = next;
                continue;
            }

            // Pick the variable whose elimination produces the fewest
            // resolvents (classic heuristic: minimize |lower|·|upper|).
            let Some(x) = self.cheapest_variable(&rows) else {
                // No variables left; all rows are constant and tighten()
                // already removed the true ones and caught the false ones —
                // but rows produced by resolution are checked here.
                for c in &rows {
                    if c.constant_truth() == Some(false) {
                        return LinResult::Unsat;
                    }
                }
                return LinResult::Sat;
            };

            let mut lower = Vec::new(); // coeff(x) < 0  ⇒  x ≥ …
            let mut upper = Vec::new(); // coeff(x) > 0  ⇒  x ≤ …
            let mut rest = Vec::new();
            for c in rows.drain(..) {
                let a = c.expr.coeff(x);
                if a.is_zero() {
                    rest.push(c);
                } else if a.is_positive() {
                    upper.push(c);
                } else {
                    lower.push(c);
                }
            }

            if let Some(t) = trace.as_deref_mut() {
                t.steps.push(FmStep {
                    var: x,
                    lower: lower.clone(),
                    upper: upper.clone(),
                });
            }

            let mut seen: HashSet<String> = rest.iter().map(row_key).collect();
            for lo in &lower {
                for up in &upper {
                    let a = up.expr.coeff(x); // > 0
                    let b = lo.expr.coeff(x).abs(); // > 0 after abs
                                                    // resolvent: b·up + a·lo  (x cancels)
                    let Some(expr) = up
                        .expr
                        .checked_scale(b)
                        .and_then(|l| lo.expr.checked_scale(a).and_then(|r| l.checked_add(&r)))
                    else {
                        return LinResult::Unknown;
                    };
                    let cmp = match (up.cmp, lo.cmp) {
                        (Cmp::Le, Cmp::Le) => Cmp::Le,
                        _ => Cmp::Lt,
                    };
                    match self.tighten(Constraint { expr, cmp }) {
                        Tightened::True => {}
                        Tightened::False => return LinResult::Unsat,
                        Tightened::Row(c) => {
                            if seen.insert(row_key(&c)) {
                                rest.push(c);
                            }
                        }
                        Tightened::Overflow => return LinResult::Unknown,
                    }
                    if rest.len() > self.config.max_rows {
                        return LinResult::Unknown;
                    }
                }
            }
            rows = rest;
        }
    }

    fn cheapest_variable(&self, rows: &[Constraint]) -> Option<SolverVar> {
        let mut counts: std::collections::BTreeMap<SolverVar, (usize, usize)> =
            std::collections::BTreeMap::new();
        for c in rows {
            for (x, a) in c.expr.iter() {
                let e = counts.entry(x).or_insert((0, 0));
                if a.is_positive() {
                    e.0 += 1;
                } else {
                    e.1 += 1;
                }
            }
        }
        counts
            .into_iter()
            .min_by_key(|&(_, (up, lo))| up * lo)
            .map(|(x, _)| x)
    }

    /// Normalizes a row: clears denominators, converts strict to non-strict
    /// over ℤ, divides by the coefficient gcd and rounds the constant.
    fn tighten(&self, c: Constraint) -> Tightened {
        if let Some(truth) = c.constant_truth() {
            return if truth {
                Tightened::True
            } else {
                Tightened::False
            };
        }
        if !self.config.integer_tightening {
            return Tightened::Row(c);
        }
        if c.cmp == Cmp::Ne {
            return Tightened::Row(c); // split later, keep exact
        }
        // Clear denominators: multiply by lcm of all denominators.
        let mut lcm: i128 = 1;
        for (_, a) in c.expr.iter() {
            lcm = match lcm.checked_mul(a.denom() / gcd_i128(lcm, a.denom())) {
                Some(v) => v,
                None => return Tightened::Overflow,
            };
        }
        lcm = match lcm.checked_mul(
            c.expr.constant_part().denom() / gcd_i128(lcm, c.expr.constant_part().denom()),
        ) {
            Some(v) => v,
            None => return Tightened::Overflow,
        };
        let Some(mut expr) = c.expr.checked_scale(Rat::from_int(lcm)) else {
            return Tightened::Overflow;
        };
        let mut cmp = c.cmp;
        // Strict over integers: e < 0 ⇔ e + 1 ≤ 0.
        if cmp == Cmp::Lt {
            expr = match expr.checked_add(&LinExpr::constant(1)) {
                Some(e) => e,
                None => return Tightened::Overflow,
            };
            cmp = Cmp::Le;
        }
        // Divide by gcd of variable coefficients, rounding the constant.
        let mut g: i128 = 0;
        for (_, a) in expr.iter() {
            debug_assert!(a.is_integer());
            g = gcd_i128(g, a.numer().abs());
        }
        if g > 1 {
            match cmp {
                Cmp::Le => {
                    // Σaᵢxᵢ + c ≤ 0  ⇔  Σ(aᵢ/g)xᵢ ≤ floor(-c/g)  ⇔  … + ceil(c/g) ≤ 0
                    let c0 = expr.constant_part();
                    let scaled_c = Rat::new(c0.numer(), 1)
                        .checked_div(Rat::from_int(g))
                        .map(|r| Rat::from_int(r.ceil_int()));
                    let Some(new_c) = scaled_c else {
                        return Tightened::Overflow;
                    };
                    let terms: Vec<_> = expr
                        .iter()
                        .map(|(x, a)| (Rat::from_int(a.numer() / g), x))
                        .collect();
                    expr = LinExpr::from_terms(terms, new_c);
                }
                Cmp::Eq => {
                    if gcd_test_infeasible(&expr) {
                        return Tightened::False;
                    }
                    let c0 = expr.constant_part();
                    let terms: Vec<_> = expr
                        .iter()
                        .map(|(x, a)| (Rat::from_int(a.numer() / g), x))
                        .collect();
                    expr = LinExpr::from_terms(terms, Rat::from_int(c0.numer() / g));
                }
                Cmp::Lt | Cmp::Ne => unreachable!("Lt rewritten above; Ne returned early"),
            }
        } else if cmp == Cmp::Eq && gcd_test_infeasible(&expr) {
            return Tightened::False;
        }
        if let Some(truth) = (Constraint {
            expr: expr.clone(),
            cmp,
        })
        .constant_truth()
        {
            return if truth {
                Tightened::True
            } else {
                Tightened::False
            };
        }
        Tightened::Row(Constraint { expr, cmp })
    }
}

enum Tightened {
    True,
    False,
    Row(Constraint),
    Overflow,
}

fn gcd_i128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// For `Σ aᵢxᵢ + c = 0` with integer coefficients: infeasible over ℤ when
/// `gcd(aᵢ) ∤ c`.
fn gcd_test_infeasible(expr: &LinExpr) -> bool {
    let mut g: i128 = 0;
    for (_, a) in expr.iter() {
        if !a.is_integer() {
            return false;
        }
        g = gcd_i128(g, a.numer());
    }
    let c = expr.constant_part();
    if !c.is_integer() {
        return false;
    }
    g != 0 && c.numer() % g != 0
}

fn row_key(c: &Constraint) -> String {
    format!("{c}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::SolverVar;

    fn v(i: u32) -> LinExpr {
        LinExpr::var(SolverVar(i))
    }
    fn k(n: i64) -> LinExpr {
        LinExpr::constant(n)
    }
    fn fm() -> FourierMotzkin {
        FourierMotzkin::default()
    }

    #[test]
    fn trivial_sat_unsat() {
        assert!(fm().check(&[]).is_sat());
        assert!(fm().check(&[Constraint::le(k(0), k(1))]).is_sat());
        assert!(fm().check(&[Constraint::lt(k(1), k(0))]).is_unsat());
    }

    #[test]
    fn single_variable_bounds() {
        // 0 ≤ x ∧ x < 0 : unsat
        let cs = [Constraint::ge(v(0), k(0)), Constraint::lt(v(0), k(0))];
        assert!(fm().check(&cs).is_unsat());
        // 0 ≤ x ∧ x ≤ 0 : sat (x = 0)
        let cs = [Constraint::ge(v(0), k(0)), Constraint::le(v(0), k(0))];
        assert!(fm().check(&cs).is_sat());
    }

    #[test]
    fn integer_tightening_cuts_rational_gap() {
        // 1 ≤ 2x ∧ 2x ≤ 1 has the rational solution x = 1/2 but no integer
        // solution; the gcd rounding must detect it.
        let two_x = v(0).scale(Rat::from_int(2));
        let cs = [
            Constraint::ge(two_x.clone(), k(1)),
            Constraint::le(two_x, k(1)),
        ];
        assert!(fm().check(&cs).is_unsat());
        // Without tightening the rational relaxation is reported Sat.
        let loose = FourierMotzkin::new(FmConfig {
            integer_tightening: false,
            ..FmConfig::default()
        });
        let two_x = v(0).scale(Rat::from_int(2));
        let cs = [
            Constraint::ge(two_x.clone(), k(1)),
            Constraint::le(two_x, k(1)),
        ];
        assert!(loose.check(&cs).is_sat());
    }

    #[test]
    fn strict_bounds_over_integers() {
        // 0 < x ∧ x < 2 : sat only at x = 1.
        let cs = [Constraint::gt(v(0), k(0)), Constraint::lt(v(0), k(2))];
        assert!(fm().check(&cs).is_sat());
        // 0 < x ∧ x < 1 : unsat over the integers (sat over rationals!).
        let cs = [Constraint::gt(v(0), k(0)), Constraint::lt(v(0), k(1))];
        assert!(fm().check(&cs).is_unsat());
    }

    #[test]
    fn equalities_gauss() {
        // x = y ∧ y = 3 ∧ x ≤ 2 : unsat
        let cs = [
            Constraint::eq(v(0), v(1)),
            Constraint::eq(v(1), k(3)),
            Constraint::le(v(0), k(2)),
        ];
        assert!(fm().check(&cs).is_unsat());
    }

    #[test]
    fn gcd_test() {
        // 2x + 4y = 1 : infeasible over ℤ.
        let e = v(0)
            .scale(Rat::from_int(2))
            .add(&v(1).scale(Rat::from_int(4)));
        let cs = [Constraint::eq(e, k(1))];
        assert!(fm().check(&cs).is_unsat());
    }

    #[test]
    fn disequality_split() {
        // 0 ≤ x ≤ 1 ∧ x ≠ 0 ∧ x ≠ 1 : unsat.
        let cs = [
            Constraint::ge(v(0), k(0)),
            Constraint::le(v(0), k(1)),
            Constraint::ne(v(0), k(0)),
            Constraint::ne(v(0), k(1)),
        ];
        assert!(fm().check(&cs).is_unsat());
        // 0 ≤ x ≤ 2 ∧ x ≠ 0 ∧ x ≠ 2 : sat (x = 1).
        let cs = [
            Constraint::ge(v(0), k(0)),
            Constraint::le(v(0), k(2)),
            Constraint::ne(v(0), k(0)),
            Constraint::ne(v(0), k(2)),
        ];
        assert!(fm().check(&cs).is_sat());
    }

    #[test]
    fn vector_bounds_entailment() {
        // Facts: 0 ≤ i, i < len(A), len(A) = len(B)  ⊢  i < len(B).
        let i = || v(0);
        let len_a = || v(1);
        let len_b = || v(2);
        let facts = [
            Constraint::ge(i(), k(0)),
            Constraint::lt(i(), len_a()),
            Constraint::eq(len_a(), len_b()),
        ];
        let goal = Constraint::lt(i(), len_b());
        assert!(fm().entails(&facts, &goal));
        // Without the equality the entailment must fail.
        let weak = [Constraint::ge(i(), k(0)), Constraint::lt(i(), len_a())];
        assert!(!fm().entails(&weak, &goal));
    }

    #[test]
    fn multi_variable_chain() {
        // x ≤ y ∧ y ≤ z ∧ z ≤ x ∧ x ≤ 5 ∧ 5 ≤ x ⊢ y = 5.
        let facts = [
            Constraint::le(v(0), v(1)),
            Constraint::le(v(1), v(2)),
            Constraint::le(v(2), v(0)),
            Constraint::le(v(0), k(5)),
            Constraint::ge(v(0), k(5)),
        ];
        assert!(fm().entails(&facts, &Constraint::eq(v(1), k(5))));
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        let tiny = FourierMotzkin::new(FmConfig {
            max_splits: 0,
            ..FmConfig::default()
        });
        let cs = [Constraint::ne(v(0), k(0))];
        assert_eq!(tiny.check(&cs), LinResult::Unknown);
    }

    #[test]
    fn unconstrained_variables_are_sat() {
        let cs = [Constraint::le(v(0), v(1)), Constraint::le(v(2), v(3))];
        assert!(fm().check(&cs).is_sat());
    }

    #[test]
    fn trace_extension_matches_one_shot() {
        // base: 0 ≤ i, i < len — sat, traced.
        let base = [Constraint::ge(v(0), k(0)), Constraint::lt(v(0), v(1))];
        let (r, trace) = fm().check_traced(&base);
        assert!(r.is_sat());
        let trace = trace.expect("sat base records a trace");
        // + len ≤ i : unsat.
        let got = fm().check_with_trace(&trace, &[Constraint::le(v(1), v(0))]);
        assert_eq!(got, Some(LinResult::Unsat));
        // + i ≤ 3 : still sat.
        let got = fm().check_with_trace(&trace, &[Constraint::le(v(0), k(3))]);
        assert_eq!(got, Some(LinResult::Sat));
        // + a delta over a fresh variable pair, independently unsat.
        let delta = [Constraint::ge(v(7), k(1)), Constraint::lt(v(7), k(1))];
        let got = fm().check_with_trace(&trace, &delta);
        assert_eq!(got, Some(LinResult::Unsat));
    }

    #[test]
    fn trace_extension_handles_equality_and_disequality_deltas() {
        // base: 0 ≤ i, i < len_a (sat, traced).
        let base = [Constraint::ge(v(0), k(0)), Constraint::lt(v(0), v(1))];
        let (r, trace) = fm().check_traced(&base);
        assert!(r.is_sat());
        let trace = trace.expect("trace");
        // equality delta: len_a = len_b, then the entailment-style goal
        // negation ¬(i < len_b) = len_b ≤ i: unsat.
        let delta = [
            Constraint::eq(v(1), v(2)),
            Constraint::le(v(2), v(0)), // len_b ≤ i
        ];
        assert_eq!(
            fm().check_with_trace(&trace, &delta),
            Some(LinResult::Unsat)
        );
        // disequality delta: i ≠ 0 ∧ i ≤ 0 contradicts 0 ≤ i.
        let delta = [Constraint::ne(v(0), k(0)), Constraint::le(v(0), k(0))];
        assert_eq!(
            fm().check_with_trace(&trace, &delta),
            Some(LinResult::Unsat)
        );
        // i ≠ 0 alone stays sat.
        let delta = [Constraint::ne(v(0), k(0))];
        assert_eq!(fm().check_with_trace(&trace, &delta), Some(LinResult::Sat));
    }

    #[test]
    fn traced_base_with_equalities_replays_substitutions() {
        // base: x = y ∧ y = 3 (sat via Gaussian substitution).
        let base = [Constraint::eq(v(0), v(1)), Constraint::eq(v(1), k(3))];
        let (r, trace) = fm().check_traced(&base);
        assert!(r.is_sat());
        let trace = trace.expect("trace");
        assert_eq!(
            fm().check_with_trace(&trace, &[Constraint::le(v(0), k(2))]),
            Some(LinResult::Unsat)
        );
        assert_eq!(
            fm().check_with_trace(&trace, &[Constraint::le(v(0), k(3))]),
            Some(LinResult::Sat)
        );
    }

    #[test]
    fn unsat_and_split_bases_record_no_trace() {
        let unsat = [Constraint::lt(v(0), k(0)), Constraint::ge(v(0), k(0))];
        let (r, trace) = fm().check_traced(&unsat);
        assert!(r.is_unsat());
        assert!(trace.is_none());
        let ne = [Constraint::ne(v(0), k(0))];
        let (r, trace) = fm().check_traced(&ne);
        assert!(r.is_sat());
        assert!(trace.is_none());
    }
}
