//! Linear expressions `c + Σ aᵢ·xᵢ` with exact rational coefficients.

use std::fmt;

use super::SolverVar;
use crate::rational::Rat;

/// A linear expression `constant + Σ coeffᵢ · varᵢ`.
///
/// Terms are kept in a `Vec` sorted by variable with no zero
/// coefficients, so structural equality is semantic equality. The flat
/// representation costs one allocation per expression instead of one per
/// term (the systems the checker poses have a handful of variables, and
/// Fourier–Motzkin clones rows constantly — this is the solver's hottest
/// data structure).
///
/// # Examples
///
/// ```
/// use rtr_solver::lin::{LinExpr, SolverVar};
/// use rtr_solver::rational::Rat;
///
/// // 2x + 3
/// let e = LinExpr::var(SolverVar(0)).scale(Rat::from_int(2)).add(&LinExpr::constant(3));
/// assert_eq!(e.coeff(SolverVar(0)), Rat::from_int(2));
/// assert_eq!(e.constant_part(), Rat::from_int(3));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LinExpr {
    /// Sorted by variable; no zero coefficients.
    terms: Vec<(SolverVar, Rat)>,
    constant: Rat,
}

impl LinExpr {
    /// The constant expression `n`.
    pub fn constant(n: i64) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: Rat::from(n),
        }
    }

    /// The constant expression given by a rational.
    pub fn constant_rat(c: Rat) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// The expression `1·x`.
    pub fn var(x: SolverVar) -> LinExpr {
        LinExpr {
            terms: vec![(x, Rat::ONE)],
            constant: Rat::ZERO,
        }
    }

    /// Builds an expression from `(coeff, var)` pairs plus a constant.
    pub fn from_terms<I>(terms: I, constant: Rat) -> LinExpr
    where
        I: IntoIterator<Item = (Rat, SolverVar)>,
    {
        let mut e = LinExpr {
            terms: Vec::new(),
            constant,
        };
        for (c, x) in terms {
            e.add_term(c, x);
        }
        e
    }

    /// Adds `coeff·x` in place, dropping the term if it cancels to zero.
    pub fn add_term(&mut self, coeff: Rat, x: SolverVar) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.binary_search_by(|(v, _)| v.cmp(&x)) {
            Ok(i) => {
                let c = self.terms[i]
                    .1
                    .checked_add(coeff)
                    .expect("linear-expression coefficient overflow");
                if c.is_zero() {
                    self.terms.remove(i);
                } else {
                    self.terms[i].1 = c;
                }
            }
            Err(i) => self.terms.insert(i, (x, coeff)),
        }
    }

    /// The coefficient of `x` (zero if absent).
    pub fn coeff(&self, x: SolverVar) -> Rat {
        match self.terms.binary_search_by(|(v, _)| v.cmp(&x)) {
            Ok(i) => self.terms[i].1,
            Err(_) => Rat::ZERO,
        }
    }

    /// The constant part.
    pub fn constant_part(&self) -> Rat {
        self.constant
    }

    /// Iterates over the non-zero `(var, coeff)` terms in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (SolverVar, Rat)> + '_ {
        self.terms.iter().copied()
    }

    /// Returns `true` if the expression has no variable terms.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of variable terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables mentioned.
    pub fn vars(&self) -> impl Iterator<Item = SolverVar> + '_ {
        self.terms.iter().map(|&(x, _)| x)
    }

    /// Pointwise sum.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        self.checked_add(other).expect("linear-expression overflow")
    }

    /// Pointwise sum, `None` on coefficient overflow (a sorted merge).
    pub fn checked_add(&self, other: &LinExpr) -> Option<LinExpr> {
        let constant = self.constant.checked_add(other.constant)?;
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() && j < other.terms.len() {
            let (xa, ca) = self.terms[i];
            let (xb, cb) = other.terms[j];
            match xa.cmp(&xb) {
                std::cmp::Ordering::Less => {
                    terms.push((xa, ca));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    terms.push((xb, cb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let c = ca.checked_add(cb)?;
                    if !c.is_zero() {
                        terms.push((xa, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        terms.extend_from_slice(&self.terms[i..]);
        terms.extend_from_slice(&other.terms[j..]);
        Some(LinExpr { terms, constant })
    }

    /// Pointwise difference.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(Rat::from_int(-1)))
    }

    /// Scales every coefficient and the constant by `k`.
    pub fn scale(&self, k: Rat) -> LinExpr {
        self.checked_scale(k).expect("linear-expression overflow")
    }

    /// Scales by `k`, `None` on overflow.
    pub fn checked_scale(&self, k: Rat) -> Option<LinExpr> {
        if k.is_zero() {
            return Some(LinExpr::default());
        }
        let mut terms = Vec::with_capacity(self.terms.len());
        for (x, c) in self.iter() {
            terms.push((x, c.checked_mul(k)?));
        }
        Some(LinExpr {
            terms,
            constant: self.constant.checked_mul(k)?,
        })
    }

    /// Substitutes `x := e` (used for Gaussian elimination of equalities).
    pub fn substitute(&self, x: SolverVar, e: &LinExpr) -> Option<LinExpr> {
        let c = self.coeff(x);
        if c.is_zero() {
            return Some(self.clone());
        }
        let mut rest = self.clone();
        rest.terms.retain(|&(v, _)| v != x);
        rest.checked_add(&e.checked_scale(c)?)
    }

    /// Evaluates under an assignment; variables absent from the assignment
    /// default to zero.
    pub fn eval<F>(&self, mut lookup: F) -> Option<Rat>
    where
        F: FnMut(SolverVar) -> Rat,
    {
        let mut acc = self.constant;
        for (x, c) in self.iter() {
            acc = acc.checked_add(c.checked_mul(lookup(x))?)?;
        }
        Some(acc)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, c) in self.iter() {
            if first {
                write!(f, "{c}·{x}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}·{x}", c.abs())?;
            } else {
                write!(f, " + {c}·{x}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)
        } else if self.constant.is_zero() {
            Ok(())
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())
        } else {
            write!(f, " + {}", self.constant)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> SolverVar {
        SolverVar(0)
    }
    fn y() -> SolverVar {
        SolverVar(1)
    }

    #[test]
    fn construction_cancels_zeros() {
        let mut e = LinExpr::var(x());
        e.add_term(Rat::from_int(-1), x());
        assert!(e.is_constant());
        assert_eq!(e, LinExpr::constant(0));
    }

    #[test]
    fn add_sub_scale() {
        let e = LinExpr::var(x())
            .scale(Rat::from_int(2))
            .add(&LinExpr::constant(3));
        let f = LinExpr::var(x()).add(&LinExpr::var(y()));
        let sum = e.add(&f);
        assert_eq!(sum.coeff(x()), Rat::from_int(3));
        assert_eq!(sum.coeff(y()), Rat::ONE);
        assert_eq!(sum.constant_part(), Rat::from_int(3));
        let diff = sum.sub(&f);
        assert_eq!(diff, e);
        assert_eq!(e.scale(Rat::ZERO), LinExpr::constant(0));
    }

    #[test]
    fn substitution() {
        // (2x + y + 1)[x := y - 1] = 3y - 1
        let e = LinExpr::from_terms([(Rat::from_int(2), x()), (Rat::ONE, y())], Rat::ONE);
        let repl = LinExpr::var(y()).add(&LinExpr::constant(-1));
        let got = e.substitute(x(), &repl).unwrap();
        assert_eq!(got.coeff(x()), Rat::ZERO);
        assert_eq!(got.coeff(y()), Rat::from_int(3));
        assert_eq!(got.constant_part(), Rat::from_int(-1));
    }

    #[test]
    fn eval() {
        let e = LinExpr::from_terms(
            [(Rat::from_int(2), x()), (Rat::from_int(-1), y())],
            Rat::from_int(5),
        );
        let v = e
            .eval(|v| {
                if v == x() {
                    Rat::from_int(3)
                } else {
                    Rat::from_int(4)
                }
            })
            .unwrap();
        assert_eq!(v, Rat::from_int(7));
    }

    #[test]
    fn display() {
        let e = LinExpr::from_terms(
            [(Rat::from_int(2), x()), (Rat::from_int(-1), y())],
            Rat::from_int(-5),
        );
        assert_eq!(e.to_string(), "2·v0 - 1·v1 - 5");
        assert_eq!(LinExpr::constant(0).to_string(), "0");
    }
}
