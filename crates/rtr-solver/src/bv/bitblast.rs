//! Lowering bitvector terms to CNF (Tseitin encoding).
//!
//! Every term is translated to a vector of SAT literals, least significant
//! bit first, with auxiliary gate variables and defining clauses appended
//! to the shared [`Cnf`]. Identical subterms are translated once
//! (hash-consing on the term structure), which matters for the shift-add
//! multiplier's repeated partial sums.

use super::term::{BvAtom, BvLit, BvTerm, Node};
use crate::fxhash::FxHashMap;
use crate::lin::SolverVar;
use crate::sat::{Cnf, Lit};

/// Error raised when a query exceeds the blaster's structural budget.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlastBudgetExceeded;

impl std::fmt::Display for BlastBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit-blasting budget exceeded")
    }
}

impl std::error::Error for BlastBudgetExceeded {}

/// The reusable half of the blaster: variable bit assignments, the
/// term→bits hash-consing cache, and the reified constant-true literal.
/// Splitting this from the CNF borrow lets a session keep the state (and
/// with it every already-encoded term's clause block) alive across
/// queries — repeated goals over the same terms skip re-encoding
/// entirely (see [`crate::bv::BvSession`]).
#[derive(Clone, Debug, Default)]
pub struct BlastState {
    vars: FxHashMap<(SolverVar, u32), Vec<Lit>>,
    cache: FxHashMap<BvTerm, Vec<Lit>>,
    true_lit: Option<Lit>,
}

impl BlastState {
    /// Number of distinct terms whose encodings are cached.
    pub fn num_cached_terms(&self) -> usize {
        self.cache.len()
    }
}

/// Incremental bit-blaster over a shared CNF.
pub struct BitBlaster<'a> {
    cnf: &'a mut Cnf,
    state: &'a mut BlastState,
    max_aux_vars: u32,
}

impl<'a> BitBlaster<'a> {
    /// Creates a blaster appending to `cnf`, reusing (and extending) the
    /// encodings cached in `state`. `state` must only ever be paired with
    /// this same `cnf` — its literals index that CNF's variables.
    pub fn new(cnf: &'a mut Cnf, state: &'a mut BlastState) -> BitBlaster<'a> {
        BitBlaster {
            cnf,
            state,
            max_aux_vars: 1_000_000,
        }
    }

    /// A literal constrained to be true.
    fn constant_true(&mut self) -> Lit {
        if let Some(t) = self.state.true_lit {
            return t;
        }
        let v = self.cnf.fresh_var();
        let t = Lit::pos(v);
        self.cnf.add_clause([t]);
        self.state.true_lit = Some(t);
        t
    }

    fn constant_false(&mut self) -> Lit {
        !self.constant_true()
    }

    /// Is `l` the reified constant-true (`Some(true)`) or constant-false
    /// (`Some(false)`) literal? Enables gate-level constant propagation:
    /// circuits over constant operands (multiplying by a literal, masking
    /// with `#xff`, comparing against a bound) fold into wiring instead
    /// of Tseitin gates, which shrinks both the encoding and the CDCL
    /// search space by orders of magnitude on constant-heavy queries.
    fn as_const(&self, l: Lit) -> Option<bool> {
        let t = self.state.true_lit?;
        if l == t {
            Some(true)
        } else if l == !t {
            Some(false)
        } else {
            None
        }
    }

    fn fresh(&mut self) -> Result<Lit, BlastBudgetExceeded> {
        if self.cnf.num_vars() > self.max_aux_vars {
            return Err(BlastBudgetExceeded);
        }
        Ok(Lit::pos(self.cnf.fresh_var()))
    }

    // --- gate library (with constant/structural simplification) ----------

    fn gate_not(&mut self, a: Lit) -> Lit {
        !a
    }

    fn gate_and(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastBudgetExceeded> {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => return Ok(self.constant_false()),
            (Some(true), _) => return Ok(b),
            (_, Some(true)) => return Ok(a),
            _ => {}
        }
        if a == b {
            return Ok(a);
        }
        if a == !b {
            return Ok(self.constant_false());
        }
        let o = self.fresh()?;
        self.cnf.add_clause([!o, a]);
        self.cnf.add_clause([!o, b]);
        self.cnf.add_clause([o, !a, !b]);
        Ok(o)
    }

    fn gate_or(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastBudgetExceeded> {
        match (self.as_const(a), self.as_const(b)) {
            (Some(true), _) | (_, Some(true)) => return Ok(self.constant_true()),
            (Some(false), _) => return Ok(b),
            (_, Some(false)) => return Ok(a),
            _ => {}
        }
        if a == b {
            return Ok(a);
        }
        if a == !b {
            return Ok(self.constant_true());
        }
        let o = self.fresh()?;
        self.cnf.add_clause([o, !a]);
        self.cnf.add_clause([o, !b]);
        self.cnf.add_clause([!o, a, b]);
        Ok(o)
    }

    fn gate_xor(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastBudgetExceeded> {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) => return Ok(b),
            (_, Some(false)) => return Ok(a),
            (Some(true), _) => return Ok(!b),
            (_, Some(true)) => return Ok(!a),
            _ => {}
        }
        if a == b {
            return Ok(self.constant_false());
        }
        if a == !b {
            return Ok(self.constant_true());
        }
        let o = self.fresh()?;
        self.cnf.add_clause([!o, a, b]);
        self.cnf.add_clause([!o, !a, !b]);
        self.cnf.add_clause([o, !a, b]);
        self.cnf.add_clause([o, a, !b]);
        Ok(o)
    }

    /// `o ↔ (a ↔ b)`.
    fn gate_xnor(&mut self, a: Lit, b: Lit) -> Result<Lit, BlastBudgetExceeded> {
        Ok(!self.gate_xor(a, b)?)
    }

    /// Majority of three (the carry bit of a full adder).
    fn gate_maj(&mut self, a: Lit, b: Lit, c: Lit) -> Result<Lit, BlastBudgetExceeded> {
        // Constant inputs reduce the majority to a binary gate.
        match (self.as_const(a), self.as_const(b), self.as_const(c)) {
            (Some(true), ..) => return self.gate_or(b, c),
            (Some(false), ..) => return self.gate_and(b, c),
            (_, Some(true), _) => return self.gate_or(a, c),
            (_, Some(false), _) => return self.gate_and(a, c),
            (.., Some(true)) => return self.gate_or(a, b),
            (.., Some(false)) => return self.gate_and(a, b),
            _ => {}
        }
        let ab = self.gate_and(a, b)?;
        let ac = self.gate_and(a, c)?;
        let bc = self.gate_and(b, c)?;
        let t = self.gate_or(ab, ac)?;
        self.gate_or(t, bc)
    }

    // --- word-level circuits ----------------------------------------------

    /// The bits of `t`, LSB first.
    pub(crate) fn blast_term(&mut self, t: &BvTerm) -> Result<Vec<Lit>, BlastBudgetExceeded> {
        if let Some(bits) = self.state.cache.get(t) {
            return Ok(bits.clone());
        }
        let width = t.width() as usize;
        let bits: Vec<Lit> = match t.node() {
            Node::Const(v) => {
                let tt = self.constant_true();
                let ff = self.constant_false();
                (0..width)
                    .map(|i| if (v >> i) & 1 == 1 { tt } else { ff })
                    .collect()
            }
            Node::Var(x) => {
                if let Some(bits) = self.state.vars.get(&(*x, t.width())) {
                    bits.clone()
                } else {
                    let bits: Vec<Lit> =
                        (0..width).map(|_| Lit::pos(self.cnf.fresh_var())).collect();
                    self.state.vars.insert((*x, t.width()), bits.clone());
                    bits
                }
            }
            Node::Not(a) => {
                let a = self.blast_term(a)?;
                a.into_iter().map(|l| self.gate_not(l)).collect()
            }
            Node::And(a, b) => self.zip_gate(a, b, Self::gate_and)?,
            Node::Or(a, b) => self.zip_gate(a, b, Self::gate_or)?,
            Node::Xor(a, b) => self.zip_gate(a, b, Self::gate_xor)?,
            Node::Add(a, b) => {
                let a = self.blast_term(a)?;
                let b = self.blast_term(b)?;
                self.ripple_add(&a, &b, None)?
            }
            Node::Sub(a, b) => {
                // a - b = a + ¬b + 1
                let a = self.blast_term(a)?;
                let b = self.blast_term(b)?;
                let nb: Vec<Lit> = b.into_iter().map(|l| !l).collect();
                let one = self.constant_true();
                self.ripple_add(&a, &nb, Some(one))?
            }
            Node::Mul(a, b) => {
                let av = self.blast_term(a)?;
                let bv = self.blast_term(b)?;
                let ff = self.constant_false();
                let mut acc = vec![ff; width];
                for (i, &ai) in av.iter().enumerate() {
                    // partial product: (b << i) gated by aᵢ
                    let mut partial = vec![ff; width];
                    for j in 0..(width - i) {
                        partial[i + j] = self.gate_and(ai, bv[j])?;
                    }
                    acc = self.ripple_add(&acc, &partial, None)?;
                }
                acc
            }
            Node::Shl(a, k) => {
                let a = self.blast_term(a)?;
                let ff = self.constant_false();
                let k = *k as usize;
                (0..width)
                    .map(|i| if i >= k { a[i - k] } else { ff })
                    .collect()
            }
            Node::Lshr(a, k) => {
                let a = self.blast_term(a)?;
                let ff = self.constant_false();
                let k = *k as usize;
                (0..width)
                    .map(|i| if i + k < width { a[i + k] } else { ff })
                    .collect()
            }
        };
        self.state.cache.insert(t.clone(), bits.clone());
        Ok(bits)
    }

    fn zip_gate(
        &mut self,
        a: &BvTerm,
        b: &BvTerm,
        gate: fn(&mut Self, Lit, Lit) -> Result<Lit, BlastBudgetExceeded>,
    ) -> Result<Vec<Lit>, BlastBudgetExceeded> {
        let a = self.blast_term(a)?;
        let b = self.blast_term(b)?;
        a.into_iter()
            .zip(b)
            .map(|(x, y)| gate(self, x, y))
            .collect()
    }

    fn ripple_add(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        carry_in: Option<Lit>,
    ) -> Result<Vec<Lit>, BlastBudgetExceeded> {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = match carry_in {
            Some(c) => c,
            None => self.constant_false(),
        };
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.gate_xor(a[i], b[i])?;
            out.push(self.gate_xor(axb, carry)?);
            if i + 1 < a.len() {
                carry = self.gate_maj(a[i], b[i], carry)?;
            }
        }
        Ok(out)
    }

    /// Reifies an atom to a single literal.
    fn blast_atom(&mut self, atom: &BvAtom) -> Result<Lit, BlastBudgetExceeded> {
        match atom {
            BvAtom::Eq(a, b) => {
                let av = self.blast_term(a)?;
                let bv = self.blast_term(b)?;
                let mut acc = self.constant_true();
                for (x, y) in av.into_iter().zip(bv) {
                    let e = self.gate_xnor(x, y)?;
                    acc = self.gate_and(acc, e)?;
                }
                Ok(acc)
            }
            BvAtom::Ule(a, b) => self.blast_cmp(a, b, true),
            BvAtom::Ult(a, b) => self.blast_cmp(a, b, false),
        }
    }

    /// Unsigned `a ≤ b` (or `a < b`): lexicographic comparator from the MSB.
    fn blast_cmp(
        &mut self,
        a: &BvTerm,
        b: &BvTerm,
        or_equal: bool,
    ) -> Result<Lit, BlastBudgetExceeded> {
        let av = self.blast_term(a)?;
        let bv = self.blast_term(b)?;
        // result = a < b, built LSB→MSB:  lt_i = (¬aᵢ ∧ bᵢ) ∨ (aᵢ↔bᵢ) ∧ lt_{i-1}
        let mut lt = if or_equal {
            self.constant_true()
        } else {
            self.constant_false()
        };
        for (x, y) in av.into_iter().zip(bv) {
            let strictly = {
                let nx = !x;
                self.gate_and(nx, y)?
            };
            let eq = self.gate_xnor(x, y)?;
            let keep = self.gate_and(eq, lt)?;
            lt = self.gate_or(strictly, keep)?;
        }
        Ok(lt)
    }

    /// Asserts a literal (adds it as a unit over its reified atom).
    pub fn assert_lit(&mut self, lit: &BvLit) -> Result<(), BlastBudgetExceeded> {
        let l = self.reify_lit(lit)?;
        self.cnf.add_clause([l]);
        Ok(())
    }

    /// Reifies a literal to a single SAT literal (true ⇔ the bitvector
    /// literal holds) without asserting it — the hook a session uses to
    /// guard facts and goals behind activation literals.
    pub fn reify_lit(&mut self, lit: &BvLit) -> Result<Lit, BlastBudgetExceeded> {
        let l = self.blast_atom(&lit.atom)?;
        Ok(if lit.positive { l } else { !l })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::{SatResult, Solver};

    /// Oracle: a query over one 4-bit variable is checked against
    /// exhaustive evaluation.
    fn check_against_enumeration(mk: impl Fn(BvTerm) -> BvAtom) {
        let width = 4;
        let x = BvTerm::var(SolverVar(0), width);
        let atom = mk(x);
        let truth_any = (0..16u64).any(|v| atom.eval(&mut |_| Some(v)) == Some(true));
        let mut cnf = Cnf::new();
        let mut state = BlastState::default();
        let mut blaster = BitBlaster::new(&mut cnf, &mut state);
        blaster.assert_lit(&BvLit::positive(atom.clone())).unwrap();
        let sat = Solver::new().solve(&cnf).is_sat();
        assert_eq!(
            sat, truth_any,
            "solver disagrees with enumeration on {atom:?}"
        );
    }

    #[test]
    fn add_circuit_matches_semantics() {
        check_against_enumeration(|x| {
            BvAtom::eq(
                x.clone().add(BvTerm::constant(3, 4)),
                BvTerm::constant(2, 4),
            )
        });
    }

    #[test]
    fn sub_circuit_matches_semantics() {
        check_against_enumeration(|x| {
            BvAtom::eq(
                x.clone().sub(BvTerm::constant(5, 4)),
                BvTerm::constant(15, 4),
            )
        });
    }

    #[test]
    fn mul_circuit_matches_semantics() {
        check_against_enumeration(|x| {
            BvAtom::eq(
                x.clone().mul(BvTerm::constant(3, 4)),
                BvTerm::constant(6, 4),
            )
        });
    }

    #[test]
    fn shifts_match_semantics() {
        check_against_enumeration(|x| BvAtom::eq(x.clone().shl(2), BvTerm::constant(0b1100, 4)));
        check_against_enumeration(|x| BvAtom::eq(x.clone().lshr(1), BvTerm::constant(0b0101, 4)));
        check_against_enumeration(|x| BvAtom::eq(x.clone().shl(7), BvTerm::constant(0, 4)));
    }

    #[test]
    fn comparisons_match_semantics() {
        check_against_enumeration(|x| BvAtom::ule(x, BvTerm::constant(0, 4)));
        check_against_enumeration(|x| BvAtom::ult(x, BvTerm::constant(0, 4)));
        check_against_enumeration(|x| BvAtom::ule(BvTerm::constant(15, 4), x));
    }

    #[test]
    fn bitwise_ops_match_semantics() {
        check_against_enumeration(|x| {
            BvAtom::eq(
                x.clone()
                    .and(BvTerm::constant(0b1010, 4))
                    .or(BvTerm::constant(1, 4)),
                BvTerm::constant(0b1011, 4),
            )
        });
        check_against_enumeration(|x| {
            BvAtom::eq(x.clone().xor(x.clone().not()), BvTerm::constant(0b1111, 4))
        });
    }

    #[test]
    fn shared_subterms_are_cached() {
        let x = BvTerm::var(SolverVar(0), 8);
        let big = x.clone().mul(BvTerm::constant(3, 8));
        let atom = BvAtom::eq(big.clone().add(big.clone()), big.clone().shl(1));
        let mut cnf = Cnf::new();
        let mut state = BlastState::default();
        let mut blaster = BitBlaster::new(&mut cnf, &mut state);
        blaster.assert_lit(&BvLit::positive(atom)).unwrap();
        let vars_shared = cnf.num_vars();

        // Valid statement: t + t = t << 1, so UNSAT when negated.
        let x = BvTerm::var(SolverVar(0), 8);
        let big = x.clone().mul(BvTerm::constant(3, 8));
        let atom = BvAtom::eq(big.clone().add(big.clone()), big.shl(1));
        let mut cnf2 = Cnf::new();
        let mut state2 = BlastState::default();
        let mut blaster2 = BitBlaster::new(&mut cnf2, &mut state2);
        blaster2.assert_lit(&BvLit::negative(atom)).unwrap();
        assert!(matches!(Solver::new().solve(&cnf2), SatResult::Unsat));
        assert!(vars_shared > 0);
    }
}
