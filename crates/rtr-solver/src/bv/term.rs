//! Bitvector terms, atoms and literals.

use std::fmt;
use std::sync::Arc;

use crate::lin::SolverVar;

/// A fixed-width bitvector term. Widths are 1–64 bits; all operators
/// require equal widths and wrap modulo `2^width` (the machine semantics
/// the paper's `Byte` arithmetic relies on).
///
/// Terms are immutable and cheaply cloneable (`Arc`-shared, so terms cross thread boundaries).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BvTerm {
    node: Arc<Node>,
    width: u32,
}

#[derive(PartialEq, Eq, Hash, Debug)]
pub(crate) enum Node {
    Const(u64),
    Var(SolverVar),
    Not(BvTerm),
    And(BvTerm, BvTerm),
    Or(BvTerm, BvTerm),
    Xor(BvTerm, BvTerm),
    Add(BvTerm, BvTerm),
    Sub(BvTerm, BvTerm),
    Mul(BvTerm, BvTerm),
    Shl(BvTerm, u32),
    Lshr(BvTerm, u32),
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

#[allow(clippy::should_implement_trait)] // not/and/add/mul are the BV combinators
impl BvTerm {
    /// A constant, truncated to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn constant(value: u64, width: u32) -> BvTerm {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        BvTerm {
            node: Arc::new(Node::Const(value & mask(width))),
            width,
        }
    }

    /// A solver variable of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64.
    pub fn var(v: SolverVar, width: u32) -> BvTerm {
        assert!((1..=64).contains(&width), "bitvector width must be 1..=64");
        BvTerm {
            node: Arc::new(Node::Var(v)),
            width,
        }
    }

    /// The width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    fn binary(self, other: BvTerm, f: impl FnOnce(BvTerm, BvTerm) -> Node) -> BvTerm {
        assert_eq!(self.width, other.width, "bitvector width mismatch");
        let width = self.width;
        BvTerm {
            node: Arc::new(f(self, other)),
            width,
        }
    }

    /// Bitwise complement.
    pub fn not(self) -> BvTerm {
        let width = self.width;
        BvTerm {
            node: Arc::new(Node::Not(self)),
            width,
        }
    }

    /// Bitwise conjunction. Panics on width mismatch.
    pub fn and(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::And)
    }

    /// Bitwise disjunction. Panics on width mismatch.
    pub fn or(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::Or)
    }

    /// Bitwise exclusive or. Panics on width mismatch.
    pub fn xor(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::Xor)
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::Add)
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::Sub)
    }

    /// Wrapping multiplication. Panics on width mismatch.
    pub fn mul(self, other: BvTerm) -> BvTerm {
        self.binary(other, Node::Mul)
    }

    /// Left shift by a constant amount (zero fill; shifts ≥ width yield 0).
    pub fn shl(self, amount: u32) -> BvTerm {
        let width = self.width;
        BvTerm {
            node: Arc::new(Node::Shl(self, amount)),
            width,
        }
    }

    /// Logical right shift by a constant amount.
    pub fn lshr(self, amount: u32) -> BvTerm {
        let width = self.width;
        BvTerm {
            node: Arc::new(Node::Lshr(self, amount)),
            width,
        }
    }

    /// Evaluates the term under an assignment of variables to values.
    /// Returns `None` if a variable is unassigned.
    pub fn eval<F>(&self, lookup: &mut F) -> Option<u64>
    where
        F: FnMut(SolverVar) -> Option<u64>,
    {
        let m = mask(self.width);
        Some(match &*self.node {
            Node::Const(v) => *v,
            Node::Var(x) => lookup(*x)? & m,
            Node::Not(a) => !a.eval(lookup)? & m,
            Node::And(a, b) => a.eval(lookup)? & b.eval(lookup)?,
            Node::Or(a, b) => a.eval(lookup)? | b.eval(lookup)?,
            Node::Xor(a, b) => a.eval(lookup)? ^ b.eval(lookup)?,
            Node::Add(a, b) => a.eval(lookup)?.wrapping_add(b.eval(lookup)?) & m,
            Node::Sub(a, b) => a.eval(lookup)?.wrapping_sub(b.eval(lookup)?) & m,
            Node::Mul(a, b) => a.eval(lookup)?.wrapping_mul(b.eval(lookup)?) & m,
            Node::Shl(a, k) => {
                if *k >= self.width {
                    0
                } else {
                    (a.eval(lookup)? << k) & m
                }
            }
            Node::Lshr(a, k) => {
                if *k >= self.width {
                    0
                } else {
                    a.eval(lookup)? >> k
                }
            }
        })
    }

    pub(crate) fn node(&self) -> &Node {
        &self.node
    }
}

impl fmt::Display for BvTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.node {
            Node::Const(v) => write!(f, "#x{v:x}"),
            Node::Var(x) => write!(f, "{x}"),
            Node::Not(a) => write!(f, "(not {a})"),
            Node::And(a, b) => write!(f, "(and {a} {b})"),
            Node::Or(a, b) => write!(f, "(or {a} {b})"),
            Node::Xor(a, b) => write!(f, "(xor {a} {b})"),
            Node::Add(a, b) => write!(f, "(+ {a} {b})"),
            Node::Sub(a, b) => write!(f, "(- {a} {b})"),
            Node::Mul(a, b) => write!(f, "(* {a} {b})"),
            Node::Shl(a, k) => write!(f, "(shl {a} {k})"),
            Node::Lshr(a, k) => write!(f, "(lshr {a} {k})"),
        }
    }
}

/// An atomic bitvector predicate.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BvAtom {
    /// `a = b`
    Eq(BvTerm, BvTerm),
    /// `a ≤ b` (unsigned)
    Ule(BvTerm, BvTerm),
    /// `a < b` (unsigned)
    Ult(BvTerm, BvTerm),
}

impl BvAtom {
    /// `a = b`. Panics on width mismatch; see [`BvAtom::try_eq`].
    pub fn eq(a: BvTerm, b: BvTerm) -> BvAtom {
        BvAtom::try_eq(a, b).expect("bitvector width mismatch")
    }

    /// `a = b`, or `None` on width mismatch.
    pub fn try_eq(a: BvTerm, b: BvTerm) -> Option<BvAtom> {
        (a.width() == b.width()).then_some(BvAtom::Eq(a, b))
    }

    /// `a ≤ b` unsigned. Panics on width mismatch.
    pub fn ule(a: BvTerm, b: BvTerm) -> BvAtom {
        assert_eq!(a.width(), b.width(), "bitvector width mismatch");
        BvAtom::Ule(a, b)
    }

    /// `a < b` unsigned. Panics on width mismatch.
    pub fn ult(a: BvTerm, b: BvTerm) -> BvAtom {
        assert_eq!(a.width(), b.width(), "bitvector width mismatch");
        BvAtom::Ult(a, b)
    }

    /// Evaluates the atom under an assignment.
    pub fn eval<F>(&self, lookup: &mut F) -> Option<bool>
    where
        F: FnMut(SolverVar) -> Option<u64>,
    {
        Some(match self {
            BvAtom::Eq(a, b) => a.eval(lookup)? == b.eval(lookup)?,
            BvAtom::Ule(a, b) => a.eval(lookup)? <= b.eval(lookup)?,
            BvAtom::Ult(a, b) => a.eval(lookup)? < b.eval(lookup)?,
        })
    }
}

/// A bitvector literal: an atom or its negation.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BvLit {
    /// The underlying atom.
    pub atom: BvAtom,
    /// `true` for the atom itself, `false` for its negation.
    pub positive: bool,
}

impl BvLit {
    /// The positive literal of `atom`.
    pub fn positive(atom: BvAtom) -> BvLit {
        BvLit {
            atom,
            positive: true,
        }
    }

    /// The negative literal of `atom`.
    pub fn negative(atom: BvAtom) -> BvLit {
        BvLit {
            atom,
            positive: false,
        }
    }

    /// The complementary literal.
    pub fn negated(&self) -> BvLit {
        BvLit {
            atom: self.atom.clone(),
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under an assignment.
    pub fn eval<F>(&self, lookup: &mut F) -> Option<bool>
    where
        F: FnMut(SolverVar) -> Option<u64>,
    {
        self.atom.eval(lookup).map(|b| b == self.positive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_truncate() {
        assert_eq!(BvTerm::constant(0x1ff, 8).eval(&mut |_| None), Some(0xff));
        assert_eq!(
            BvTerm::constant(u64::MAX, 64).eval(&mut |_| None),
            Some(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn zero_width_panics() {
        let _ = BvTerm::constant(0, 0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = BvTerm::constant(0, 8).add(BvTerm::constant(0, 16));
    }

    #[test]
    fn eval_matches_machine_arithmetic() {
        let x = BvTerm::var(SolverVar(0), 8);
        let mut env = |_| Some(0xabu64);
        let t = x.clone().mul(BvTerm::constant(2, 8));
        assert_eq!(t.eval(&mut env), Some((0xabu64 * 2) & 0xff));
        let t = x.clone().sub(BvTerm::constant(0xff, 8));
        assert_eq!(t.eval(&mut env), Some(0xabu64.wrapping_sub(0xff) & 0xff));
        let t = x.clone().shl(9);
        assert_eq!(t.eval(&mut env), Some(0));
        let t = x.lshr(4);
        assert_eq!(t.eval(&mut env), Some(0x0a));
    }

    #[test]
    fn atom_eval() {
        let x = BvTerm::var(SolverVar(0), 8);
        let mut at5 = |_| Some(5u64);
        assert_eq!(
            BvAtom::eq(x.clone(), BvTerm::constant(5, 8)).eval(&mut at5),
            Some(true)
        );
        assert_eq!(
            BvAtom::ult(x.clone(), BvTerm::constant(5, 8)).eval(&mut at5),
            Some(false)
        );
        assert_eq!(
            BvAtom::ule(x.clone(), BvTerm::constant(5, 8)).eval(&mut at5),
            Some(true)
        );
        let lit = BvLit::negative(BvAtom::eq(x, BvTerm::constant(5, 8)));
        assert_eq!(lit.eval(&mut at5), Some(false));
    }

    #[test]
    fn unassigned_variable_is_none() {
        let x = BvTerm::var(SolverVar(0), 8);
        assert_eq!(x.eval(&mut |_| None), None);
    }
}
