//! Fixed-width bitvector theory via bit-blasting.
//!
//! The paper's §2.2 extension adds the theory of bitvectors (discharged by
//! Z3) to type check AES-style bit manipulation such as `xtime`. Here the
//! theory is decided in-tree: terms are lowered ("bit-blasted") to CNF with
//! Tseitin-encoded gate circuits — ripple-carry adders, shift wirings,
//! shift-add multipliers, lexicographic comparators — and handed to the
//! CDCL solver in [`crate::sat`]. Bit-blasting plus complete SAT is a
//! decision procedure for fixed-width bitvector arithmetic, so every
//! judgment Z3 would certify, this module certifies too.
//!
//! # Examples
//!
//! Prove that masking with `0xff` bounds a 16-bit value by `0xff`:
//!
//! ```
//! use rtr_solver::bv::{BvAtom, BvLit, BvSolver, BvTerm};
//! use rtr_solver::lin::SolverVar;
//!
//! let x = BvTerm::var(SolverVar(0), 16);
//! let masked = x.and(BvTerm::constant(0xff, 16));
//! let goal = BvLit::positive(BvAtom::ule(masked, BvTerm::constant(0xff, 16)));
//! assert!(BvSolver::default().entails(&[], &goal));
//! ```

mod bitblast;
mod session;
mod term;

pub use bitblast::{BitBlaster, BlastState};
pub use session::BvSession;
pub use term::{BvAtom, BvLit, BvTerm};

use crate::sat::{Cnf, SatResult, Solver, SolverConfig};

/// Verdict of a bitvector query. Re-exported shape of the SAT verdict
/// without the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BvResult {
    /// A satisfying assignment to the bitvector variables exists.
    Sat,
    /// No assignment exists; usable as a proof.
    Unsat,
    /// Budget exhausted.
    Unknown,
}

impl BvResult {
    /// Returns `true` for [`BvResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == BvResult::Unsat
    }

    /// Returns `true` for [`BvResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == BvResult::Sat
    }
}

/// Decision procedure for conjunctions of bitvector literals.
#[derive(Clone, Debug, Default)]
pub struct BvSolver {
    sat_config: SolverConfig,
    /// Optional wall-clock cutoff, forwarded to the SAT search.
    deadline: Option<std::time::Instant>,
}

impl BvSolver {
    /// Creates a solver with an explicit SAT budget.
    pub fn new(sat_config: SolverConfig) -> BvSolver {
        BvSolver {
            sat_config,
            deadline: None,
        }
    }

    /// Installs (or clears) a wall-clock deadline. Past it, queries degrade
    /// to [`BvResult::Unknown`] rather than being cut off mid-verdict.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Decides satisfiability of the conjunction of `lits`.
    pub fn check(&self, lits: &[BvLit]) -> BvResult {
        let mut cnf = Cnf::new();
        let mut state = BlastState::default();
        let mut blaster = BitBlaster::new(&mut cnf, &mut state);
        for lit in lits {
            match blaster.assert_lit(lit) {
                Ok(()) => {}
                Err(_) => return BvResult::Unknown,
            }
        }
        let mut solver = Solver::with_config(self.sat_config);
        solver.set_deadline(self.deadline);
        match solver.solve(&cnf) {
            SatResult::Sat(_) => BvResult::Sat,
            SatResult::Unsat => BvResult::Unsat,
            SatResult::Unknown => BvResult::Unknown,
        }
    }

    /// Returns `true` when `facts` entail `goal` (i.e. `facts ∧ ¬goal` is
    /// unsatisfiable).
    pub fn entails(&self, facts: &[BvLit], goal: &BvLit) -> bool {
        let mut lits = facts.to_vec();
        lits.push(goal.negated());
        self.check(&lits).is_unsat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lin::SolverVar;

    fn x() -> BvTerm {
        BvTerm::var(SolverVar(0), 8)
    }
    fn k(v: u64) -> BvTerm {
        BvTerm::constant(v, 8)
    }

    #[test]
    fn constants_decide() {
        let t = BvLit::positive(BvAtom::eq(k(3), k(3)));
        assert!(BvSolver::default().check(&[t]).is_sat());
        let f = BvLit::positive(BvAtom::eq(k(3), k(4)));
        assert!(BvSolver::default().check(&[f]).is_unsat());
    }

    #[test]
    fn xor_self_cancels() {
        // x ⊕ x = 0 is valid.
        let goal = BvLit::positive(BvAtom::eq(x().xor(x()), k(0)));
        assert!(BvSolver::default().entails(&[], &goal));
    }

    #[test]
    fn add_commutes() {
        let y = BvTerm::var(SolverVar(1), 8);
        let goal = BvLit::positive(BvAtom::eq(x().add(y.clone()), y.add(x())));
        assert!(BvSolver::default().entails(&[], &goal));
    }

    #[test]
    fn shift_is_mul_by_two() {
        let goal = BvLit::positive(BvAtom::eq(x().shl(1), x().mul(BvTerm::constant(2, 8))));
        assert!(BvSolver::default().entails(&[], &goal));
    }

    #[test]
    fn masking_bounds() {
        // (x & 0x0f) ≤ 0x0f is valid; (x & 0x0f) ≤ 0x0e is not.
        let masked = x().and(k(0x0f));
        let ok = BvLit::positive(BvAtom::ule(masked.clone(), k(0x0f)));
        assert!(BvSolver::default().entails(&[], &ok));
        let bad = BvLit::positive(BvAtom::ule(masked, k(0x0e)));
        assert!(!BvSolver::default().entails(&[], &bad));
    }

    #[test]
    fn facts_narrow_goals() {
        // x ≤ 0x10 ⊢ x < 0x20; but ⊬ x < 0x10.
        let fact = BvLit::positive(BvAtom::ule(x(), k(0x10)));
        let goal = BvLit::positive(BvAtom::ult(x(), k(0x20)));
        assert!(BvSolver::default().entails(std::slice::from_ref(&fact), &goal));
        let too_strong = BvLit::positive(BvAtom::ult(x(), k(0x10)));
        assert!(!BvSolver::default().entails(&[fact], &too_strong));
    }

    #[test]
    fn negated_atoms() {
        // ¬(x = 0) ∧ x ≤ 1 ⊢ x = 1.
        let facts = [
            BvLit::negative(BvAtom::eq(x(), k(0))),
            BvLit::positive(BvAtom::ule(x(), k(1))),
        ];
        let goal = BvLit::positive(BvAtom::eq(x(), k(1)));
        assert!(BvSolver::default().entails(&facts, &goal));
    }

    #[test]
    fn xtime_shape() {
        // The core of the paper's §2.2 example at width 16:
        // num ≤ 0xff ⊢ (2·num) & 0xff ≤ 0xff, and ((2·num)&0xff) ⊕ 0x1b ≤ 0xff.
        let num = BvTerm::var(SolverVar(0), 16);
        let byte = |v: u64| BvTerm::constant(v, 16);
        let fact = BvLit::positive(BvAtom::ule(num.clone(), byte(0xff)));
        let n = num.mul(byte(2)).and(byte(0xff));
        let g1 = BvLit::positive(BvAtom::ule(n.clone(), byte(0xff)));
        let g2 = BvLit::positive(BvAtom::ule(n.xor(byte(0x1b)), byte(0xff)));
        let solver = BvSolver::default();
        assert!(solver.entails(std::slice::from_ref(&fact), &g1));
        assert!(solver.entails(&[fact], &g2));
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let bad = BvAtom::try_eq(BvTerm::constant(1, 8), BvTerm::constant(1, 16));
        assert!(bad.is_none());
    }
}
