//! Incremental bitvector solving sessions.
//!
//! A [`BvSession`] keeps one growing CNF, one [`BlastState`]
//! (hash-consed term encodings) and one incremental CDCL [`Solver`]
//! alive across queries. Facts and goals are never asserted as hard
//! units; instead every [`BvLit`] is reified once and guarded behind an
//! *activation literal* `a` via the clause `¬a ∨ lit`, and a query for a
//! conjunction of literals solves under the corresponding assumption
//! set. Two reuse effects follow:
//!
//! * **bit-blast reuse** — a term appearing in any earlier query (fact or
//!   goal) is already encoded; its clause block and bit literals are
//!   shared, so repeated goals over the same terms skip re-encoding
//!   entirely;
//! * **learnt-clause reuse** — learnt clauses are resolvents of the
//!   activation-guarded clause set, so they remain valid for every later
//!   query (an activation literal appearing in a learnt clause records
//!   exactly which guarded facts the deduction used). Entailment queries
//!   against the same fact set therefore resume with everything the
//!   previous conflicts taught the solver.
//!
//! Verdicts agree with the one-shot [`super::BvSolver`]: both decide the
//! same conjunction, only the search state differs (`Unknown` budget
//! verdicts may differ — both directions are conservative).

use super::bitblast::{BitBlaster, BlastState};
use super::term::BvLit;
use super::BvResult;
use crate::fxhash::FxHashMap;
use crate::sat::{Cnf, Lit, SatResult, Solver, SolverConfig};

/// A persistent bitvector solving session (see module docs).
#[derive(Clone, Debug)]
pub struct BvSession {
    cnf: Cnf,
    state: BlastState,
    solver: Solver,
    /// One activation literal per reified bitvector literal.
    activations: FxHashMap<BvLit, Lit>,
}

impl BvSession {
    /// Creates an empty session with the given SAT budget.
    pub fn new(sat_config: SolverConfig) -> BvSession {
        BvSession {
            cnf: Cnf::new(),
            state: BlastState::default(),
            solver: Solver::with_config(sat_config),
            activations: FxHashMap::default(),
        }
    }

    /// Installs (or clears) a wall-clock deadline on the underlying SAT
    /// solver. Past it, checks degrade to [`BvResult::Unknown`].
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.solver.set_deadline(deadline);
    }

    /// The activation literal guarding `lit`, reifying and caching it on
    /// first use. `Err` when the blast budget is exceeded.
    fn activation(&mut self, lit: &BvLit) -> Result<Lit, ()> {
        if let Some(&a) = self.activations.get(lit) {
            return Ok(a);
        }
        let mut blaster = BitBlaster::new(&mut self.cnf, &mut self.state);
        let l = blaster.reify_lit(lit).map_err(|_| ())?;
        let a = Lit::pos(self.cnf.fresh_var());
        self.cnf.add_clause([!a, l]);
        self.activations.insert(lit.clone(), a);
        Ok(a)
    }

    /// Decides satisfiability of the conjunction of `lits`, reusing every
    /// encoding and learnt clause accumulated so far.
    pub fn check(&mut self, lits: &[BvLit]) -> BvResult {
        let mut assumptions = Vec::with_capacity(lits.len());
        for lit in lits {
            match self.activation(lit) {
                Ok(a) => assumptions.push(a),
                Err(()) => return BvResult::Unknown,
            }
        }
        match self.solver.solve_assuming(&self.cnf, &assumptions) {
            SatResult::Sat(_) => BvResult::Sat,
            SatResult::Unsat => BvResult::Unsat,
            SatResult::Unknown => BvResult::Unknown,
        }
    }

    /// Returns `true` when `facts` entail `goal` (`facts ∧ ¬goal` unsat).
    pub fn entails(&mut self, facts: &[BvLit], goal: &BvLit) -> bool {
        let mut lits = facts.to_vec();
        lits.push(goal.negated());
        self.check(&lits).is_unsat()
    }

    /// Number of CNF variables allocated so far — a growth gauge callers
    /// use to decide when to retire a long-lived session.
    pub fn num_vars(&self) -> u32 {
        self.cnf.num_vars()
    }

    /// Number of distinct reified literals (activation entries).
    pub fn num_activations(&self) -> usize {
        self.activations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bv::{BvAtom, BvSolver, BvTerm};
    use crate::lin::SolverVar;

    fn x() -> BvTerm {
        BvTerm::var(SolverVar(0), 8)
    }
    fn k(v: u64) -> BvTerm {
        BvTerm::constant(v, 8)
    }

    #[test]
    fn session_agrees_with_one_shot() {
        let mut session = BvSession::new(SolverConfig::default());
        let one_shot = BvSolver::default();
        let fact = BvLit::positive(BvAtom::ule(x(), k(0x10)));
        let goals = [
            BvLit::positive(BvAtom::ult(x(), k(0x20))),
            BvLit::positive(BvAtom::ult(x(), k(0x10))),
            BvLit::positive(BvAtom::ule(x().and(k(0x0f)), k(0x0f))),
            BvLit::negative(BvAtom::eq(x().xor(x()), k(0))),
        ];
        for goal in &goals {
            assert_eq!(
                session.entails(std::slice::from_ref(&fact), goal),
                one_shot.entails(std::slice::from_ref(&fact), goal),
                "session and one-shot disagree on {goal:?}"
            );
        }
        // Consistency checks agree too, and repeated queries stay stable.
        for _ in 0..2 {
            assert_eq!(
                session.check(std::slice::from_ref(&fact)),
                one_shot.check(std::slice::from_ref(&fact))
            );
            assert_eq!(
                session.check(&[fact.clone(), fact.negated()]),
                one_shot.check(&[fact.clone(), fact.negated()])
            );
        }
    }

    #[test]
    fn encodings_are_shared_across_queries() {
        let mut session = BvSession::new(SolverConfig::default());
        let num = BvTerm::var(SolverVar(0), 16);
        let byte = |v: u64| BvTerm::constant(v, 16);
        let fact = BvLit::positive(BvAtom::ule(num.clone(), byte(0xff)));
        let n = num.clone().mul(byte(2)).and(byte(0xff));
        let g1 = BvLit::positive(BvAtom::ule(n.clone(), byte(0xff)));
        assert!(session.entails(std::slice::from_ref(&fact), &g1));
        let vars_after_g1 = session.num_vars();
        // g2 reuses the whole `(2·num) & 0xff` encoding: only the xor and
        // comparator are new.
        let g2 = BvLit::positive(BvAtom::ule(n.xor(byte(0x1b)), byte(0xff)));
        assert!(session.entails(&[fact], &g2));
        let grown = session.num_vars() - vars_after_g1;
        assert!(
            grown < vars_after_g1 / 2,
            "expected heavy sharing, grew {grown} on top of {vars_after_g1}"
        );
        // Re-running an identical query allocates nothing.
        let before = session.num_vars();
        let fact = BvLit::positive(BvAtom::ule(num, byte(0xff)));
        assert!(session.entails(&[fact], &g2));
        assert_eq!(session.num_vars(), before);
    }

    #[test]
    fn blast_budget_reports_unknown() {
        // A 64-bit multiplication chain overruns a tiny session budget
        // only if we shrink it; with the default budget this must still
        // answer. Just exercise the Unknown path via a conflict budget.
        let mut session = BvSession::new(SolverConfig {
            max_conflicts: 0,
            ..SolverConfig::default()
        });
        let y = BvTerm::var(SolverVar(1), 8);
        let atom = BvLit::positive(BvAtom::eq(x().mul(y.clone()), k(42)));
        // With no conflicts allowed the solver may give up; it must never
        // claim Unsat on this satisfiable instance.
        assert_ne!(session.check(std::slice::from_ref(&atom)), BvResult::Unsat);
    }
}
