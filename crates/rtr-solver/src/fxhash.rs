//! A fast, non-cryptographic hasher for internal memo tables.
//!
//! The solvers and the checker above them hash small structural keys
//! (interned ids, token vectors, term trees) millions of times per
//! checked module; SipHash's DoS resistance buys nothing there and costs
//! 3–5× per lookup. This is the multiply-rotate scheme used by rustc
//! (`FxHasher`): not DoS-resistant, so only for keys an attacker does not
//! choose — every use in this workspace hashes checker-internal
//! structures.

use std::hash::{BuildHasherDefault, Hasher};

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc multiply-rotate hasher.
#[derive(Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add(i as u64);
        self.add((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_keys_hash_equal() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |v: &Vec<(u32, String)>| b.hash_one(v);
        let a = vec![(1u32, "x".to_owned()), (2, "y".to_owned())];
        assert_eq!(h(&a), h(&a.clone()));
        let c = vec![(1u32, "x".to_owned()), (2, "z".to_owned())];
        assert_ne!(h(&a), h(&c), "distinct keys should differ (w.h.p.)");
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<(u64, u32), bool> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i as u32), i % 2 == 0);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(42, 42)), Some(&true));
    }
}
