//! CNF formulas: variables, literals, clauses.

use std::fmt;

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

/// A literal: a variable or its negation, encoded as `2·var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal with an explicit sign (`true` = positive).
    pub fn with_sign(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` when this is the positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense index for watch lists (`0..2·num_vars`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "¬x{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A CNF formula under construction.
///
/// The empty clause is representable (and makes the formula trivially
/// unsatisfiable).
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula with no variables.
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// # Panics
    ///
    /// Panics if a literal mentions a variable that was never allocated.
    pub fn add_clause<I>(&mut self, lits: I)
    where
        I: IntoIterator<Item = Lit>,
    {
        let clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().0 < self.num_vars,
                "literal {l} uses unallocated variable"
            );
        }
        self.clauses.push(clause);
    }

    /// Iterates over the clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[Lit]> {
        self.clauses.iter().map(|c| c.as_slice())
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is
    /// the value of variable `v`). Used by the truth-table test oracle.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|l| assignment[l.var().0 as usize] == l.is_positive())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding() {
        let v = Var(7);
        assert_eq!(Lit::pos(v).var(), v);
        assert_eq!(Lit::neg(v).var(), v);
        assert!(Lit::pos(v).is_positive());
        assert!(!Lit::neg(v).is_positive());
        assert_eq!(!Lit::pos(v), Lit::neg(v));
        assert_eq!(!!Lit::pos(v), Lit::pos(v));
        assert_eq!(Lit::with_sign(v, true), Lit::pos(v));
        assert_eq!(Lit::with_sign(v, false), Lit::neg(v));
    }

    #[test]
    fn cnf_building_and_eval() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(cnf.eval(&[true, false]));
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_variable_panics() {
        let mut cnf = Cnf::new();
        cnf.add_clause([Lit::pos(Var(3))]);
    }

    #[test]
    fn empty_clause_is_false() {
        let mut cnf = Cnf::new();
        let _ = cnf.fresh_var();
        cnf.add_clause([]);
        assert!(!cnf.eval(&[true]));
    }
}
