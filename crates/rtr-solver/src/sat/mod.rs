//! A from-scratch CDCL SAT solver.
//!
//! The paper discharges bitvector propositions with Z3 (§2.2). In this
//! reproduction the bitvector theory ([`crate::bv`]) bit-blasts to CNF and
//! this solver decides it, so the end-to-end judgments (e.g. type checking
//! the AES `xtime` helper) are identical while keeping the implementation
//! fully in-tree.
//!
//! The solver is a conventional conflict-driven clause learner:
//! two-watched-literal unit propagation, first-UIP conflict analysis with
//! clause learning and non-chronological backjumping, exponential-decay
//! variable activity (VSIDS-style) and geometric restarts. It is complete:
//! given enough conflicts budget it answers every query.
//!
//! # Examples
//!
//! ```
//! use rtr_solver::sat::{Cnf, Lit, SatResult, Solver, Var};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.fresh_var();
//! let b = cnf.fresh_var();
//! cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
//! cnf.add_clause([Lit::neg(a)]);
//! match Solver::new().solve(&cnf) {
//!     SatResult::Sat(model) => {
//!         assert!(!model.value(a));
//!         assert!(model.value(b));
//!     }
//!     _ => panic!("expected sat"),
//! }
//! ```

mod cnf;
mod solver;

pub use cnf::{Cnf, Lit, Var};
pub use solver::{Model, SatResult, Solver, SolverConfig};
