//! Conflict-driven clause learning (CDCL) search.

use super::cnf::{Cnf, Lit, Var};

/// Search budget and tuning parameters for [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct SolverConfig {
    /// Abort with [`SatResult::Unknown`] after this many conflicts.
    pub max_conflicts: u64,
    /// Initial conflicts-between-restarts; grows geometrically.
    pub restart_interval: u64,
    /// Multiplicative bump applied to variables involved in conflicts.
    pub activity_bump: f64,
    /// Exponential decay factor applied after every conflict.
    pub activity_decay: f64,
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            max_conflicts: 2_000_000,
            restart_interval: 128,
            activity_bump: 1.0,
            activity_decay: 0.95,
        }
    }
}

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// The value of `v` in the model.
    pub fn value(&self, v: Var) -> bool {
        self.values[v.0 as usize]
    }

    /// The value of a literal in the model.
    pub fn lit_value(&self, l: Lit) -> bool {
        self.value(l.var()) == l.is_positive()
    }

    /// The raw assignment, indexed by variable number.
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

/// Verdict of a SAT query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
    /// Conflict budget exhausted.
    Unknown,
}

impl SatResult {
    /// Returns `true` for [`SatResult::Unsat`].
    pub fn is_unsat(&self) -> bool {
        matches!(self, SatResult::Unsat)
    }

    /// Returns `true` for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

const NO_REASON: u32 = u32::MAX;

/// A CDCL SAT solver.
///
/// Supports two usage styles:
///
/// * **one-shot** — build a [`Cnf`], call [`Solver::solve`]; all internal
///   state is rebuilt from scratch;
/// * **incremental** — keep the solver alive, grow the same `Cnf`
///   monotonically (append-only clauses and variables) and call
///   [`Solver::solve_assuming`] repeatedly. Only clauses added since the
///   previous call are ingested; learnt clauses and variable activities
///   persist across calls. Assumption literals are decided before any
///   free decision, so an `Unsat` answer means "unsatisfiable *under the
///   assumptions*" — the incremental-query discipline of MiniSat-style
///   solvers, which is what lets the bitvector theory keep learnt clauses
///   across entailment queries.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    assign: Vec<i8>, // -1 unassigned, 0 false, 1 true
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    reason: Vec<u32>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    seen: Vec<bool>,
    propagate_head: usize,
    /// How many clauses of the caller's [`Cnf`] have been ingested
    /// (incremental mode appends only the new suffix).
    loaded_clauses: usize,
    /// Latched once the clause set is unsatisfiable at level 0 —
    /// independent of any assumptions, so every later query is `Unsat`.
    root_unsat: bool,
    /// Optional wall-clock cutoff: past it, `search` degrades to
    /// [`SatResult::Unknown`] at the next conflict.
    deadline: Option<std::time::Instant>,
}

impl Solver {
    /// Creates a solver with the default configuration.
    pub fn new() -> Solver {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates a solver with an explicit configuration.
    pub fn with_config(config: SolverConfig) -> Solver {
        Solver {
            config,
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Installs (or clears) a wall-clock deadline. Past it, queries degrade
    /// to [`SatResult::Unknown`] rather than being cut off mid-verdict.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// Decides satisfiability of `cnf` from scratch (one-shot).
    pub fn solve(&mut self, cnf: &Cnf) -> SatResult {
        let deadline = self.deadline;
        *self = Solver::with_config(self.config);
        self.deadline = deadline;
        self.solve_assuming(cnf, &[])
    }

    /// Decides satisfiability of `cnf` under `assumptions`, incrementally.
    ///
    /// `cnf` must be the same formula as on previous calls, possibly grown
    /// with new variables and clauses (append-only); only the new suffix is
    /// ingested. Learnt clauses from earlier calls are kept — they are
    /// resolvents of original clauses, hence implied by any superset.
    /// Assumption literals are decided (in order) before free decisions;
    /// `Unsat` therefore means the formula has no model *extending the
    /// assumptions*.
    pub fn solve_assuming(&mut self, cnf: &Cnf, assumptions: &[Lit]) -> SatResult {
        if self.root_unsat {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        let n = cnf.num_vars() as usize;
        if self.assign.len() < n {
            self.watches.resize(2 * n, Vec::new());
            self.assign.resize(n, -1);
            self.reason.resize(n, NO_REASON);
            self.level.resize(n, 0);
            self.activity.resize(n, 0.0);
            self.seen.resize(n, false);
        }
        for clause in cnf.clauses().skip(self.loaded_clauses) {
            if !self.add_clause(clause) {
                self.root_unsat = true;
                return SatResult::Unsat;
            }
        }
        self.loaded_clauses = cnf.num_clauses();
        if self.propagate().is_some() {
            self.root_unsat = true;
            return SatResult::Unsat;
        }
        self.search(assumptions)
    }

    fn search(&mut self, assumptions: &[Lit]) -> SatResult {
        let mut conflicts: u64 = 0;
        let mut restart_limit = self.config.restart_interval;
        let mut conflicts_since_restart: u64 = 0;

        loop {
            if let Some(confl) = self.propagate() {
                conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.root_unsat = true;
                    return SatResult::Unsat;
                }
                if conflicts > self.config.max_conflicts || self.past_deadline() {
                    self.cancel_until(0);
                    return SatResult::Unknown;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                self.learn(learnt);
                self.decay_activity();
                if conflicts_since_restart >= restart_limit {
                    conflicts_since_restart = 0;
                    restart_limit = restart_limit.saturating_mul(3) / 2 + 1;
                    self.cancel_until(0);
                }
            } else {
                // Decide pending assumptions (in order) before any free
                // decision. An assumption already false under the current
                // (level-0 or earlier-assumption) assignment refutes the
                // query.
                let mut next_assumption = None;
                for &a in assumptions {
                    match self.value(a) {
                        1 => continue,
                        0 => {
                            self.cancel_until(0);
                            return SatResult::Unsat;
                        }
                        _ => {
                            next_assumption = Some(a);
                            break;
                        }
                    }
                }
                if let Some(a) = next_assumption {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(a, NO_REASON);
                    continue;
                }
                match self.pick_branch_var() {
                    None => {
                        let values = self.assign.iter().map(|&v| v == 1).collect::<Vec<bool>>();
                        self.cancel_until(0);
                        return SatResult::Sat(Model { values });
                    }
                    Some(v) => {
                        self.trail_lim.push(self.trail.len());
                        // Negative phase first: bit-blasted queries are often
                        // satisfied with mostly-zero words.
                        self.enqueue(Lit::neg(v), NO_REASON);
                    }
                }
            }
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn value(&self, l: Lit) -> i8 {
        match self.assign[l.var().0 as usize] {
            -1 => -1,
            v => {
                if (v == 1) == l.is_positive() {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Adds an original clause; returns `false` on immediate (level-0)
    /// unsatisfiability.
    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // Sanitize: dedupe, drop tautologies, strip level-0 false literals.
        let mut clause: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            if clause.contains(&l) {
                continue;
            }
            if clause.contains(&!l) {
                return true; // tautology, trivially satisfied
            }
            match self.value(l) {
                1 => return true, // already satisfied at level 0
                0 => continue,    // already false at level 0: drop literal
                _ => clause.push(l),
            }
        }
        match clause.len() {
            0 => false,
            1 => self.enqueue(clause[0], NO_REASON),
            _ => {
                self.attach(clause);
                true
            }
        }
    }

    fn attach(&mut self, clause: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[(!clause[0]).index()].push(idx);
        self.watches[(!clause[1]).index()].push(idx);
        self.clauses.push(clause);
        idx
    }

    /// Installs a learnt clause and enqueues its asserting literal.
    fn learn(&mut self, learnt: Vec<Lit>) {
        debug_assert!(!learnt.is_empty());
        if learnt.len() == 1 {
            let ok = self.enqueue(learnt[0], NO_REASON);
            debug_assert!(ok, "asserting unit must not conflict after backjump");
        } else {
            let first = learnt[0];
            let idx = self.attach(learnt);
            let ok = self.enqueue(first, idx);
            debug_assert!(ok, "asserting literal must not conflict after backjump");
        }
    }

    /// Assigns `l` true with the given reason; `false` if it contradicts
    /// the current assignment.
    fn enqueue(&mut self, l: Lit, reason: u32) -> bool {
        match self.value(l) {
            1 => true,
            0 => false,
            _ => {
                let v = l.var().0 as usize;
                self.assign[v] = if l.is_positive() { 1 } else { 0 };
                self.level[v] = self.decision_level();
                self.reason[v] = reason;
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.propagate_head < self.trail.len() {
            let p = self.trail[self.propagate_head];
            self.propagate_head += 1;
            // Clauses in watches[p.index()] watch ¬p, which just became false.
            let mut watch_list = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                let false_lit = !p;
                // Normalize: watched literals live at positions 0 and 1.
                {
                    let clause = &mut self.clauses[ci as usize];
                    if clause[0] == false_lit {
                        clause.swap(0, 1);
                    }
                    debug_assert_eq!(clause[1], false_lit);
                }
                if self.value(self.clauses[ci as usize][0]) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a replacement watch.
                let mut moved = false;
                let len = self.clauses[ci as usize].len();
                for k in 2..len {
                    let cand = self.clauses[ci as usize][k];
                    if self.value(cand) != 0 {
                        self.clauses[ci as usize].swap(1, k);
                        let new_watch = self.clauses[ci as usize][1];
                        self.watches[(!new_watch).index()].push(ci);
                        watch_list.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting under the first literal.
                let first = self.clauses[ci as usize][0];
                if !self.enqueue(first, ci) {
                    // Conflict: restore remaining watches before returning.
                    self.watches[p.index()] = watch_list;
                    self.propagate_head = self.trail.len();
                    return Some(ci);
                }
                i += 1;
            }
            self.watches[p.index()] = watch_list;
        }
        None
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let current = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = confl;

        loop {
            let clause = self.clauses[confl as usize].clone();
            let start = if p.is_some() { 1 } else { 0 };
            for &q in &clause[start..] {
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_activity(q.var());
                    if self.level[v] == current {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().0 as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().0 as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            let r = self.reason[lit.var().0 as usize];
            debug_assert_ne!(r, NO_REASON, "non-UIP literal must have a reason");
            // Put the implied literal first so the skip logic above works.
            let clause = &mut self.clauses[r as usize];
            if clause[0] != lit {
                let pos = clause
                    .iter()
                    .position(|&x| x == lit)
                    .expect("reason contains lit");
                clause.swap(0, pos);
            }
            p = Some(lit);
            confl = r;
        }

        let uip = p.expect("loop sets p before breaking");
        let mut result = vec![!uip];
        result.extend(learnt.iter().copied());
        for l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }
        // Backjump to the second-highest level in the clause and place a
        // literal of that level in watch position 1.
        let mut back_level = 0;
        let mut pos = 0;
        for (i, l) in result.iter().enumerate().skip(1) {
            let lvl = self.level[l.var().0 as usize];
            if lvl > back_level {
                back_level = lvl;
                pos = i;
            }
        }
        if pos != 0 {
            result.swap(1, pos);
        }
        (result, back_level)
    }

    fn cancel_until(&mut self, target: u32) {
        while self.decision_level() > target {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty above limit");
                let v = l.var().0 as usize;
                self.assign[v] = -1;
                self.reason[v] = NO_REASON;
            }
        }
        self.propagate_head = self.trail.len();
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<(usize, f64)> = None;
        for (v, &a) in self.assign.iter().enumerate() {
            if a == -1 {
                let act = self.activity[v];
                if best.map(|(_, b)| act > b).unwrap_or(true) {
                    best = Some((v, act));
                }
            }
        }
        best.map(|(v, _)| Var(v as u32))
    }

    fn bump_activity(&mut self, v: Var) {
        let a = &mut self.activity[v.0 as usize];
        *a += self.var_inc;
        if *a > 1e100 {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activity(&mut self) {
        self.var_inc *= self.config.activity_bump / self.config.activity_decay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, sign: bool) -> Lit {
        Lit::with_sign(Var(v), sign)
    }

    /// Pigeonhole principle: n+1 pigeons into n holes — classically hard,
    /// provably unsat.
    fn pigeonhole(n: u32) -> Cnf {
        let mut cnf = Cnf::new();
        let pigeons = n + 1;
        let var = |p: u32, h: u32| Var(p * n + h);
        for _ in 0..pigeons * n {
            cnf.fresh_var();
        }
        for p in 0..pigeons {
            cnf.add_clause((0..n).map(|h| Lit::pos(var(p, h))));
        }
        for h in 0..n {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    cnf.add_clause([Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        cnf
    }

    #[test]
    fn empty_formula_is_sat() {
        assert!(Solver::new().solve(&Cnf::new()).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert!(Solver::new().solve(&cnf).is_unsat());
    }

    #[test]
    fn unit_and_conflict() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a)]);
        cnf.add_clause([Lit::neg(a)]);
        assert!(Solver::new().solve(&cnf).is_unsat());
    }

    #[test]
    fn simple_sat_with_model() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        let c = cnf.fresh_var();
        cnf.add_clause([lit(a.0, true), lit(b.0, true)]);
        cnf.add_clause([lit(a.0, false), lit(c.0, true)]);
        cnf.add_clause([lit(b.0, false), lit(c.0, false)]);
        match Solver::new().solve(&cnf) {
            SatResult::Sat(m) => {
                assert!(cnf.eval(m.values()), "model must satisfy the formula");
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn implication_chain_forces_unsat() {
        // a, a→b, b→c, ¬c
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        let c = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a)]);
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        cnf.add_clause([Lit::neg(b), Lit::pos(c)]);
        cnf.add_clause([Lit::neg(c)]);
        assert!(Solver::new().solve(&cnf).is_unsat());
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::neg(a)]);
        cnf.add_clause([Lit::pos(a), Lit::pos(a)]);
        match Solver::new().solve(&cnf) {
            SatResult::Sat(m) => assert!(m.value(a)),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        for n in 2..=5 {
            assert!(
                Solver::new().solve(&pigeonhole(n)).is_unsat(),
                "PHP({}) must be unsat",
                n
            );
        }
    }

    #[test]
    fn xor_chain_sat() {
        // x0 ⊕ x1 = 1, x1 ⊕ x2 = 1, ... encoded as CNF; always satisfiable.
        let mut cnf = Cnf::new();
        let n = 12;
        let vars: Vec<Var> = (0..n).map(|_| cnf.fresh_var()).collect();
        for w in vars.windows(2) {
            let (a, b) = (w[0], w[1]);
            cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
            cnf.add_clause([Lit::neg(a), Lit::neg(b)]);
        }
        match Solver::new().solve(&cnf) {
            SatResult::Sat(m) => assert!(cnf.eval(m.values())),
            other => panic!("expected sat, got {other:?}"),
        }
    }

    #[test]
    fn assumptions_restrict_models() {
        // (a ∨ b): sat under any single assumption, unsat under ¬a ∧ ¬b.
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::pos(a), Lit::pos(b)]);
        let mut solver = Solver::new();
        assert!(solver.solve_assuming(&cnf, &[Lit::pos(a)]).is_sat());
        assert!(solver.solve_assuming(&cnf, &[Lit::neg(a)]).is_sat());
        assert!(solver
            .solve_assuming(&cnf, &[Lit::neg(a), Lit::neg(b)])
            .is_unsat());
        // The clause set itself stays satisfiable afterwards.
        assert!(solver.solve_assuming(&cnf, &[]).is_sat());
    }

    #[test]
    fn incremental_clause_growth() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let mut solver = Solver::new();
        assert!(solver.solve_assuming(&cnf, &[Lit::pos(a)]).is_sat());
        // Grow the formula: a → b, then assume ¬b.
        let b = cnf.fresh_var();
        cnf.add_clause([Lit::neg(a), Lit::pos(b)]);
        assert!(solver
            .solve_assuming(&cnf, &[Lit::pos(a), Lit::neg(b)])
            .is_unsat());
        assert!(solver.solve_assuming(&cnf, &[Lit::pos(a)]).is_sat());
        // Permanently force ¬b: a becomes unassumable, the rest stays sat.
        cnf.add_clause([Lit::neg(b)]);
        assert!(solver.solve_assuming(&cnf, &[Lit::pos(a)]).is_unsat());
        assert!(solver.solve_assuming(&cnf, &[]).is_sat());
    }

    #[test]
    fn incremental_agrees_with_one_shot_on_pigeonhole() {
        // Same instance through the incremental entry point (no
        // assumptions) must agree with the one-shot path, learnt clauses
        // and all.
        for n in 2..=4 {
            let cnf = pigeonhole(n);
            let mut solver = Solver::new();
            assert!(solver.solve_assuming(&cnf, &[]).is_unsat());
            // root unsat is latched.
            assert!(solver.solve_assuming(&cnf, &[]).is_unsat());
        }
    }

    #[test]
    fn budget_exhaustion() {
        let cfg = SolverConfig {
            max_conflicts: 1,
            ..SolverConfig::default()
        };
        let result = Solver::with_config(cfg).solve(&pigeonhole(6));
        assert!(
            matches!(result, SatResult::Unknown | SatResult::Unsat),
            "tiny budget must not claim Sat on an unsat instance"
        );
    }
}
