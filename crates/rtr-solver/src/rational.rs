//! Exact rational arithmetic over `i128`.
//!
//! The Fourier–Motzkin eliminator ([`crate::lin`]) performs exact pivoting on
//! rational coefficients; floating point would be unsound (a rounded
//! coefficient can flip the satisfiability verdict, and the verdict is used
//! as a *proof*). Numerators and denominators are kept gcd-normalized with a
//! strictly positive denominator.
//!
//! All arithmetic is overflow-checked: the `checked_*` methods return `None`
//! on overflow so callers (the solver) can degrade to a conservative
//! "unknown" answer instead of panicking or silently wrapping.
//!
//! # Examples
//!
//! ```
//! use rtr_solver::rational::Rat;
//!
//! let a = Rat::new(1, 3);
//! let b = Rat::new(1, 6);
//! assert_eq!(a.checked_add(b), Some(Rat::new(1, 2)));
//! assert!(Rat::new(2, 4) == Rat::new(1, 2));
//! ```

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number with `i128` numerator and denominator.
///
/// Invariants: the denominator is strictly positive and
/// `gcd(|numer|, denom) == 1` (zero is represented as `0/1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    numer: i128,
    denom: i128,
}

/// Greatest common divisor of two non-negative integers.
fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { numer: 0, denom: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { numer: 1, denom: 1 };

    /// Creates a new rational `numer / denom`, normalizing signs and common
    /// factors.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0` or if `numer` or `denom` is `i128::MIN`
    /// (whose negation overflows).
    pub fn new(numer: i128, denom: i128) -> Rat {
        assert!(denom != 0, "rational with zero denominator");
        Rat::checked_new(numer, denom).expect("rational normalization overflow")
    }

    /// Creates a new normalized rational, returning `None` on overflow.
    pub fn checked_new(numer: i128, denom: i128) -> Option<Rat> {
        if denom == 0 || numer == i128::MIN || denom == i128::MIN {
            return None;
        }
        let (numer, denom) = if denom < 0 {
            (-numer, -denom)
        } else {
            (numer, denom)
        };
        let g = gcd(numer.abs(), denom);
        if g == 0 {
            Some(Rat { numer: 0, denom: 1 })
        } else {
            Some(Rat {
                numer: numer / g,
                denom: denom / g,
            })
        }
    }

    /// Creates a rational from an integer.
    pub fn from_int(n: i128) -> Rat {
        Rat { numer: n, denom: 1 }
    }

    /// The numerator (sign-carrying).
    pub fn numer(self) -> i128 {
        self.numer
    }

    /// The denominator (always positive).
    pub fn denom(self) -> i128 {
        self.denom
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(self) -> bool {
        self.numer == 0
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(self) -> bool {
        self.denom == 1
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(self) -> bool {
        self.numer > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(self) -> bool {
        self.numer < 0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, other: Rat) -> Option<Rat> {
        let n1 = self.numer.checked_mul(other.denom)?;
        let n2 = other.numer.checked_mul(self.denom)?;
        Rat::checked_new(n1.checked_add(n2)?, self.denom.checked_mul(other.denom)?)
    }

    /// Checked subtraction; `None` on overflow.
    pub fn checked_sub(self, other: Rat) -> Option<Rat> {
        self.checked_add(other.checked_neg()?)
    }

    /// Checked multiplication; `None` on overflow.
    pub fn checked_mul(self, other: Rat) -> Option<Rat> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.numer.abs(), other.denom);
        let g2 = gcd(other.numer.abs(), self.denom);
        let n = (self.numer / g1).checked_mul(other.numer / g2)?;
        let d = (self.denom / g2).checked_mul(other.denom / g1)?;
        Rat::checked_new(n, d)
    }

    /// Checked division; `None` on overflow or division by zero.
    pub fn checked_div(self, other: Rat) -> Option<Rat> {
        if other.is_zero() {
            return None;
        }
        self.checked_mul(other.checked_recip()?)
    }

    /// Checked negation; `None` on overflow (`i128::MIN` numerator).
    pub fn checked_neg(self) -> Option<Rat> {
        Some(Rat {
            numer: self.numer.checked_neg()?,
            denom: self.denom,
        })
    }

    /// Checked reciprocal; `None` if zero or on overflow.
    pub fn checked_recip(self) -> Option<Rat> {
        if self.is_zero() {
            return None;
        }
        Rat::checked_new(self.denom, self.numer)
    }

    /// Largest integer `<= self` (floor), as a rational.
    pub fn floor(self) -> Rat {
        Rat::from_int(self.floor_int())
    }

    /// Largest integer `<= self` (floor), as an `i128`.
    pub fn floor_int(self) -> i128 {
        self.numer.div_euclid(self.denom)
    }

    /// Smallest integer `>= self` (ceiling), as an `i128`.
    pub fn ceil_int(self) -> i128 {
        -((-self.numer).div_euclid(self.denom))
    }

    /// Absolute value.
    ///
    /// # Panics
    ///
    /// Panics if the numerator is `i128::MIN`.
    pub fn abs(self) -> Rat {
        Rat {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0).
        // Fall back to wide comparison through f64 only if exact products
        // overflow; this cannot happen for gcd-normalized i64-range inputs,
        // which is all the solver produces.
        match self
            .numer
            .checked_mul(other.denom)
            .zip(other.numer.checked_mul(self.denom))
        {
            Some((l, r)) => l.cmp(&r),
            None => {
                let l = self.numer as f64 / self.denom as f64;
                let r = other.numer as f64 / other.denom as f64;
                l.partial_cmp(&r).unwrap_or(Ordering::Equal)
            }
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::from_int(n as i128)
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::from_int(n)
    }
}

impl Default for Rat {
    fn default() -> Rat {
        Rat::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 17), Rat::ZERO);
        assert_eq!(Rat::new(0, -17).denom(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half.checked_add(third), Some(Rat::new(5, 6)));
        assert_eq!(half.checked_sub(third), Some(Rat::new(1, 6)));
        assert_eq!(half.checked_mul(third), Some(Rat::new(1, 6)));
        assert_eq!(half.checked_div(third), Some(Rat::new(3, 2)));
        assert_eq!(third.checked_recip(), Some(Rat::from_int(3)));
        assert_eq!(Rat::ZERO.checked_recip(), None);
        assert_eq!(half.checked_div(Rat::ZERO), None);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::new(7, 3) > Rat::from_int(2));
        let mut v = vec![Rat::new(3, 2), Rat::new(-1, 5), Rat::ONE];
        v.sort();
        assert_eq!(v, vec![Rat::new(-1, 5), Rat::ONE, Rat::new(3, 2)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rat::new(7, 2).floor_int(), 3);
        assert_eq!(Rat::new(7, 2).ceil_int(), 4);
        assert_eq!(Rat::new(-7, 2).floor_int(), -4);
        assert_eq!(Rat::new(-7, 2).ceil_int(), -3);
        assert_eq!(Rat::from_int(5).floor_int(), 5);
        assert_eq!(Rat::from_int(5).ceil_int(), 5);
        assert_eq!(Rat::new(-1, 3).floor_int(), -1);
        assert_eq!(Rat::new(-1, 3).ceil_int(), 0);
    }

    #[test]
    fn overflow_is_reported() {
        let big = Rat::from_int(i128::MAX / 2);
        assert_eq!(big.checked_mul(Rat::from_int(4)), None);
        assert_eq!(big.checked_add(big).and_then(|x| x.checked_add(big)), None);
        assert!(Rat::checked_new(i128::MIN, 1).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(3, 1).to_string(), "3");
        assert_eq!(Rat::new(-3, 7).to_string(), "-3/7");
    }
}
