//! Differential property tests for the regex theory: the NFA, the DFA and
//! the solver are all checked against a naive reference matcher and
//! against brute-force string enumeration, mirroring how the linear and
//! bitvector solvers are validated.

use std::sync::Arc;

use proptest::prelude::*;
use rtr_solver::lin::SolverVar;
use rtr_solver::re::{
    ClassSet, Dfa, Nfa, ReConfig, ReConstraint, ReResult, ReSession, ReSolver, Regex,
};

const BUDGET: usize = 1 << 12;

/// A naive, obviously-correct matcher: structural recursion with string
/// splitting. Exponential, so only usable on tiny inputs — which is
/// exactly what a test oracle needs to be.
fn naive_match(re: &Regex, s: &[u8]) -> bool {
    match re {
        Regex::Empty => false,
        Regex::Epsilon => s.is_empty(),
        Regex::Class(cls) => s.len() == 1 && cls.contains(s[0]),
        Regex::Concat(rs) => match rs.split_first() {
            None => s.is_empty(),
            Some((head, rest)) => (0..=s.len()).any(|i| {
                naive_match(head, &s[..i]) && naive_match(&Regex::Concat(rest.to_vec()), &s[i..])
            }),
        },
        Regex::Alt(rs) => rs.iter().any(|r| naive_match(r, s)),
        Regex::Star(r) => {
            s.is_empty()
                || (1..=s.len()).any(|i| naive_match(r, &s[..i]) && naive_match(re, &s[i..]))
        }
    }
}

/// Random regexes over the alphabet {a, b, c}, depth-bounded.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::char(b'a')),
        Just(Regex::char(b'b')),
        Just(Regex::char(b'c')),
        Just(Regex::Class(ClassSet::range(b'a', b'b'))),
        Just(Regex::Class(ClassSet::range(b'a', b'c'))),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::opt),
        ]
    })
}

/// Random strings over {a, b, c} up to length 6.
fn arb_string() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(prop_oneof![Just(b'a'), Just(b'b'), Just(b'c')], 0..=6)
}

/// All strings over {a, b, c} up to length `n`.
fn enumerate(n: usize) -> Vec<Vec<u8>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::new()];
    for _ in 0..n {
        let mut next = Vec::new();
        for s in &frontier {
            for c in [b'a', b'b', b'c'] {
                let mut t = s.clone();
                t.push(c);
                out.push(t.clone());
                next.push(t);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// NFA simulation, DFA run and the naive matcher agree on every input.
    #[test]
    fn matchers_agree(re in arb_regex(), s in arb_string()) {
        let want = naive_match(&re, &s);
        let nfa = Nfa::compile(&re);
        prop_assert_eq!(nfa.matches(&s), want, "NFA vs naive on {:?}", re);
        let dfa = Dfa::from_nfa(&nfa, BUDGET).expect("small regexes stay in budget");
        prop_assert_eq!(dfa.matches(&s), want, "DFA vs naive on {:?}", re);
    }

    /// `w ∈ L(¬r) ⇔ w ∉ L(r)` and `w ∈ L(r₁∩r₂) ⇔ w ∈ L(r₁) ∧ w ∈ L(r₂)`.
    #[test]
    fn boolean_structure(r1 in arb_regex(), r2 in arb_regex(), s in arb_string()) {
        let d1 = Dfa::compile(&r1, BUDGET).expect("in budget");
        let d2 = Dfa::compile(&r2, BUDGET).expect("in budget");
        prop_assert_eq!(d1.complement().matches(&s), !d1.matches(&s));
        let i = d1.intersect(&d2, BUDGET).expect("in budget");
        prop_assert_eq!(i.matches(&s), d1.matches(&s) && d2.matches(&s));
    }

    /// Minimization preserves the language and never grows the DFA.
    #[test]
    fn minimize_agrees(re in arb_regex(), s in arb_string()) {
        let d = Dfa::compile(&re, BUDGET).expect("in budget");
        let m = d.minimize();
        prop_assert!(m.num_states() <= d.num_states());
        prop_assert_eq!(m.matches(&s), d.matches(&s), "{:?}", re);
    }

    /// Emptiness via witness: a returned witness is accepted; `None` means
    /// no enumerated string is accepted either.
    #[test]
    fn witnesses_are_sound(re in arb_regex()) {
        let d = Dfa::compile(&re, BUDGET).expect("in budget");
        match d.shortest_accepted() {
            Some(w) => prop_assert!(naive_match(&re, &w), "witness {:?} for {:?}", w, re),
            None => {
                for s in enumerate(4) {
                    prop_assert!(!naive_match(&re, &s), "{:?} ∈ L({:?}) but DFA says empty", s, re);
                }
            }
        }
    }

    /// Solver verdicts are sound: `Sat` models really satisfy every
    /// constraint; `Unsat` verdicts are never contradicted by any
    /// enumerated assignment.
    #[test]
    fn solver_verdicts_sound(
        r1 in arb_regex(),
        r2 in arb_regex(),
        pos1 in any::<bool>(),
        pos2 in any::<bool>(),
    ) {
        let v = SolverVar(0);
        let mk = |r: &Regex, pos: bool| ReConstraint {
            var: v,
            regex: Arc::new(r.clone()),
            positive: pos,
        };
        let cs = [mk(&r1, pos1), mk(&r2, pos2)];
        let satisfies = |s: &[u8]| {
            (naive_match(&r1, s) == pos1) && (naive_match(&r2, s) == pos2)
        };
        match ReSolver::default().check(&cs) {
            ReResult::Sat(model) => {
                let w = model.get(&v).cloned().unwrap_or_default();
                prop_assert!(satisfies(w.as_bytes()), "model {:?} for {:?}", w, cs);
            }
            ReResult::Unsat => {
                for s in enumerate(4) {
                    prop_assert!(!satisfies(&s), "{:?} satisfies 'unsat' {:?}", s, cs);
                }
            }
            ReResult::Unknown => {
                prop_assert!(false, "small constraints must not exhaust the budget");
            }
        }
    }

    /// Entailment is sound: if `facts ⊢ goal` then every enumerated string
    /// satisfying the facts satisfies the goal.
    #[test]
    fn entailment_sound(facts_re in arb_regex(), goal_re in arb_regex()) {
        let v = SolverVar(0);
        let fact = ReConstraint::member(v, Arc::new(facts_re.clone()));
        let goal = ReConstraint::member(v, Arc::new(goal_re.clone()));
        if ReSolver::default().entails(std::slice::from_ref(&fact), &goal) {
            for s in enumerate(4) {
                if naive_match(&facts_re, &s) {
                    prop_assert!(
                        naive_match(&goal_re, &s),
                        "{:?} ⊬ {:?} at witness {:?}", facts_re, goal_re, s
                    );
                }
            }
        }
    }

    /// Parsing is total over printable candidates: it either errors or
    /// yields a regex whose printed form reparses to the same AST.
    #[test]
    fn parse_print_parse(re in arb_regex()) {
        let printed = re.to_string();
        let back = Regex::parse(&printed);
        prop_assert_eq!(back.as_ref(), Ok(&re), "printed {:?}", printed);
    }

    /// A persistent session answers a random *sequence* of queries — its
    /// caches progressively warm — exactly like a fresh one-shot solver
    /// answers each query, at a generous budget and at a starved one
    /// (where budget-blown intermediates must still agree).
    #[test]
    fn session_sequence_agrees_with_one_shot(
        pool in prop::collection::vec(arb_regex(), 2..5),
        picks in prop::collection::vec(
            prop::collection::vec((0usize..4, 0usize..2, any::<bool>()), 1..4),
            1..6,
        ),
    ) {
        let pool: Vec<Arc<Regex>> = pool.into_iter().map(Arc::new).collect();
        for budget in [1 << 12, 24] {
            let config = ReConfig { max_dfa_states: budget };
            let mut session = ReSession::new(config);
            let one_shot = ReSolver::new(config);
            for query in &picks {
                let cs: Vec<ReConstraint> = query
                    .iter()
                    .map(|&(r, v, pos)| ReConstraint {
                        var: SolverVar(v as u32),
                        regex: pool[r % pool.len()].clone(),
                        positive: pos,
                    })
                    .collect();
                prop_assert_eq!(
                    session.check(&cs),
                    one_shot.check(&cs),
                    "budget {} query {:?}", budget, cs
                );
            }
        }
    }
}

#[test]
fn naive_matcher_sanity() {
    let re = Regex::parse("(ab)*c?").expect("pattern parses");
    assert!(naive_match(&re, b""));
    assert!(naive_match(&re, b"ababc"));
    assert!(!naive_match(&re, b"abab_"));
}
