//! Property-based differential tests for the solver substrate.
//!
//! Each solver is checked against an independent, obviously-correct oracle:
//!
//! * Fourier–Motzkin vs. brute-force integer enumeration on a box wide
//!   enough for the generated coefficients;
//! * the CDCL SAT solver vs. truth-table enumeration;
//! * the bitvector bit-blaster vs. exhaustive machine-arithmetic
//!   evaluation.

use proptest::prelude::*;

use rtr_solver::bv::{BvAtom, BvLit, BvSolver, BvTerm};
use rtr_solver::lin::{BruteForce, Cmp, Constraint, FourierMotzkin, LinExpr, LinResult, SolverVar};
use rtr_solver::rational::Rat;
use rtr_solver::sat::{Cnf, Lit, SatResult, Solver, Var};

// --- linear arithmetic ------------------------------------------------------

fn arb_linexpr(num_vars: u32) -> impl Strategy<Value = LinExpr> {
    (
        proptest::collection::vec((-4i64..=4, 0..num_vars), 0..3),
        -6i64..=6,
    )
        .prop_map(|(terms, c)| {
            LinExpr::from_terms(
                terms.into_iter().map(|(a, x)| (Rat::from(a), SolverVar(x))),
                Rat::from(c),
            )
        })
}

fn arb_constraint(num_vars: u32) -> impl Strategy<Value = Constraint> {
    (
        arb_linexpr(num_vars),
        prop_oneof![Just(Cmp::Le), Just(Cmp::Lt), Just(Cmp::Eq), Just(Cmp::Ne)],
    )
        .prop_map(|(expr, cmp)| Constraint { expr, cmp })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Soundness: if brute force finds an integer model in the box, FM must
    /// not claim Unsat. (The converse can fail because the box is finite,
    /// so it is not asserted.)
    #[test]
    fn fm_never_refutes_a_real_model(cs in proptest::collection::vec(arb_constraint(3), 0..5)) {
        let brute = BruteForce { bound: 8, max_assignments: 10_000_000 };
        let fm = FourierMotzkin::default();
        if brute.check(&cs) == LinResult::Sat {
            prop_assert_ne!(fm.check(&cs), LinResult::Unsat);
        }
    }

    /// Entailment is consistent: if FM proves `facts ⊢ goal`, then no boxed
    /// integer model of the facts may falsify the goal.
    #[test]
    fn fm_entailment_respects_models(
        facts in proptest::collection::vec(arb_constraint(3), 0..4),
        goal in arb_constraint(3),
    ) {
        let fm = FourierMotzkin::default();
        if fm.entails(&facts, &goal) {
            let mut refute = facts.clone();
            refute.push(goal.negate());
            let brute = BruteForce { bound: 8, max_assignments: 10_000_000 };
            prop_assert_ne!(brute.check(&refute), LinResult::Sat);
        }
    }

    /// Negation is semantically exact on every assignment.
    #[test]
    fn constraint_negation_flips_truth(
        c in arb_constraint(3),
        vals in proptest::collection::vec(-8i64..=8, 3),
    ) {
        let lookup = |x: SolverVar| Rat::from(vals[x.0 as usize]);
        let t = c.holds(lookup).unwrap();
        let n = c.negate().holds(lookup).unwrap();
        prop_assert_eq!(t, !n);
    }
}

// --- SAT --------------------------------------------------------------------

fn arb_cnf(max_vars: u32) -> impl Strategy<Value = Cnf> {
    proptest::collection::vec(
        proptest::collection::vec((0..max_vars, any::<bool>()), 1..4),
        0..8,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::new();
        for _ in 0..max_vars {
            cnf.fresh_var();
        }
        for clause in clauses {
            cnf.add_clause(
                clause
                    .into_iter()
                    .map(|(v, sign)| Lit::with_sign(Var(v), sign)),
            );
        }
        cnf
    })
}

fn truth_table_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    (0u32..(1 << n)).any(|bits| {
        let assignment: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        cnf.eval(&assignment)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// CDCL agrees with the truth table on every formula with ≤ 5 variables,
    /// and returned models actually satisfy the formula.
    #[test]
    fn cdcl_matches_truth_table(cnf in arb_cnf(5)) {
        let expected = truth_table_sat(&cnf);
        match Solver::new().solve(&cnf) {
            SatResult::Sat(model) => {
                prop_assert!(expected, "solver said Sat but no model exists");
                prop_assert!(cnf.eval(model.values()), "claimed model does not satisfy formula");
            }
            SatResult::Unsat => prop_assert!(!expected, "solver said Unsat but a model exists"),
            SatResult::Unknown => prop_assert!(false, "budget cannot be hit on 5 vars"),
        }
    }
}

// --- bitvectors --------------------------------------------------------------

#[derive(Clone, Debug)]
enum TermShape {
    X,
    Const(u64),
    Not(Box<TermShape>),
    And(Box<TermShape>, Box<TermShape>),
    Or(Box<TermShape>, Box<TermShape>),
    Xor(Box<TermShape>, Box<TermShape>),
    Add(Box<TermShape>, Box<TermShape>),
    Sub(Box<TermShape>, Box<TermShape>),
    Mul(Box<TermShape>, Box<TermShape>),
    Shl(Box<TermShape>, u32),
    Lshr(Box<TermShape>, u32),
}

fn arb_shape() -> impl Strategy<Value = TermShape> {
    let leaf = prop_oneof![Just(TermShape::X), (0u64..16).prop_map(TermShape::Const)];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| TermShape::Not(Box::new(a))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| TermShape::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), 0u32..6).prop_map(|(a, k)| TermShape::Shl(Box::new(a), k)),
            (inner, 0u32..6).prop_map(|(a, k)| TermShape::Lshr(Box::new(a), k)),
        ]
    })
}

fn build(shape: &TermShape, width: u32) -> BvTerm {
    match shape {
        TermShape::X => BvTerm::var(SolverVar(0), width),
        TermShape::Const(v) => BvTerm::constant(*v, width),
        TermShape::Not(a) => build(a, width).not(),
        TermShape::And(a, b) => build(a, width).and(build(b, width)),
        TermShape::Or(a, b) => build(a, width).or(build(b, width)),
        TermShape::Xor(a, b) => build(a, width).xor(build(b, width)),
        TermShape::Add(a, b) => build(a, width).add(build(b, width)),
        TermShape::Sub(a, b) => build(a, width).sub(build(b, width)),
        TermShape::Mul(a, b) => build(a, width).mul(build(b, width)),
        TermShape::Shl(a, k) => build(a, width).shl(*k),
        TermShape::Lshr(a, k) => build(a, width).lshr(*k),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bit-blasted solver agrees with exhaustive evaluation over all
    /// 4-bit values of the single variable: `t = c` is Sat iff some value
    /// makes it true.
    #[test]
    fn bitblasting_matches_enumeration(shape in arb_shape(), c in 0u64..16) {
        let width = 4;
        let t = build(&shape, width);
        let atom = BvAtom::eq(t, BvTerm::constant(c, width));
        let expected = (0..16u64).any(|v| atom.eval(&mut |_| Some(v)) == Some(true));
        let got = BvSolver::default().check(&[BvLit::positive(atom)]);
        prop_assert_eq!(got.is_sat(), expected);
        prop_assert_eq!(got.is_unsat(), !expected);
    }

    /// Entailment with a ≤-fact agrees with enumeration.
    #[test]
    fn bv_entailment_matches_enumeration(shape in arb_shape(), bound in 0u64..16, c in 0u64..16) {
        let width = 4;
        let t = build(&shape, width);
        let fact = BvLit::positive(BvAtom::ule(BvTerm::var(SolverVar(0), width),
                                               BvTerm::constant(bound, width)));
        let goal = BvLit::positive(BvAtom::ule(t, BvTerm::constant(c, width)));
        let expected = (0..=bound).all(|v| goal.eval(&mut |_| Some(v)) == Some(true));
        prop_assert_eq!(BvSolver::default().entails(&[fact], &goal), expected);
    }
}

// --- incremental Fourier–Motzkin (trace extension) --------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental check via a recorded trace agrees with the one-shot
    /// solver on arbitrary base/delta splits: whenever both produce a
    /// definite verdict, the verdicts match. (Budget-`Unknown`s may
    /// differ — both are conservative — but never a Sat/Unsat flip.)
    #[test]
    fn trace_extension_agrees_with_one_shot(
        cs in proptest::collection::vec(arb_constraint(3), 1..7),
        split in 0usize..7,
    ) {
        let fm = FourierMotzkin::default();
        let split = split.min(cs.len());
        let (base, delta) = cs.split_at(split);
        let (base_result, trace) = fm.check_traced(base);
        // The traced verdict itself must agree with the plain check.
        prop_assert_eq!(base_result, fm.check(base));
        if let Some(trace) = trace {
            if let Some(incremental) = fm.check_with_trace(&trace, delta) {
                let one_shot = fm.check(&cs);
                if incremental != LinResult::Unknown && one_shot != LinResult::Unknown {
                    prop_assert_eq!(
                        incremental, one_shot,
                        "base {:?} + delta {:?}", base, delta
                    );
                }
            }
        }
    }

    /// Entailment via trace extension (the checker's hot path: base facts
    /// plus one negated-goal row) agrees with `FourierMotzkin::entails`.
    #[test]
    fn trace_entailment_agrees_with_one_shot(
        facts in proptest::collection::vec(arb_constraint(3), 0..5),
        goal in arb_constraint(3),
    ) {
        let fm = FourierMotzkin::default();
        let (result, trace) = fm.check_traced(&facts);
        if result == LinResult::Sat {
            if let Some(trace) = trace {
                if let Some(incremental) = fm.check_with_trace(&trace, &[goal.negate()]) {
                    let mut all = facts.clone();
                    all.push(goal.negate());
                    let one_shot = fm.check(&all);
                    if incremental != LinResult::Unknown && one_shot != LinResult::Unknown {
                        prop_assert_eq!(incremental, one_shot);
                    }
                    // And the judgment the checker consumes:
                    if incremental == LinResult::Unsat {
                        prop_assert!(fm.entails(&facts, &goal));
                    }
                }
            }
        }
    }
}

// --- incremental bitvector sessions -----------------------------------------

fn arb_bvterm(width: u32) -> impl Strategy<Value = BvTerm> {
    let leaf = prop_oneof![
        (0u64..16).prop_map(move |v| BvTerm::constant(v, width)),
        (0u32..2).prop_map(move |x| BvTerm::var(SolverVar(x), width)),
    ];
    leaf.prop_recursive(2, 8, 2, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.xor(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.add(b)),
            inner.clone().prop_map(|a| a.not()),
        ]
    })
}

fn arb_bvlit(width: u32) -> impl Strategy<Value = BvLit> {
    (arb_bvterm(width), arb_bvterm(width), 0u8..3, any::<bool>()).prop_map(
        |(a, b, cmp, positive)| {
            let atom = match cmp {
                0 => BvAtom::eq(a, b),
                1 => BvAtom::ule(a, b),
                _ => BvAtom::ult(a, b),
            };
            if positive {
                BvLit::positive(atom)
            } else {
                BvLit::negative(atom)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A persistent session answers a *sequence* of queries exactly like
    /// fresh one-shot solvers, despite sharing encodings, activation
    /// literals and learnt clauses across the whole sequence.
    #[test]
    fn bv_session_sequence_agrees_with_one_shot(
        queries in proptest::collection::vec(
            proptest::collection::vec(arb_bvlit(4), 0..3), 1..5),
    ) {
        use rtr_solver::bv::BvSession;
        use rtr_solver::sat::SolverConfig;
        let mut session = BvSession::new(SolverConfig::default());
        let one_shot = BvSolver::default();
        for lits in &queries {
            prop_assert_eq!(
                session.check(lits),
                one_shot.check(lits),
                "session diverged on {:?}", lits
            );
        }
    }
}
