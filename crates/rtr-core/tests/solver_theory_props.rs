//! Property tests for the incremental theory-solving layer
//! (`solver_cache`): on arbitrary fact sets and goals, the checker with
//! fingerprint memoization + incremental Fourier–Motzkin + the
//! persistent bitvector session must prove exactly what the one-shot
//! reference (`solver_cache: false`) proves — assumption-time narrowing,
//! inconsistency detection and entailment alike.

use proptest::prelude::*;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::env::Env;
use rtr_core::syntax::{BvCmp, LinCmp, Obj, Prop, Symbol, Ty};

const FUEL: u32 = 64;

fn cached() -> Checker {
    Checker::default()
}

fn one_shot() -> Checker {
    Checker::with_config(CheckerConfig {
        solver_cache: false,
        ..CheckerConfig::default()
    })
}

/// A small pool of shared symbols so facts and goals actually interact.
fn sym(i: usize) -> Symbol {
    let names = ["spx", "spy", "spz", "spv"];
    Symbol::intern(names[i % names.len()])
}

fn arb_lin_obj() -> impl Strategy<Value = Obj> {
    prop_oneof![
        (-6i64..=6).prop_map(Obj::int),
        (0usize..3).prop_map(|i| Obj::var(sym(i))),
        (0usize..3).prop_map(|i| Obj::var(sym(i)).len()),
        (0usize..3, -3i64..=3).prop_map(|(i, k)| Obj::var(sym(i)).add(&Obj::int(k))),
    ]
}

fn arb_lin_prop() -> impl Strategy<Value = Prop> {
    (
        arb_lin_obj(),
        prop_oneof![
            Just(LinCmp::Lt),
            Just(LinCmp::Le),
            Just(LinCmp::Eq),
            Just(LinCmp::Ne)
        ],
        arb_lin_obj(),
    )
        .prop_map(|(a, cmp, b)| Prop::lin(a, cmp, b))
}

fn arb_bv_obj() -> impl Strategy<Value = Obj> {
    let leaf = prop_oneof![
        (0u64..=0xff).prop_map(Obj::bv),
        (0usize..2).prop_map(|i| Obj::var(sym(i))),
    ];
    leaf.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bv_and(&b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.bv_xor(&b)),
        ]
    })
}

fn arb_bv_prop() -> impl Strategy<Value = Prop> {
    (
        arb_bv_obj(),
        prop_oneof![Just(BvCmp::Eq), Just(BvCmp::Ule), Just(BvCmp::Ult)],
        arb_bv_obj(),
    )
        .prop_map(|(a, cmp, b)| Prop::bv(a, cmp, b))
}

/// Builds an environment by binding the symbol pool and assuming `facts`.
fn env_with(checker: &Checker, facts: &[Prop], bv: bool) -> Env {
    let mut env = Env::new();
    for i in 0..4 {
        let t = if bv { Ty::BitVec } else { Ty::Int };
        let t = if !bv && i == 3 { Ty::vec(Ty::Int) } else { t };
        checker.bind(&mut env, sym(i), &t, FUEL);
    }
    for f in facts {
        checker.assume(&mut env, f, FUEL);
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Linear facts + goals: cached and one-shot checkers agree on every
    /// `proves` verdict, including the implicit inconsistency (`ff`) one.
    #[test]
    fn lin_proves_agree(
        facts in proptest::collection::vec(arb_lin_prop(), 0..5),
        goals in proptest::collection::vec(arb_lin_prop(), 1..4),
    ) {
        let fast = cached();
        let slow = one_shot();
        let env_fast = env_with(&fast, &facts, false);
        let env_slow = env_with(&slow, &facts, false);
        prop_assert_eq!(
            fast.proves(&env_fast, &Prop::FF, FUEL),
            slow.proves(&env_slow, &Prop::FF, FUEL),
            "inconsistency verdicts diverged on {:?}", facts
        );
        for g in &goals {
            prop_assert_eq!(
                fast.proves(&env_fast, g, FUEL),
                slow.proves(&env_slow, g, FUEL),
                "facts {:?} goal {}", facts, g
            );
        }
    }

    /// Bitvector facts + goals, same property (smaller case count: each
    /// query runs the CDCL solver).
    #[test]
    fn bv_proves_agree(
        facts in proptest::collection::vec(arb_bv_prop(), 0..4),
        goals in proptest::collection::vec(arb_bv_prop(), 1..3),
    ) {
        let fast = cached();
        let slow = one_shot();
        let env_fast = env_with(&fast, &facts, true);
        let env_slow = env_with(&slow, &facts, true);
        prop_assert_eq!(
            fast.proves(&env_fast, &Prop::FF, FUEL),
            slow.proves(&env_slow, &Prop::FF, FUEL),
            "inconsistency verdicts diverged on {:?}", facts
        );
        for g in &goals {
            prop_assert_eq!(
                fast.proves(&env_fast, g, FUEL),
                slow.proves(&env_slow, g, FUEL),
                "facts {:?} goal {}", facts, g
            );
        }
    }

    /// Warm-cache stability: asking the same goals twice through the same
    /// cached checker (second time fully memoized at every layer) cannot
    /// change any verdict.
    #[test]
    fn warm_cache_is_stable(
        facts in proptest::collection::vec(arb_lin_prop(), 0..4),
        goals in proptest::collection::vec(arb_lin_prop(), 1..3),
    ) {
        let fast = cached();
        let env = env_with(&fast, &facts, false);
        let first: Vec<bool> = goals.iter().map(|g| fast.proves(&env, g, FUEL)).collect();
        let second: Vec<bool> = goals.iter().map(|g| fast.proves(&env, g, FUEL)).collect();
        prop_assert_eq!(first, second);
    }
}
