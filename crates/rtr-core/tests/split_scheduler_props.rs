//! Property tests for the lazy case-split scheduler: on arbitrary fact
//! sets with stored disjunctions, the default checker (unit propagation,
//! goal-relevance-ordered two-pass splitting) must prove exactly what the
//! eager in-order reference (`lazy_splits: false`) proves, at every fuel
//! level. The scheduler only *reorders* which clause is split first —
//! every clause is still tried against the same unmutated environment and
//! branch agendas depend on clause index, never pass — so a verdict
//! divergence here means the scheduler changed semantics, not just order.

use proptest::prelude::*;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::env::Env;
use rtr_core::syntax::{LinCmp, Obj, Prop, Symbol, Ty};

const FUEL: u32 = 64;

fn lazy() -> Checker {
    Checker::default()
}

fn eager() -> Checker {
    Checker::with_config(CheckerConfig {
        lazy_splits: false,
        ..CheckerConfig::default()
    })
}

/// A small pool of shared symbols so disjunctions, facts and goals
/// actually interact — and so some clauses are goal-irrelevant (deferred
/// by the lazy scheduler) while others share the goal's variables.
fn sym(i: usize) -> Symbol {
    let names = ["lsa", "lsb", "lsc", "lsd"];
    Symbol::intern(names[i % names.len()])
}

fn arb_lin_obj() -> impl Strategy<Value = Obj> {
    prop_oneof![
        (-6i64..=6).prop_map(Obj::int),
        (0usize..4).prop_map(|i| Obj::var(sym(i))),
        (0usize..4, -3i64..=3).prop_map(|(i, k)| Obj::var(sym(i)).add(&Obj::int(k))),
    ]
}

fn arb_lin_prop() -> impl Strategy<Value = Prop> {
    (
        arb_lin_obj(),
        prop_oneof![
            Just(LinCmp::Lt),
            Just(LinCmp::Le),
            Just(LinCmp::Eq),
            Just(LinCmp::Ne)
        ],
        arb_lin_obj(),
    )
        .prop_map(|(a, cmp, b)| Prop::lin(a, cmp, b))
}

/// A disjunction of two linear atoms — the clause shape `assume` stores
/// for later case-splitting when neither disjunct is refuted on arrival.
fn arb_disj() -> impl Strategy<Value = Prop> {
    (arb_lin_prop(), arb_lin_prop()).prop_map(|(p, q)| Prop::or(p, q))
}

/// Goals mix atoms (some goal-relevant, some not) with disjunctions, so
/// `prove_direct`'s Or-threading and both scheduler passes are exercised.
fn arb_goal() -> impl Strategy<Value = Prop> {
    prop_oneof![
        arb_lin_prop(),
        arb_lin_prop(),
        arb_disj(),
        (arb_lin_prop(), arb_lin_prop()).prop_map(|(p, q)| Prop::and(p, q)),
    ]
}

/// Binds the symbol pool and assumes `facts` (atoms and disjunctions).
fn env_with(checker: &Checker, facts: &[Prop]) -> Env {
    let mut env = Env::new();
    for i in 0..4 {
        checker.bind(&mut env, sym(i), &Ty::Int, FUEL);
    }
    for f in facts {
        checker.assume(&mut env, f, FUEL);
    }
    env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lazy and eager split scheduling agree on every verdict, including
    /// environment inconsistency, at full and at starved fuel.
    #[test]
    fn lazy_splits_agree_with_eager_reference(
        atoms in proptest::collection::vec(arb_lin_prop(), 0..3),
        disjs in proptest::collection::vec(arb_disj(), 0..4),
        goals in proptest::collection::vec(arb_goal(), 1..4),
    ) {
        let facts: Vec<Prop> = atoms.iter().chain(&disjs).cloned().collect();
        let fast = lazy();
        let slow = eager();
        let env_fast = env_with(&fast, &facts);
        let env_slow = env_with(&slow, &facts);
        for fuel in [FUEL, 8] {
            prop_assert_eq!(
                fast.proves(&env_fast, &Prop::FF, fuel),
                slow.proves(&env_slow, &Prop::FF, fuel),
                "inconsistency verdicts diverged on {:?} at fuel {}", facts, fuel
            );
            for g in &goals {
                prop_assert_eq!(
                    fast.proves(&env_fast, g, fuel),
                    slow.proves(&env_slow, g, fuel),
                    "facts {:?} goal {} fuel {}", facts, g, fuel
                );
            }
        }
    }

    /// Re-asking through the warm lazy checker (split verdicts now served
    /// by the generation-keyed memo) cannot change any verdict.
    #[test]
    fn warm_split_memo_is_stable(
        disjs in proptest::collection::vec(arb_disj(), 1..4),
        goals in proptest::collection::vec(arb_goal(), 1..3),
    ) {
        let fast = lazy();
        let env = env_with(&fast, &disjs);
        let first: Vec<bool> = goals.iter().map(|g| fast.proves(&env, g, FUEL)).collect();
        let second: Vec<bool> = goals.iter().map(|g| fast.proves(&env, g, FUEL)).collect();
        prop_assert_eq!(first, second);
    }
}
