//! Rule-level coverage: each judgment rule of Figs. 4–6 exercised with a
//! positive and a negative case, beyond what the module unit tests cover.

use rtr_core::check::Checker;
use rtr_core::env::Env;
use rtr_core::syntax::{Expr, LinCmp, Obj, Prim, Prop, Symbol, Ty, TyResult};

fn s(n: &str) -> Symbol {
    Symbol::intern(n)
}
fn c() -> Checker {
    Checker::default()
}
const FUEL: u32 = 64;

// --- Fig. 4: typing rules ------------------------------------------------------

#[test]
fn t_int_carries_its_own_object() {
    // Enriched T-Int (§3.4): Γ ⊢ n : (I; tt|ff; n).
    let r = c().check_program(&Expr::Int(42)).unwrap();
    assert_eq!(r.ty, Ty::Int);
    assert_eq!(r.obj, Obj::int(42));
    assert_eq!(r.then_p, Prop::TT);
    assert_eq!(r.else_p, Prop::FF);
}

#[test]
fn t_true_false_propositions() {
    let r = c().check_program(&Expr::Bool(true)).unwrap();
    assert_eq!((r.then_p, r.else_p), (Prop::TT, Prop::FF));
    let r = c().check_program(&Expr::Bool(false)).unwrap();
    assert_eq!((r.then_p, r.else_p), (Prop::FF, Prop::TT));
}

#[test]
fn t_var_reports_truthiness_props() {
    // T-Var: Γ ⊢ x : (τ; x ∉ F | x ∈ F; x).
    let checker = c();
    let mut env = Env::new();
    let x = s("tvx");
    checker.bind(&mut env, x, &Ty::bool_ty(), FUEL);
    let r = checker.synth(&env, &Expr::Var(x)).unwrap();
    assert_eq!(r.obj, Obj::var(x));
    assert_eq!(r.then_p, Prop::is_not(Obj::var(x), Ty::False));
    assert_eq!(r.else_p, Prop::is(Obj::var(x), Ty::False));
}

#[test]
fn t_var_truthiness_enables_narrowing() {
    // (λ (b : (U Int False)) (if b b 0)) : in the then branch b is Int.
    let b = s("tvb");
    let e = Expr::lam(
        vec![(b, Ty::union_of(vec![Ty::Int, Ty::False]))],
        Expr::if_(
            Expr::Var(b),
            Expr::prim_app(Prim::Add1, vec![Expr::Var(b)]),
            Expr::Int(0),
        ),
    );
    c().check_program(&e).expect("truthiness narrows the union");
}

#[test]
fn t_cons_builds_pair_objects() {
    // T-Cons: the object is the pair of the component objects.
    let e = Expr::Cons(Box::new(Expr::Int(1)), Box::new(Expr::Int(2)));
    let r = c().check_program(&e).unwrap();
    assert_eq!(r.ty, Ty::pair(Ty::Int, Ty::Int));
    assert_eq!(r.obj, Obj::pair(Obj::int(1), Obj::int(2)));
}

#[test]
fn t_fst_snd_objects_normalize() {
    // (fst (cons 1 2)) has object 1 — normalization of (fst ⟨1,2⟩).
    let e = Expr::Fst(Box::new(Expr::Cons(
        Box::new(Expr::Int(1)),
        Box::new(Expr::Int(2)),
    )));
    let r = c().check_program(&e).unwrap();
    assert_eq!(r.obj, Obj::int(1));
    // On a variable, the object is the field path.
    let checker = c();
    let mut env = Env::new();
    let p = s("tfp");
    checker.bind(&mut env, p, &Ty::pair(Ty::Int, Ty::Top), FUEL);
    let r = checker
        .synth(&env, &Expr::Snd(Box::new(Expr::Var(p))))
        .unwrap();
    assert_eq!(r.obj, Obj::var(p).snd());
}

#[test]
fn t_app_lifting_substitution_with_objects() {
    // (add1 x) gets object x + 1 by substitution into Δ(add1)'s range.
    let checker = c();
    let mut env = Env::new();
    let x = s("tax");
    checker.bind(&mut env, x, &Ty::Int, FUEL);
    let r = checker
        .synth(&env, &Expr::prim_app(Prim::Add1, vec![Expr::Var(x)]))
        .unwrap();
    assert_eq!(r.obj, Obj::var(x).add(&Obj::int(1)));
}

#[test]
fn t_app_existential_for_objectless_arguments() {
    // (add1 (vec-ref v 0)): the argument has no object, so the result is
    // existentially quantified over a ghost standing for it.
    let checker = c();
    let mut env = Env::new();
    let v = s("tav");
    checker.bind(&mut env, v, &Ty::vec(Ty::Int), FUEL);
    let e = Expr::prim_app(
        Prim::Add1,
        vec![Expr::prim_app(
            Prim::VecRef,
            vec![Expr::Var(v), Expr::Int(0)],
        )],
    );
    let r = checker.synth(&env, &e).unwrap();
    assert!(
        !r.existentials.is_empty(),
        "objectless argument must introduce an existential: {r}"
    );
    // The object still describes the value in terms of the ghost.
    assert!(!r.obj.is_null());
}

#[test]
fn t_if_props_combine_branch_and_test() {
    // (if (int? x) #t (int? x)): result is true iff x is an Int; its
    // then-prop must let us conclude x ∈ Int.
    let checker = c();
    let mut env = Env::new();
    let x = s("tix");
    checker.bind(
        &mut env,
        x,
        &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
        FUEL,
    );
    let test = Expr::prim_app(Prim::IsInt, vec![Expr::Var(x)]);
    let e = Expr::if_(test.clone(), Expr::Bool(true), test);
    let r = checker.synth(&env, &e).unwrap();
    let mut env2 = env.clone();
    checker.assume(&mut env2, &r.then_p, FUEL);
    assert!(checker.proves(&env2, &Prop::is(Obj::var(x), Ty::Int), FUEL));
}

#[test]
fn t_let_psi_x_transfers_test_information() {
    // (let (t (int? x)) (if t (add1 x) 0)): the binding carries the
    // test's propositions through ψx — abstraction of conditionals works.
    let x = s("tlx");
    let t = s("tlt");
    let e = Expr::lam(
        vec![(x, Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))],
        Expr::let_(
            t,
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(x)]),
            Expr::if_(
                Expr::Var(t),
                Expr::prim_app(Prim::Add1, vec![Expr::Var(x)]),
                Expr::Int(0),
            ),
        ),
    );
    c().check_program(&e).expect("let-bound test must narrow");
}

#[test]
fn t_let_shadowing_is_capture_avoiding() {
    // (let (x 1) (let (x #t) (if x 1 0))) — inner x shadows; no confusion.
    let x = s("tsx");
    let e = Expr::let_(
        x,
        Expr::Int(1),
        Expr::let_(
            x,
            Expr::Bool(true),
            Expr::if_(Expr::Var(x), Expr::Int(1), Expr::Int(0)),
        ),
    );
    let r = c().check_program(&e).unwrap();
    assert_eq!(r.ty, Ty::Int);
}

#[test]
fn t_abs_range_records_body_result() {
    // T-Abs: the function type's range is the body's full type-result.
    let x = s("tabx");
    let e = Expr::lam(
        vec![(x, Ty::Top)],
        Expr::prim_app(Prim::IsInt, vec![Expr::Var(x)]),
    );
    let r = c().check_program(&e).unwrap();
    let Ty::Fun(f) = r.ty else {
        panic!("expected a function")
    };
    assert_eq!(f.range.then_p, Prop::is(Obj::var(x), Ty::Int));
    assert_eq!(f.range.else_p, Prop::is_not(Obj::var(x), Ty::Int));
}

#[test]
fn predicate_abstraction_composes() {
    // A user-defined predicate inherits int?'s latent propositions, so
    // callers can branch on it: the paper's "abstraction and combination
    // of conditional tests properly works".
    let (x, y, f) = (s("pax"), s("pay"), s("paf"));
    // f = (λ (x:⊤) (int? x)) ; (λ (y : (U Int Bool)) (if (f y) (add1 y) 0))
    let e = Expr::let_(
        f,
        Expr::lam(
            vec![(x, Ty::Top)],
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(x)]),
        ),
        Expr::lam(
            vec![(y, Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))],
            Expr::if_(
                Expr::app(Expr::Var(f), vec![Expr::Var(y)]),
                Expr::prim_app(Prim::Add1, vec![Expr::Var(y)]),
                Expr::Int(0),
            ),
        ),
    );
    c().check_program(&e)
        .expect("user predicates must narrow like primitives");
}

// --- Fig. 6: logic rules ----------------------------------------------------------

#[test]
fn l_typefork_on_pair_objects() {
    // ⟨o₁,o₂⟩ ∈ τ₁×τ₂ ⊢ o₁ ∈ τ₁ (L-TypeFork).
    let checker = c();
    let mut env = Env::new();
    let (a, b) = (s("lfa"), s("lfb"));
    checker.bind(&mut env, a, &Ty::Top, FUEL);
    checker.bind(&mut env, b, &Ty::Top, FUEL);
    let pair = Obj::pair(Obj::var(a), Obj::var(b));
    checker.assume(&mut env, &Prop::is(pair, Ty::pair(Ty::Int, Ty::True)), FUEL);
    assert!(checker.proves(&env, &Prop::is(Obj::var(a), Ty::Int), FUEL));
    assert!(checker.proves(&env, &Prop::is(Obj::var(b), Ty::True), FUEL));
}

#[test]
fn l_objfork_on_pair_aliases() {
    // ⟨a,b⟩ ≡ ⟨c,d⟩ ⊢ a ≡ c (L-ObjFork).
    let checker = c();
    let mut env = Env::new();
    let (a, b, cc, d) = (s("loa"), s("lob"), s("loc"), s("lod"));
    for v in [b, cc, d] {
        checker.bind(&mut env, v, &Ty::Int, FUEL);
    }
    checker.bind(&mut env, a, &Ty::Int, FUEL);
    checker.assume(
        &mut env,
        &Prop::alias(
            Obj::pair(Obj::var(a), Obj::var(b)),
            Obj::pair(Obj::var(cc), Obj::var(d)),
        ),
        FUEL,
    );
    assert!(checker.proves(&env, &Prop::alias(Obj::var(a), Obj::var(cc)), FUEL));
}

#[test]
fn l_refl_sym_transport() {
    // Aliasing is reflexive, symmetric, and transports facts.
    let checker = c();
    let mut env = Env::new();
    let (x, y) = (s("lrx"), s("lry"));
    checker.bind(&mut env, x, &Ty::Int, FUEL);
    checker.bind(&mut env, y, &Ty::Int, FUEL);
    assert!(checker.proves(&env, &Prop::alias(Obj::var(x), Obj::var(x)), FUEL));
    checker.assume(&mut env, &Prop::alias(Obj::var(y), Obj::var(x)), FUEL);
    assert!(checker.proves(&env, &Prop::alias(Obj::var(x), Obj::var(y)), FUEL));
    // Transport: a fact about x holds of y.
    checker.assume(
        &mut env,
        &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)),
        FUEL,
    );
    assert!(checker.proves(&env, &Prop::lin(Obj::var(y), LinCmp::Le, Obj::int(5)), FUEL));
}

#[test]
fn l_not_via_contradiction() {
    // Γ, o ∈ τ ⊢ ff then Γ ⊢ o ∉ τ: with x ∈ Int and x ∉ (U Int Bool)'s
    // complement etc. Simplest: x : True ⊢ x ∉ Int.
    let checker = c();
    let mut env = Env::new();
    let x = s("lnx");
    checker.bind(&mut env, x, &Ty::True, FUEL);
    assert!(checker.proves(&env, &Prop::is_not(Obj::var(x), Ty::Int), FUEL));
    assert!(!checker.proves(&env, &Prop::is_not(Obj::var(x), Ty::bool_ty()), FUEL));
}

#[test]
fn l_update_neg_through_fields() {
    // p : (U Int Bool) × Int; (fst p) ∉ Bool ⊢ p ∈ Int × Int.
    let checker = c();
    let mut env = Env::new();
    let p = s("lup");
    checker.bind(
        &mut env,
        p,
        &Ty::pair(Ty::union_of(vec![Ty::Int, Ty::bool_ty()]), Ty::Int),
        FUEL,
    );
    checker.assume(
        &mut env,
        &Prop::is_not(Obj::var(p).fst(), Ty::bool_ty()),
        FUEL,
    );
    assert!(checker.proves(
        &env,
        &Prop::is(Obj::var(p), Ty::pair(Ty::Int, Ty::Int)),
        FUEL
    ));
}

// --- polymorphism (§4.3) -----------------------------------------------------------

#[test]
fn polymorphic_signature_checks_lambda() {
    // (ann (λ (v) (vec-ref v 0)) (All (A) ([v : (Vecof A)] -> A)))…
    // checked with the tvar opaque.
    let v = s("pov");
    let a = s("A9");
    let sig = Ty::poly(
        vec![a],
        Ty::fun(
            vec![(v, Ty::vec(Ty::TVar(a)))],
            TyResult::of_type(Ty::TVar(a)),
        ),
    );
    let lam = Expr::lam(
        vec![(v, Ty::Top)],
        Expr::prim_app(Prim::VecRef, vec![Expr::Var(v), Expr::Int(0)]),
    );
    c().check_program(&Expr::ann(lam, sig))
        .expect("polymorphic identity-ish checks");
    // And a body returning the wrong thing is rejected.
    let bad = Expr::lam(vec![(v, Ty::Top)], Expr::Int(0));
    let sig = Ty::poly(
        vec![a],
        Ty::fun(
            vec![(v, Ty::vec(Ty::TVar(a)))],
            TyResult::of_type(Ty::TVar(a)),
        ),
    );
    assert!(c().check_program(&Expr::ann(bad, sig)).is_err());
}

#[test]
fn instantiation_flows_through_results() {
    // ((λ (v : (Vecof Bool)) (vec-ref v 0)) (vec #t)) : Bool.
    let v = s("piv");
    let e = Expr::app(
        Expr::lam(
            vec![(v, Ty::vec(Ty::bool_ty()))],
            Expr::prim_app(Prim::VecRef, vec![Expr::Var(v), Expr::Int(0)]),
        ),
        vec![Expr::VecLit(vec![Expr::Bool(true)])],
    );
    let r = c().check_program(&e).unwrap();
    assert_eq!(r.ty, Ty::bool_ty());
}

#[test]
fn dependent_pair_fields_are_supported() {
    // The refinement on a pair *component* type flows through field
    // projection: p : (Nat-refined × Vec), test on (fst p) vs
    // (len (snd p)) justifies the access. (An "unimplemented feature" in
    // the paper's implementation; supported here via object-aware
    // membership checking in result subtyping.)
    let checker = c();
    let p = s("dpf");
    let nv = s("dpn");
    let nat = Ty::refine(
        nv,
        Ty::Int,
        Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(nv)),
    );
    let e = Expr::lam(
        vec![(p, Ty::pair(nat, Ty::vec(Ty::Int)))],
        Expr::if_(
            Expr::prim_app(
                Prim::Lt,
                vec![
                    Expr::Fst(Box::new(Expr::Var(p))),
                    Expr::prim_app(Prim::Len, vec![Expr::Snd(Box::new(Expr::Var(p)))]),
                ],
            ),
            Expr::prim_app(
                Prim::SafeVecRef,
                vec![
                    Expr::Snd(Box::new(Expr::Var(p))),
                    Expr::Fst(Box::new(Expr::Var(p))),
                ],
            ),
            Expr::Int(0),
        ),
    );
    checker
        .check_program(&e)
        .expect("dependent pair fields verify");
}

#[test]
fn unenriched_quotient_defeats_guards_on_raw_expressions() {
    // quotient has no symbolic object, so a guard on the raw expression
    // carries nothing — but a guard on a let-binding of the result does.
    let checker = c();
    let (v, i, j) = (s("uqv"), s("uqi"), s("uqj"));
    let raw = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::if_(
            Expr::prim_app(
                Prim::Le,
                vec![
                    Expr::Int(0),
                    Expr::prim_app(Prim::Quotient, vec![Expr::Var(i), Expr::Int(2)]),
                ],
            ),
            Expr::if_(
                Expr::prim_app(
                    Prim::Lt,
                    vec![
                        Expr::prim_app(Prim::Quotient, vec![Expr::Var(i), Expr::Int(2)]),
                        Expr::prim_app(Prim::Len, vec![Expr::Var(v)]),
                    ],
                ),
                Expr::prim_app(
                    Prim::SafeVecRef,
                    vec![
                        Expr::Var(v),
                        Expr::prim_app(Prim::Quotient, vec![Expr::Var(i), Expr::Int(2)]),
                    ],
                ),
                Expr::Int(0),
            ),
            Expr::Int(0),
        ),
    );
    assert!(
        checker.check_program(&raw).is_err(),
        "raw quotient guard must not verify"
    );

    let bound = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::let_(
            j,
            Expr::prim_app(Prim::Quotient, vec![Expr::Var(i), Expr::Int(2)]),
            Expr::if_(
                Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(j)]),
                Expr::if_(
                    Expr::prim_app(
                        Prim::Lt,
                        vec![Expr::Var(j), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
                    ),
                    Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(j)]),
                    Expr::Int(0),
                ),
                Expr::Int(0),
            ),
        ),
    );
    checker
        .check_program(&bound)
        .expect("guard on the let-bound quotient verifies");
}
