//! Executable metatheory: Lemma 2 and Theorem 1 (§3.5.2) as property
//! tests.
//!
//! A type-directed generator produces random closed programs (most of
//! which type check). For every program the checker accepts, we run the
//! big-step evaluator and assert:
//!
//! 1. evaluation never gets **stuck** (Theorem 1's "well-typed programs
//!    don't go wrong" — user-level `error`s and fuel exhaustion are
//!    allowed, dynamic *type* errors are not);
//! 2. the produced value inhabits the ascribed type (Lemma 2(3));
//! 3. the appropriate then/else proposition is satisfied by the runtime
//!    environment (Lemma 2(2));
//! 4. the symbolic object agrees with the value (Lemma 2(1)).

use proptest::prelude::*;

use rtr_core::check::Checker;
use rtr_core::interp::{eval_program, EvalError, RtEnv};
use rtr_core::model::{obj_agrees_with_value, satisfies, value_has_type};
use rtr_core::syntax::{Expr, Prim, Symbol};

/// The types our generator targets.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Target {
    Int,
    Bool,
    IntPair,
    IntVec,
    Str,
}

fn fresh(prefix: &str) -> Symbol {
    Symbol::fresh(prefix)
}

/// Regex literals for generated `regexp-match?` tests (theory RE).
fn gen_regex() -> impl Strategy<Value = Expr> {
    prop_oneof![Just("[0-9]+"), Just("a*b"), Just(".*"), Just("[a-z]{1,3}")].prop_map(|p| {
        Expr::ReLit(std::sync::Arc::new(
            rtr_solver::re::Regex::parse(p).expect("generator pool parses"),
        ))
    })
}

/// Type-directed expression generator. `scope` holds variables known to
/// have each target type.
fn gen_expr(target: Target, depth: u32) -> BoxedStrategy<Expr> {
    gen_with_scope(target, depth, std::rc::Rc::new(Vec::new()))
}

type Scope = std::rc::Rc<Vec<(Symbol, Target)>>;

fn vars_of(scope: &Scope, t: Target) -> Vec<Expr> {
    scope
        .iter()
        .filter(|(_, k)| *k == t)
        .map(|(x, _)| Expr::Var(*x))
        .collect()
}

fn gen_with_scope(target: Target, depth: u32, scope: Scope) -> BoxedStrategy<Expr> {
    let mut leaves: Vec<BoxedStrategy<Expr>> = Vec::new();
    match target {
        Target::Int => leaves.push((-20i64..=20).prop_map(Expr::Int).boxed()),
        Target::Bool => leaves.push(any::<bool>().prop_map(Expr::Bool).boxed()),
        Target::IntPair => leaves.push(
            ((-9i64..=9), (-9i64..=9))
                .prop_map(|(a, b)| Expr::Cons(Box::new(Expr::Int(a)), Box::new(Expr::Int(b))))
                .boxed(),
        ),
        Target::IntVec => leaves.push(
            proptest::collection::vec(-9i64..=9, 1..5)
                .prop_map(|ns| Expr::VecLit(ns.into_iter().map(Expr::Int).collect()))
                .boxed(),
        ),
        Target::Str => leaves.push(
            prop_oneof![
                Just(""),
                Just("ab"),
                Just("42"),
                Just("abc"),
                Just("b"),
                Just("2016"),
            ]
            .prop_map(|s: &str| Expr::Str(std::sync::Arc::from(s)))
            .boxed(),
        ),
    }
    for v in vars_of(&scope, target) {
        leaves.push(Just(v).boxed());
    }
    let leaf = proptest::strategy::Union::new(leaves);
    if depth == 0 {
        return leaf.boxed();
    }
    let d = depth - 1;

    let mut options: Vec<BoxedStrategy<Expr>> = vec![leaf.boxed()];

    // (if <bool> <t> <t>)
    {
        let s = scope.clone();
        options.push(
            (
                gen_with_scope(Target::Bool, d, s.clone()),
                gen_with_scope(target, d, s.clone()),
                gen_with_scope(target, d, s),
            )
                .prop_map(|(c, t, f)| Expr::if_(c, t, f))
                .boxed(),
        );
    }
    // (let (x <any>) <t, with x in scope>)
    {
        let s = scope.clone();
        options.push(
            (any::<u8>(), gen_with_scope(Target::Int, d, s.clone()))
                .prop_flat_map(move |(kind, rhs)| {
                    let bound_target = match kind % 5 {
                        0 => Target::Int,
                        1 => Target::Bool,
                        2 => Target::IntPair,
                        3 => Target::Str,
                        _ => Target::IntVec,
                    };
                    let x = fresh("g");
                    let s2: Scope =
                        std::rc::Rc::new(s.iter().cloned().chain([(x, bound_target)]).collect());
                    let rhs_strategy = gen_with_scope(bound_target, d, s.clone());
                    let _ = rhs; // rhs regenerated per bound type
                    (rhs_strategy, gen_with_scope(target, d, s2))
                        .prop_map(move |(rhs, body)| Expr::let_(x, rhs, body))
                })
                .boxed(),
        );
    }

    match target {
        Target::Int => {
            let s = scope.clone();
            // Arithmetic.
            options.push(
                (
                    gen_with_scope(Target::Int, d, s.clone()),
                    gen_with_scope(Target::Int, d, s.clone()),
                    prop_oneof![Just(Prim::Plus), Just(Prim::Minus)],
                )
                    .prop_map(|(a, b, p)| Expr::prim_app(p, vec![a, b]))
                    .boxed(),
            );
            options.push(
                ((-5i64..=5), gen_with_scope(Target::Int, d, s.clone()))
                    .prop_map(|(k, a)| Expr::prim_app(Prim::Times, vec![Expr::Int(k), a]))
                    .boxed(),
            );
            options.push(
                (gen_with_scope(Target::Int, d, s.clone()), any::<bool>())
                    .prop_map(|(a, inc)| {
                        Expr::prim_app(if inc { Prim::Add1 } else { Prim::Sub1 }, vec![a])
                    })
                    .boxed(),
            );
            // (len v) and checked (vec-ref v i) — the checked variant may
            // raise a *user* error, never stuck.
            options.push(
                gen_with_scope(Target::IntVec, d, s.clone())
                    .prop_map(|v| Expr::prim_app(Prim::Len, vec![v]))
                    .boxed(),
            );
            options.push(
                (
                    gen_with_scope(Target::IntVec, d, s.clone()),
                    gen_with_scope(Target::Int, d, s.clone()),
                )
                    .prop_map(|(v, i)| Expr::prim_app(Prim::VecRef, vec![v, i]))
                    .boxed(),
            );
            // Fully guarded safe access: the paper's verified pattern.
            options.push(
                (
                    gen_with_scope(Target::IntVec, d, s.clone()),
                    gen_with_scope(Target::Int, d, s.clone()),
                )
                    .prop_map(|(vexp, iexp)| {
                        let v = fresh("sv");
                        let i = fresh("si");
                        Expr::let_(
                            v,
                            vexp,
                            Expr::let_(
                                i,
                                iexp,
                                Expr::if_(
                                    Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
                                    Expr::if_(
                                        Expr::prim_app(
                                            Prim::Lt,
                                            vec![
                                                Expr::Var(i),
                                                Expr::prim_app(Prim::Len, vec![Expr::Var(v)]),
                                            ],
                                        ),
                                        Expr::prim_app(
                                            Prim::SafeVecRef,
                                            vec![Expr::Var(v), Expr::Var(i)],
                                        ),
                                        Expr::Int(0),
                                    ),
                                    Expr::Int(0),
                                ),
                            ),
                        )
                    })
                    .boxed(),
            );
            // (string-length <str>) — theory RE's len object.
            options.push(
                gen_with_scope(Target::Str, d, s.clone())
                    .prop_map(|e| Expr::prim_app(Prim::StrLen, vec![e]))
                    .boxed(),
            );
            // (fst <pair>) / (snd <pair>).
            options.push(
                (gen_with_scope(Target::IntPair, d, s), any::<bool>())
                    .prop_map(|(p, first)| {
                        if first {
                            Expr::Fst(Box::new(p))
                        } else {
                            Expr::Snd(Box::new(p))
                        }
                    })
                    .boxed(),
            );
        }
        Target::Bool => {
            let s = scope.clone();
            options.push(
                (
                    gen_with_scope(Target::Int, d, s.clone()),
                    gen_with_scope(Target::Int, d, s.clone()),
                    prop_oneof![
                        Just(Prim::Lt),
                        Just(Prim::Le),
                        Just(Prim::Gt),
                        Just(Prim::Ge),
                        Just(Prim::NumEq)
                    ],
                )
                    .prop_map(|(a, b, p)| Expr::prim_app(p, vec![a, b]))
                    .boxed(),
            );
            options.push(
                gen_with_scope(Target::Int, d, s.clone())
                    .prop_map(|a| Expr::prim_app(Prim::IsZero, vec![a]))
                    .boxed(),
            );
            options.push(
                gen_with_scope(Target::Int, d, s.clone())
                    .prop_map(|a| Expr::prim_app(Prim::IsInt, vec![a]))
                    .boxed(),
            );
            options.push(
                gen_with_scope(Target::Str, d, s.clone())
                    .prop_map(|a| Expr::prim_app(Prim::IsStr, vec![a]))
                    .boxed(),
            );
            // (regexp-match? #rx"…" <str>) — its then/else propositions
            // are regex atoms, so Lemma 2(2) exercises M-Theory for RE.
            options.push(
                (gen_regex(), gen_with_scope(Target::Str, d, s.clone()))
                    .prop_map(|(r, a)| Expr::prim_app(Prim::StrMatch, vec![r, a]))
                    .boxed(),
            );
            options.push(
                (
                    gen_with_scope(Target::Str, d, s.clone()),
                    gen_with_scope(Target::Str, d, s.clone()),
                )
                    .prop_map(|(a, b)| Expr::prim_app(Prim::StrEq, vec![a, b]))
                    .boxed(),
            );
            options.push(
                gen_with_scope(Target::Bool, d, s)
                    .prop_map(|a| Expr::prim_app(Prim::Not, vec![a]))
                    .boxed(),
            );
        }
        Target::IntPair => {
            let s = scope.clone();
            options.push(
                (
                    gen_with_scope(Target::Int, d, s.clone()),
                    gen_with_scope(Target::Int, d, s),
                )
                    .prop_map(|(a, b)| Expr::Cons(Box::new(a), Box::new(b)))
                    .boxed(),
            );
        }
        Target::IntVec => {
            options.push(
                (0i64..=6, -9i64..=9)
                    .prop_map(|(n, init)| {
                        Expr::prim_app(Prim::MakeVec, vec![Expr::Int(n), Expr::Int(init)])
                    })
                    .boxed(),
            );
        }
        // Strings have no compound constructors in the core language;
        // `if`/`let` recursion above covers the interesting shapes.
        Target::Str => {}
    }
    proptest::strategy::Union::new(options).boxed()
}

fn any_program() -> impl Strategy<Value = Expr> {
    prop_oneof![
        gen_expr(Target::Int, 3),
        gen_expr(Target::Bool, 3),
        gen_expr(Target::IntPair, 2),
        gen_expr(Target::IntVec, 2),
        gen_expr(Target::Str, 2),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// Theorem 1 + Lemma 2, executably.
    #[test]
    fn well_typed_programs_do_not_go_wrong(e in any_program()) {
        let checker = Checker::default();
        let Ok(result) = checker.check_program(&e) else {
            // The generator occasionally builds ill-typed terms (e.g. a
            // variable narrowing the checker cannot see through); rejection
            // is fine — soundness is about accepted programs.
            return Ok(());
        };
        match eval_program(&e, 200_000) {
            // Theorem 1: never stuck.
            Err(EvalError::Stuck(msg)) => {
                prop_assert!(false, "SOUNDNESS VIOLATION: {msg}\nprogram: {e}\nresult: {result}");
            }
            Err(EvalError::UserError(_)) | Err(EvalError::OutOfFuel) => {}
            Ok(v) => {
                let rho = RtEnv::new();
                // Lemma 2(3): the value inhabits the type.
                prop_assert!(
                    value_has_type(&checker, &rho, &v, &result.ty),
                    "value {v} does not inhabit {}\nprogram: {e}",
                    result.ty
                );
                // Lemma 2(2): the branch-appropriate proposition is
                // satisfied (None = mentions unrecorded intermediates).
                let prop = if v.is_truthy() { &result.then_p } else { &result.else_p };
                prop_assert!(
                    satisfies(&checker, &rho, prop) != Some(false),
                    "proposition {prop} falsified by {v}\nprogram: {e}"
                );
                // Lemma 2(1): the object agrees with the value.
                prop_assert!(
                    obj_agrees_with_value(&rho, &result.obj, &v),
                    "object {} disagrees with value {v}\nprogram: {e}",
                    result.obj
                );
            }
        }
    }

    /// The generator is not vacuous: a healthy fraction of programs must
    /// type check (this guards against the soundness test silently
    /// skipping everything).
    #[test]
    fn generator_yield_is_reasonable(es in proptest::collection::vec(any_program(), 32)) {
        let checker = Checker::default();
        let ok = es.iter().filter(|e| checker.check_program(e).is_ok()).count();
        prop_assert!(ok * 2 >= es.len(), "only {ok}/32 generated programs type checked");
    }
}
