//! Property tests for the structural metatheory: subtyping laws, the
//! semantic soundness of `restrict`/`remove` (Fig. 7), proposition
//! negation, and selfification — each checked against the executable
//! model relation of Fig. 8.

use proptest::prelude::*;

use rtr_core::check::Checker;
use rtr_core::env::Env;
use rtr_core::interp::{RtEnv, Value};
use rtr_core::model::{satisfies, value_has_type};
use rtr_core::syntax::{LinCmp, Obj, Prop, Symbol, Ty};

const FUEL: u32 = 64;

/// A small pool of regexes for refinement generators (parsed once per
/// call; patterns chosen to overlap partially so inclusion checks are
/// non-trivial).
fn regex_pool() -> Vec<std::sync::Arc<rtr_solver::re::Regex>> {
    ["a*", "[ab]+", "a{2}", "b?a", "[abc]{1,3}", "c.*"]
        .iter()
        .map(|p| std::sync::Arc::new(rtr_solver::re::Regex::parse(p).expect("pool parses")))
        .collect()
}

// --- generators ---------------------------------------------------------------

/// First-order types (no functions: their semantics needs closures).
fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::Top),
        Just(Ty::Int),
        Just(Ty::True),
        Just(Ty::False),
        Just(Ty::Unit),
        Just(Ty::bot()),
        Just(Ty::bool_ty()),
        Just(Ty::Str),
        Just(Ty::Regex),
        // A refinement over Int with a closed bound.
        (-5i64..=5, any::<bool>()).prop_map(|(k, le)| {
            let x = Symbol::fresh("pt");
            let p = if le {
                Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(k))
            } else {
                Prop::lin(Obj::int(k), LinCmp::Le, Obj::var(x))
            };
            Ty::refine(x, Ty::Int, p)
        }),
        // A refinement over Str with a pool regex (theory RE).
        (0usize..6, any::<bool>()).prop_map(|(i, pos)| {
            let x = Symbol::fresh("ps");
            let atom = Prop::re_match(&Obj::var(x), &Obj::re(regex_pool()[i].clone()));
            let p = if pos {
                atom
            } else {
                atom.negate().expect("re atoms negate")
            };
            Ty::refine(x, Ty::Str, p)
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::pair(a, b)),
            inner.clone().prop_map(Ty::vec),
            proptest::collection::vec(inner, 0..3).prop_map(Ty::union_of),
        ]
    })
}

/// First-order runtime values.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        (-8i64..=8).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Unit),
        // Strings over the pool regexes' alphabet (plus outliers).
        prop_oneof![
            Just(""),
            Just("a"),
            Just("b"),
            Just("aa"),
            Just("ab"),
            Just("ba"),
            Just("abc"),
            Just("ccc"),
            Just("PLDI"),
            Just("2016"),
        ]
        .prop_map(|s: &str| Value::Str(std::sync::Arc::from(s))),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| { Value::Pair(std::rc::Rc::new(a), std::rc::Rc::new(b)) }),
            proptest::collection::vec(inner, 0..3)
                .prop_map(|vs| { Value::Vector(std::rc::Rc::new(std::cell::RefCell::new(vs))) }),
        ]
    })
}

/// Ground propositions over a single Int variable bound in ρ.
fn arb_ground_prop(x: Symbol) -> impl Strategy<Value = Prop> {
    let atom = (
        prop_oneof![
            Just(LinCmp::Lt),
            Just(LinCmp::Le),
            Just(LinCmp::Eq),
            Just(LinCmp::Ne)
        ],
        -5i64..=5,
        any::<bool>(),
    )
        .prop_map(move |(cmp, k, flip)| {
            if flip {
                Prop::lin(Obj::int(k), cmp, Obj::var(x))
            } else {
                Prop::lin(Obj::var(x), cmp, Obj::int(k))
            }
        });
    let leaf = prop_oneof![
        Just(Prop::TT),
        Just(Prop::FF),
        atom,
        Just(Prop::is(Obj::var(x), Ty::Int)),
        Just(Prop::is_not(Obj::var(x), Ty::bool_ty())),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Prop::and(a, b)),
            (inner.clone(), inner).prop_map(|(a, b)| Prop::or(a, b)),
        ]
    })
}

// --- properties ----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// S-Refl, S-Top, S-Union2 as laws over random types.
    #[test]
    fn subtype_reflexive_top_union(t in arb_ty(), s in arb_ty()) {
        let c = Checker::default();
        let env = Env::new();
        prop_assert!(c.subtype(&env, &t, &t, FUEL), "{t} <: {t}");
        prop_assert!(c.subtype(&env, &t, &Ty::Top, FUEL));
        let u = Ty::union_of(vec![t.clone(), s.clone()]);
        prop_assert!(c.subtype(&env, &t, &u, FUEL), "{t} <: {u}");
        prop_assert!(c.subtype(&env, &s, &u, FUEL), "{s} <: {u}");
    }

    /// Transitivity, sampled: t <: s and s <: r implies t <: r.
    #[test]
    fn subtype_transitive(t in arb_ty(), s in arb_ty(), r in arb_ty()) {
        let c = Checker::default();
        let env = Env::new();
        if c.subtype(&env, &t, &s, FUEL) && c.subtype(&env, &s, &r, FUEL) {
            prop_assert!(c.subtype(&env, &t, &r, FUEL), "{t} <: {s} <: {r} but not {t} <: {r}");
        }
    }

    /// Semantic soundness of subtyping: if t <: s, every value of t is a
    /// value of s (the subtyping relation respects the model).
    #[test]
    fn subtype_respects_values(t in arb_ty(), s in arb_ty(), v in arb_value()) {
        let c = Checker::default();
        let env = Env::new();
        let rho = RtEnv::new();
        if c.subtype(&env, &t, &s, FUEL) && value_has_type(&c, &rho, &v, &t) {
            prop_assert!(
                value_has_type(&c, &rho, &v, &s),
                "{t} <: {s} but value {v} inhabits only the subtype"
            );
        }
    }

    /// Fig. 7 `restrict` is a sound intersection: v ∈ t ∧ v ∈ s ⇒
    /// v ∈ restrict(t, s).
    #[test]
    fn restrict_is_sound(t in arb_ty(), s in arb_ty(), v in arb_value()) {
        let c = Checker::default();
        let env = Env::new();
        let rho = RtEnv::new();
        if value_has_type(&c, &rho, &v, &t) && value_has_type(&c, &rho, &v, &s) {
            let r = c.restrict(&env, &t, &s, FUEL);
            prop_assert!(
                value_has_type(&c, &rho, &v, &r),
                "v = {v} ∈ {t} ∩ {s} but not ∈ restrict = {r}"
            );
        }
    }

    /// Fig. 7 `remove` is a sound difference: v ∈ t ∧ v ∉ s ⇒
    /// v ∈ remove(t, s).
    #[test]
    fn remove_is_sound(t in arb_ty(), s in arb_ty(), v in arb_value()) {
        let c = Checker::default();
        let env = Env::new();
        let rho = RtEnv::new();
        if value_has_type(&c, &rho, &v, &t) && !value_has_type(&c, &rho, &v, &s) {
            let r = c.remove(&env, &t, &s, FUEL);
            prop_assert!(
                value_has_type(&c, &rho, &v, &r),
                "v = {v} ∈ {t} ∖ {s} but not ∈ remove = {r}"
            );
        }
    }

    /// `overlap` is complete for disjointness: if it says the types are
    /// disjoint, no value inhabits both.
    #[test]
    fn overlap_never_misses(t in arb_ty(), s in arb_ty(), v in arb_value()) {
        let c = Checker::default();
        let rho = RtEnv::new();
        if !c.overlap(&t, &s) {
            prop_assert!(
                !(value_has_type(&c, &rho, &v, &t) && value_has_type(&c, &rho, &v, &s)),
                "overlap({t}, {s}) = false but {v} inhabits both"
            );
        }
    }

    /// Negation is semantically exact on ground propositions:
    /// ρ ⊨ ¬ψ ⇔ ρ ⊭ ψ (M-rules).
    #[test]
    fn negation_flips_satisfaction(p_gen in (-8i64..=8).prop_flat_map(|n| {
        let x = Symbol::fresh("gx");
        arb_ground_prop(x).prop_map(move |p| (x, n, p))
    })) {
        let (x, n, p) = p_gen;
        let c = Checker::default();
        let rho = RtEnv::new().extend(x, Value::Int(n));
        if let Some(neg) = p.negate() {
            let sp = satisfies(&c, &rho, &p);
            let sn = satisfies(&c, &rho, &neg);
            if let (Some(a), Some(b)) = (sp, sn) {
                prop_assert_eq!(a, !b, "ψ = {}, ¬ψ = {}, at x={}", p, neg, n);
            }
        }
    }

    /// The proof system is sound w.r.t. ground models: if the empty-env
    /// checker extended with facts about x proves ψ, then every integer
    /// value of x satisfying the facts satisfies ψ.
    #[test]
    fn proves_respects_ground_models(
        seed in any::<u64>(),
        lo in -5i64..=0,
        hi in 0i64..=5,
    ) {
        let _ = seed;
        let c = Checker::default();
        let x = Symbol::fresh("mx");
        let mut env = Env::new();
        c.bind(&mut env, x, &Ty::Int, FUEL);
        c.assume(&mut env, &Prop::lin(Obj::int(lo), LinCmp::Le, Obj::var(x)), FUEL);
        c.assume(&mut env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(hi)), FUEL);
        // Goal: lo - 1 < x (always true given the facts).
        let goal = Prop::lin(Obj::int(lo - 1), LinCmp::Lt, Obj::var(x));
        prop_assert!(c.proves(&env, &goal, FUEL));
        // And the model check agrees for every admissible value.
        for n in lo..=hi {
            let rho = RtEnv::new().extend(x, Value::Int(n));
            prop_assert_eq!(satisfies(&c, &rho, &goal), Some(true));
        }
        // A goal stronger than the facts is NOT proved: x ≤ lo - 1.
        let bad = Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(lo - 1));
        prop_assert!(!c.proves(&env, &bad, FUEL));
    }

    /// The regex theory is sound w.r.t. ground models: whatever the
    /// checker proves from `s ∈ L(r₁)` holds of every short string in
    /// L(r₁) (M-Theory agreement between solver and matcher).
    #[test]
    fn regex_proofs_respect_ground_models(i in 0usize..6, j in 0usize..6) {
        let pool = regex_pool();
        let c = Checker::default();
        let s = Symbol::fresh("rs");
        let mut env = Env::new();
        c.bind(&mut env, s, &Ty::Str, FUEL);
        c.assume(
            &mut env,
            &Prop::re_match(&Obj::var(s), &Obj::re(pool[i].clone())),
            FUEL,
        );
        let goal = Prop::re_match(&Obj::var(s), &Obj::re(pool[j].clone()));
        if c.proves(&env, &goal, FUEL) {
            // Enumerate strings over {a,b,c} up to length 4.
            let mut frontier: Vec<String> = vec![String::new()];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &frontier {
                    for ch in ['a', 'b', 'c'] {
                        let mut t = w.clone();
                        t.push(ch);
                        next.push(t);
                    }
                }
                frontier.extend(next.iter().cloned());
                frontier.dedup();
            }
            for w in frontier {
                if pool[i].is_match(&w) {
                    let rho = RtEnv::new()
                        .extend(s, Value::Str(std::sync::Arc::from(w.as_str())));
                    prop_assert_eq!(
                        satisfies(&c, &rho, &goal),
                        Some(true),
                        "proved {} ⊢ {} but {:?} breaks it", pool[i], pool[j], w
                    );
                }
            }
        }
    }

    /// Selfification is semantically faithful: a value inhabits
    /// selfify(τ, o) in any ρ where o evaluates to that value.
    #[test]
    fn selfify_faithful(n in -8i64..=8) {
        let c = Checker::default();
        let x = Symbol::fresh("sfx");
        let t = c.selfify(&Ty::Int, &Obj::var(x));
        let rho = RtEnv::new().extend(x, Value::Int(n));
        prop_assert!(value_has_type(&c, &rho, &Value::Int(n), &t));
        // And a *different* value does not.
        prop_assert!(!value_has_type(&c, &rho, &Value::Int(n + 1), &t));
    }
}
