//! End-to-end typing tests: the paper's example programs, built directly
//! as core ASTs (the surface syntax lives in `rtr-lang`).

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::diag::Code;
use rtr_core::syntax::{Expr, LinCmp, Obj, Prim, Prop, Symbol, Ty, TyResult};

fn s(name: &str) -> Symbol {
    Symbol::intern(name)
}

fn rtr() -> Checker {
    Checker::default()
}

fn lambda_tr() -> Checker {
    Checker::with_config(CheckerConfig::lambda_tr())
}

/// `{z:Int | (x ≤ z) ∧ (y ≤ z)}` — the range of Fig. 1's `max`.
fn max_range(x: Symbol, y: Symbol) -> Ty {
    let z = s("z");
    Ty::refine(
        z,
        Ty::Int,
        Prop::and(
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::var(z)),
            Prop::lin(Obj::var(y), LinCmp::Le, Obj::var(z)),
        ),
    )
}

/// Fig. 1: `(define (max x y) (if (> x y) x y))` with the refined range.
#[test]
fn fig1_max_with_refined_range() {
    let (x, y) = (s("x"), s("y"));
    let body = Expr::if_(
        Expr::prim_app(Prim::Gt, vec![Expr::Var(x), Expr::Var(y)]),
        Expr::Var(x),
        Expr::Var(y),
    );
    let sig = Ty::fun(
        vec![(x, Ty::Int), (y, Ty::Int)],
        TyResult::of_type(max_range(x, y)),
    );
    let e = Expr::ann(Expr::lam(vec![(x, Ty::Int), (y, Ty::Int)], body), sig);
    rtr().check_program(&e).expect("max must type check in RTR");
}

/// The same program must fail with a *wrong* (min-like) range.
#[test]
fn fig1_max_wrong_range_rejected() {
    let (x, y) = (s("x"), s("y"));
    let z = s("z");
    let wrong = Ty::refine(
        z,
        Ty::Int,
        Prop::and(
            Prop::lin(Obj::var(z), LinCmp::Le, Obj::var(x)),
            Prop::lin(Obj::var(z), LinCmp::Le, Obj::var(y)),
        ),
    );
    let body = Expr::if_(
        Expr::prim_app(Prim::Gt, vec![Expr::Var(x), Expr::Var(y)]),
        Expr::Var(x),
        Expr::Var(y),
    );
    let sig = Ty::fun(vec![(x, Ty::Int), (y, Ty::Int)], TyResult::of_type(wrong));
    let e = Expr::ann(Expr::lam(vec![(x, Ty::Int), (y, Ty::Int)], body), sig);
    assert!(
        rtr().check_program(&e).is_err(),
        "min-range for max must be rejected"
    );
}

/// …and stock occurrence typing (λ_TR) cannot verify the refined range.
#[test]
fn fig1_max_needs_theories() {
    let (x, y) = (s("x"), s("y"));
    let body = Expr::if_(
        Expr::prim_app(Prim::Gt, vec![Expr::Var(x), Expr::Var(y)]),
        Expr::Var(x),
        Expr::Var(y),
    );
    let sig = Ty::fun(
        vec![(x, Ty::Int), (y, Ty::Int)],
        TyResult::of_type(max_range(x, y)),
    );
    let e = Expr::ann(Expr::lam(vec![(x, Ty::Int), (y, Ty::Int)], body), sig);
    assert!(
        lambda_tr().check_program(&e).is_err(),
        "λTR must fail on refined max"
    );
}

/// §2's `least-significant-bit`, with pairs standing in for lists:
/// `(λ (n : (U Int (Int × Int))) (if (int? n) (if (even? n) 0 1) (fst n)))`.
#[test]
fn least_significant_bit_union_elimination() {
    let n = s("n");
    let e = Expr::lam(
        vec![(n, Ty::union_of(vec![Ty::Int, Ty::pair(Ty::Int, Ty::Int)]))],
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(n)]),
            Expr::if_(
                Expr::prim_app(Prim::IsEven, vec![Expr::Var(n)]),
                Expr::Int(0),
                Expr::Int(1),
            ),
            // In the else branch n must be the pair.
            Expr::Fst(Box::new(Expr::Var(n))),
        ),
    );
    let r = rtr().check_program(&e).expect("lsb must type check");
    // λTR handles this too — it is pure occurrence typing.
    lambda_tr()
        .check_program(&e)
        .expect("lsb must type check in λTR");
    match r.ty {
        Ty::Fun(f) => assert_eq!(f.range.ty, Ty::Int),
        other => panic!("expected function, got {other}"),
    }
}

/// Without the `int?` guard the same body must NOT type check ((even? n)
/// on a possible pair).
#[test]
fn lsb_without_guard_rejected() {
    let n = s("n");
    let e = Expr::lam(
        vec![(n, Ty::union_of(vec![Ty::Int, Ty::pair(Ty::Int, Ty::Int)]))],
        Expr::prim_app(Prim::IsEven, vec![Expr::Var(n)]),
    );
    assert!(matches!(
        rtr().check_program(&e),
        Err(d) if d.code == Code::TypeMismatch
    ));
}

/// §2.1 `vec-ref`: the guarded implementation in terms of the unsafe
/// primitive type checks.
#[test]
fn guarded_vec_ref_verifies() {
    let (v, i) = (s("v"), s("i"));
    // (λ (v:(Vecof Int)) (i:Int)
    //   (if (<= 0 i) (if (< i (len v)) (safe-vec-ref v i) (error …)) (error …)))
    let body = Expr::if_(
        Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
        Expr::if_(
            Expr::prim_app(
                Prim::Lt,
                vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
            ),
            Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
            Expr::Error("invalid vector index!".into()),
        ),
        Expr::Error("invalid vector index!".into()),
    );
    let e = Expr::lam(vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)], body);
    let r = rtr()
        .check_program(&e)
        .expect("guarded vec-ref must verify");
    match r.ty {
        Ty::Fun(f) => assert_eq!(f.range.ty, Ty::Int),
        other => panic!("expected function, got {other}"),
    }
}

/// The unguarded unsafe access must be rejected — this is the paper's §2.1
/// error message scenario.
#[test]
fn unguarded_safe_vec_ref_rejected() {
    let (v, i) = (s("v"), s("i"));
    let e = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
    );
    match rtr().check_program(&e) {
        Err(d) => {
            assert_eq!(d.code, Code::TypeMismatch);
            assert!(
                d.message.contains("argument 2"),
                "wrong argument flagged: {}",
                d.message
            );
        }
        other => panic!("expected a mismatch on the index, got {other:?}"),
    }
}

/// λTR rejects even the *guarded* access: the whole point of the paper.
#[test]
fn lambda_tr_cannot_verify_guarded_access() {
    let (v, i) = (s("v"), s("i"));
    let body = Expr::if_(
        Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
        Expr::if_(
            Expr::prim_app(
                Prim::Lt,
                vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
            ),
            Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
            Expr::Error("bad".into()),
        ),
        Expr::Error("bad".into()),
    );
    let e = Expr::lam(vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)], body);
    assert!(lambda_tr().check_program(&e).is_err());
}

/// §2.1 `safe-dot-prod`: accessing B at an index bounded by (len A) must
/// fail without the length equation…
#[test]
fn dot_prod_without_length_check_rejected() {
    let (a, b, i) = (s("A"), s("B"), s("i"));
    let body = Expr::if_(
        Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
        Expr::if_(
            Expr::prim_app(
                Prim::Lt,
                vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(a)])],
            ),
            Expr::prim_app(
                Prim::Times,
                vec![
                    Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(a), Expr::Var(i)]),
                    Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(b), Expr::Var(i)]),
                ],
            ),
            Expr::Int(0),
        ),
        Expr::Int(0),
    );
    let e = Expr::lam(
        vec![(a, Ty::vec(Ty::Int)), (b, Ty::vec(Ty::Int)), (i, Ty::Int)],
        body,
    );
    match rtr().check_program(&e) {
        Err(d) => {
            assert_eq!(d.code, Code::TypeMismatch);
            assert!(d.message.contains("argument 2"));
        }
        other => panic!("expected B-access rejection, got {other:?}"),
    }
}

/// …and succeed with the paper's `dot-prod` dynamic guard
/// `(unless (= (len A) (len B)) (error …))`.
#[test]
fn dot_prod_with_length_guard_verifies() {
    let (a, b, i) = (s("A"), s("B"), s("i"));
    let accesses = Expr::if_(
        Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
        Expr::if_(
            Expr::prim_app(
                Prim::Lt,
                vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(a)])],
            ),
            Expr::prim_app(
                Prim::Times,
                vec![
                    Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(a), Expr::Var(i)]),
                    Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(b), Expr::Var(i)]),
                ],
            ),
            Expr::Int(0),
        ),
        Expr::Int(0),
    );
    // (if (= (len A) (len B)) <accesses> (error …))  — `unless` inverted.
    let body = Expr::if_(
        Expr::prim_app(
            Prim::NumEq,
            vec![
                Expr::prim_app(Prim::Len, vec![Expr::Var(a)]),
                Expr::prim_app(Prim::Len, vec![Expr::Var(b)]),
            ],
        ),
        accesses,
        Expr::Error("invalid vector lengths!".into()),
    );
    let e = Expr::lam(
        vec![(a, Ty::vec(Ty::Int)), (b, Ty::vec(Ty::Int)), (i, Ty::Int)],
        body,
    );
    rtr()
        .check_program(&e)
        .expect("guarded dot-prod access must verify");
}

/// §2.2 `xtime` — the bitvector theory example, at width 16 with
/// `Byte = {b:BitVec | b ≤bv #xff}`.
#[test]
fn xtime_bitvector_verification() {
    use rtr_core::syntax::BvCmp;
    let num = s("num");
    let n = s("n");
    let b = s("b");
    let byte = Ty::refine(
        b,
        Ty::BitVec,
        Prop::bv(Obj::var(b), BvCmp::Ule, Obj::bv(0xff)),
    );
    // (λ (num:Byte)
    //   (let (n (bvand (bvmul #x02 num) #xff))
    //     (if (bv= #x00 (bvand num #x80)) n (bvxor n #x1b))))
    let body = Expr::let_(
        n,
        Expr::prim_app(
            Prim::BvAnd,
            vec![
                Expr::prim_app(Prim::BvMul, vec![Expr::BvLit(0x02), Expr::Var(num)]),
                Expr::BvLit(0xff),
            ],
        ),
        Expr::if_(
            Expr::prim_app(
                Prim::BvEq,
                vec![
                    Expr::BvLit(0x00),
                    Expr::prim_app(Prim::BvAnd, vec![Expr::Var(num), Expr::BvLit(0x80)]),
                ],
            ),
            Expr::Var(n),
            Expr::prim_app(Prim::BvXor, vec![Expr::Var(n), Expr::BvLit(0x1b)]),
        ),
    );
    let sig = Ty::fun(vec![(num, byte.clone())], TyResult::of_type(byte.clone()));
    let e = Expr::ann(Expr::lam(vec![(num, byte)], body), sig);
    rtr()
        .check_program(&e)
        .expect("xtime must type check with the BV theory");
}

/// §4.2: tests on a mutable variable produce no usable information.
#[test]
fn mutable_cache_size_is_not_trusted() {
    let (cache, v) = (s("cache-size"), s("data"));
    // (λ (v:(Vecof Int))
    //   (let (cache-size (len v))
    //     (begin (set! cache-size 0)
    //            (if (< 0 cache-size) (safe-vec-ref v 0) 0))))
    let body = Expr::let_(
        cache,
        Expr::prim_app(Prim::Len, vec![Expr::Var(v)]),
        Expr::Begin(vec![
            Expr::Set(cache, Box::new(Expr::Int(0))),
            Expr::if_(
                Expr::prim_app(Prim::Lt, vec![Expr::Int(0), Expr::Var(cache)]),
                Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Int(0)]),
                Expr::Int(0),
            ),
        ]),
    );
    let e = Expr::lam(vec![(v, Ty::vec(Ty::Int))], body);
    assert!(
        rtr().check_program(&e).is_err(),
        "mutable guard must not justify the access"
    );
    // The same program with an immutable binding verifies.
    let immut = s("csize");
    let body = Expr::let_(
        immut,
        Expr::prim_app(Prim::Len, vec![Expr::Var(v)]),
        Expr::if_(
            Expr::prim_app(Prim::Lt, vec![Expr::Int(0), Expr::Var(immut)]),
            Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Int(0)]),
            Expr::Int(0),
        ),
    );
    let e = Expr::lam(vec![(v, Ty::vec(Ty::Int))], body);
    rtr()
        .check_program(&e)
        .expect("immutable guard must verify the access");
}

/// Vector literals carry their length: (safe-vec-ref (vec 1 2 3) 2) is
/// provably safe, index 3 is not.
#[test]
fn vector_literal_lengths() {
    let vlit = Expr::VecLit(vec![Expr::Int(1), Expr::Int(2), Expr::Int(3)]);
    let ok = Expr::prim_app(Prim::SafeVecRef, vec![vlit.clone(), Expr::Int(2)]);
    rtr()
        .check_program(&ok)
        .expect("in-bounds literal access verifies");
    let bad = Expr::prim_app(Prim::SafeVecRef, vec![vlit, Expr::Int(3)]);
    assert!(
        rtr().check_program(&bad).is_err(),
        "index 3 of len-3 vector rejected"
    );
}

/// make-vec's length refinement flows: (safe-vec-ref (make-vec 10 0) 9).
#[test]
fn make_vec_length_refinement() {
    let mk = Expr::prim_app(Prim::MakeVec, vec![Expr::Int(10), Expr::Int(0)]);
    let ok = Expr::prim_app(Prim::SafeVecRef, vec![mk.clone(), Expr::Int(9)]);
    rtr()
        .check_program(&ok)
        .expect("(make-vec 10 0)[9] verifies");
    let bad = Expr::prim_app(Prim::SafeVecRef, vec![mk, Expr::Int(10)]);
    assert!(rtr().check_program(&bad).is_err());
    // A negative length is rejected by make-vec's own domain.
    let neg = Expr::prim_app(Prim::MakeVec, vec![Expr::Int(-1), Expr::Int(0)]);
    assert!(rtr().check_program(&neg).is_err());
}

/// §5.1's annotated recursive loop:
/// (let loop ([i : {i:Nat | i ≤ len ds}] [res : Int])
///   (cond [(zero? i) res] [else (loop (- i 1) (* res (safe-vec-ref ds (- i 1))))]))
/// Note the paper's snippet accesses (safe-vec-ref ds i) after narrowing
/// i ≠ 0 with upper bound i ≤ len ds — we reproduce it with the
/// (sub1 i) access which is in [0, len ds).
#[test]
fn annotated_recursive_loop_verifies() {
    let (ds, loop_f, i, res) = (s("ds"), s("loop"), s("i"), s("res"));
    let iv = s("iv");
    let idx_ty = Ty::refine(
        iv,
        Ty::Int,
        Prop::and(
            Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(iv)),
            Prop::lin(Obj::var(iv), LinCmp::Le, Obj::var(ds).len()),
        ),
    );
    let loop_ty = Ty::fun(
        vec![(i, idx_ty.clone()), (res, Ty::Int)],
        TyResult::of_type(Ty::Int),
    );
    let body = Expr::if_(
        Expr::prim_app(Prim::IsZero, vec![Expr::Var(i)]),
        Expr::Var(res),
        Expr::app(
            Expr::Var(loop_f),
            vec![
                Expr::prim_app(Prim::Sub1, vec![Expr::Var(i)]),
                Expr::prim_app(
                    Prim::Times,
                    vec![
                        Expr::Var(res),
                        Expr::prim_app(
                            Prim::SafeVecRef,
                            vec![
                                Expr::Var(ds),
                                Expr::prim_app(Prim::Sub1, vec![Expr::Var(i)]),
                            ],
                        ),
                    ],
                ),
            ],
        ),
    );
    let e = Expr::lam(
        vec![(ds, Ty::vec(Ty::Int))],
        Expr::LetRec(
            loop_f,
            loop_ty,
            std::sync::Arc::new(rtr_core::syntax::Lambda {
                params: vec![(i, idx_ty), (res, Ty::Int)],
                body,
            }),
            Box::new(Expr::app(
                Expr::Var(loop_f),
                vec![Expr::prim_app(Prim::Len, vec![Expr::Var(ds)]), Expr::Int(1)],
            )),
        ),
    );
    rtr().check_program(&e).expect("annotated loop must verify");
}

/// vec-swap! (§5.1 "code modified"): the two added index guards make four
/// safe operations verify.
#[test]
fn vec_swap_with_guards_verifies() {
    let (vs, i, j) = (s("vs"), s("i"), s("j"));
    let in_bounds = |idx: Symbol, vs: Symbol| {
        Expr::if_(
            Expr::prim_app(Prim::Lt, vec![Expr::Int(-1), Expr::Var(idx)]),
            Expr::prim_app(
                Prim::Lt,
                vec![
                    Expr::Var(idx),
                    Expr::prim_app(Prim::Len, vec![Expr::Var(vs)]),
                ],
            ),
            Expr::Bool(false),
        )
    };
    let swap = Expr::let_(
        s("i-val"),
        Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(vs), Expr::Var(i)]),
        Expr::let_(
            s("j-val"),
            Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(vs), Expr::Var(j)]),
            Expr::Begin(vec![
                Expr::prim_app(
                    Prim::SafeVecSet,
                    vec![Expr::Var(vs), Expr::Var(i), Expr::Var(s("j-val"))],
                ),
                Expr::prim_app(
                    Prim::SafeVecSet,
                    vec![Expr::Var(vs), Expr::Var(j), Expr::Var(s("i-val"))],
                ),
            ]),
        ),
    );
    let body = Expr::if_(
        in_bounds(i, vs),
        Expr::if_(in_bounds(j, vs), swap, Expr::Error("bad index(s)!".into())),
        Expr::Error("bad index(s)!".into()),
    );
    let e = Expr::lam(
        vec![(vs, Ty::vec(Ty::Int)), (i, Ty::Int), (j, Ty::Int)],
        body,
    );
    rtr()
        .check_program(&e)
        .expect("guarded vec-swap! must verify");
}

/// Aliasing through let: (let (n (len v)) (if (< i n) … (safe-vec-ref v i)))
/// — the §4.1 representative-objects machinery.
#[test]
fn let_bound_length_aliases() {
    let (v, i, n) = (s("v"), s("i"), s("n"));
    let body = Expr::let_(
        n,
        Expr::prim_app(Prim::Len, vec![Expr::Var(v)]),
        Expr::if_(
            Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
            Expr::if_(
                Expr::prim_app(Prim::Lt, vec![Expr::Var(i), Expr::Var(n)]),
                Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
                Expr::Int(0),
            ),
            Expr::Int(0),
        ),
    );
    let e = Expr::lam(vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)], body);
    rtr()
        .check_program(&e)
        .expect("alias-guarded access must verify");

    // The ablation config (no representative objects) must still verify it
    // via theory-level equalities.
    let cfg = CheckerConfig {
        representative_objects: false,
        ..CheckerConfig::default()
    };
    Checker::with_config(cfg)
        .check_program(&e)
        .expect("ablation mode must also verify via theory equalities");
}

/// Errors carry usable messages (§2.1's error shape).
#[test]
fn error_messages_name_the_argument() {
    let (v, i) = (s("v"), s("i"));
    let e = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
    );
    let err = rtr().check_program(&e).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("argument 2"),
        "message should flag the index: {msg}"
    );
    assert!(
        msg.contains("expected"),
        "message should show the expected type: {msg}"
    );
}

/// The §4.1 hybrid-environment ablation is verdict-preserving on the
/// paper programs: the pure-proposition configuration accepts and rejects
/// the same things, just more slowly (see the `hybrid_env_narrowing`
/// bench for the cost gap).
#[test]
fn pure_proposition_env_preserves_verdicts() {
    let pure = Checker::with_config(CheckerConfig {
        hybrid_env: false,
        ..CheckerConfig::default()
    });

    // Fig. 1's max (accept).
    let (x, y, z) = (s("pmx"), s("pmy"), s("pmz"));
    let range = Ty::refine(
        z,
        Ty::Int,
        Prop::and(
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::var(z)),
            Prop::lin(Obj::var(y), LinCmp::Le, Obj::var(z)),
        ),
    );
    let fty = Ty::fun(vec![(x, Ty::Int), (y, Ty::Int)], TyResult::of_type(range));
    let body = Expr::if_(
        Expr::prim_app(Prim::Gt, vec![Expr::Var(x), Expr::Var(y)]),
        Expr::Var(x),
        Expr::Var(y),
    );
    let max = Expr::ann(
        Expr::lam(vec![(x, Ty::Int), (y, Ty::Int)], body),
        fty.clone(),
    );
    pure.check_program(&max).expect("pure mode must verify max");

    // Unguarded safe access (reject).
    let (v, i) = (s("ppv"), s("ppi"));
    let bad = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
    );
    assert!(
        pure.check_program(&bad).is_err(),
        "pure mode must still reject"
    );

    // Guarded safe access (accept) — narrowing via replayed atoms.
    let guarded = Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::if_(
            Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
            Expr::if_(
                Expr::prim_app(
                    Prim::Lt,
                    vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
                ),
                Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
                Expr::Int(0),
            ),
            Expr::Int(0),
        ),
    );
    pure.check_program(&guarded)
        .expect("pure mode must verify the guarded access");

    // Union elimination (accept): (λ (n : (U Int Bool)) (if (int? n) n 0)).
    let n = s("ppn");
    let union_elim = Expr::lam(
        vec![(n, Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))],
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(n)]),
            Expr::prim_app(Prim::Add1, vec![Expr::Var(n)]),
            Expr::Int(0),
        ),
    );
    pure.check_program(&union_elim)
        .expect("pure mode must narrow unions");
}
