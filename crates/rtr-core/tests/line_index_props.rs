//! Property tests for [`rtr_core::diag::LineIndex`]: the three position
//! systems (byte offsets, the reader's 1-based character [`Loc`]s, LSP's
//! 0-based UTF-16 [`Utf16Pos`]s) must agree on texts mixing ASCII,
//! multi-byte BMP characters, and astral-plane characters (which occupy
//! one `Loc` column but *two* UTF-16 units), and every conversion must
//! clamp arbitrary out-of-range input instead of panicking.

use proptest::prelude::*;

use rtr_core::diag::{LineIndex, Loc, Span, Utf16Pos};

/// Texts that stress every width class: 1-byte ASCII, 2-byte (é),
/// 3-byte (☃), and 4-byte astral (𝒳, two UTF-16 units), with embedded
/// newlines (including leading/trailing/empty lines).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            Just('a'),
            Just('Z'),
            Just(' '),
            Just('é'),
            Just('λ'),
            Just('☃'),
            Just('𝒳'),
            Just('😀'),
            Just('\n'),
        ],
        0..80,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A valid char-boundary byte offset into `text` (including the end).
fn boundary_offsets(text: &str) -> Vec<u32> {
    let mut offs: Vec<u32> = text.char_indices().map(|(i, _)| i as u32).collect();
    offs.push(text.len() as u32);
    offs
}

proptest! {
    /// byte → Loc → byte is the identity on char boundaries.
    #[test]
    fn byte_loc_round_trips_on_boundaries(text in arb_text()) {
        let ix = LineIndex::new(&text);
        for byte in boundary_offsets(&text) {
            let loc = ix.byte_to_loc(&text, byte);
            // A newline's own offset maps to "just past the previous
            // line's last character", whose loc_to_byte lands back on
            // the newline itself — still the same byte.
            prop_assert_eq!(ix.loc_to_byte(&text, loc), byte);
        }
    }

    /// byte → UTF-16 → byte is the identity on char boundaries (the
    /// ISSUE-pinned round trip: a checker span rendered as an LSP range
    /// resolves back to the same source bytes).
    #[test]
    fn byte_utf16_round_trips_on_boundaries(text in arb_text()) {
        let ix = LineIndex::new(&text);
        for byte in boundary_offsets(&text) {
            let pos = ix.byte_to_utf16(&text, byte);
            prop_assert_eq!(ix.utf16_to_byte(&text, pos), byte);
        }
    }

    /// Span → LSP range → span round-trips for spans between any two
    /// boundary offsets.
    #[test]
    fn spans_survive_the_utf16_detour(text in arb_text(), a in 0usize..100, b in 0usize..100) {
        let offs = boundary_offsets(&text);
        let lo = offs[a % offs.len()];
        let hi = offs[b % offs.len()];
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let span = Span::new(ix_loc(&text, lo), ix_loc(&text, hi));
        let ix = LineIndex::new(&text);
        let (start, end) = ix.span_to_utf16(&text, span);
        prop_assert_eq!(ix.utf16_to_loc(&text, start), span.start);
        prop_assert_eq!(ix.utf16_to_loc(&text, end), span.end);
        // ...and all the way back to bytes.
        prop_assert_eq!(ix.utf16_to_byte(&text, start), lo);
        prop_assert_eq!(ix.utf16_to_byte(&text, end), hi);
    }

    /// Arbitrary (including wildly out-of-range) positions never panic,
    /// and every conversion lands inside the text.
    #[test]
    fn conversions_clamp_instead_of_panicking(
        text in arb_text(),
        byte in 0u32..10_000,
        line in 0u32..10_000,
        character in 0u32..10_000,
    ) {
        let ix = LineIndex::new(&text);
        let loc = ix.byte_to_loc(&text, byte);
        prop_assert!(ix.loc_to_byte(&text, loc) <= text.len() as u32);
        let pos = Utf16Pos { line, character };
        let clamped = ix.utf16_to_byte(&text, pos);
        prop_assert!(clamped <= text.len() as u32);
        prop_assert!(text.is_char_boundary(clamped as usize));
        let wild = Loc { line, col: character };
        prop_assert!(ix.loc_to_byte(&text, wild) <= text.len() as u32);
    }

    /// A UTF-16 `character` landing between the two units of a surrogate
    /// pair resolves into (not past) the containing character.
    #[test]
    fn mid_surrogate_positions_round_down(text in arb_text(), line in 0u32..8, character in 0u32..60) {
        let ix = LineIndex::new(&text);
        let pos = Utf16Pos { line, character };
        let byte = ix.utf16_to_byte(&text, pos);
        let back = ix.byte_to_utf16(&text, byte);
        prop_assert!(back.line <= line || line >= ix.line_count());
        if back.line == pos.line.min(ix.line_count() - 1) {
            prop_assert!(back.character <= character);
        }
    }
}

/// An independently-computed [`Loc`] for a boundary byte offset (counts
/// lines and characters directly, no `LineIndex` involved).
fn ix_loc(text: &str, byte: u32) -> Loc {
    let (mut line, mut col) = (1u32, 1u32);
    for (i, ch) in text.char_indices() {
        if i as u32 >= byte {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    Loc { line, col }
}
