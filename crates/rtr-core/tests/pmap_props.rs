//! Property tests pinning the persistent HAMT ([`rtr_core::pmap::PMap`])
//! to `HashMap` semantics: any sequence of inserts/removes must leave the
//! two maps observationally identical (get, contains, len, iteration as a
//! set), and writing to a map must never disturb a snapshot taken before
//! the write.

use std::collections::HashMap;

use proptest::prelude::*;

use rtr_core::pmap::PMap;
use rtr_core::syntax::Symbol;

/// A small key universe so random sequences actually collide, overwrite
/// and remove existing keys.
fn key(i: u8) -> Symbol {
    Symbol::intern(&format!("pmk{}", i % 24))
}

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u32),
    Remove(u8),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k, v)),
            any::<u8>().prop_map(Op::Remove),
        ],
        0..64,
    )
}

fn assert_same(pmap: &PMap<u32>, reference: &HashMap<Symbol, u32>) {
    assert_eq!(pmap.len(), reference.len());
    assert_eq!(pmap.is_empty(), reference.is_empty());
    for (k, v) in reference {
        assert_eq!(pmap.get(*k), Some(v), "missing {k}");
    }
    let mut entries: Vec<(Symbol, u32)> = pmap.iter().map(|(k, v)| (k, *v)).collect();
    entries.sort_unstable();
    let mut expected: Vec<(Symbol, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
    expected.sort_unstable();
    assert_eq!(entries, expected, "iteration disagrees with HashMap");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every op sequence leaves the HAMT and a HashMap observationally
    /// identical, and each op reports the same previous value.
    #[test]
    fn pmap_matches_hashmap_semantics(ops in arb_ops()) {
        let mut pmap: PMap<u32> = PMap::new();
        let mut reference: HashMap<Symbol, u32> = HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(pmap.insert(key(*k), *v), reference.insert(key(*k), *v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(pmap.remove(key(*k)), reference.remove(&key(*k)));
                }
            }
        }
        assert_same(&pmap, &reference);
    }

    /// Snapshot/write independence: a clone taken mid-sequence is frozen —
    /// later writes to the original (and writes to the clone) never leak
    /// across, in either direction.
    #[test]
    fn snapshots_are_write_independent(
        before in arb_ops(),
        after in arb_ops(),
        on_snapshot in arb_ops(),
    ) {
        let mut pmap: PMap<u32> = PMap::new();
        let mut reference: HashMap<Symbol, u32> = HashMap::new();
        for op in &before {
            match op {
                Op::Insert(k, v) => {
                    pmap.insert(key(*k), *v);
                    reference.insert(key(*k), *v);
                }
                Op::Remove(k) => {
                    pmap.remove(key(*k));
                    reference.remove(&key(*k));
                }
            }
        }
        let mut snapshot = pmap.clone();
        let witness = pmap.clone();
        let frozen = reference.clone();
        let mut snapshot_ref = reference.clone();
        // Diverge both copies with independent op sequences.
        for op in &after {
            match op {
                Op::Insert(k, v) => {
                    pmap.insert(key(*k), *v);
                    reference.insert(key(*k), *v);
                }
                Op::Remove(k) => {
                    pmap.remove(key(*k));
                    reference.remove(&key(*k));
                }
            }
        }
        for op in &on_snapshot {
            match op {
                Op::Insert(k, v) => {
                    snapshot.insert(key(*k), *v);
                    snapshot_ref.insert(key(*k), *v);
                }
                Op::Remove(k) => {
                    snapshot.remove(key(*k));
                    snapshot_ref.remove(&key(*k));
                }
            }
        }
        assert_same(&pmap, &reference);
        assert_same(&snapshot, &snapshot_ref);
        // An untouched snapshot taken at the same point still shows the
        // frozen state, no matter what the other two copies did.
        assert_same(&witness, &frozen);
    }
}
