//! Failure injection: resource budgets, conservative degradation, and
//! pathological inputs.
//!
//! λ_RTR is designed so that every resource-limited component degrades
//! *conservatively*: a solver that gives up means "not proved", never
//! "proved". These tests starve each budget and assert that the checker
//! (a) never panics and (b) only ever errs toward rejection.

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::syntax::{Expr, LinCmp, Obj, Prim, Prop, Symbol, Ty};
use rtr_solver::lin::FmConfig;
use rtr_solver::sat::SolverConfig;

fn s(n: &str) -> Symbol {
    Symbol::intern(n)
}

/// The guarded access that normally verifies.
fn guarded_access() -> Expr {
    let (v, i) = (s("v"), s("i"));
    Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::if_(
            Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
            Expr::if_(
                Expr::prim_app(
                    Prim::Lt,
                    vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
                ),
                Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
                Expr::Int(0),
            ),
            Expr::Int(0),
        ),
    )
}

#[test]
fn starved_fm_budget_rejects_conservatively() {
    let cfg = CheckerConfig {
        fm: FmConfig {
            max_rows: 1,
            max_splits: 0,
            integer_tightening: true,
        },
        ..CheckerConfig::default()
    };
    let checker = Checker::with_config(cfg);
    // Must not panic; must not crash. (A 1-row FM can still prove the
    // trivial, so we only require: no panic, and no unsoundness on a
    // program whose proof genuinely needs rows.)
    let _ = checker.check_program(&guarded_access());
}

#[test]
fn starved_logic_fuel_rejects() {
    let checker = Checker::with_config(CheckerConfig {
        logic_fuel: 3,
        ..CheckerConfig::default()
    });
    let result = checker.check_program(&guarded_access());
    assert!(
        result.is_err(),
        "with no fuel the proof must fail, not succeed"
    );
}

#[test]
fn zero_case_split_budget_weakens_but_stays_sound() {
    let checker = Checker::with_config(CheckerConfig {
        case_split_budget: 0,
        ..CheckerConfig::default()
    });
    // Disjunction elimination is off: the or-based proof fails…
    let mut env = rtr_core::env::Env::new();
    let x = Symbol::fresh("csx");
    checker.bind(&mut env, x, &Ty::Int, 64);
    checker.assume(
        &mut env,
        &Prop::or(
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)),
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)),
        ),
        64,
    );
    assert!(!checker.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)), 64));
    // …but direct proofs still work.
    checker.assume(
        &mut env,
        &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(4)),
        64,
    );
    assert!(checker.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)), 64));
}

#[test]
fn starved_sat_budget_rejects_bv_obligations() {
    // Multiplication commutativity needs real CDCL search (it is not
    // decided by unit propagation alone), so it separates the budgets.
    let goal = |c: &Checker| {
        let mut env = rtr_core::env::Env::new();
        let (x, y) = (Symbol::fresh("bx"), Symbol::fresh("by"));
        c.bind(&mut env, x, &Ty::BitVec, 64);
        c.bind(&mut env, y, &Ty::BitVec, 64);
        let p = Prop::bv(
            Obj::var(x).bv_mul(&Obj::var(y)),
            rtr_core::syntax::BvCmp::Eq,
            Obj::var(y).bv_mul(&Obj::var(x)),
        );
        c.proves(&env, &p, 64)
    };
    let ok_cfg = CheckerConfig {
        bv_width: 6,
        ..CheckerConfig::default()
    };
    assert!(
        goal(&Checker::with_config(ok_cfg.clone())),
        "normal budget proves x·y = y·x"
    );
    let starved_cfg = CheckerConfig {
        sat: SolverConfig {
            max_conflicts: 0,
            ..SolverConfig::default()
        },
        ..ok_cfg
    };
    assert!(
        !goal(&Checker::with_config(starved_cfg)),
        "zero conflict budget must degrade to 'not proved'"
    );
}

#[test]
fn deep_nesting_does_not_blow_the_stack() {
    // 200 nested lets: exercises the recursive checker on a deep AST.
    let mut e = Expr::Var(s("d0"));
    for k in (0..200).rev() {
        let x = s(&format!("d{k}"));
        let next = s(&format!("d{}", k + 1));
        let _ = next;
        e = Expr::let_(x, Expr::Int(k), e);
    }
    let r = Checker::default().check_program(&e);
    assert!(r.is_ok(), "deep let nesting should check: {r:?}");
}

#[test]
fn huge_union_types_are_handled() {
    let members: Vec<Ty> = (0..64)
        .map(|k| {
            if k % 2 == 0 {
                Ty::pair(Ty::Int, Ty::Int)
            } else {
                Ty::Int
            }
        })
        .collect();
    let u = Ty::union_of(members);
    // Deduplication collapses to two members.
    if let Ty::Union(ts) = &u {
        assert_eq!(ts.len(), 2);
    } else {
        panic!("expected a union");
    }
    let n = s("un");
    let e = Expr::lam(
        vec![(n, u)],
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(n)]),
            Expr::prim_app(Prim::Add1, vec![Expr::Var(n)]),
            Expr::Fst(Box::new(Expr::Var(n))),
        ),
    );
    assert!(Checker::default().check_program(&e).is_ok());
}

#[test]
fn ill_typed_programs_error_not_panic() {
    let cases: Vec<Expr> = vec![
        // unbound variable
        Expr::Var(s("nope")),
        // applying a non-function
        Expr::app(Expr::Int(3), vec![Expr::Int(4)]),
        // arity error
        Expr::prim_app(Prim::Add1, vec![Expr::Int(1), Expr::Int(2)]),
        // fst of an int
        Expr::Fst(Box::new(Expr::Int(1))),
        // adding a bool
        Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Bool(true)]),
        // set! of unbound var
        Expr::Set(s("ghost"), Box::new(Expr::Int(1))),
        // bitvector op on ints
        Expr::prim_app(Prim::BvAnd, vec![Expr::Int(1), Expr::Int(2)]),
        // annotation mismatch
        Expr::ann(Expr::Bool(true), Ty::Int),
    ];
    let checker = Checker::default();
    for e in cases {
        let r = checker.check_program(&e);
        assert!(r.is_err(), "must reject {e}, got {r:?}");
    }
}

#[test]
fn conservative_rejection_is_never_unsound() {
    // Crank every budget to the floor and fuzz a handful of accepted
    // programs: anything still accepted must evaluate without getting
    // stuck.
    let weak = Checker::with_config(CheckerConfig {
        logic_fuel: 8,
        case_split_budget: 1,
        fm: FmConfig {
            max_rows: 16,
            max_splits: 1,
            integer_tightening: true,
        },
        ..CheckerConfig::default()
    });
    let programs = vec![
        Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Int(2)]),
        guarded_access(),
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Int(3)]),
            Expr::Int(1),
            Expr::Int(0),
        ),
    ];
    for e in programs {
        if weak.check_program(&e).is_ok() {
            let v = rtr_core::interp::eval_program(&e, 100_000);
            assert!(
                !matches!(v, Err(rtr_core::interp::EvalError::Stuck(_))),
                "weak-budget acceptance must still be sound for {e}"
            );
        }
    }
}
