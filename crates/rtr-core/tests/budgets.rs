//! Failure injection: resource budgets, conservative degradation, and
//! pathological inputs.
//!
//! λ_RTR is designed so that every resource-limited component degrades
//! *conservatively*: a solver that gives up means "not proved", never
//! "proved". These tests starve each budget and assert that the checker
//! (a) never panics and (b) only ever errs toward rejection.

use proptest::prelude::*;
use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::diag::Code;
use rtr_core::syntax::{BvCmp, Expr, LinCmp, Obj, Prim, Prop, Symbol, Ty};
use rtr_solver::lin::FmConfig;
use rtr_solver::sat::SolverConfig;

fn s(n: &str) -> Symbol {
    Symbol::intern(n)
}

/// The guarded access that normally verifies.
fn guarded_access() -> Expr {
    let (v, i) = (s("v"), s("i"));
    Expr::lam(
        vec![(v, Ty::vec(Ty::Int)), (i, Ty::Int)],
        Expr::if_(
            Expr::prim_app(Prim::Le, vec![Expr::Int(0), Expr::Var(i)]),
            Expr::if_(
                Expr::prim_app(
                    Prim::Lt,
                    vec![Expr::Var(i), Expr::prim_app(Prim::Len, vec![Expr::Var(v)])],
                ),
                Expr::prim_app(Prim::SafeVecRef, vec![Expr::Var(v), Expr::Var(i)]),
                Expr::Int(0),
            ),
            Expr::Int(0),
        ),
    )
}

#[test]
fn starved_fm_budget_rejects_conservatively() {
    let cfg = CheckerConfig {
        fm: FmConfig {
            max_rows: 1,
            max_splits: 0,
            integer_tightening: true,
        },
        ..CheckerConfig::default()
    };
    let checker = Checker::with_config(cfg);
    // Must not panic; must not crash. (A 1-row FM can still prove the
    // trivial, so we only require: no panic, and no unsoundness on a
    // program whose proof genuinely needs rows.)
    let _ = checker.check_program(&guarded_access());
}

#[test]
fn starved_logic_fuel_rejects() {
    let checker = Checker::with_config(CheckerConfig {
        logic_fuel: 3,
        ..CheckerConfig::default()
    });
    let result = checker.check_program(&guarded_access());
    assert!(
        result.is_err(),
        "with no fuel the proof must fail, not succeed"
    );
}

#[test]
fn zero_case_split_budget_weakens_but_stays_sound() {
    let checker = Checker::with_config(CheckerConfig {
        case_split_budget: 0,
        ..CheckerConfig::default()
    });
    // Disjunction elimination is off: the or-based proof fails…
    let mut env = rtr_core::env::Env::new();
    let x = Symbol::fresh("csx");
    checker.bind(&mut env, x, &Ty::Int, 64);
    checker.assume(
        &mut env,
        &Prop::or(
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)),
            Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)),
        ),
        64,
    );
    assert!(!checker.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)), 64));
    // …but direct proofs still work.
    checker.assume(
        &mut env,
        &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(4)),
        64,
    );
    assert!(checker.proves(&env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)), 64));
}

#[test]
fn starved_sat_budget_rejects_bv_obligations() {
    // Multiplication commutativity needs real CDCL search (it is not
    // decided by unit propagation alone), so it separates the budgets.
    let goal = |c: &Checker| {
        let mut env = rtr_core::env::Env::new();
        let (x, y) = (Symbol::fresh("bx"), Symbol::fresh("by"));
        c.bind(&mut env, x, &Ty::BitVec, 64);
        c.bind(&mut env, y, &Ty::BitVec, 64);
        let p = Prop::bv(
            Obj::var(x).bv_mul(&Obj::var(y)),
            rtr_core::syntax::BvCmp::Eq,
            Obj::var(y).bv_mul(&Obj::var(x)),
        );
        c.proves(&env, &p, 64)
    };
    let ok_cfg = CheckerConfig {
        bv_width: 6,
        ..CheckerConfig::default()
    };
    assert!(
        goal(&Checker::with_config(ok_cfg.clone())),
        "normal budget proves x·y = y·x"
    );
    let starved_cfg = CheckerConfig {
        sat: SolverConfig {
            max_conflicts: 0,
            ..SolverConfig::default()
        },
        ..ok_cfg
    };
    assert!(
        !goal(&Checker::with_config(starved_cfg)),
        "zero conflict budget must degrade to 'not proved'"
    );
}

#[test]
fn deep_nesting_does_not_blow_the_stack() {
    // 200 nested lets: exercises the recursive checker on a deep AST.
    let mut e = Expr::Var(s("d0"));
    for k in (0..200).rev() {
        let x = s(&format!("d{k}"));
        let next = s(&format!("d{}", k + 1));
        let _ = next;
        e = Expr::let_(x, Expr::Int(k), e);
    }
    let r = Checker::default().check_program(&e);
    assert!(r.is_ok(), "deep let nesting should check: {r:?}");
}

#[test]
fn huge_union_types_are_handled() {
    let members: Vec<Ty> = (0..64)
        .map(|k| {
            if k % 2 == 0 {
                Ty::pair(Ty::Int, Ty::Int)
            } else {
                Ty::Int
            }
        })
        .collect();
    let u = Ty::union_of(members);
    // Deduplication collapses to two members.
    if let Ty::Union(ts) = &u {
        assert_eq!(ts.len(), 2);
    } else {
        panic!("expected a union");
    }
    let n = s("un");
    let e = Expr::lam(
        vec![(n, u)],
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Var(n)]),
            Expr::prim_app(Prim::Add1, vec![Expr::Var(n)]),
            Expr::Fst(Box::new(Expr::Var(n))),
        ),
    );
    assert!(Checker::default().check_program(&e).is_ok());
}

#[test]
fn ill_typed_programs_error_not_panic() {
    let cases: Vec<Expr> = vec![
        // unbound variable
        Expr::Var(s("nope")),
        // applying a non-function
        Expr::app(Expr::Int(3), vec![Expr::Int(4)]),
        // arity error
        Expr::prim_app(Prim::Add1, vec![Expr::Int(1), Expr::Int(2)]),
        // fst of an int
        Expr::Fst(Box::new(Expr::Int(1))),
        // adding a bool
        Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Bool(true)]),
        // set! of unbound var
        Expr::Set(s("ghost"), Box::new(Expr::Int(1))),
        // bitvector op on ints
        Expr::prim_app(Prim::BvAnd, vec![Expr::Int(1), Expr::Int(2)]),
        // annotation mismatch
        Expr::ann(Expr::Bool(true), Ty::Int),
    ];
    let checker = Checker::default();
    for e in cases {
        let r = checker.check_program(&e);
        assert!(r.is_err(), "must reject {e}, got {r:?}");
    }
}

// --- starved vs generous: the three-valued degradation contract --------------
//
// The hard-limit contract (`max_steps`): a checker whose step budget is
// starved must either agree with the generous checker's verdict or
// report `E0202` (resource exhausted). It must never flip a verdict —
// accept what the generous checker rejects, or reject for a *reason
// other than exhaustion* what the generous checker accepts.

/// `λ(x : {v : Int | facts}). (ann x {z : Int | goal})` — the
/// annotation forces a `proves` obligation through the lin theory.
fn lin_fact_program(facts: &[(LinCmp, i64, bool)], goal: (LinCmp, i64, bool)) -> Expr {
    let x = Symbol::fresh("svx");
    let v = Symbol::fresh("svv");
    let z = Symbol::fresh("svz");
    let fact_prop = facts.iter().fold(Prop::TT, |acc, &(cmp, k, flip)| {
        let atom = if flip {
            Prop::lin(Obj::int(k), cmp, Obj::var(v))
        } else {
            Prop::lin(Obj::var(v), cmp, Obj::int(k))
        };
        Prop::and(acc, atom)
    });
    let (cmp, k, against_x) = goal;
    let rhs = if against_x {
        Obj::var(x).add(&Obj::int(k))
    } else {
        Obj::int(k)
    };
    Expr::lam(
        vec![(x, Ty::refine(v, Ty::Int, fact_prop))],
        Expr::ann(
            Expr::Var(x),
            Ty::refine(z, Ty::Int, Prop::lin(Obj::var(z), cmp, rhs)),
        ),
    )
}

/// Same shape over the bitvector theory.
fn bv_fact_program(facts: &[(BvCmp, u64, bool)], goal: (BvCmp, u64, bool)) -> Expr {
    let x = Symbol::fresh("svbx");
    let v = Symbol::fresh("svbv");
    let z = Symbol::fresh("svbz");
    let fact_prop = facts.iter().fold(Prop::TT, |acc, &(cmp, k, masked)| {
        let lhs = if masked {
            Obj::var(v).bv_and(&Obj::bv(k))
        } else {
            Obj::var(v)
        };
        Prop::and(acc, Prop::bv(lhs, cmp, Obj::bv(k)))
    });
    let (cmp, k, against_x) = goal;
    let lhs = if against_x {
        Obj::var(z).bv_and(&Obj::var(x))
    } else {
        Obj::var(z)
    };
    Expr::lam(
        vec![(x, Ty::refine(v, Ty::BitVec, fact_prop))],
        Expr::ann(
            Expr::Var(x),
            Ty::refine(z, Ty::BitVec, Prop::bv(lhs, cmp, Obj::bv(k))),
        ),
    )
}

/// Same shape over the regex theory: facts and goal draw from a pool of
/// partially-overlapping patterns so some inclusions genuinely hold.
fn re_fact_program(facts: &[(usize, bool)], goal: usize) -> Expr {
    let pool: Vec<std::sync::Arc<rtr_solver::re::Regex>> = ["a*", "[ab]+", "a{2}", "b?a", "c.*"]
        .iter()
        .map(|p| std::sync::Arc::new(rtr_solver::re::Regex::parse(p).expect("pool parses")))
        .collect();
    let x = Symbol::fresh("svrx");
    let v = Symbol::fresh("svrv");
    let z = Symbol::fresh("svrz");
    let fact_prop = facts.iter().fold(Prop::TT, |acc, &(i, pos)| {
        let atom = Prop::re_match(&Obj::var(v), &Obj::re(pool[i % pool.len()].clone()));
        let atom = if pos {
            atom
        } else {
            atom.negate().expect("re atoms negate")
        };
        Prop::and(acc, atom)
    });
    let goal_prop = Prop::re_match(&Obj::var(z), &Obj::re(pool[goal % pool.len()].clone()));
    Expr::lam(
        vec![(x, Ty::refine(v, Ty::Str, fact_prop))],
        Expr::ann(Expr::Var(x), Ty::refine(z, Ty::Str, goal_prop)),
    )
}

fn arb_lin_cmp() -> impl Strategy<Value = LinCmp> {
    prop_oneof![
        Just(LinCmp::Lt),
        Just(LinCmp::Le),
        Just(LinCmp::Eq),
        Just(LinCmp::Ne)
    ]
}

fn arb_bv_cmp() -> impl Strategy<Value = BvCmp> {
    prop_oneof![Just(BvCmp::Eq), Just(BvCmp::Ule), Just(BvCmp::Ult)]
}

/// Programs whose typing obligations route through one of the three
/// theories, with random fact sets.
fn arb_governed_program() -> impl Strategy<Value = Expr> {
    let lin = (
        proptest::collection::vec((arb_lin_cmp(), -6i64..=6, any::<bool>()), 0..4),
        (arb_lin_cmp(), -6i64..=6, any::<bool>()),
    )
        .prop_map(|(facts, goal)| lin_fact_program(&facts, goal));
    let bv = (
        proptest::collection::vec((arb_bv_cmp(), 0u64..=0xff, any::<bool>()), 0..3),
        (arb_bv_cmp(), 0u64..=0xff, any::<bool>()),
    )
        .prop_map(|(facts, goal)| bv_fact_program(&facts, goal));
    let re = (
        proptest::collection::vec((0usize..5, any::<bool>()), 0..3),
        0usize..5,
    )
        .prop_map(|(facts, goal)| re_fact_program(&facts, goal));
    prop_oneof![lin, bv, re]
}

/// The hard step limit trips on a program the default budget accepts,
/// and the trip surfaces as `E0202`, not as a plain type error.
#[test]
fn one_step_budget_reports_exhausted() {
    let starved = Checker::with_config(CheckerConfig {
        max_steps: Some(1),
        ..CheckerConfig::default()
    });
    let d = starved
        .check_program(&guarded_access())
        .expect_err("one judgment step cannot check a lambda");
    assert_eq!(d.code, Code::ResourceExhausted, "{d:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Under any step starvation, the verdict is the generous verdict or
    /// `E0202` — never a flip in either direction.
    #[test]
    fn starved_budget_never_flips_a_verdict(
        e in arb_governed_program(),
        steps in 1u64..3_000,
    ) {
        let generous = Checker::default();
        let starved = Checker::with_config(CheckerConfig {
            max_steps: Some(steps),
            ..CheckerConfig::default()
        });
        let g = generous.check_program(&e);
        let s = starved.check_program(&e);
        match (&s, &g) {
            (Ok(_), Ok(_)) => {}
            (Err(d), _) if d.code == Code::ResourceExhausted => {}
            (Err(d), Err(gd)) => prop_assert_eq!(
                d.code, gd.code,
                "starved rejection changed its reason on {}", e
            ),
            (Ok(_), Err(gd)) => prop_assert!(
                false,
                "starved checker accepted what the generous one rejects ({}) on {}",
                gd.code, e
            ),
            (Err(d), Ok(_)) => prop_assert!(
                false,
                "starved checker rejected with {} (not E0202) what the generous one accepts on {}",
                d.code, e
            ),
        }
    }
}

#[test]
fn conservative_rejection_is_never_unsound() {
    // Crank every budget to the floor and fuzz a handful of accepted
    // programs: anything still accepted must evaluate without getting
    // stuck.
    let weak = Checker::with_config(CheckerConfig {
        logic_fuel: 8,
        case_split_budget: 1,
        fm: FmConfig {
            max_rows: 16,
            max_splits: 1,
            integer_tightening: true,
        },
        ..CheckerConfig::default()
    });
    let programs = vec![
        Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Int(2)]),
        guarded_access(),
        Expr::if_(
            Expr::prim_app(Prim::IsInt, vec![Expr::Int(3)]),
            Expr::Int(1),
            Expr::Int(0),
        ),
    ];
    for e in programs {
        if weak.check_program(&e).is_ok() {
            let v = rtr_core::interp::eval_program(&e, 100_000);
            assert!(
                !matches!(v, Err(rtr_core::interp::EvalError::Stuck(_))),
                "weak-budget acceptance must still be sound for {e}"
            );
        }
    }
}
