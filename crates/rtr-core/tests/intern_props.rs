//! Property tests for the hash-consing interner and the memoized
//! judgments: canonicalization (union flatten/dedup/sort, `tt`-refinement
//! collapse, connective flattening) must be semantics-preserving, and the
//! memoized `subtype` must agree with the structural reference
//! implementation (`memoize: false`) on arbitrary type pairs.

use proptest::prelude::*;

use rtr_core::check::Checker;
use rtr_core::config::CheckerConfig;
use rtr_core::env::Env;
use rtr_core::intern::{canon_prop, canon_ty, PropId, TyId};
use rtr_core::syntax::{LinCmp, Obj, Prop, Symbol, Ty};

const FUEL: u32 = 64;

fn memoized() -> Checker {
    Checker::default()
}

/// The reference checker: identical configuration except the memo tables
/// (and id-based shortcuts) are disabled — the seed's structural path.
fn structural() -> Checker {
    Checker::with_config(CheckerConfig {
        memoize: false,
        ..CheckerConfig::default()
    })
}

/// First-order types including refinements over Int (no functions: their
/// comparison allocates fresh names either way and is covered by the
/// deterministic suite).
fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        Just(Ty::Top),
        Just(Ty::Int),
        Just(Ty::True),
        Just(Ty::False),
        Just(Ty::Unit),
        Just(Ty::Str),
        Just(Ty::bot()),
        Just(Ty::bool_ty()),
        (-5i64..=5, any::<bool>()).prop_map(|(k, le)| {
            let x = Symbol::fresh("ip");
            let p = if le {
                Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(k))
            } else {
                Prop::lin(Obj::int(k), LinCmp::Le, Obj::var(x))
            };
            Ty::refine(x, Ty::Int, p)
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::pair(a, b)),
            inner.clone().prop_map(Ty::vec),
            // Raw unions (not via union_of) so canonicalization has
            // nesting and duplicates to chew on.
            proptest::collection::vec(inner, 0..3).prop_map(Ty::Union),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The memoized subtype agrees with the structural reference.
    #[test]
    fn memoized_subtype_agrees_with_structural(t in arb_ty(), s in arb_ty()) {
        let env = Env::new();
        let memo = memoized();
        let plain = structural();
        prop_assert_eq!(
            memo.subtype(&env, &t, &s, FUEL),
            plain.subtype(&env, &t, &s, FUEL),
            "memoized and structural subtype disagree on {} <: {}", t, s
        );
    }

    /// Canonicalization is semantics-preserving: the canonical form is
    /// mutually subtype-equal with the original (structural reference).
    #[test]
    fn canonical_form_is_equivalent(t in arb_ty()) {
        let env = Env::new();
        let plain = structural();
        let c = canon_ty(&t);
        prop_assert!(plain.subtype(&env, &t, &c, FUEL), "{} </: canon {}", t, c);
        prop_assert!(plain.subtype(&env, &c, &t, FUEL), "canon {} </: {}", c, t);
    }

    /// Canonicalizing both sides never changes the verdict.
    #[test]
    fn canonicalization_preserves_verdicts(t in arb_ty(), s in arb_ty()) {
        let env = Env::new();
        let plain = structural();
        let (ct, cs) = (canon_ty(&t), canon_ty(&s));
        prop_assert_eq!(
            plain.subtype(&env, &t, &s, FUEL),
            plain.subtype(&env, &ct, &cs, FUEL),
            "canonicalization changed {} <: {}", t, s
        );
    }

    /// Union member order and duplication never split ids.
    #[test]
    fn union_permutations_intern_identically(ts in proptest::collection::vec(arb_ty(), 0..4)) {
        let forward = Ty::Union(ts.clone());
        let mut rev = ts.clone();
        rev.reverse();
        let mut doubled = ts.clone();
        doubled.extend(ts.iter().cloned());
        prop_assert_eq!(TyId::of(&forward), TyId::of(&Ty::Union(rev)));
        prop_assert_eq!(TyId::of(&forward), TyId::of(&Ty::Union(doubled)));
        // And `union_of` (the smart constructor) lands on the same id.
        prop_assert_eq!(TyId::of(&forward), TyId::of(&Ty::union_of(ts)));
    }

    /// Proposition canonicalization keeps `proves` verdicts: a canonical
    /// conjunction is provable iff the original is, under an environment
    /// that assumes a few linear facts.
    #[test]
    fn prop_canonicalization_preserves_proving(k in -4i64..=4, j in -4i64..=4) {
        let c = memoized();
        let plain = structural();
        let mut env = Env::new();
        let x = Symbol::fresh("pp");
        c.bind(&mut env, x, &Ty::Int, FUEL);
        c.assume(&mut env, &Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(k.min(j))), FUEL);
        let goal = Prop::And(
            Box::new(Prop::And(
                Box::new(Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(k))),
                Box::new(Prop::TT),
            )),
            Box::new(Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(j))),
        );
        let canon = canon_prop(&goal);
        prop_assert_eq!(PropId::of(&goal), PropId::of(&canon));
        prop_assert_eq!(
            plain.proves(&env, &goal, FUEL),
            plain.proves(&env, &canon, FUEL)
        );
        prop_assert_eq!(
            plain.proves(&env, &goal, FUEL),
            c.proves(&env, &goal, FUEL)
        );
    }

    /// The id-native `update±` (memoized, interner-constructor-based)
    /// computes exactly the tree-based reference metafunction, up to
    /// canonicalization, on random types, field paths and polarities.
    #[test]
    fn id_native_update_matches_tree_reference(
        t in arb_ty(),
        s in arb_ty(),
        fields in proptest::collection::vec(
            prop_oneof![
                Just(rtr_core::syntax::Field::Fst),
                Just(rtr_core::syntax::Field::Snd),
                Just(rtr_core::syntax::Field::Len),
            ],
            0..3,
        ),
        positive in any::<bool>(),
    ) {
        let env = Env::new();
        let c = memoized();
        let tree = c.update_ty(&env, &t, &fields, &s, positive, FUEL);
        let id = c.update_ty_id(
            &env,
            TyId::of(&t),
            &fields,
            TyId::of(&s),
            positive,
            FUEL,
        );
        prop_assert_eq!(
            TyId::of(&tree), id,
            "update±({}, {:?}, {}) diverged: tree {} vs id {}",
            t, fields, s, tree, id.get()
        );
        // The structural-reference checker must land on the same type
        // too (its update runs entirely on trees, uncached).
        let plain = structural();
        let reference = plain.update_ty(&env, &t, &fields, &s, positive, FUEL);
        prop_assert_eq!(
            TyId::of(&reference), id,
            "memoized and structural update± disagree on ({}, {:?}, {})",
            t, fields, s
        );
    }
}
