//! Local type inference for polymorphic applications (§4.3).
//!
//! Typed Racket instantiates polymorphic functions with Pierce & Turner's
//! local type inference; the paper extends the constraint generation
//! judgment `Γ ⊢ S <: T ⇒ C` with the rules CG-Ref / CG-RefLower /
//! CG-RefUpper that recurse through refinement types (carrying the full
//! proposition environment). This module implements the bound-collection
//! flavour of that algorithm: argument types flow into type-variable
//! positions structurally, refinements are peeled per the CG rules, and
//! each variable is solved to the join of its lower bounds (minimal
//! instantiation). Validation happens afterwards via ordinary subtyping of
//! each argument against the instantiated domain, so an unsound guess can
//! only cause rejection, never unsoundness.

use std::collections::{HashMap, HashSet};

use crate::check::Checker;
use crate::diag::Diagnostic;
use crate::syntax::{FunTy, PolyTy, Symbol, Ty};

impl Checker {
    /// Instantiates `poly` against the synthesized argument types,
    /// returning the monomorphic function type.
    pub(crate) fn instantiate_poly(
        &self,
        poly: &PolyTy,
        arg_tys: &[Ty],
        context: &dyn Fn() -> String,
    ) -> Result<FunTy, Box<Diagnostic>> {
        let Ty::Fun(fun) = &poly.body else {
            return Err(Box::new(Diagnostic::cannot_infer(
                context(),
                format!("polymorphic type {} is not a function", poly.body),
            )));
        };
        if fun.params.len() != arg_tys.len() {
            return Err(Box::new(Diagnostic::arity(
                context(),
                fun.params.len(),
                arg_tys.len(),
            )));
        }
        let vars: HashSet<Symbol> = poly.vars.iter().copied().collect();
        let mut bounds: HashMap<Symbol, Vec<Ty>> = HashMap::new();
        for ((_, dom), arg) in fun.params.iter().zip(arg_tys) {
            collect(dom, arg, &vars, &mut bounds);
        }
        let mut solution = HashMap::new();
        for v in &poly.vars {
            let tys = bounds.remove(v).unwrap_or_default();
            // Join of lower bounds; unconstrained variables solve to ⊥
            // (the minimal solution of local type inference).
            solution.insert(*v, Ty::union_of(tys));
        }
        let body = poly.body.subst_tvars(&solution);
        match body {
            Ty::Fun(f) => Ok(*f),
            other => Err(Box::new(Diagnostic::cannot_infer(
                context(),
                format!("instantiation produced non-function {other}"),
            ))),
        }
    }
}

/// Structural bound collection (`Γ ⊢ S <: T ⇒ C` in spirit).
fn collect(dom: &Ty, arg: &Ty, vars: &HashSet<Symbol>, bounds: &mut HashMap<Symbol, Vec<Ty>>) {
    match (dom, arg) {
        (Ty::TVar(a), t) if vars.contains(a) => {
            // Refinements on the argument stay: `A := {x:Int|…}` is a fine
            // instantiation and the validation pass checks it.
            bounds.entry(*a).or_default().push(t.clone());
        }
        // CG-RefLower: {x:τ|ψ} <: σ recurses on τ <: σ.
        (Ty::Refine(r), t) => collect(&r.base, t, vars, bounds),
        // CG-RefUpper: τ <: {x:σ|ψ} recurses on τ <: σ.
        (d, Ty::Refine(r)) => collect(d, &r.base, vars, bounds),
        (Ty::Vec(d), Ty::Vec(t)) => collect(d, t, vars, bounds),
        (Ty::Pair(d1, d2), Ty::Pair(t1, t2)) => {
            collect(d1, t1, vars, bounds);
            collect(d2, t2, vars, bounds);
        }
        (Ty::Union(ds), t) => {
            for d in ds {
                collect(d, t, vars, bounds);
            }
        }
        (d, Ty::Union(ts)) => {
            for t in ts {
                collect(d, t, vars, bounds);
            }
        }
        (Ty::Fun(f1), Ty::Fun(f2)) if f1.params.len() == f2.params.len() => {
            for ((_, d), (_, t)) in f1.params.iter().zip(&f2.params) {
                // Contravariant: the argument function's domain is an
                // *upper* bound; we still record it as a candidate and let
                // validation sort it out.
                collect(d, t, vars, bounds);
            }
            collect(&f1.range.ty, &f2.range.ty, vars, bounds);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prims::delta;
    use crate::syntax::{Prim, TyResult};

    fn checker() -> Checker {
        Checker::default()
    }

    fn poly_of(p: Prim) -> PolyTy {
        match delta(p) {
            Ty::Poly(p) => *p,
            other => panic!("expected poly, got {other}"),
        }
    }

    #[test]
    fn vec_ref_instantiation() {
        let c = checker();
        let f = c
            .instantiate_poly(
                &poly_of(Prim::VecRef),
                &[Ty::vec(Ty::Int), Ty::Int],
                &|| "(vec-ref v i)".to_owned(),
            )
            .unwrap();
        assert_eq!(f.params[0].1, Ty::vec(Ty::Int));
        assert_eq!(f.range.ty, Ty::Int);
    }

    #[test]
    fn refined_vector_argument_peels() {
        // arg : {v:(Vecof Bool) | len v = 2}  ⇒  A := Bool.
        let c = checker();
        let v = Symbol::intern("vv");
        let arg = Ty::refine(
            v,
            Ty::vec(Ty::bool_ty()),
            crate::syntax::Prop::lin(
                crate::syntax::Obj::var(v).len(),
                crate::syntax::LinCmp::Eq,
                crate::syntax::Obj::int(2),
            ),
        );
        let f = c
            .instantiate_poly(&poly_of(Prim::Len), &[arg], &|| "(len v)".to_owned())
            .unwrap();
        assert_eq!(f.params[0].1, Ty::vec(Ty::bool_ty()));
    }

    #[test]
    fn unconstrained_variables_solve_to_bottom() {
        let c = checker();
        let a = Symbol::intern("A0");
        let x = Symbol::intern("x0");
        // ∀A. (x:Int) → A applied to Int: A unconstrained.
        let poly = PolyTy {
            vars: vec![a],
            body: Ty::fun(vec![(x, Ty::Int)], TyResult::of_type(Ty::TVar(a))),
        };
        let f = c
            .instantiate_poly(&poly, &[Ty::Int], &|| "ctx".to_owned())
            .unwrap();
        assert!(f.range.ty.is_bot());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        use crate::diag::{Code, Payload};
        let c = checker();
        let err = c
            .instantiate_poly(&poly_of(Prim::VecRef), &[Ty::vec(Ty::Int)], &|| {
                "(vec-ref v)".to_owned()
            })
            .unwrap_err();
        assert_eq!(err.code, Code::ArityMismatch);
        assert!(matches!(
            err.payload,
            Payload::Arity {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn multiple_lower_bounds_join() {
        let c = checker();
        let a = Symbol::intern("A1");
        let x = Symbol::intern("x1");
        let y = Symbol::intern("y1");
        // ∀A. (x:A, y:A) → A applied to (True, False) ⇒ A := (U True False).
        let poly = PolyTy {
            vars: vec![a],
            body: Ty::fun(
                vec![(x, Ty::TVar(a)), (y, Ty::TVar(a))],
                TyResult::of_type(Ty::TVar(a)),
            ),
        };
        let f = c
            .instantiate_poly(&poly, &[Ty::True, Ty::False], &|| "ctx".to_owned())
            .unwrap();
        assert_eq!(f.range.ty, Ty::bool_ty());
    }
}
