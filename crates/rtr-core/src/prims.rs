//! The primitive type table Δ (Fig. 3), enriched per §3.4 and §5.
//!
//! Comparison primitives return theory propositions in their then/else
//! positions (e.g. `(≤ x y)` is `(B ; x ≤ y | y < x ; ∅)`), arithmetic
//! primitives return linear symbolic objects (`(+ x y)` has object
//! `x + y`), `len` returns the `len` field object, and the safe vector
//! operations demand refinement-typed indices. These enrichments are what
//! the paper describes as modifying "the type of 36 functions" in Typed
//! Racket's base environment.

use crate::syntax::{BvCmp, LinCmp, Obj, Prim, Prop, Symbol, Ty, TyResult};

fn x() -> Symbol {
    Symbol::intern("x")
}
fn y() -> Symbol {
    Symbol::intern("y")
}
fn v() -> Symbol {
    Symbol::intern("v")
}
fn i() -> Symbol {
    Symbol::intern("i")
}
fn n() -> Symbol {
    Symbol::intern("n")
}
fn a() -> Symbol {
    Symbol::intern("A")
}

/// A unary type predicate: `x:⊤ → (B ; x ∈ τ | x ∉ τ ; ∅)`.
fn predicate(test_ty: Ty) -> Ty {
    Ty::fun(
        vec![(x(), Ty::Top)],
        TyResult::new(
            Ty::bool_ty(),
            Prop::is(Obj::var(x()), test_ty.clone()),
            Prop::is_not(Obj::var(x()), test_ty),
            Obj::Null,
        ),
    )
}

/// A binary integer comparison with theory then/else propositions.
fn comparison(then_p: Prop, else_p: Prop) -> Ty {
    Ty::fun(
        vec![(x(), Ty::Int), (y(), Ty::Int)],
        TyResult::new(Ty::bool_ty(), then_p, else_p, Obj::Null),
    )
}

/// Integer arithmetic returning a linear object.
fn arith(params: Vec<(Symbol, Ty)>, obj: Obj) -> Ty {
    Ty::fun(params, TyResult::truthy(Ty::Int, obj))
}

/// A bitvector binary operator returning a bitvector object.
fn bv_binop(obj: Obj) -> Ty {
    Ty::fun(
        vec![(x(), Ty::BitVec), (y(), Ty::BitVec)],
        TyResult::truthy(Ty::BitVec, obj),
    )
}

/// A bitvector comparison with theory then/else propositions.
fn bv_comparison(cmp: BvCmp) -> Ty {
    let atom = Prop::bv(Obj::var(x()), cmp, Obj::var(y()));
    let neg = atom.negate().expect("bv atoms are negatable");
    Ty::fun(
        vec![(x(), Ty::BitVec), (y(), Ty::BitVec)],
        TyResult::new(Ty::bool_ty(), atom, neg, Obj::Null),
    )
}

/// `{i:Int | 0 ≤ i ∧ i < (len v)}` — the provably-in-bounds index type of
/// §2.1's `safe-vec-ref`.
pub fn safe_index_ty(vec_var: Symbol) -> Ty {
    Ty::refine(
        i(),
        Ty::Int,
        Prop::and(
            Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i())),
            Prop::lin(Obj::var(i()), LinCmp::Lt, Obj::var(vec_var).len()),
        ),
    )
}

/// `Δ(p)` — the type of primitive `p`.
///
/// The table is built once and cached: `delta` is consulted at every
/// primitive reference during checking, and rebuilding the type trees
/// (with their symbol-interner round trips) on each call showed up in the
/// checker profiles. Cloning the cached tree is much cheaper.
pub fn delta(p: Prim) -> Ty {
    delta_ref(p).clone()
}

/// Borrowed view of the Δ-table entry. The application rule peels and
/// instantiates operator types by reference, so most primitive
/// applications never clone the (large, refinement-bearing) tree at all.
pub fn delta_ref(p: Prim) -> &'static Ty {
    use std::sync::OnceLock;
    static TABLE: OnceLock<std::collections::HashMap<Prim, Ty>> = OnceLock::new();
    TABLE
        .get_or_init(|| Prim::all().iter().map(|&p| (p, build_delta(p))).collect())
        .get(&p)
        .expect("Prim::all covers every primitive")
}

fn build_delta(p: Prim) -> Ty {
    match p {
        // -- predicates (Fig. 3) ---------------------------------------------
        Prim::IsInt => predicate(Ty::Int),
        Prim::IsBool => predicate(Ty::bool_ty()),
        Prim::IsPair => predicate(Ty::pair(Ty::Top, Ty::Top)),
        Prim::IsVec => predicate(Ty::vec(Ty::Top)),
        Prim::IsBv => predicate(Ty::BitVec),
        Prim::IsProc => Ty::fun(vec![(x(), Ty::Top)], TyResult::of_type(Ty::bool_ty())),
        Prim::Not => Ty::fun(
            vec![(x(), Ty::Top)],
            TyResult::new(
                Ty::bool_ty(),
                Prop::is(Obj::var(x()), Ty::False),
                Prop::is_not(Obj::var(x()), Ty::False),
                Obj::Null,
            ),
        ),
        Prim::IsZero => Ty::fun(
            vec![(x(), Ty::Int)],
            TyResult::new(
                Ty::bool_ty(),
                Prop::lin(Obj::var(x()), LinCmp::Eq, Obj::int(0)),
                Prop::lin(Obj::var(x()), LinCmp::Ne, Obj::int(0)),
                Obj::Null,
            ),
        ),
        Prim::IsEven | Prim::IsOdd => {
            Ty::fun(vec![(x(), Ty::Int)], TyResult::of_type(Ty::bool_ty()))
        }
        // -- linear arithmetic (§3.4) ------------------------------------------
        Prim::Add1 => arith(vec![(x(), Ty::Int)], Obj::var(x()).add(&Obj::int(1))),
        Prim::Sub1 => arith(vec![(x(), Ty::Int)], Obj::var(x()).sub(&Obj::int(1))),
        Prim::Plus => arith(
            vec![(x(), Ty::Int), (y(), Ty::Int)],
            Obj::var(x()).add(&Obj::var(y())),
        ),
        Prim::Minus => arith(
            vec![(x(), Ty::Int), (y(), Ty::Int)],
            Obj::var(x()).sub(&Obj::var(y())),
        ),
        // The product object is computed by the checker when one side is a
        // literal (`n · o` is linear; `x · y` is not).
        Prim::Times => arith(vec![(x(), Ty::Int), (y(), Ty::Int)], Obj::Null),
        // quotient/remainder are deliberately un-enriched (no symbolic
        // object, no propositions): the "unimplemented feature" of §5.1.
        Prim::Quotient | Prim::Remainder => arith(vec![(x(), Ty::Int), (y(), Ty::Int)], Obj::Null),
        Prim::Lt => comparison(
            Prop::lin(Obj::var(x()), LinCmp::Lt, Obj::var(y())),
            Prop::lin(Obj::var(y()), LinCmp::Le, Obj::var(x())),
        ),
        Prim::Le => comparison(
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::var(y())),
            Prop::lin(Obj::var(y()), LinCmp::Lt, Obj::var(x())),
        ),
        Prim::Gt => comparison(
            Prop::lin(Obj::var(y()), LinCmp::Lt, Obj::var(x())),
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::var(y())),
        ),
        Prim::Ge => comparison(
            Prop::lin(Obj::var(y()), LinCmp::Le, Obj::var(x())),
            Prop::lin(Obj::var(x()), LinCmp::Lt, Obj::var(y())),
        ),
        Prim::NumEq => comparison(
            Prop::lin(Obj::var(x()), LinCmp::Eq, Obj::var(y())),
            Prop::lin(Obj::var(x()), LinCmp::Ne, Obj::var(y())),
        ),
        // `equal?` is enriched by the checker when both arguments are
        // integers; its base type is unrestricted.
        Prim::Equal => Ty::fun(
            vec![(x(), Ty::Top), (y(), Ty::Top)],
            TyResult::of_type(Ty::bool_ty()),
        ),
        // -- vectors (§5) -----------------------------------------------------
        Prim::Len => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![(v(), Ty::vec(Ty::TVar(a())))],
                TyResult::truthy(Ty::Int, Obj::var(v()).len()),
            ),
        ),
        Prim::VecRef => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![(v(), Ty::vec(Ty::TVar(a()))), (i(), Ty::Int)],
                TyResult::of_type(Ty::TVar(a())),
            ),
        ),
        Prim::UnsafeVecRef | Prim::SafeVecRef => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![(v(), Ty::vec(Ty::TVar(a()))), (i(), safe_index_ty(v()))],
                TyResult::of_type(Ty::TVar(a())),
            ),
        ),
        Prim::VecSet => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![
                    (v(), Ty::vec(Ty::TVar(a()))),
                    (i(), Ty::Int),
                    (x(), Ty::TVar(a())),
                ],
                TyResult::truthy(Ty::Unit, Obj::Null),
            ),
        ),
        Prim::UnsafeVecSet | Prim::SafeVecSet => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![
                    (v(), Ty::vec(Ty::TVar(a()))),
                    (i(), safe_index_ty(v())),
                    (x(), Ty::TVar(a())),
                ],
                TyResult::truthy(Ty::Unit, Obj::Null),
            ),
        ),
        Prim::MakeVec => Ty::poly(
            vec![a()],
            Ty::fun(
                vec![
                    (
                        n(),
                        Ty::refine(
                            i(),
                            Ty::Int,
                            Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(i())),
                        ),
                    ),
                    (x(), Ty::TVar(a())),
                ],
                TyResult::truthy(
                    Ty::refine(
                        v(),
                        Ty::vec(Ty::TVar(a())),
                        Prop::lin(Obj::var(v()).len(), LinCmp::Eq, Obj::var(n())),
                    ),
                    Obj::Null,
                ),
            ),
        ),
        // -- strings and regexes (theory RE, §7 extension) ------------------------
        Prim::IsStr => predicate(Ty::Str),
        // string-length emits the `len` field object, exactly like the
        // vector `len`, so string lengths participate in linear reasoning.
        Prim::StrLen => Ty::fun(
            vec![(x(), Ty::Str)],
            TyResult::truthy(Ty::Int, Obj::var(x()).len()),
        ),
        Prim::StrEq => Ty::fun(
            vec![(x(), Ty::Str), (y(), Ty::Str)],
            TyResult::of_type(Ty::bool_ty()),
        ),
        // The membership propositions depend on the *literal* regex
        // argument, which the Δ-table template cannot name; the checker
        // enriches applications whose regex argument resolves to a literal
        // (the same mechanism that computes `*`'s product object).
        Prim::StrMatch => Ty::fun(
            vec![(x(), Ty::Regex), (y(), Ty::Str)],
            TyResult::of_type(Ty::bool_ty()),
        ),
        // -- bitvectors (§2.2) --------------------------------------------------
        Prim::BvAnd => bv_binop(Obj::var(x()).bv_and(&Obj::var(y()))),
        Prim::BvOr => bv_binop(Obj::var(x()).bv_or(&Obj::var(y()))),
        Prim::BvXor => bv_binop(Obj::var(x()).bv_xor(&Obj::var(y()))),
        Prim::BvAdd => bv_binop(Obj::var(x()).bv_add(&Obj::var(y()))),
        Prim::BvSub => bv_binop(Obj::var(x()).bv_sub(&Obj::var(y()))),
        Prim::BvMul => bv_binop(Obj::var(x()).bv_mul(&Obj::var(y()))),
        Prim::BvNot => Ty::fun(
            vec![(x(), Ty::BitVec)],
            TyResult::truthy(Ty::BitVec, Obj::var(x()).bv_not()),
        ),
        Prim::BvEq => bv_comparison(BvCmp::Eq),
        Prim::BvUle => bv_comparison(BvCmp::Ule),
        Prim::BvUlt => bv_comparison(BvCmp::Ult),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_prim_has_a_function_type() {
        for &p in Prim::all() {
            let t = delta(p);
            let body = match &t {
                Ty::Poly(poly) => poly.body.clone(),
                other => other.clone(),
            };
            assert!(
                matches!(body, Ty::Fun(_)),
                "Δ({p}) must be a function type, got {t}"
            );
        }
    }

    #[test]
    fn int_predicate_matches_figure_3() {
        // Δ(int?) = x:⊤ → (B ; x ∈ I | x ∉ I ; ∅)
        let Ty::Fun(f) = delta(Prim::IsInt) else {
            panic!("not a function")
        };
        assert_eq!(f.params, vec![(x(), Ty::Top)]);
        assert_eq!(f.range.ty, Ty::bool_ty());
        assert_eq!(f.range.then_p, Prop::is(Obj::var(x()), Ty::Int));
        assert_eq!(f.range.else_p, Prop::is_not(Obj::var(x()), Ty::Int));
        assert_eq!(f.range.obj, Obj::Null);
    }

    #[test]
    fn add1_matches_enriched_delta() {
        // Enriched Δ(add1) = x:I → (I ; tt | ff ; x + 1)
        let Ty::Fun(f) = delta(Prim::Add1) else {
            panic!("not a function")
        };
        assert_eq!(f.range.ty, Ty::Int);
        assert_eq!(f.range.obj, Obj::var(x()).add(&Obj::int(1)));
        assert_eq!(f.range.else_p, Prop::FF);
    }

    #[test]
    fn le_emits_theory_propositions() {
        let Ty::Fun(f) = delta(Prim::Le) else {
            panic!("not a function")
        };
        assert_eq!(
            f.range.then_p,
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::var(y()))
        );
        assert_eq!(
            f.range.else_p,
            Prop::lin(Obj::var(y()), LinCmp::Lt, Obj::var(x()))
        );
    }

    #[test]
    fn safe_vec_ref_demands_proof() {
        let Ty::Poly(p) = delta(Prim::SafeVecRef) else {
            panic!("not poly")
        };
        let Ty::Fun(f) = &p.body else {
            panic!("not a function")
        };
        assert!(
            matches!(f.params[1].1, Ty::Refine(_)),
            "index must be refined"
        );
        // And the plain vec-ref does not.
        let Ty::Poly(p) = delta(Prim::VecRef) else {
            panic!("not poly")
        };
        let Ty::Fun(f) = &p.body else {
            panic!("not a function")
        };
        assert_eq!(f.params[1].1, Ty::Int);
    }

    #[test]
    fn len_returns_the_len_object() {
        let Ty::Poly(p) = delta(Prim::Len) else {
            panic!("not poly")
        };
        let Ty::Fun(f) = &p.body else {
            panic!("not a function")
        };
        assert_eq!(f.range.obj, Obj::var(v()).len());
    }

    #[test]
    fn not_matches_figure_3() {
        let Ty::Fun(f) = delta(Prim::Not) else {
            panic!("not a function")
        };
        assert_eq!(f.range.then_p, Prop::is(Obj::var(x()), Ty::False));
        assert_eq!(f.range.else_p, Prop::is_not(Obj::var(x()), Ty::False));
    }
}
