//! Checker configuration: theory switches, solver budgets, ablation
//! toggles.

use rtr_solver::lin::FmConfig;
use rtr_solver::re::ReConfig;
use rtr_solver::sat::SolverConfig;

/// Configuration for [`crate::check::Checker`].
///
/// The default is full λ_RTR: occurrence typing with the linear-arithmetic
/// and bitvector theories enabled and the §4.1 representative-objects
/// optimization on. [`CheckerConfig::lambda_tr`] reproduces the paper's
/// implicit baseline — plain occurrence typing (λ_TR / stock Typed
/// Racket) with no theory reasoning.
#[derive(Clone, Debug)]
pub struct CheckerConfig {
    /// Enable solver-backed theories (linear arithmetic, bitvectors).
    /// Off = the λ_TR baseline: comparison primitives return plain
    /// booleans, integer literals have no symbolic object.
    pub theories: bool,
    /// Apply aliases eagerly, storing facts about a single representative
    /// member of each alias class (§4.1). When disabled, aliases are
    /// recorded as theory-level equalities instead and every proof goes
    /// through the solver — the ablation benchmark measures the cost.
    pub representative_objects: bool,
    /// Maintain the hybrid environment of §4.1: type atoms learned from
    /// tests refine the stored per-variable types eagerly via `update±`.
    /// When disabled (the formal model's pure-proposition environment),
    /// learned atoms are merely *recorded* and replayed through `update±`
    /// at every query — same verdicts, paid per lookup instead of once
    /// per assumption; the ablation benchmark measures the gap.
    pub hybrid_env: bool,
    /// Memoize the `subtype` / `proves` / `is_empty_ty` /
    /// `env_inconsistent` judgments on interned ids keyed by the
    /// environment generation (see [`crate::intern`]). Disable to get the
    /// reference structural implementation — the ablation the property
    /// tests compare against. Note: deferred disjunctions are *stored*
    /// interned (canonicalized) in both modes — that is the environment's
    /// representation, not a memoization — so the ablation isolates the
    /// memo tables and id shortcuts, not ∨-canonicalization (whose
    /// semantics the `intern` unit tests cover directly).
    pub memoize: bool,
    /// Cache and solve theory queries incrementally: memoize
    /// linear/bitvector/string entailment and consistency verdicts on
    /// canonicalized (sorted, deduplicated, de-Bruijn-renamed) constraint
    /// fingerprints, reuse Fourier–Motzkin elimination traces across
    /// snapshot-extended environments, and keep one bitvector solving
    /// session (shared bit-blast encodings + learnt clauses) per checker.
    /// Disable to run every solver query one-shot from scratch — the
    /// reference behaviour the equivalence tests compare against.
    /// Canonicalization preserves the solved constraint system up to
    /// variable renaming, so cached verdicts transfer soundly.
    pub solver_cache: bool,
    /// Schedule disjunction case splits lazily: propagate unit-collapsed
    /// clauses first, then split clauses whose literals share variables
    /// (or a solver theory) with the goal, and only fall back to the
    /// remaining clauses when the relevant ones fail to decide the
    /// query. Same verdicts as eager in-order splitting — every clause
    /// is still considered, only the order changes — but goal-irrelevant
    /// disjunctions stop multiplying the proof search. Disable to get
    /// the reference in-order behaviour the property tests compare
    /// against.
    pub lazy_splits: bool,
    /// Maximum depth of disjunction case splits during proving.
    pub case_split_budget: u32,
    /// Recursion fuel for the mutually recursive subtype/proof judgments.
    pub logic_fuel: u32,
    /// Fourier–Motzkin budget.
    pub fm: FmConfig,
    /// SAT budget for bitvector queries.
    pub sat: SolverConfig,
    /// DFA state budget for regex-theory queries.
    pub re: ReConfig,
    /// Bit width used by the bitvector theory adapter. 16 bits makes the
    /// paper's `Byte = {b:BV | 0 ≤ b ≤ #xff}` refinement non-trivial.
    pub bv_width: u32,
    /// Resource governance: cap on judgment steps per checked item
    /// (`None` = unlimited, the default). On exhaustion the item
    /// degrades to an `E0202` diagnostic (see [`crate::budget`]).
    pub max_steps: Option<u64>,
    /// Resource governance: wall-clock budget per check call in
    /// milliseconds (`None` = no deadline, the default). The deadline
    /// spans all items of one `check_module` call and is threaded into
    /// the theory-solver loops.
    pub timeout_ms: Option<u64>,
    /// Resource governance: maximum typing-judgment recursion depth.
    /// Programs nesting deeper degrade to an `E0202` diagnostic instead
    /// of overflowing the checker's (big) stack. The default comfortably
    /// covers the 256 MiB big-stack worker.
    pub max_depth: u32,
    /// Seeded fault injection (`chaos` Cargo feature): `None` disables
    /// injection even when compiled in.
    #[cfg(feature = "chaos")]
    pub chaos: Option<crate::budget::ChaosConfig>,
}

/// Default `max_depth`: ~2 KiB of stack per judgment frame × 50k frames
/// stays far below the 256 MiB big-stack worker while exceeding any
/// program a human (or macro expander) plausibly writes.
pub const DEFAULT_MAX_DEPTH: u32 = 50_000;

impl Default for CheckerConfig {
    fn default() -> CheckerConfig {
        CheckerConfig {
            theories: true,
            representative_objects: true,
            hybrid_env: true,
            memoize: true,
            solver_cache: true,
            lazy_splits: true,
            case_split_budget: 6,
            logic_fuel: 128,
            fm: FmConfig::default(),
            sat: SolverConfig::default(),
            re: ReConfig::default(),
            bv_width: 16,
            max_steps: None,
            timeout_ms: None,
            max_depth: DEFAULT_MAX_DEPTH,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

impl CheckerConfig {
    /// Full λ_RTR (the paper's system).
    pub fn rtr() -> CheckerConfig {
        CheckerConfig::default()
    }

    /// The λ_TR baseline: occurrence typing without theories, i.e. what
    /// stock Typed Racket proves.
    pub fn lambda_tr() -> CheckerConfig {
        CheckerConfig {
            theories: false,
            ..CheckerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        assert!(CheckerConfig::rtr().theories);
        assert!(!CheckerConfig::lambda_tr().theories);
        assert!(CheckerConfig::default().representative_objects);
    }
}
