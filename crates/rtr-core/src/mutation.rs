//! The mutation pre-pass (§4.2).
//!
//! Before type checking, a syntactic pass collects every variable that may
//! be mutated (`set!` targets). The checker then refuses to assign those
//! variables symbolic objects, so runtime tests on them produce no logical
//! information — exactly the conservative treatment that caught the
//! `math` library's mutable `cache-size` bug in the paper's case study.

use std::collections::HashSet;

use crate::syntax::{Expr, Symbol};

/// Collects every variable that appears as a `set!` target anywhere in
/// `e`. Shadowing is ignored (conservatively: a name mutated anywhere is
/// treated as mutable everywhere).
pub fn mutated_vars(e: &Expr) -> HashSet<Symbol> {
    let mut out = HashSet::new();
    collect(e, &mut out);
    out
}

fn collect(e: &Expr, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Set(x, rhs) => {
            out.insert(*x);
            collect(rhs, out);
        }
        Expr::Var(_)
        | Expr::Int(_)
        | Expr::Bool(_)
        | Expr::BvLit(_)
        | Expr::Str(_)
        | Expr::ReLit(_)
        | Expr::Prim(_)
        | Expr::Error(_) => {}
        Expr::Lam(l) => collect(&l.body, out),
        Expr::App(f, args) => {
            collect(f, out);
            args.iter().for_each(|a| collect(a, out));
        }
        Expr::If(a, b, c) => {
            collect(a, out);
            collect(b, out);
            collect(c, out);
        }
        Expr::Let(_, a, b) | Expr::Cons(a, b) => {
            collect(a, out);
            collect(b, out);
        }
        Expr::LetRec(_, _, l, b) => {
            collect(&l.body, out);
            collect(b, out);
        }
        Expr::Fst(a) | Expr::Snd(a) | Expr::Ann(a, _) => collect(a, out),
        Expr::VecLit(es) | Expr::Begin(es) => es.iter().for_each(|e| collect(e, out)),
        Expr::Spanned(_, inner) => collect(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Prim, Ty};

    #[test]
    fn finds_nested_mutation() {
        let cache = Symbol::intern("cache");
        let e = Expr::let_(
            cache,
            Expr::Int(10),
            Expr::if_(
                Expr::prim_app(Prim::IsZero, vec![Expr::Var(cache)]),
                Expr::Set(cache, Box::new(Expr::Int(5))),
                Expr::lam(
                    vec![(Symbol::intern("u"), Ty::Top)],
                    Expr::Set(cache, Box::new(Expr::Int(7))),
                ),
            ),
        );
        let m = mutated_vars(&e);
        assert!(m.contains(&cache));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn pure_programs_have_no_mutables() {
        let e = Expr::prim_app(Prim::Plus, vec![Expr::Int(1), Expr::Int(2)]);
        assert!(mutated_vars(&e).is_empty());
    }
}
