//! Subtyping for objects, types and type-results (Fig. 5).
//!
//! The relation is algorithmic: syntax-directed with a fuel bound (the
//! declarative system's S-Refl/S-Top are bottom cases, unions expand, and
//! refinement subtyping defers to the proof system via S-Refine1/2, making
//! subtyping and logical proving mutually recursive exactly as in the
//! paper).

use crate::check::Checker;
use crate::env::Env;
use crate::intern::TyId;
use crate::syntax::{Obj, Prop, Symbol, Ty, TyResult};

impl Checker {
    /// `Γ ⊢ τ₁ <: τ₂` (Fig. 5), memoized.
    ///
    /// The judgment is keyed `(generation, τ₁, τ₂)` on interned ids (two
    /// environments with equal generations are identical, see
    /// [`Env::generation`]); entries are fuel-aware per the internal
    /// cache module's rules. Queries whose canonical forms coincide
    /// (e.g. permuted unions) short-circuit to `true` before any fresh
    /// names are generated — fresh-symbol allocation happens only on the
    /// cache-miss path, inside the structural rules.
    pub fn subtype(&self, env: &Env, t1: &Ty, t2: &Ty, fuel: u32) -> bool {
        if !self.config.memoize {
            return self.subtype_structural(env, t1, t2, fuel);
        }
        if fuel == 0 {
            return false;
        }
        if t1 == t2 {
            return true;
        }
        let a = TyId::of(t1);
        let b = TyId::of(t2);
        self.subtype_ids_memo_with(env, a, b, fuel, Some((t1, t2)))
    }

    /// `Γ ⊢ τ₁ <: τ₂` on interned ids — the judgment layer's native
    /// entry point: environment reads hand over ids directly, so the
    /// memo lookup pays no re-interning toll.
    pub fn subtype_ids(&self, env: &Env, a: TyId, b: TyId, fuel: u32) -> bool {
        if !self.config.memoize {
            return self.subtype_structural(env, &a.get(), &b.get(), fuel);
        }
        if fuel == 0 {
            return false;
        }
        self.subtype_ids_memo(env, a, b, fuel)
    }

    /// Mixed entry: interned subject against a goal tree (e.g. a stored
    /// environment type against a proposition's type).
    pub(crate) fn subtype_id_ty(&self, env: &Env, a: TyId, t2: &Ty, fuel: u32) -> bool {
        if !self.config.memoize {
            return self.subtype_structural(env, &a.get(), t2, fuel);
        }
        if fuel == 0 {
            return false;
        }
        self.subtype_ids_memo(env, a, TyId::of(t2), fuel)
    }

    /// Mixed entry: goal tree against an interned supertype (e.g. a
    /// goal against a stored negative fact).
    pub(crate) fn subtype_ty_id(&self, env: &Env, t1: &Ty, b: TyId, fuel: u32) -> bool {
        if !self.config.memoize {
            return self.subtype_structural(env, t1, &b.get(), fuel);
        }
        if fuel == 0 {
            return false;
        }
        self.subtype_ids_memo(env, TyId::of(t1), b, fuel)
    }

    fn subtype_ids_memo(&self, env: &Env, a: TyId, b: TyId, fuel: u32) -> bool {
        self.subtype_ids_memo_with(env, a, b, fuel, None)
    }

    /// The shared memo shell. `trees` carries the caller's raw trees when
    /// it has them, so the structural fallback can run on the originals
    /// instead of re-materializing canonical copies.
    fn subtype_ids_memo_with(
        &self,
        env: &Env,
        a: TyId,
        b: TyId,
        fuel: u32,
        trees: Option<(&Ty, &Ty)>,
    ) -> bool {
        if a == b {
            // Canonically equal (S-Refl modulo normalization).
            return true;
        }
        // Pairs of env-free types (no refinements/functions anywhere) are
        // compared purely structurally: cache them under generation 0 so
        // one verdict serves every environment. The flag is packed into
        // the id, so this costs two bit tests.
        let generation = if a.env_free() && b.env_free() {
            0
        } else {
            env.generation()
        };
        let key = (generation, a, b);
        if let Some(verdict) = self.caches().subtype.lookup(key, fuel) {
            return verdict;
        }
        // No cycle guard: λ_RTR types are finite trees, so subtyping has
        // no true cycles — any re-entrant identical query (e.g. a
        // singleton union collapsing to its member's id) arrives with
        // strictly less fuel and terminates structurally. A coinductive
        // assume-true entry here would be unsound: it would "prove"
        // `(U {x:Int|ψ}) <: False` by answering the collapsed member
        // query with the in-flight outer one.
        let verdict = match trees {
            Some((t1, t2)) => self.subtype_structural(env, t1, t2, fuel),
            None => self.subtype_structural(env, &a.get(), &b.get(), fuel),
        };
        // Post-trip verdicts are conservative degradations; keep them
        // out of the budget-agnostic memo (see `crate::budget`).
        if self.may_store() {
            self.caches().subtype.store(key, fuel, verdict);
        }
        verdict
    }

    /// The structural (uncached) subtype rules; the reference
    /// implementation the memoized entry point delegates to.
    fn subtype_structural(&self, env: &Env, t1: &Ty, t2: &Ty, fuel: u32) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        // Resource governance: one step per structural node; "not a
        // subtype" on any trip only rejects more programs.
        if self
            .budget()
            .burn(crate::budget::Judgment::Subtype)
            .is_some()
        {
            return false;
        }
        // S-Refl
        if t1 == t2 {
            return true;
        }
        // ⊥ <: τ (derivable: the empty union)
        if self.is_empty_ty(t1) {
            return true;
        }
        // S-Top
        if matches!(t2, Ty::Top) {
            return true;
        }
        // S-Union1 — every member must fit.
        if let Ty::Union(ts) = t1 {
            return ts.iter().all(|t| self.subtype(env, t, t2, fuel));
        }
        // Refinement on the left: S-Weaken then S-Refine1.
        if let Ty::Refine(r) = t1 {
            if self.subtype(env, &r.base, t2, fuel) {
                return true;
            }
            // Γ, x∈τ, ψ ⊢ x ∈ σ
            let w = Symbol::fresh(r.var.as_str());
            let mut env2 = env.clone();
            self.bind(&mut env2, w, &r.base, fuel);
            self.assume(&mut env2, &r.prop.subst(r.var, &Obj::var(w)), fuel);
            return self.check_is(&env2, &Obj::var(w), t2, fuel);
        }
        // S-Union2 — any member may fit.
        if let Ty::Union(ss) = t2 {
            return ss.iter().any(|s| self.subtype(env, t1, s, fuel));
        }
        // S-Refine2.
        if let Ty::Refine(r) = t2 {
            if !self.subtype(env, t1, &r.base, fuel) {
                return false;
            }
            let w = Symbol::fresh(r.var.as_str());
            let mut env2 = env.clone();
            self.bind(&mut env2, w, t1, fuel);
            return self.proves(&env2, &r.prop.subst(r.var, &Obj::var(w)), fuel);
        }
        match (t1, t2) {
            // S-Pair
            (Ty::Pair(a1, b1), Ty::Pair(a2, b2)) => {
                self.subtype(env, a1, a2, fuel) && self.subtype(env, b1, b2, fuel)
            }
            // Vectors are mutable, hence invariant.
            (Ty::Vec(e1), Ty::Vec(e2)) => {
                self.subtype(env, e1, e2, fuel) && self.subtype(env, e2, e1, fuel)
            }
            // S-Fun (n-ary): contravariant domains, covariant dependent
            // range checked under the supertype's domains.
            (Ty::Fun(f1), Ty::Fun(f2)) => {
                if f1.params.len() != f2.params.len() {
                    return false;
                }
                let mut env2 = env.clone();
                // Progressively rename f1's parameters to f2's names so the
                // dependencies line up.
                let mut params1 = f1.params.clone();
                let mut range1 = f1.range.clone();
                for i in 0..params1.len() {
                    let (x2, d2) = &f2.params[i];
                    let (x1, d1) = params1[i].clone();
                    if !self.subtype(&env2, d2, &d1, fuel) {
                        return false;
                    }
                    self.bind(&mut env2, *x2, d2, fuel);
                    if x1 != *x2 {
                        let rep = Obj::var(*x2);
                        for (_, d) in params1.iter_mut().skip(i + 1) {
                            *d = d.subst_obj(x1, &rep);
                        }
                        range1 = range1.subst_obj(x1, &rep);
                    }
                }
                self.subtype_result(&env2, &range1, &f2.range, fuel)
            }
            // Polymorphic types: alpha-compare by renaming binders.
            (Ty::Poly(p1), Ty::Poly(p2)) => {
                if p1.vars.len() != p2.vars.len() {
                    return false;
                }
                let map: std::collections::HashMap<Symbol, Ty> = p1
                    .vars
                    .iter()
                    .zip(&p2.vars)
                    .map(|(a, b)| (*a, Ty::TVar(*b)))
                    .collect();
                self.subtype(env, &p1.body.subst_tvars(&map), &p2.body, fuel)
            }
            _ => false,
        }
    }

    /// `Γ ⊢ R₁ <: R₂` (SR-Result / SR-Exists), with *selfification*: the
    /// subtype's type is strengthened with its symbolic object so results
    /// like `(Int; …; x)` can flow into refinement ranges such as
    /// `{z:Int | z ≥ x}` (this is how `max`'s conditional meets its
    /// declared range).
    pub fn subtype_result(&self, env: &Env, r1: &TyResult, r2: &TyResult, fuel: u32) -> bool {
        let Some(fuel) = fuel.checked_sub(1) else {
            return false;
        };
        if !r2.existentials.is_empty() {
            // Only trivially identical quantified results are comparable;
            // expected ranges written by users are quantifier-free.
            return r1 == r2;
        }
        // SR-Exists: open the left result's binders (snapshotting the
        // environment only when there are binders to open).
        let mut opened;
        let env2: &Env = if r1.existentials.is_empty() {
            env
        } else {
            opened = env.clone();
            for (x, t) in &r1.existentials {
                self.bind(&mut opened, *x, t, fuel);
            }
            &opened
        };
        let o1 = env2.resolve(&r1.obj);
        if o1.is_null() {
            if !self.subtype(env2, &r1.ty, &r2.ty, fuel) {
                return false;
            }
        } else if r1.ty != r2.ty {
            // With a symbolic object in hand, phrase the type check as the
            // membership goal `o₁ ∈ τ₂` under `o₁ ∈ τ₁` — this routes
            // through the full proof system (including disjunction case
            // splits) and subsumes selfification. Identical types skip the
            // whole derivation: `o ∈ τ ⊢ o ∈ τ` is an axiom.
            let mut env3 = env2.clone();
            self.assume(&mut env3, &Prop::is(o1.clone(), r1.ty.clone()), fuel);
            if !self.proves(&env3, &Prop::is(o1.clone(), r2.ty.clone()), fuel) {
                return false;
            }
        }
        if !self.obj_subtype(env2, &o1, &r2.obj) {
            return false;
        }
        // Γ, ψ₁₊ ⊢ ψ₂₊ and Γ, ψ₁₋ ⊢ ψ₂₋. Trivial (`tt`) expected
        // propositions — every plain `of_type` expectation — need no
        // derivation at all: `proves(_, tt)` is true under any
        // environment, so skipping the snapshot+assume preserves verdicts.
        if !matches!(r2.then_p, Prop::TT) {
            let mut env_then = env2.clone();
            self.assume(&mut env_then, &r1.then_p, fuel);
            if !self.proves(&env_then, &r2.then_p, fuel) {
                return false;
            }
        }
        if matches!(r2.else_p, Prop::TT) {
            return true;
        }
        let mut env_else = env2.clone();
        self.assume(&mut env_else, &r1.else_p, fuel);
        self.proves(&env_else, &r2.else_p, fuel)
    }

    /// Object subtyping (SO-rules): the null object is the top object;
    /// otherwise objects must resolve to the same representative
    /// (SO-Equiv via alias resolution) or match pointwise (SO-Pair).
    pub fn obj_subtype(&self, env: &Env, o1: &Obj, o2: &Obj) -> bool {
        if o2.is_null() {
            return true;
        }
        let o1 = env.resolve(o1);
        let o2 = env.resolve(o2);
        fn go(a: &Obj, b: &Obj) -> bool {
            if b.is_null() || a == b {
                return true;
            }
            match (a, b) {
                (Obj::Pair(a1, a2), Obj::Pair(b1, b2)) => go(a1, b1) && go(a2, b2),
                _ => false,
            }
        }
        go(&o1, &o2)
    }

    /// `{ν : τ | ν ≗ o}` — strengthens a type with the identity of its
    /// symbolic object (using the appropriate equality for the object's
    /// theory). Null objects add nothing.
    pub fn selfify(&self, t: &Ty, o: &Obj) -> Ty {
        if o.is_null() || !self.config.theories && !matches!(o, Obj::Path(_) | Obj::Pair(..)) {
            return t.clone();
        }
        let v = Symbol::fresh("self");
        let prop = match o {
            Obj::Lin(_) => Prop::lin(Obj::var(v), crate::syntax::LinCmp::Eq, o.clone()),
            Obj::Bv(_) => Prop::bv(Obj::var(v), crate::syntax::BvCmp::Eq, o.clone()),
            // Aliasing covers the structural theories, including string
            // and regex literals (M-Alias evaluates both sides).
            Obj::Path(_) | Obj::Pair(..) | Obj::Str(_) | Obj::Re(_) => {
                Prop::alias(Obj::var(v), o.clone())
            }
            Obj::Null => Prop::TT,
        };
        Ty::refine(v, t.clone(), prop)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::LinCmp;

    fn checker() -> Checker {
        Checker::default()
    }
    fn fuel() -> u32 {
        64
    }

    #[test]
    fn reflexivity_and_top() {
        let c = checker();
        let env = Env::new();
        for t in [
            Ty::Int,
            Ty::bool_ty(),
            Ty::pair(Ty::Int, Ty::Top),
            Ty::vec(Ty::Int),
        ] {
            assert!(c.subtype(&env, &t, &t, fuel()), "{t} <: {t}");
            assert!(c.subtype(&env, &t, &Ty::Top, fuel()), "{t} <: ⊤");
        }
        assert!(c.subtype(&env, &Ty::bot(), &Ty::Int, fuel()));
    }

    #[test]
    fn union_rules() {
        let c = checker();
        let env = Env::new();
        // S-Union2: True <: Bool.
        assert!(c.subtype(&env, &Ty::True, &Ty::bool_ty(), fuel()));
        // S-Union1: (U Int True) <: (U Int Bool).
        let t1 = Ty::union_of(vec![Ty::Int, Ty::True]);
        let t2 = Ty::union_of(vec![Ty::Int, Ty::bool_ty()]);
        assert!(c.subtype(&env, &t1, &t2, fuel()));
        assert!(!c.subtype(&env, &t2, &t1, fuel()));
    }

    #[test]
    fn pair_covariance_vector_invariance() {
        let c = checker();
        let env = Env::new();
        assert!(c.subtype(
            &env,
            &Ty::pair(Ty::True, Ty::Int),
            &Ty::pair(Ty::bool_ty(), Ty::Top),
            fuel()
        ));
        assert!(!c.subtype(&env, &Ty::vec(Ty::True), &Ty::vec(Ty::bool_ty()), fuel()));
        assert!(c.subtype(&env, &Ty::vec(Ty::Int), &Ty::vec(Ty::Int), fuel()));
    }

    #[test]
    fn refinement_weakening() {
        // {x:Int | x ≤ 5} <: Int  (S-Weaken)
        let c = checker();
        let env = Env::new();
        let x = Symbol::intern("sx");
        let t = Ty::refine(x, Ty::Int, Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5)));
        assert!(c.subtype(&env, &t, &Ty::Int, fuel()));
        // Int <: {x:Int | x ≤ 5} must fail.
        assert!(!c.subtype(&env, &Ty::Int, &t, fuel()));
    }

    #[test]
    fn refinement_implication() {
        // {x:Int | x ≤ 3} <: {y:Int | y ≤ 5}
        let c = checker();
        let env = Env::new();
        let x = Symbol::intern("rx");
        let y = Symbol::intern("ry");
        let t1 = Ty::refine(x, Ty::Int, Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(3)));
        let t2 = Ty::refine(y, Ty::Int, Prop::lin(Obj::var(y), LinCmp::Le, Obj::int(5)));
        assert!(c.subtype(&env, &t1, &t2, fuel()));
        assert!(!c.subtype(&env, &t2, &t1, fuel()));
    }

    #[test]
    fn function_contra_co() {
        let c = checker();
        let env = Env::new();
        let x = Symbol::intern("fa");
        // (x:⊤ → Int) <: (x:Int → ⊤)
        let f1 = Ty::fun(vec![(x, Ty::Top)], TyResult::of_type(Ty::Int));
        let f2 = Ty::fun(vec![(x, Ty::Int)], TyResult::of_type(Ty::Top));
        assert!(c.subtype(&env, &f1, &f2, fuel()));
        assert!(!c.subtype(&env, &f2, &f1, fuel()));
    }

    #[test]
    fn dependent_range_subtyping() {
        // (x:Int → {z:Int | z = x}) <: (x:Int → {z:Int | z ≤ x})
        let c = checker();
        let env = Env::new();
        let x = Symbol::intern("dx");
        let z = Symbol::intern("dz");
        let exact = Ty::fun(
            vec![(x, Ty::Int)],
            TyResult::of_type(Ty::refine(
                z,
                Ty::Int,
                Prop::lin(Obj::var(z), LinCmp::Eq, Obj::var(x)),
            )),
        );
        let loose = Ty::fun(
            vec![(x, Ty::Int)],
            TyResult::of_type(Ty::refine(
                z,
                Ty::Int,
                Prop::lin(Obj::var(z), LinCmp::Le, Obj::var(x)),
            )),
        );
        assert!(c.subtype(&env, &exact, &loose, fuel()));
        assert!(!c.subtype(&env, &loose, &exact, fuel()));
    }

    #[test]
    fn selfified_results_flow_into_refinements() {
        // Under y < x:  (Int; tt|ff; x) <: ({z:Int | z ≥ y}; tt|tt; ∅)
        let c = checker();
        let mut env = Env::new();
        let x = Symbol::intern("mx");
        let y = Symbol::intern("my");
        let z = Symbol::intern("mz");
        c.bind(&mut env, x, &Ty::Int, fuel());
        c.bind(&mut env, y, &Ty::Int, fuel());
        c.assume(
            &mut env,
            &Prop::lin(Obj::var(y), LinCmp::Lt, Obj::var(x)),
            fuel(),
        );
        let r1 = TyResult::truthy(Ty::Int, Obj::var(x));
        let want = Ty::refine(z, Ty::Int, Prop::lin(Obj::var(z), LinCmp::Le, Obj::var(x)));
        let r2 = TyResult::of_type(want);
        assert!(c.subtype_result(&env, &r1, &r2, fuel()));
        // And the y-bound holds too via transitivity.
        let want_y = Ty::refine(z, Ty::Int, Prop::lin(Obj::var(y), LinCmp::Le, Obj::var(z)));
        assert!(c.subtype_result(&env, &r1, &TyResult::of_type(want_y), fuel()));
    }

    #[test]
    fn object_subtyping() {
        let c = checker();
        let env = Env::new();
        let x = Obj::var(Symbol::intern("ox"));
        assert!(c.obj_subtype(&env, &x, &Obj::Null));
        assert!(c.obj_subtype(&env, &x, &x));
        assert!(!c.obj_subtype(&env, &Obj::Null, &x));
        let p = Obj::pair(x.clone(), Obj::int(1));
        assert!(c.obj_subtype(&env, &p, &Obj::pair(x.clone(), Obj::Null)));
        assert!(!c.obj_subtype(&env, &Obj::pair(x.clone(), Obj::Null), &p));
    }

    #[test]
    fn result_prop_implication() {
        // (Bool; x∈Int | tt; ∅) <: (Bool; tt | tt; ∅) but not conversely
        // with a non-trivial goal.
        let c = checker();
        let mut env = Env::new();
        let x = Symbol::intern("px");
        c.bind(
            &mut env,
            x,
            &Ty::union_of(vec![Ty::Int, Ty::bool_ty()]),
            fuel(),
        );
        let strong = TyResult::new(
            Ty::bool_ty(),
            Prop::is(Obj::var(x), Ty::Int),
            Prop::TT,
            Obj::Null,
        );
        let weak = TyResult::of_type(Ty::bool_ty());
        assert!(c.subtype_result(&env, &strong, &weak, fuel()));
        assert!(!c.subtype_result(&env, &weak, &strong, fuel()));
    }

    #[test]
    fn exists_on_the_left() {
        // ∃g:{g:Int | 0 ≤ g}. (Int; tt|tt; g) <: ({z:Int | 0 ≤ z}; tt|tt; ∅)
        let c = checker();
        let env = Env::new();
        let g = Symbol::intern("exg");
        let z = Symbol::intern("exz");
        let bound = Ty::refine(g, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(g)));
        let r1 = TyResult {
            existentials: vec![(g, bound)],
            ty: Ty::Int,
            then_p: Prop::TT,
            else_p: Prop::TT,
            obj: Obj::var(g),
        };
        let goal = Ty::refine(z, Ty::Int, Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(z)));
        assert!(c.subtype_result(&env, &r1, &TyResult::of_type(goal), fuel()));
    }
}
