//! The incremental module driver: splice-don't-recheck.
//!
//! [`crate::check::Checker::check_module`] re-derives every item's
//! verdict from scratch. Editor traffic is the opposite workload:
//! thousands of re-checks where one definition changed and forty-nine
//! did not. This module adds a second driver,
//! [`Checker::check_module_incremental`], that replays the previous
//! run's per-item results wherever doing so is *provably* equivalent to
//! re-checking.
//!
//! # Soundness argument
//!
//! A module item's verdict (its diagnostics, its recorded
//! [`ItemSummary`], the environment it leaves behind, and its
//! contribution to the module value) is a deterministic function of two
//! inputs: the item's elaborated core term and the **value** of the
//! environment it is checked under. The checker judgements consult
//! nothing else — `generation`/`lin_epoch` stamps key memo tables and
//! never change a verdict (see [`Env::same_contents`]). So the splice
//! rule is:
//!
//! > a cached record may replace re-checking item *i* iff the item's
//! > term is unchanged (same fingerprint / same source text) **and**
//! > the environment reaching slot *i* this run is value-equal to the
//! > environment that reached it when the record was made.
//!
//! Early cutoff falls out of the same rule, stronger than the usual
//! "exported type id unchanged" check: after re-checking a dirty item,
//! if the environment it leaves behind is value-equal to the cached
//! one, *every* downstream comparison succeeds (each splice restores
//! the cached `env_after`, so consecutive splices compare
//! generation-equal environments in O(1)) and the item's dependents are
//! never re-checked. If the re-check changed the exported binding, the
//! environment comparison fails exactly for the suffix that can
//! observe it.
//!
//! # What is never cached
//!
//! An [`ItemRecord`] carries reusable results (`reuse`) only for items
//! that checked *cleanly on an untripped budget fork*: any diagnostic
//! (type errors, `E0202` resource exhaustion, `E0203` ICEs) or a
//! tripped per-item budget leaves `reuse = None`, so degraded or
//! failing verdicts are always re-derived and can never go stale. The
//! driver additionally refuses (`None`, caller falls back to the
//! from-scratch path) when the interner's eviction epoch moved, when
//! the module's `set!`-mutated variable set changed, or when any item
//! needs the big-stack worker — conditions under which cached
//! environment snapshots are not comparable.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::budget::LimitKind;
use crate::check::{attach_node, panic_detail, Checker};
use crate::diag::Diagnostic;
use crate::env::Env;
use crate::fingerprint::{free_refs, item_fingerprint, item_salt};
use crate::module::{ItemSummary, ModuleCheck, ModuleItem};
use crate::mutation::mutated_vars;
use crate::syntax::{Obj, Prop, Symbol, Ty, TyResult};

/// The reusable outcome of one *cleanly* checked item.
#[derive(Clone, Debug)]
struct ReuseData {
    /// The summary pushed onto [`ModuleCheck::results`].
    summary: ItemSummary,
    /// The binder this item opened (replayed for the final lifting
    /// substitution), if any.
    binder: Option<(Symbol, Ty, Obj)>,
    /// `Some` iff this item was recorded as the module's *last trailing
    /// expression*: its pre-lift value result. A record made in the
    /// "last" role cannot splice into a non-last slot (and vice versa) —
    /// the two roles leave different environments behind.
    value: Option<TyResult>,
}

/// What one run of the incremental driver learned about one item slot.
#[derive(Clone, Debug)]
pub struct ItemRecord {
    /// α-stable fingerprint of the elaborated item
    /// ([`crate::fingerprint::item_fingerprint`]).
    fp: u128,
    /// Module-level names the item can read
    /// ([`crate::fingerprint::free_refs`]) — the dependency edges used
    /// by the cutoff accounting.
    free_refs: Vec<Symbol>,
    /// The `set!`-mutated variables of this item's body (the module
    /// mutation pre-pass is the union of these).
    mutated: Vec<Symbol>,
    /// Value snapshot of the environment *after* this item, whether it
    /// checked cleanly or was poisoned.
    env_after: Env,
    /// Reusable results; `None` for items that produced diagnostics or
    /// tripped their budget fork (never cached).
    reuse: Option<ReuseData>,
}

impl ItemRecord {
    /// Is this the record of a trailing expression (as opposed to a
    /// definition)?
    fn is_expr(&self) -> bool {
        self.reuse
            .as_ref()
            .is_some_and(|ru| ru.summary.name.is_none())
    }
}

/// Everything a previous incremental run left behind for one module:
/// per-slot records in check order, plus the run-wide preconditions
/// (eviction epoch, mutated-variable set, initial environment) that
/// gate their reuse.
#[derive(Clone, Debug)]
pub struct ItemCache {
    /// [`crate::intern::evict_epoch`] when the cache was built; a moved
    /// epoch means interned ids in the snapshots may dangle.
    epoch: u64,
    /// The union of `set!`-mutated variables the pre-pass marked.
    mutated: HashSet<Symbol>,
    /// The environment every run starts from (mutability marks
    /// applied, nothing bound yet).
    init_env: Env,
    /// One record per item, in check order (definitions first, then
    /// trailing expressions).
    records: Vec<Arc<ItemRecord>>,
}

impl ItemCache {
    /// Number of item records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// One slot of the incremental run, in check order.
#[derive(Clone, Debug)]
pub enum IncrSlot {
    /// This slot's source text is unchanged from the previous run:
    /// reuse the record at this index of the old [`ItemCache`]. The
    /// item itself is only elaborated (via the `fetch` callback) if the
    /// splice is rejected.
    Reused(usize),
    /// This slot's source changed (or had no cached counterpart): the
    /// freshly elaborated item.
    Fresh(ModuleItem),
}

/// Counters describing how much work one incremental run avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecheckStats {
    /// Slots that were actually re-checked.
    pub rechecked: u32,
    /// Slots spliced from the cache without re-checking.
    pub skipped: u32,
    /// Spliced slots that *depend on* (mention) an item re-checked
    /// earlier in this run — dependents the early cutoff stopped from
    /// dirtying.
    pub cutoff_stopped: u32,
    /// Slots for which a usable cached record existed (fingerprint or
    /// source text matched, with reusable results).
    pub fp_hits: u32,
    /// Slots with no usable cached record.
    pub fp_misses: u32,
}

/// Process-wide accumulation of [`RecheckStats`], for `--stats`.
#[cfg(feature = "stats")]
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static RECHECKED: AtomicU64 = AtomicU64::new(0);
    pub(super) static SKIPPED: AtomicU64 = AtomicU64::new(0);
    pub(super) static CUTOFF_STOPPED: AtomicU64 = AtomicU64::new(0);
    pub(super) static FP_HITS: AtomicU64 = AtomicU64::new(0);
    pub(super) static FP_MISSES: AtomicU64 = AtomicU64::new(0);

    /// Snapshot of the process-wide incremental counters.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct IncrStats {
        /// Total items re-checked across all incremental runs.
        pub rechecked: u64,
        /// Total items spliced without re-checking.
        pub skipped: u64,
        /// Total dependents the early cutoff stopped from dirtying.
        pub cutoff_stopped: u64,
        /// Total fingerprint-table hits.
        pub fp_hits: u64,
        /// Total fingerprint-table misses.
        pub fp_misses: u64,
    }

    /// Reads the process-wide incremental counters.
    pub fn incr_stats() -> IncrStats {
        IncrStats {
            rechecked: RECHECKED.load(Ordering::Relaxed),
            skipped: SKIPPED.load(Ordering::Relaxed),
            cutoff_stopped: CUTOFF_STOPPED.load(Ordering::Relaxed),
            fp_hits: FP_HITS.load(Ordering::Relaxed),
            fp_misses: FP_MISSES.load(Ordering::Relaxed),
        }
    }

    pub(super) fn accumulate(s: &super::RecheckStats) {
        RECHECKED.fetch_add(u64::from(s.rechecked), Ordering::Relaxed);
        SKIPPED.fetch_add(u64::from(s.skipped), Ordering::Relaxed);
        CUTOFF_STOPPED.fetch_add(u64::from(s.cutoff_stopped), Ordering::Relaxed);
        FP_HITS.fetch_add(u64::from(s.fp_hits), Ordering::Relaxed);
        FP_MISSES.fetch_add(u64::from(s.fp_misses), Ordering::Relaxed);
    }
}

impl Checker {
    /// Incrementally checks a module against the results of a previous
    /// run.
    ///
    /// `slots` lists the module's items **in check order** (definitions
    /// first, then trailing expressions — the order
    /// [`Checker::check_module`] processes them in). A
    /// [`IncrSlot::Reused`] slot asserts its source text is unchanged
    /// from the old run; `fetch(i)` must elaborate slot `i`'s item on
    /// demand (with spans for the *current* file positions), returning
    /// `None` on failure.
    ///
    /// Returns `None` when the incremental preconditions do not hold
    /// (an item needs the big-stack worker, or a `fetch` failed) — the
    /// caller must fall back to [`Checker::check_module`]. A stale
    /// eviction epoch or a changed mutated-variable set does not fail
    /// the run; it just discards the old cache and re-checks
    /// everything, producing a fresh one.
    ///
    /// On success the returned [`ModuleCheck`] is equivalent to a
    /// from-scratch [`Checker::check_module`] over the same items (the
    /// equivalence property tests pin this, modulo fresh-symbol
    /// numbering), alongside the new [`ItemCache`] and the run's
    /// [`RecheckStats`].
    pub fn check_module_incremental(
        &self,
        slots: &[IncrSlot],
        old: Option<&ItemCache>,
        fetch: &mut dyn FnMut(usize) -> Option<ModuleItem>,
    ) -> Option<(ModuleCheck, ItemCache, RecheckStats)> {
        let this = self.fork_check();
        let _live = crate::intern::check_guard();
        this.caches().reconcile_evictions();
        let epoch = crate::intern::evict_epoch();

        // The old cache is only trusted if nothing was evicted since it
        // was built: interned ids inside its snapshots would dangle
        // otherwise. A stale cache is discarded, not an error — the run
        // proceeds all-fresh (Reused slots are elaborated via `fetch`)
        // and rebuilds it.
        let mut old = old.filter(|c| c.epoch == epoch);

        // Turns every Reused slot into a Fresh one by elaborating it,
        // for the discard paths where the old records are unusable.
        fn materialize(
            slots: &[IncrSlot],
            fetch: &mut dyn FnMut(usize) -> Option<ModuleItem>,
        ) -> Option<Vec<IncrSlot>> {
            slots
                .iter()
                .enumerate()
                .map(|(i, s)| match s {
                    IncrSlot::Fresh(item) => Some(IncrSlot::Fresh(item.clone())),
                    IncrSlot::Reused(_) => fetch(i).map(IncrSlot::Fresh),
                })
                .collect()
        }

        let mut owned: Option<Vec<IncrSlot>> = None;
        if old.is_none() && slots.iter().any(|s| matches!(s, IncrSlot::Reused(_))) {
            owned = Some(materialize(slots, fetch)?);
        }
        let slots: &[IncrSlot] = owned.as_deref().unwrap_or(slots);

        // Mutation pre-pass over the whole module (matching
        // `check_module`'s): the union of every item's `set!`-mutated
        // variables. Reused slots contribute their recorded set without
        // being elaborated.
        let mut mutated: HashSet<Symbol> = HashSet::new();
        for slot in slots {
            match slot {
                IncrSlot::Fresh(item) => {
                    if let Some(e) = item.body() {
                        mutated.extend(mutated_vars(e));
                    }
                }
                IncrSlot::Reused(j) => {
                    let rec = old.and_then(|c| c.records.get(*j))?;
                    mutated.extend(rec.mutated.iter().copied());
                }
            }
        }
        // Cached environments were snapshotted under the old mutability
        // marking; if the set changed they are incomparable. Discard
        // and rebuild.
        let mut owned2: Option<Vec<IncrSlot>> = None;
        if let Some(c) = old {
            if mutated != c.mutated {
                old = None;
                if slots.iter().any(|s| matches!(s, IncrSlot::Reused(_))) {
                    owned2 = Some(materialize(slots, fetch)?);
                }
            }
        }
        let slots: &[IncrSlot] = owned2.as_deref().unwrap_or(slots);

        // Fresh items that need the big-stack worker can't ride this
        // driver (the fetch callback borrows the caller's elaborator,
        // so the module can't move to the worker thread). Reused slots
        // are fine: a cache is only ever built by a run that proved
        // every item inline-sized.
        for slot in slots {
            if let IncrSlot::Fresh(item) = slot {
                if let Some(e) = item.body() {
                    if !this.fits_inline_stack(e) {
                        return None;
                    }
                }
            }
        }

        let fuel = this.config().logic_fuel;
        let mut env = Env::new();
        for x in &mutated {
            env.mark_mutable(*x);
        }
        let init_env = env.clone();

        let mut out = ModuleCheck::default();
        let mut degraded: Option<LimitKind> = None;
        let mut binders: Vec<(Symbol, Ty, Obj)> = Vec::new();
        let mut records: Vec<Arc<ItemRecord>> = Vec::new();
        let mut stats = RecheckStats::default();
        // Names of items re-checked so far this run, for the
        // cutoff-stopped accounting.
        let mut rechecked_names: HashSet<Symbol> = HashSet::new();
        // Positional cursor into the old records, so a Fresh slot whose
        // *term* is unchanged (whitespace-only edit) can still find its
        // old record by position + fingerprint.
        let mut cursor: usize = 0;
        let n = slots.len();
        let mut saw_trailing = false;

        for (i, slot) in slots.iter().enumerate() {
            let is_last_slot = i + 1 == n;

            // Resolve this slot's splice candidate.
            let (candidate, cand_idx, mut item_owned): (
                Option<Arc<ItemRecord>>,
                usize,
                Option<ModuleItem>,
            ) = match slot {
                IncrSlot::Reused(j) => {
                    let rec = old.and_then(|c| c.records.get(*j))?.clone();
                    cursor = *j + 1;
                    (Some(rec), *j, None)
                }
                IncrSlot::Fresh(item) => {
                    let mut cand = None;
                    let mut idx = 0;
                    if let Some(c) = old {
                        if cursor < c.records.len() {
                            idx = cursor;
                            let rec = &c.records[cursor];
                            cursor += 1;
                            if rec.fp == item_fingerprint(item) {
                                cand = Some(rec.clone());
                            }
                        }
                    }
                    (cand, idx, Some(item.clone()))
                }
            };

            let usable = candidate.as_ref().is_some_and(|rec| rec.reuse.is_some());
            if usable {
                stats.fp_hits += 1;
            } else {
                stats.fp_misses += 1;
            }

            // The splice rule: reusable record, same trailing role, and
            // a value-equal incoming environment.
            let splice = usable && {
                let rec = candidate.as_ref().unwrap();
                let role_ok =
                    !rec.is_expr() || (rec.reuse.as_ref().unwrap().value.is_some() == is_last_slot);
                role_ok && {
                    let c = old.unwrap();
                    let prev = if cand_idx == 0 {
                        &c.init_env
                    } else {
                        &c.records[cand_idx - 1].env_after
                    };
                    env.same_contents(prev)
                }
            };

            if splice {
                let rec = candidate.unwrap();
                let ru = rec.reuse.as_ref().unwrap();
                stats.skipped += 1;
                if rec.free_refs.iter().any(|s| rechecked_names.contains(s)) {
                    stats.cutoff_stopped += 1;
                }
                env = rec.env_after.clone();
                out.results.push(ru.summary.clone());
                if let Some(b) = &ru.binder {
                    binders.push(b.clone());
                }
                if ru.summary.name.is_none() {
                    saw_trailing = true;
                    if let Some(v) = &ru.value {
                        out.value = Some(v.clone());
                    }
                }
                records.push(rec);
                continue;
            }

            // Re-check. Reused slots are elaborated on demand now.
            if item_owned.is_none() {
                item_owned = Some(fetch(i)?);
            }
            let item = item_owned.unwrap();
            if let Some(e) = item.body() {
                if !this.fits_inline_stack(e) {
                    return None;
                }
            }
            stats.rechecked += 1;
            if let Some(name) = item.name() {
                rechecked_names.insert(name);
            }
            if matches!(item, ModuleItem::Expr { .. }) {
                saw_trailing = true;
            }

            let results_before = out.results.len();
            let diags_before = out.diagnostics.len();
            let binders_before = binders.len();
            let c = this.fork_item(item_salt(&item));
            let mut value_here: Option<TyResult> = None;

            match &item {
                ModuleItem::DefineRec {
                    name,
                    sig,
                    lam,
                    node,
                    sig_node,
                } => {
                    c.chaos_item_entry();
                    let ctx = || format!("(define ({name} …) …)");
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        c.chaos_item_panic();
                        c.bind(&mut env, *name, sig, fuel);
                        c.check_lambda(&env, lam, sig, &ctx)
                    }));
                    c.budget().note_margin();
                    match caught {
                        Ok(Ok(())) => out.results.push(ItemSummary {
                            span: None,
                            name: Some(*name),
                            ty: Some(sig.clone()),
                            poisoned: false,
                        }),
                        Ok(Err(d)) => {
                            let d = c.degrade_with(
                                *attach_node(d, *node),
                                c.budget().tripped().or(degraded),
                                ctx,
                            );
                            this.poison(&mut out, d, *name, sig, *sig_node);
                        }
                        Err(p) => {
                            c.bind(&mut env, *name, sig, fuel);
                            let d = Diagnostic::ice(ctx(), panic_detail(&*p)).at(*node);
                            this.poison(&mut out, d, *name, sig, *sig_node);
                        }
                    }
                    binders.push((*name, sig.clone(), Obj::Null));
                }
                ModuleItem::Define {
                    name,
                    sig,
                    rhs,
                    node,
                    sig_node,
                } => {
                    c.chaos_item_entry();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        c.chaos_item_panic();
                        let r1 = c.synth(&env, rhs)?;
                        let (o1, mutable) = c.open_let_binding(&mut env, *name, &r1);
                        Ok((r1, o1, mutable))
                    }));
                    c.budget().note_margin();
                    match caught {
                        Ok(Ok((r1, o1, mutable))) => {
                            let lift_obj = if mutable { Obj::Null } else { o1 };
                            binders.push((*name, r1.ty.clone(), lift_obj));
                            out.results.push(ItemSummary {
                                span: None,
                                name: Some(*name),
                                ty: Some(r1.ty),
                                poisoned: false,
                            });
                        }
                        Ok(Err(d)) => {
                            let assumed = sig.clone().unwrap_or(Ty::Top);
                            this.bind(&mut env, *name, &assumed, fuel);
                            binders.push((*name, assumed.clone(), Obj::Null));
                            let d = c.degrade_with(
                                *attach_node(d, *node),
                                c.budget().tripped().or(degraded),
                                || format!("(define {name} …)"),
                            );
                            this.poison(&mut out, d, *name, &assumed, *sig_node);
                        }
                        Err(p) => {
                            let assumed = sig.clone().unwrap_or(Ty::Top);
                            this.bind(&mut env, *name, &assumed, fuel);
                            binders.push((*name, assumed.clone(), Obj::Null));
                            let d =
                                Diagnostic::ice(format!("(define {name} …)"), panic_detail(&*p))
                                    .at(*node);
                            this.poison(&mut out, d, *name, &assumed, *sig_node);
                        }
                    }
                }
                ModuleItem::Opaque { name, ty } => {
                    this.bind(&mut env, *name, ty, fuel);
                    binders.push((*name, ty.clone(), Obj::Null));
                    out.results.push(ItemSummary {
                        span: None,
                        name: Some(*name),
                        ty: Some(ty.clone()),
                        poisoned: true,
                    });
                }
                ModuleItem::Expr { expr, node } => {
                    c.chaos_item_entry();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        c.chaos_item_panic();
                        c.synth(&env, expr)
                    }));
                    c.budget().note_margin();
                    match caught {
                        Ok(Ok(r)) => {
                            if is_last_slot {
                                value_here = Some(r.clone());
                                out.value = Some(r);
                            } else {
                                let tmp = Symbol::fresh("ignored");
                                let (o1, mutable) = this.open_let_binding(&mut env, tmp, &r);
                                let lift_obj = if mutable { Obj::Null } else { o1 };
                                binders.push((tmp, r.ty.clone(), lift_obj));
                            }
                            out.results.push(ItemSummary {
                                span: None,
                                name: None,
                                ty: value_here.as_ref().map(|r| r.ty.clone()),
                                poisoned: false,
                            });
                        }
                        Ok(Err(d)) => {
                            let d = c.degrade_with(
                                *attach_node(d, *node),
                                c.budget().tripped().or(degraded),
                                || "this expression".to_owned(),
                            );
                            out.diagnostics.push(d);
                            out.results.push(ItemSummary {
                                span: None,
                                name: None,
                                ty: None,
                                poisoned: false,
                            });
                        }
                        Err(p) => {
                            out.diagnostics.push(
                                Diagnostic::ice("this expression".to_owned(), panic_detail(&*p))
                                    .at(*node),
                            );
                            out.results.push(ItemSummary {
                                span: None,
                                name: None,
                                ty: None,
                                poisoned: false,
                            });
                        }
                    }
                }
            }
            degraded = degraded.or(c.budget().tripped());

            // Build this slot's record. Results are reusable only for
            // items that checked cleanly on an untripped fork: a
            // diagnostic or a tripped budget means the verdict may be
            // degraded, and degraded verdicts are never cached.
            let clean = out.diagnostics.len() == diags_before && c.budget().tripped().is_none();
            let reuse = clean.then(|| ReuseData {
                summary: out.results[results_before].clone(),
                binder: binders.get(binders_before).cloned(),
                value: value_here,
            });
            let muts = item
                .body()
                .map(|e| mutated_vars(e).into_iter().collect())
                .unwrap_or_default();
            records.push(Arc::new(ItemRecord {
                fp: item_fingerprint(&item),
                free_refs: free_refs(&item),
                mutated: muts,
                env_after: env.clone(),
                reuse,
            }));
        }

        if !saw_trailing {
            out.value = Some(TyResult::new(Ty::True, Prop::TT, Prop::FF, Obj::Null));
        }
        if let Some(v) = out.value.take() {
            out.value = Some(v.lift_subst_all(&binders));
        }

        #[cfg(feature = "stats")]
        stats::accumulate(&stats);

        let cache = ItemCache {
            epoch,
            mutated,
            init_env,
            records,
        };
        Some((out, cache, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Expr, Lambda, Prim};

    fn int_to_int(name: &str) -> (Symbol, Ty) {
        let x = Symbol::intern("x");
        (
            Symbol::intern(name),
            Ty::fun(vec![(x, Ty::Int)], TyResult::of_type(Ty::Int)),
        )
    }

    fn define(name: &str, body: Expr) -> ModuleItem {
        let (sym, sig) = int_to_int(name);
        ModuleItem::DefineRec {
            name: sym,
            sig,
            lam: Arc::new(Lambda {
                params: vec![(Symbol::intern("x"), Ty::Top)],
                body,
            }),
            node: None,
            sig_node: None,
        }
    }

    fn good(name: &str) -> ModuleItem {
        define(
            name,
            Expr::prim_app(Prim::Add1, vec![Expr::Var(Symbol::intern("x"))]),
        )
    }

    fn bad(name: &str) -> ModuleItem {
        define(name, Expr::Bool(true))
    }

    fn all_fresh(items: &[ModuleItem]) -> Vec<IncrSlot> {
        items.iter().cloned().map(IncrSlot::Fresh).collect()
    }

    fn no_fetch(_: usize) -> Option<ModuleItem> {
        panic!("driver should not fetch for all-Fresh slots")
    }

    #[test]
    fn cold_run_matches_full_check_and_builds_a_cache() {
        let items = vec![good("ia"), bad("ib"), good("ic")];
        let checker = Checker::default();
        let full = checker.check_module(&items);
        let (incr, cache, stats) = checker
            .check_module_incremental(&all_fresh(&items), None, &mut no_fetch)
            .expect("inline-sized module");
        assert_eq!(incr.error_count(), full.error_count());
        assert_eq!(incr.results.len(), full.results.len());
        for (a, b) in incr.results.iter().zip(&full.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.poisoned, b.poisoned);
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(stats.rechecked, 3);
        assert_eq!(stats.skipped, 0);
        // The failing item is never cached.
        assert!(cache.records[0].reuse.is_some());
        assert!(cache.records[1].reuse.is_none());
    }

    #[test]
    fn unchanged_suffix_splices_and_one_edit_recheck_is_equivalent() {
        let v1 = vec![good("ja"), good("jb"), good("jc")];
        let checker = Checker::default();
        let (_, cache, _) = checker
            .check_module_incremental(&all_fresh(&v1), None, &mut no_fetch)
            .expect("cold run");

        // Identical second run: everything splices.
        let slots: Vec<IncrSlot> = (0..3).map(IncrSlot::Reused).collect();
        let mut fetch = |i: usize| Some(v1[i].clone());
        let (r2, cache2, s2) = checker
            .check_module_incremental(&slots, Some(&cache), &mut fetch)
            .expect("incremental run");
        assert!(r2.is_clean());
        assert_eq!(s2.skipped, 3);
        assert_eq!(s2.rechecked, 0);
        assert_eq!(cache2.len(), 3);

        // Edit the middle item to be ill-typed; items 0 and 2 splice
        // (jc does not mention jb, so the early cutoff covers it via
        // the value-equal environment… it re-checks only if the env
        // changed — poisoning binds jb at its declared type, which is
        // exactly the type the clean run exported, so jc still splices).
        let v3 = vec![good("ja"), bad("jb"), good("jc")];
        let slots = vec![
            IncrSlot::Reused(0),
            IncrSlot::Fresh(v3[1].clone()),
            IncrSlot::Reused(2),
        ];
        let mut fetch = |i: usize| Some(v3[i].clone());
        let (r3, cache3, s3) = checker
            .check_module_incremental(&slots, Some(&cache2), &mut fetch)
            .expect("incremental run");
        let full3 = checker.check_module(&v3);
        assert_eq!(r3.error_count(), full3.error_count());
        assert_eq!(r3.results.len(), full3.results.len());
        for (a, b) in r3.results.iter().zip(&full3.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.poisoned, b.poisoned);
        }
        assert!(s3.rechecked >= 1, "{s3:?}");
        assert!(s3.skipped >= 1, "{s3:?}");
        assert!(cache3.records[1].reuse.is_none());
    }

    #[test]
    fn stale_epoch_discards_the_cache_but_still_succeeds() {
        let items = vec![good("ka"), good("kb")];
        let checker = Checker::default();
        let (_, cache, _) = checker
            .check_module_incremental(&all_fresh(&items), None, &mut no_fetch)
            .expect("cold run");
        let stale = ItemCache {
            epoch: cache.epoch.wrapping_add(1),
            ..cache
        };
        let slots: Vec<IncrSlot> = (0..2).map(IncrSlot::Reused).collect();
        let mut fetch = |i: usize| Some(items[i].clone());
        let (r, _, s) = checker
            .check_module_incremental(&slots, Some(&stale), &mut fetch)
            .expect("stale cache is discarded, not fatal");
        assert!(r.is_clean());
        assert_eq!(s.rechecked, 2);
        assert_eq!(s.skipped, 0);
    }
}
