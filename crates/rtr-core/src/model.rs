//! The model (satisfaction) relation `ρ ⊨ ψ` (Fig. 8, M-rules).
//!
//! The paper proves soundness model-theoretically: a runtime environment
//! ρ *satisfies* a proposition when its assignment of values makes the
//! proposition a tautology. This module makes the relation executable so
//! the soundness lemmas become property tests:
//!
//! * Lemma 2(2): if `Γ ⊢ e : (τ; ψ₊|ψ₋; o)`, `ρ ⊨ Γ` and `ρ ⊢ e ⇓ v`,
//!   then `v ≠ false ⇒ ρ ⊨ ψ₊` and `v = false ⇒ ρ ⊨ ψ₋`;
//! * Lemma 2(3) / Theorem 1: `⊢ v : τ`;
//! * Lemma 2(1): the non-null parts of `o` evaluate to the corresponding
//!   parts of `v`.
//!
//! Satisfaction returns `Option<bool>`: `None` means the proposition
//! mentions an object ρ cannot evaluate (e.g. an existential ghost
//! variable that names an intermediate value). Test drivers treat `None`
//! as vacuously satisfied — the quantified variable denotes the value the
//! program actually computed, which is not recorded in ρ.

use crate::check::Checker;
use crate::interp::{RtEnv, Value};
use crate::syntax::{BvCmp, BvObj, Field, LinCmp, LinObj, Obj, Prop, StrObj, Ty};

/// Evaluates a symbolic object under ρ (the `ρ(o)` of M-Type/M-Alias).
pub fn eval_obj(rho: &RtEnv, o: &Obj) -> Option<Value> {
    match o {
        Obj::Null => None,
        Obj::Path(p) => {
            let mut v = rho.lookup(p.base)?;
            for f in &p.fields {
                v = match (f, v) {
                    (Field::Fst, Value::Pair(a, _)) => (*a).clone(),
                    (Field::Snd, Value::Pair(_, b)) => (*b).clone(),
                    (Field::Len, Value::Vector(vs)) => Value::Int(vs.borrow().len() as i64),
                    (Field::Len, Value::Str(s)) => Value::Int(s.chars().count() as i64),
                    _ => return None,
                };
            }
            Some(v)
        }
        Obj::Pair(a, b) => Some(Value::Pair(
            std::rc::Rc::new(eval_obj(rho, a)?),
            std::rc::Rc::new(eval_obj(rho, b)?),
        )),
        Obj::Lin(l) => eval_lin(rho, l).map(Value::Int),
        Obj::Bv(b) => eval_bv(rho, b).map(Value::Bv),
        Obj::Str(s) => Some(Value::Str(s.clone())),
        Obj::Re(r) => Some(Value::Re(r.clone())),
    }
}

fn eval_lin(rho: &RtEnv, l: &LinObj) -> Option<i64> {
    let mut acc = l.constant;
    for (c, p) in &l.terms {
        let v = eval_obj(rho, &Obj::Path(p.clone()))?;
        let Value::Int(n) = v else { return None };
        acc = acc.checked_add(c.checked_mul(n)?)?;
    }
    Some(acc)
}

const BV_MASK: u64 = 0xffff;

fn eval_bv(rho: &RtEnv, b: &BvObj) -> Option<u64> {
    Some(match b {
        BvObj::Const(v) => *v & BV_MASK,
        BvObj::Path(p) => match eval_obj(rho, &Obj::Path(p.clone()))? {
            Value::Bv(v) => v & BV_MASK,
            _ => return None,
        },
        BvObj::Not(a) => !eval_bv(rho, a)? & BV_MASK,
        BvObj::And(a, c) => eval_bv(rho, a)? & eval_bv(rho, c)?,
        BvObj::Or(a, c) => eval_bv(rho, a)? | eval_bv(rho, c)?,
        BvObj::Xor(a, c) => eval_bv(rho, a)? ^ eval_bv(rho, c)?,
        BvObj::Add(a, c) => eval_bv(rho, a)?.wrapping_add(eval_bv(rho, c)?) & BV_MASK,
        BvObj::Sub(a, c) => eval_bv(rho, a)?.wrapping_sub(eval_bv(rho, c)?) & BV_MASK,
        BvObj::Mul(a, c) => eval_bv(rho, a)?.wrapping_mul(eval_bv(rho, c)?) & BV_MASK,
    })
}

/// `⊢ v : τ` — semantic value typing (including T-Closure, approximated
/// by re-checking the stored lambda; see module docs).
pub fn value_has_type(checker: &Checker, rho: &RtEnv, v: &Value, t: &Ty) -> bool {
    match t {
        Ty::Top => true,
        Ty::Int => matches!(v, Value::Int(_)),
        Ty::True => matches!(v, Value::Bool(true)),
        Ty::False => matches!(v, Value::Bool(false)),
        Ty::Unit => matches!(v, Value::Unit),
        Ty::BitVec => matches!(v, Value::Bv(_)),
        Ty::Str => matches!(v, Value::Str(_)),
        Ty::Regex => matches!(v, Value::Re(_)),
        Ty::Pair(a, b) => match v {
            Value::Pair(x, y) => {
                value_has_type(checker, rho, x, a) && value_has_type(checker, rho, y, b)
            }
            _ => false,
        },
        Ty::Vec(elem) => match v {
            Value::Vector(vs) => vs
                .borrow()
                .iter()
                .all(|x| value_has_type(checker, rho, x, elem)),
            _ => false,
        },
        Ty::Union(ts) => ts.iter().any(|t| value_has_type(checker, rho, v, t)),
        // M-Refine: satisfy the base type and the proposition with the
        // value substituted for the refinement variable.
        Ty::Refine(r) => {
            if !value_has_type(checker, rho, v, &r.base) {
                return false;
            }
            let ghost = crate::syntax::Symbol::fresh("model");
            let rho2 = rho.extend(ghost, v.clone());
            let prop = r.prop.subst(r.var, &Obj::var(ghost));
            satisfies(checker, &rho2, &prop).unwrap_or(true)
        }
        Ty::Fun(_) | Ty::Poly(_) => match v {
            // T-Closure: ∃Γ. ρ ⊨ Γ and Γ ⊢ λx:τ.e : R. We re-check the
            // closure's code against the expected type under an
            // environment typing its captured values.
            Value::Closure(c) => {
                let mut env = crate::env::Env::new();
                for (x, val) in c.env.bindings() {
                    let vt = type_of_value(checker, &c.env, &val, 4);
                    checker.bind(&mut env, x, &vt, checker.config.logic_fuel);
                }
                if let Some(name) = c.rec_name {
                    checker.bind(&mut env, name, t, checker.config.logic_fuel);
                }
                checker
                    .check_lambda(&env, &c.lambda, t, &|| "closure".to_owned())
                    .is_ok()
            }
            Value::Prim(p) => {
                let env = crate::env::Env::new();
                checker.subtype(&env, &crate::prims::delta(*p), t, checker.config.logic_fuel)
            }
            _ => false,
        },
        Ty::TVar(_) => false,
    }
}

/// Infers a (precise, structural) type for a runtime value; used to
/// reconstruct the Γ with ρ ⊨ Γ in T-Closure.
#[allow(clippy::only_used_in_recursion)] // signature kept uniform with value_has_type
pub fn type_of_value(checker: &Checker, rho: &RtEnv, v: &Value, depth: u32) -> Ty {
    if depth == 0 {
        return Ty::Top;
    }
    match v {
        Value::Int(_) => Ty::Int,
        Value::Bool(true) => Ty::True,
        Value::Bool(false) => Ty::False,
        Value::Bv(_) => Ty::BitVec,
        Value::Unit => Ty::Unit,
        Value::Pair(a, b) => Ty::pair(
            type_of_value(checker, rho, a, depth - 1),
            type_of_value(checker, rho, b, depth - 1),
        ),
        Value::Vector(vs) => {
            let tys: Vec<Ty> = vs
                .borrow()
                .iter()
                .map(|x| type_of_value(checker, rho, x, depth - 1))
                .collect();
            Ty::vec(Ty::union_of(tys))
        }
        Value::Str(_) => Ty::Str,
        Value::Re(_) => Ty::Regex,
        Value::Prim(p) => crate::prims::delta(*p),
        Value::Closure(_) => Ty::Top,
    }
}

/// `ρ ⊨ ψ` (M-rules). `None` = the proposition mentions an object ρ
/// cannot evaluate.
pub fn satisfies(checker: &Checker, rho: &RtEnv, p: &Prop) -> Option<bool> {
    match p {
        Prop::TT => Some(true),
        Prop::FF => Some(false),
        Prop::And(a, b) => match (satisfies(checker, rho, a), satisfies(checker, rho, b)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Prop::Or(a, b) => match (satisfies(checker, rho, a), satisfies(checker, rho, b)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        // M-Type / M-TypeNot.
        Prop::Is(o, t) => {
            let v = eval_obj(rho, o)?;
            Some(value_has_type(checker, rho, &v, t))
        }
        Prop::IsNot(o, t) => {
            let v = eval_obj(rho, o)?;
            Some(!value_has_type(checker, rho, &v, t))
        }
        // M-Alias.
        Prop::Alias(o1, o2) => {
            let v1 = eval_obj(rho, o1)?;
            let v2 = eval_obj(rho, o2)?;
            Some(v1.structurally_equal(&v2))
        }
        // M-Theory (ground evaluation decides theory atoms).
        Prop::Lin(a) => {
            let l = eval_lin(rho, &a.lhs)?;
            let r = eval_lin(rho, &a.rhs)?;
            Some(match a.cmp {
                LinCmp::Lt => l < r,
                LinCmp::Le => l <= r,
                LinCmp::Eq => l == r,
                LinCmp::Ne => l != r,
            })
        }
        Prop::Bv(a) => {
            let l = eval_bv(rho, &a.lhs)?;
            let r = eval_bv(rho, &a.rhs)?;
            let holds = match a.cmp {
                BvCmp::Eq => l == r,
                BvCmp::Ule => l <= r,
                BvCmp::Ult => l < r,
            };
            Some(holds == a.positive)
        }
        Prop::Str(a) => {
            let s = match &a.lhs {
                StrObj::Const(s) => s.clone(),
                StrObj::Path(p) => match eval_obj(rho, &Obj::Path(p.clone()))? {
                    Value::Str(s) => s,
                    _ => return None,
                },
            };
            Some(a.re.is_match(&s) == a.positive)
        }
    }
}

/// Lemma 2(1): every non-null structural part of `o` evaluates in ρ to
/// the corresponding part of `v`.
pub fn obj_agrees_with_value(rho: &RtEnv, o: &Obj, v: &Value) -> bool {
    match o {
        Obj::Null => true,
        Obj::Pair(a, b) => match v {
            Value::Pair(x, y) => {
                obj_agrees_with_value(rho, a, x) && obj_agrees_with_value(rho, b, y)
            }
            _ => false,
        },
        _ => match eval_obj(rho, o) {
            Some(w) => w.structurally_equal(v),
            None => true, // object mentions values ρ does not record
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Symbol;
    use std::rc::Rc;

    fn s(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    #[test]
    fn object_evaluation() {
        let rho = RtEnv::new()
            .extend(s("mx"), Value::Int(5))
            .extend(
                s("mp"),
                Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(true))),
            )
            .extend(
                s("mv"),
                Value::Vector(Rc::new(std::cell::RefCell::new(vec![Value::Int(0); 7]))),
            );
        assert!(matches!(
            eval_obj(&rho, &Obj::var(s("mx"))),
            Some(Value::Int(5))
        ));
        assert!(matches!(
            eval_obj(&rho, &Obj::var(s("mp")).fst()),
            Some(Value::Int(1))
        ));
        assert!(matches!(
            eval_obj(&rho, &Obj::var(s("mv")).len()),
            Some(Value::Int(7))
        ));
        // 2x + 1 = 11
        let o = Obj::var(s("mx")).scale(2).add(&Obj::int(1));
        assert!(matches!(eval_obj(&rho, &o), Some(Value::Int(11))));
        assert!(eval_obj(&rho, &Obj::var(s("absent"))).is_none());
        assert!(eval_obj(&rho, &Obj::var(s("mx")).fst()).is_none());
    }

    #[test]
    fn value_typing_structural() {
        let c = Checker::default();
        let rho = RtEnv::new();
        assert!(value_has_type(&c, &rho, &Value::Int(3), &Ty::Int));
        assert!(value_has_type(
            &c,
            &rho,
            &Value::Bool(false),
            &Ty::bool_ty()
        ));
        assert!(!value_has_type(&c, &rho, &Value::Bool(true), &Ty::Int));
        let pair = Value::Pair(Rc::new(Value::Int(1)), Rc::new(Value::Bool(true)));
        assert!(value_has_type(
            &c,
            &rho,
            &pair,
            &Ty::pair(Ty::Int, Ty::bool_ty())
        ));
        assert!(value_has_type(&c, &rho, &pair, &Ty::Top));
    }

    #[test]
    fn value_typing_refinements() {
        // 5 : {x:Int | x ≤ 10} but not {x:Int | x ≤ 3}.
        let c = Checker::default();
        let rho = RtEnv::new();
        let x = s("mrx");
        let le = |n: i64| Ty::refine(x, Ty::Int, Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(n)));
        assert!(value_has_type(&c, &rho, &Value::Int(5), &le(10)));
        assert!(!value_has_type(&c, &rho, &Value::Int(5), &le(3)));
    }

    #[test]
    fn satisfaction_of_theory_atoms() {
        let c = Checker::default();
        let rho = RtEnv::new().extend(s("sx"), Value::Int(4));
        let p = Prop::lin(Obj::var(s("sx")), LinCmp::Lt, Obj::int(10));
        assert_eq!(satisfies(&c, &rho, &p), Some(true));
        let q = Prop::lin(Obj::var(s("sx")), LinCmp::Lt, Obj::int(4));
        assert_eq!(satisfies(&c, &rho, &q), Some(false));
        // Unknown objects are None.
        let r = Prop::lin(Obj::var(s("unknown")), LinCmp::Lt, Obj::int(4));
        assert_eq!(satisfies(&c, &rho, &r), None);
    }

    #[test]
    fn closures_satisfy_their_types() {
        use crate::interp::eval_program;
        use crate::syntax::{Expr, Prim};
        let c = Checker::default();
        let x = s("cfx");
        let lam = Expr::lam(
            vec![(x, Ty::Int)],
            Expr::prim_app(Prim::Add1, vec![Expr::Var(x)]),
        );
        let v = eval_program(&lam, 1000).unwrap();
        let want = Ty::simple_fun(vec![Ty::Int], Ty::Int);
        assert!(value_has_type(&c, &RtEnv::new(), &v, &want));
        let wrong = Ty::simple_fun(vec![Ty::bool_ty()], Ty::Int);
        assert!(!value_has_type(&c, &RtEnv::new(), &v, &wrong));
    }

    #[test]
    fn obj_value_agreement() {
        let rho = RtEnv::new().extend(s("ax"), Value::Int(2));
        assert!(obj_agrees_with_value(
            &rho,
            &Obj::var(s("ax")),
            &Value::Int(2)
        ));
        assert!(!obj_agrees_with_value(
            &rho,
            &Obj::var(s("ax")),
            &Value::Int(3)
        ));
        assert!(obj_agrees_with_value(&rho, &Obj::Null, &Value::Int(9)));
    }
}
