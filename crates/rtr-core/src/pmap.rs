//! A persistent hash-array-mapped trie (HAMT) keyed by [`Symbol`].
//!
//! [`crate::env::Env`] snapshots itself at every binder, branch and case
//! split, then usually writes a handful of bindings into the copy. With
//! `Arc<HashMap<…>>` copy-on-write, the *first* write after a snapshot
//! clones the entire map, so a chain of `n` binders costs `O(n²)` map
//! entries copied. This module provides the persistent replacement: an
//! HAMT whose insert/remove clone only the `O(log n)` nodes on the path
//! to the key, structurally sharing everything else with the snapshot it
//! came from. Cloning a [`PMap`] is one `Arc` bump; writes to a clone
//! never disturb the original.
//!
//! Design notes:
//!
//! * Keys are [`Symbol`]s (interned `u32`s). The trie hashes them through
//!   a fixed odd-multiplier mix, which is a **bijection** on `u64` — two
//!   distinct symbols can never share a full hash, so the trie needs no
//!   collision nodes and its depth is bounded by ⌈64/5⌉ = 13 levels.
//! * Interior nodes are 32-way bitmap-compressed branches (the classic
//!   Bagwell layout): a `u32` bitmap plus a dense child array, indexed by
//!   `popcount(bitmap & (bit - 1))`.
//! * Writes use [`Arc::make_mut`]: when a node is uniquely owned (no live
//!   snapshot shares it) it is edited in place, so an unshared map is
//!   updated with zero allocation beyond leaf creation — snapshots only
//!   pay for the nodes they actually touch afterwards.
//! * Values are `Copy` (the environment stores interned [`crate::intern`]
//!   ids, not trees), which keeps leaves two words and iteration
//!   allocation-free.
//!
//! Iteration order is the (deterministic) hash order of the keys —
//! arbitrary but stable, like `HashMap`'s within one process. The
//! `pmap_props` property suite pins the map to `HashMap` semantics under
//! random operation sequences, including snapshot/write independence.
//!
//! With the `stats` Cargo feature, global counters track writes and the
//! nodes cloned by copy-on-write paths; `rtr check --stats` reports them
//! as a structural-sharing rate.

use std::sync::Arc;

use crate::syntax::Symbol;

#[cfg(feature = "stats")]
pub(crate) mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Insert/remove operations performed on any [`super::PMap`].
    pub static WRITES: AtomicU64 = AtomicU64::new(0);
    /// Nodes physically cloned because a write hit a shared node.
    pub static NODES_CLONED: AtomicU64 = AtomicU64::new(0);
    /// Entries that would have been copied had the write cloned the whole
    /// map (i.e. the map's size at each write) — the denominator of the
    /// structural-share rate.
    pub static ENTRIES_SPARED: AtomicU64 = AtomicU64::new(0);

    pub(super) fn count_write(map_len: usize) {
        WRITES.fetch_add(1, Ordering::Relaxed);
        ENTRIES_SPARED.fetch_add(map_len as u64, Ordering::Relaxed);
    }

    pub(super) fn count_clone() {
        NODES_CLONED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Bits consumed per trie level.
const BITS: u32 = 5;
const LEVEL_MASK: u64 = (1 << BITS) - 1;

/// Mixes a symbol into a 64-bit hash. An odd multiplier makes this a
/// bijection on `u64`, so distinct symbols always differ somewhere in the
/// 64 bits and the trie never needs collision buckets.
fn hash(key: Symbol) -> u64 {
    (key.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[derive(Debug)]
enum Node<V> {
    /// A single key/value pair.
    Leaf(Symbol, V),
    /// A bitmap-compressed 32-way branch; `children[i]` corresponds to
    /// the `i`-th set bit of `bitmap`.
    Branch {
        bitmap: u32,
        children: Vec<Arc<Node<V>>>,
    },
}

// Manual impl: children are shared by `Arc` clone, values by `Copy`.
impl<V: Copy> Clone for Node<V> {
    fn clone(&self) -> Self {
        match self {
            Node::Leaf(k, v) => Node::Leaf(*k, *v),
            Node::Branch { bitmap, children } => Node::Branch {
                bitmap: *bitmap,
                children: children.clone(),
            },
        }
    }
}

/// A persistent map from [`Symbol`] to a `Copy` value. See the module
/// docs for the design.
#[derive(Debug)]
pub struct PMap<V> {
    root: Option<Arc<Node<V>>>,
    len: usize,
}

impl<V> Clone for PMap<V> {
    fn clone(&self) -> Self {
        PMap {
            root: self.root.clone(),
            len: self.len,
        }
    }
}

impl<V> Default for PMap<V> {
    fn default() -> Self {
        PMap { root: None, len: 0 }
    }
}

impl<V: Copy> PMap<V> {
    /// An empty map.
    pub fn new() -> PMap<V> {
        PMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up `key`.
    pub fn get(&self, key: Symbol) -> Option<&V> {
        let mut node = self.root.as_deref()?;
        let h = hash(key);
        let mut shift = 0;
        loop {
            match node {
                Node::Leaf(k, v) => return (*k == key).then_some(v),
                Node::Branch { bitmap, children } => {
                    let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
                    if bitmap & bit == 0 {
                        return None;
                    }
                    node = &children[(bitmap & (bit - 1)).count_ones() as usize];
                    shift += BITS;
                }
            }
        }
    }

    /// Is `key` present?
    pub fn contains_key(&self, key: Symbol) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key ↦ value`, returning the previous value if any. Only
    /// the path to the key is copied; all other nodes stay shared with
    /// snapshots.
    pub fn insert(&mut self, key: Symbol, value: V) -> Option<V> {
        #[cfg(feature = "stats")]
        stats::count_write(self.len);
        let prev = match &mut self.root {
            None => {
                self.root = Some(Arc::new(Node::Leaf(key, value)));
                None
            }
            Some(root) => insert_rec(root, 0, hash(key), key, value),
        };
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: Symbol) -> Option<V> {
        // Full read-only probe first: `remove_rec` copies shared nodes on
        // its way down (`Arc::make_mut`), so a miss must be detected
        // before any write — `Env::unbind` removes unconditionally and
        // usually misses on freshly snapshot-shared maps.
        if !self.contains_key(key) {
            return None;
        }
        #[cfg(feature = "stats")]
        stats::count_write(self.len);
        let root = self.root.as_mut()?;
        let (removed, empty) = remove_rec(root, 0, hash(key), key);
        if empty {
            self.root = None;
        }
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Iterates over all entries in deterministic (hash) order.
    pub fn iter(&self) -> Iter<'_, V> {
        Iter {
            stack: self.root.as_deref().map(|n| vec![n]).unwrap_or_default(),
        }
    }
}

impl<V: Copy + PartialEq> PMap<V> {
    /// Structural equality: the same key set mapped to equal values.
    ///
    /// A shared root is an `O(1)` yes (snapshots that were never written
    /// to compare in one pointer check — the incremental module driver's
    /// common case). Otherwise the entry sequences are compared: because
    /// the key hash is a bijection, iteration order is a function of the
    /// key *set* alone, independent of insertion/removal history, so two
    /// maps with equal contents always enumerate identically.
    pub fn same_entries(&self, other: &PMap<V>) -> bool {
        if self.len != other.len {
            return false;
        }
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b) || self.iter().eq(other.iter()),
            _ => false,
        }
    }
}

/// Clones-on-write access to a node, counting shared-node copies.
fn make_mut<V: Copy>(node: &mut Arc<Node<V>>) -> &mut Node<V> {
    #[cfg(feature = "stats")]
    if Arc::strong_count(node) != 1 {
        stats::count_clone();
    }
    Arc::make_mut(node)
}

fn insert_rec<V: Copy>(
    node: &mut Arc<Node<V>>,
    shift: u32,
    h: u64,
    key: Symbol,
    value: V,
) -> Option<V> {
    match make_mut(node) {
        Node::Leaf(k, v) if *k == key => Some(std::mem::replace(v, value)),
        leaf @ Node::Leaf(..) => {
            let Node::Leaf(k0, v0) = *leaf else {
                unreachable!()
            };
            *leaf = join(shift, hash(k0), Arc::new(Node::Leaf(k0, v0)), h, key, value);
            None
        }
        Node::Branch { bitmap, children } => {
            let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
            let i = (*bitmap & (bit - 1)).count_ones() as usize;
            if *bitmap & bit != 0 {
                insert_rec(&mut children[i], shift + BITS, h, key, value)
            } else {
                children.insert(i, Arc::new(Node::Leaf(key, value)));
                *bitmap |= bit;
                None
            }
        }
    }
}

/// Builds the minimal branch spine separating an existing leaf from a new
/// entry. Terminates because the two full hashes differ (bijective mix).
fn join<V: Copy>(
    shift: u32,
    h0: u64,
    leaf0: Arc<Node<V>>,
    h1: u64,
    key: Symbol,
    value: V,
) -> Node<V> {
    let c0 = (h0 >> shift) & LEVEL_MASK;
    let c1 = (h1 >> shift) & LEVEL_MASK;
    if c0 == c1 {
        Node::Branch {
            bitmap: 1 << c0,
            children: vec![Arc::new(join(shift + BITS, h0, leaf0, h1, key, value))],
        }
    } else {
        let leaf1 = Arc::new(Node::Leaf(key, value));
        let (bitmap, children) = if c0 < c1 {
            ((1 << c0) | (1 << c1), vec![leaf0, leaf1])
        } else {
            ((1 << c0) | (1 << c1), vec![leaf1, leaf0])
        };
        Node::Branch { bitmap, children }
    }
}

/// Removes `key` below `node`; returns the removed value and whether the
/// node is now empty (and should be dropped by the parent).
fn remove_rec<V: Copy>(
    node: &mut Arc<Node<V>>,
    shift: u32,
    h: u64,
    key: Symbol,
) -> (Option<V>, bool) {
    // Read-only probe first so misses never clone shared nodes.
    match &**node {
        Node::Leaf(k, _) if *k != key => return (None, false),
        Node::Branch { bitmap, .. } => {
            let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
            if bitmap & bit == 0 {
                return (None, false);
            }
        }
        Node::Leaf(..) => {}
    }
    let (removed, collapse) = match make_mut(node) {
        Node::Leaf(_, v) => return (Some(*v), true),
        Node::Branch { bitmap, children } => {
            let bit = 1u32 << ((h >> shift) & LEVEL_MASK);
            let i = (*bitmap & (bit - 1)).count_ones() as usize;
            let (removed, child_empty) = remove_rec(&mut children[i], shift + BITS, h, key);
            if child_empty {
                children.remove(i);
                *bitmap &= !bit;
            }
            if children.is_empty() {
                return (removed, true);
            }
            // Collapse a single remaining leaf upward to keep paths short.
            if children.len() == 1 && matches!(&*children[0], Node::Leaf(..)) {
                (
                    removed,
                    Some((*children.pop().expect("len checked")).clone()),
                )
            } else {
                (removed, None)
            }
        }
    };
    if let Some(leaf) = collapse {
        // The node is already uniquely owned (make_mut above).
        *Arc::make_mut(node) = leaf;
    }
    (removed, false)
}

/// Borrowing iterator over a [`PMap`] in deterministic hash order.
pub struct Iter<'a, V> {
    stack: Vec<&'a Node<V>>,
}

impl<'a, V: Copy> Iterator for Iter<'a, V> {
    type Item = (Symbol, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.stack.pop()? {
                Node::Leaf(k, v) => return Some((*k, v)),
                Node::Branch { children, .. } => {
                    // Push in reverse so children come out low-bit first.
                    self.stack.extend(children.iter().rev().map(|c| &**c));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u32) -> Symbol {
        Symbol::intern(&format!("pm{n}"))
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: PMap<u32> = PMap::new();
        assert!(m.is_empty());
        for i in 0..100 {
            assert_eq!(m.insert(s(i), i), None);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100 {
            assert_eq!(m.get(s(i)), Some(&i));
        }
        assert_eq!(m.get(Symbol::intern("absent")), None);
        assert_eq!(m.insert(s(7), 700), Some(7));
        assert_eq!(m.len(), 100);
        for i in 0..100 {
            let expect = if i == 7 { 700 } else { i };
            assert_eq!(m.remove(s(i)), Some(expect));
            assert_eq!(m.get(s(i)), None);
        }
        assert!(m.is_empty());
        assert_eq!(m.remove(s(0)), None);
    }

    #[test]
    fn snapshots_are_independent() {
        let mut m: PMap<u32> = PMap::new();
        for i in 0..32 {
            m.insert(s(i), i);
        }
        let snapshot = m.clone();
        m.insert(s(0), 999);
        m.remove(s(1));
        m.insert(s(100), 100);
        assert_eq!(snapshot.get(s(0)), Some(&0));
        assert_eq!(snapshot.get(s(1)), Some(&1));
        assert_eq!(snapshot.get(s(100)), None);
        assert_eq!(snapshot.len(), 32);
        assert_eq!(m.get(s(0)), Some(&999));
        assert_eq!(m.get(s(1)), None);
        assert_eq!(m.len(), 32);
    }

    #[test]
    fn iteration_visits_every_entry_once() {
        let mut m: PMap<u32> = PMap::new();
        for i in 0..257 {
            m.insert(s(i), i);
        }
        let mut seen: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..257).collect::<Vec<_>>());
        // Iteration order is deterministic.
        let a: Vec<Symbol> = m.iter().map(|(k, _)| k).collect();
        let b: Vec<Symbol> = m.clone().iter().map(|(k, _)| k).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn same_entries_is_history_independent() {
        let mut a: PMap<u32> = PMap::new();
        for i in 0..64 {
            a.insert(s(i), i);
        }
        // Same final contents by a different history (extra inserts and
        // removes leave a structurally different, equal trie).
        let mut b: PMap<u32> = PMap::new();
        for i in (0..64).rev() {
            b.insert(s(i), 0);
        }
        for i in 64..90 {
            b.insert(s(i), i);
        }
        for i in 64..90 {
            b.remove(s(i));
        }
        for i in 0..64 {
            b.insert(s(i), i);
        }
        assert!(a.same_entries(&b));
        assert!(a.same_entries(&a.clone()), "shared-root fast path");
        b.insert(s(3), 999);
        assert!(!a.same_entries(&b));
        b.insert(s(3), 3);
        b.remove(s(63));
        assert!(!a.same_entries(&b), "missing key must be detected");
    }

    #[test]
    fn remove_collapses_single_leaf_branches() {
        let mut m: PMap<u32> = PMap::new();
        for i in 0..64 {
            m.insert(s(i), i);
        }
        for i in 1..64 {
            m.remove(s(i));
        }
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(s(0)), Some(&0));
        // The root should have collapsed back toward a leaf (depth ≤ 13
        // either way, but a collapsed map answers in one hop).
        match m.root.as_deref() {
            Some(Node::Leaf(k, 0)) => assert_eq!(*k, s(0)),
            other => {
                // Collapse is best-effort (only single-leaf branches);
                // correctness never depends on it.
                assert!(other.is_some());
            }
        }
    }
}
