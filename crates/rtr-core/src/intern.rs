//! Hash-consing interner for types, propositions and symbolic objects.
//!
//! The checker's hot judgments (`subtype`, `proves`, `update±`,
//! `env_inconsistent`) are re-derived many times over structurally
//! identical inputs; deep tree comparison and deep `HashMap` keys make
//! that expensive. This module canonicalizes [`Ty`]/[`Prop`]/[`Obj`]
//! values into arena-backed `u32` handles ([`TyId`]/[`PropId`]/[`ObjId`])
//! with O(1) equality and hashing. Since the id-native environment
//! refactor, ids are not just memo keys: [`crate::env::Env`] *stores*
//! `TyId`/`ObjId` in its persistent maps, and the `update±` metafunction
//! runs id-to-id, so this module also provides **id-level constructors
//! and destructors** (`TyId::union_of`, `TyId::pair`, `TyId::refine`,
//! `TyId::project`, `TyId::union_members`, …) that build or take apart
//! canonical types without ever materializing a tree on the hot path.
//!
//! Canonicalization normalizes on the way in:
//!
//! * unions are flattened, deduplicated and sorted (base-type members in
//!   a fixed structural rank order — so `Bool` always reads
//!   `(U True False)` — compound members by id), and singleton unions
//!   collapse to their member;
//! * refinements with a trivial (`tt`) proposition collapse to their base;
//! * conjunction/disjunction chains are flattened and deduplicated with
//!   `tt`/`ff` unit/absorption short-circuits;
//! * type-membership and alias atoms over the null object vacate to `tt`
//!   (§3.1), and pairs of null objects collapse to the null object.
//!
//! Two semantically-equal-modulo-normalization trees therefore intern to
//! the same id. Ids are `Copy + Send + Sync`, so they can cross thread
//! boundaries where deep trees cannot.
//!
//! **Per-id metadata** is computed once at intern time and cached in a
//! side table parallel to each arena: an environment-freedom flag (no
//! refinement/function/polymorphic component anywhere — subtype verdicts
//! need no environment), a conservative set of mentioned object-level
//! variables (`TyId::free_obj_vars` / `mentions_var` — this is what makes
//! `Env::unbind` a pure map remove in the common case), a
//! mentions-refinement flag, and a solver-relevant theory mask
//! ([`THEORY_LIN`]/[`THEORY_BV`]/[`THEORY_STR`]). The environment-freedom
//! and fresh-region flags are packed into the id itself, so the hottest
//! checks need no arena lookup at all.
//!
//! **Arena regions.** The interner is global (like
//! [`crate::syntax::Symbol`]'s). Canonical entries whose symbols are all
//! ordinary interned names go to the *permanent* arena and live for the
//! program's lifetime. Trees that mention a [`Symbol::fresh`] name — ghost
//! existentials, selfification binders, generated parameter names — can
//! never recur across checked modules, so they are routed to a separate
//! *fresh region* with its own (capped, flushed-on-overflow) raw-tree
//! memo; the permanent arena entry vectors and the permanent raw-tree
//! memo stop growing per checked module. Honesty note: the canonical
//! *lookup* maps (`*_canon` and the id-level structure maps) still gain
//! one entry per fresh-region insert — that is the dedup index the
//! region's ids rely on, and reclaiming it together with the region's
//! entries is what the generational-eviction ROADMAP follow-on is for;
//! the region split plus [`arena_stats`] (which reports both regions) is
//! the groundwork that makes eviction possible without disturbing
//! permanent ids.

use std::collections::HashSet;
use std::sync::{Arc, Mutex, OnceLock};

use crate::cache::LockRecover;

use rtr_solver::fxhash::FxHashMap;

use crate::syntax::{Field, FunTy, Obj, PolyTy, Prop, RefineTy, Symbol, Ty, TyResult};

/// Theory-mask bit: the type mentions linear-arithmetic atoms.
pub const THEORY_LIN: u8 = 1;
/// Theory-mask bit: the type mentions bitvector atoms.
pub const THEORY_BV: u8 = 2;
/// Theory-mask bit: the type mentions regex-membership atoms.
pub const THEORY_STR: u8 = 4;

/// Id bit marking entries in the fresh-named region.
const FRESH_BIT: u32 = 1 << 31;
/// Id bit (types only) marking environment-free types.
const ENV_FREE_BIT: u32 = 1 << 30;
/// Index mask for type ids (both flag bits stripped).
const TY_IDX: u32 = ENV_FREE_BIT - 1;
/// Index mask for proposition/object ids (fresh bit stripped).
const IDX: u32 = FRESH_BIT - 1;

/// An interned, canonicalized type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TyId(u32);

/// An interned, canonicalized proposition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PropId(u32);

/// An interned, canonicalized symbolic object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjId(u32);

impl TyId {
    /// Interns (and canonicalizes) a type.
    pub fn of(t: &Ty) -> TyId {
        TyId(store().lock_recover().ty(t))
    }

    /// Interns `t` and reports whether its subtype verdicts are
    /// *environment-independent* (see [`TyId::env_free`]).
    pub fn of_with_env_free(t: &Ty) -> (TyId, bool) {
        let id = TyId::of(t);
        (id, id.env_free())
    }

    /// The canonical type this id stands for.
    pub fn get(self) -> Arc<Ty> {
        store().lock_recover().ty_arc(self.0).clone()
    }

    /// The raw arena index (flag bits included).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Is this type *environment-free*: no refinement, function or
    /// polymorphic component anywhere, so it is compared purely
    /// structurally and one cached verdict serves every environment?
    /// Read from a bit packed into the id — no arena lookup.
    pub fn env_free(self) -> bool {
        self.0 & ENV_FREE_BIT != 0
    }

    /// Does this type mention a [`Symbol::fresh`] name (and therefore
    /// live in the interner's fresh region)?
    pub fn in_fresh_region(self) -> bool {
        self.0 & FRESH_BIT != 0
    }

    /// The canonical `⊤` id.
    pub fn top() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::Top))
    }

    /// The canonical `⊥` (empty union) id.
    pub fn bot() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::bot()))
    }

    /// The canonical `Int` id.
    pub fn int() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::Int))
    }

    /// The canonical `BitVec` id.
    pub fn bitvec() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::BitVec))
    }

    /// The canonical `Str` id.
    pub fn str_ty() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::Str))
    }

    /// The canonical `Regex` id.
    pub fn regex() -> TyId {
        static ID: OnceLock<TyId> = OnceLock::new();
        *ID.get_or_init(|| TyId::of(&Ty::Regex))
    }

    /// The canonical union of the given members (flattened, deduplicated,
    /// canonically sorted; singletons collapse). Never materializes a
    /// tree when the union already exists.
    pub fn union_of(members: &[TyId]) -> TyId {
        let mut s = store().lock_recover();
        let ids: Vec<u32> = members.iter().map(|m| m.0).collect();
        TyId(s.make_union(ids))
    }

    /// The canonical pair type `a × b`.
    pub fn pair(a: TyId, b: TyId) -> TyId {
        TyId(store().lock_recover().make_pair(a.0, b.0))
    }

    /// The canonical vector type `(Vecof elem)`.
    pub fn vec(elem: TyId) -> TyId {
        TyId(store().lock_recover().make_vec(elem.0))
    }

    /// The canonical refinement `{var:base | prop}`; collapses to `base`
    /// when the proposition is trivial.
    pub fn refine(var: Symbol, base: TyId, prop: PropId) -> TyId {
        TyId(store().lock_recover().make_refine(var, base.0, prop.0))
    }

    /// The member ids of a union type (`None` for non-unions).
    pub fn union_members(self) -> Option<Vec<TyId>> {
        store()
            .lock_recover()
            .ty_unions
            .get(&self.0)
            .map(|ms| ms.iter().map(|&m| TyId(m)).collect())
    }

    /// The component ids of a pair type (`None` for non-pairs).
    pub fn pair_parts(self) -> Option<(TyId, TyId)> {
        store()
            .lock_recover()
            .ty_pairs
            .get(&self.0)
            .map(|&(a, b)| (TyId(a), TyId(b)))
    }

    /// The element id of a vector type (`None` for non-vectors).
    pub fn vec_elem(self) -> Option<TyId> {
        store()
            .lock_recover()
            .ty_vecs
            .get(&self.0)
            .copied()
            .map(TyId)
    }

    /// The `(binder, base, proposition)` of a refinement type (`None`
    /// for non-refinements).
    pub fn refine_parts(self) -> Option<(Symbol, TyId, PropId)> {
        store()
            .lock_recover()
            .ty_refines
            .get(&self.0)
            .map(|&(v, b, p)| (v, TyId(b), PropId(p)))
    }

    /// Field projection at the id level (memoized in the interner):
    /// `len` projects to `Int`, pairs to their component, unions
    /// pointwise, refinements through their base, everything else to `⊤`.
    pub fn project(self, f: Field) -> TyId {
        TyId(store().lock_recover().project(self.0, f))
    }

    /// The object-level variables this type mentions — a conservative
    /// over-approximation (binder names are included), computed once at
    /// intern time. `mentions_var(x) == false` is therefore a proof that
    /// substituting for `x` leaves the type unchanged, which is what lets
    /// `Env::unbind` skip whole-map rewrites.
    pub fn free_obj_vars(self) -> Arc<[Symbol]> {
        store().lock_recover().ty_meta(self.0).vars.clone()
    }

    /// Does the type mention variable `x` (conservatively)? See
    /// [`TyId::free_obj_vars`].
    pub fn mentions_var(self, x: Symbol) -> bool {
        store()
            .lock_recover()
            .ty_meta(self.0)
            .vars
            .binary_search(&x)
            .is_ok()
    }

    /// Does the type mention no object-level variables at all?
    pub fn is_closed(self) -> bool {
        store().lock_recover().ty_meta(self.0).vars.is_empty()
    }

    /// Does the type contain a refinement anywhere?
    pub fn has_refinement(self) -> bool {
        store().lock_recover().ty_meta(self.0).has_refinement
    }

    /// Which solver theories do the type's propositions mention? A union
    /// of [`THEORY_LIN`]/[`THEORY_BV`]/[`THEORY_STR`] bits, precomputed
    /// at intern time so theory-gating is a bit test.
    pub fn theory_mask(self) -> u8 {
        store().lock_recover().ty_meta(self.0).theory_mask
    }
}

impl PropId {
    /// Interns (and canonicalizes) a proposition.
    pub fn of(p: &Prop) -> PropId {
        PropId(store().lock_recover().prop(p))
    }

    /// The canonical proposition this id stands for.
    pub fn get(self) -> Arc<Prop> {
        store().lock_recover().prop_arc(self.0).clone()
    }

    /// The raw arena index (flag bits included).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Does this proposition mention a [`Symbol::fresh`] name?
    pub fn in_fresh_region(self) -> bool {
        self.0 & FRESH_BIT != 0
    }

    /// Does the proposition mention variable `x` free? Exactly matches
    /// [`Prop::free_vars`] (object-level variables; types embedded in
    /// membership atoms are not consulted), cached per id.
    pub fn mentions_var(self, x: Symbol) -> bool {
        store()
            .lock_recover()
            .prop_meta(self.0)
            .free_vars
            .binary_search(&x)
            .is_ok()
    }

    /// Sorted free object-level variables, exactly [`Prop::free_vars`],
    /// cached per id.
    pub fn free_vars(self) -> Arc<[Symbol]> {
        store().lock_recover().prop_meta(self.0).free_vars.clone()
    }

    /// Which solver theories does the proposition mention? A union of
    /// [`THEORY_LIN`]/[`THEORY_BV`]/[`THEORY_STR`] bits, precomputed at
    /// intern time so relevance-gating is a bit test.
    pub fn theory_mask(self) -> u8 {
        store().lock_recover().prop_meta(self.0).theory_mask
    }
}

impl ObjId {
    /// Interns (and canonicalizes) a symbolic object.
    pub fn of(o: &Obj) -> ObjId {
        ObjId(store().lock_recover().obj(o))
    }

    /// The canonical object this id stands for.
    pub fn get(self) -> Arc<Obj> {
        store().lock_recover().obj_arc(self.0).clone()
    }

    /// The raw arena index (flag bits included).
    pub fn as_u32(self) -> u32 {
        self.0
    }

    /// Does this object mention a [`Symbol::fresh`] name?
    pub fn in_fresh_region(self) -> bool {
        self.0 & FRESH_BIT != 0
    }

    /// Does the object mention variable `x`? Exactly matches
    /// [`Obj::free_vars`], cached per id.
    pub fn mentions_var(self, x: Symbol) -> bool {
        store()
            .lock_recover()
            .obj_meta(self.0)
            .free_vars
            .binary_search(&x)
            .is_ok()
    }
}

/// Batched [`TyId::mentions_var`]: one interner lock for the whole id
/// set. `Env::unbind` uses these to scan an environment's stored ids
/// without a per-id lock round-trip (which would serialize parallel
/// corpus checking on the global interner mutex).
pub fn tys_mentioning(x: Symbol, ids: impl IntoIterator<Item = TyId>) -> Vec<bool> {
    let s = store().lock_recover();
    ids.into_iter()
        .map(|id| s.ty_meta(id.0).vars.binary_search(&x).is_ok())
        .collect()
}

/// Batched [`PropId::mentions_var`]; see [`tys_mentioning`].
pub fn props_mentioning(x: Symbol, ids: impl IntoIterator<Item = PropId>) -> Vec<bool> {
    let s = store().lock_recover();
    ids.into_iter()
        .map(|id| s.prop_meta(id.0).free_vars.binary_search(&x).is_ok())
        .collect()
}

/// Batched [`ObjId::mentions_var`]; see [`tys_mentioning`].
pub fn objs_mentioning(x: Symbol, ids: impl IntoIterator<Item = ObjId>) -> Vec<bool> {
    let s = store().lock_recover();
    ids.into_iter()
        .map(|id| s.obj_meta(id.0).free_vars.binary_search(&x).is_ok())
        .collect()
}

/// Batched [`PropId::free_vars`] + [`PropId::theory_mask`]: one interner
/// lock for the whole id set. The lazy split scheduler uses these to
/// build per-clause relevance metadata without a per-id lock round-trip.
pub fn props_relevance(ids: impl IntoIterator<Item = PropId>) -> Vec<(Arc<[Symbol]>, u8)> {
    let s = store().lock_recover();
    ids.into_iter()
        .map(|id| {
            let m = s.prop_meta(id.0);
            (m.free_vars.clone(), m.theory_mask)
        })
        .collect()
}

/// Relevance metadata — sorted free object-level variables and
/// `THEORY_*` bits — of a *goal* proposition, computed without
/// interning it (goals are transient; forcing them into the arena just
/// to read metadata would grow it for no reuse).
pub fn prop_relevance(p: &Prop) -> (Vec<Symbol>, u8) {
    let mut fv = HashSet::new();
    p.free_vars(&mut fv);
    let mut vars: Vec<Symbol> = fv.into_iter().collect();
    vars.sort_unstable();
    let mut scan = Scan::default();
    scan.prop(p);
    (vars, scan.mask)
}

/// Canonicalizes a type (flattened/deduped/sorted unions, collapsed
/// trivial refinements) without keeping the id.
pub fn canon_ty(t: &Ty) -> Arc<Ty> {
    TyId::of(t).get()
}

/// Canonicalizes a proposition.
pub fn canon_prop(p: &Prop) -> Arc<Prop> {
    PropId::of(p).get()
}

/// Canonicalizes a symbolic object.
pub fn canon_obj(o: &Obj) -> Arc<Obj> {
    ObjId::of(o).get()
}

/// Current *total* arena sizes `(types, propositions, objects)` across
/// both regions — a coarse gauge of interner growth for diagnostics.
pub fn arena_sizes() -> (usize, usize, usize) {
    let s = arena_stats();
    (
        s.tys + s.fresh_tys,
        s.props + s.fresh_props,
        s.objs + s.fresh_objs,
    )
}

/// Per-region arena sizes. The permanent region holds canonical trees of
/// ordinary interned names; the fresh region holds trees mentioning
/// [`Symbol::fresh`] names, which never recur across checked modules.
/// Comparing snapshots around a `check_source` call measures how much
/// each module leaks into which region.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Permanent type entries.
    pub tys: usize,
    /// Permanent proposition entries.
    pub props: usize,
    /// Permanent object entries.
    pub objs: usize,
    /// Fresh-region type entries.
    pub fresh_tys: usize,
    /// Fresh-region proposition entries.
    pub fresh_props: usize,
    /// Fresh-region object entries.
    pub fresh_objs: usize,
}

/// Snapshot of the interner's per-region sizes.
pub fn arena_stats() -> ArenaStats {
    let s = store().lock_recover();
    ArenaStats {
        tys: s.tys.len(),
        props: s.props.len(),
        objs: s.objs.len(),
        fresh_tys: s.fresh_tys.len(),
        fresh_props: s.fresh_props.len(),
        fresh_objs: s.fresh_objs.len(),
    }
}

/// Intern-time metadata for a type, computed once per arena entry.
struct TyMeta {
    /// Conservative, sorted set of mentioned object-level variables
    /// (binders included — an over-approximation that is exact about
    /// *absence*).
    vars: Arc<[Symbol]>,
    /// Union of `THEORY_*` bits mentioned by embedded propositions.
    theory_mask: u8,
    /// Does the type contain a refinement anywhere?
    has_refinement: bool,
    /// Canonical sort rank for union members (base types in declaration
    /// order, compound types after).
    rank: u8,
}

/// Intern-time metadata for a proposition.
struct PropMeta {
    /// Sorted free object-level variables, exactly [`Prop::free_vars`].
    free_vars: Arc<[Symbol]>,
    /// Union of `THEORY_*` bits mentioned anywhere in the proposition
    /// (embedded refinement types included).
    theory_mask: u8,
}

/// Intern-time metadata for an object.
struct ObjMeta {
    /// Sorted free variables, exactly [`Obj::free_vars`].
    free_vars: Arc<[Symbol]>,
}

#[derive(Default)]
struct Store {
    // --- permanent region -------------------------------------------------
    tys: Vec<Arc<Ty>>,
    ty_metas: Vec<TyMeta>,
    props: Vec<Arc<Prop>>,
    prop_metas: Vec<PropMeta>,
    objs: Vec<Arc<Obj>>,
    obj_metas: Vec<ObjMeta>,
    // --- fresh region (trees mentioning `Symbol::fresh` names) -----------
    fresh_tys: Vec<Arc<Ty>>,
    fresh_ty_metas: Vec<TyMeta>,
    fresh_props: Vec<Arc<Prop>>,
    fresh_prop_metas: Vec<PropMeta>,
    fresh_objs: Vec<Arc<Obj>>,
    fresh_obj_metas: Vec<ObjMeta>,
    // Generational eviction offsets: a fresh id's index is
    // `base + position`, and bases only ever advance (monotone), so an
    // evicted id can never alias a live entry — a stale access panics in
    // the region accessors instead (see `evict_fresh_region`).
    fresh_ty_base: usize,
    fresh_prop_base: usize,
    fresh_obj_base: usize,
    // --- canonical lookup (both regions) ----------------------------------
    ty_canon: FxHashMap<Arc<Ty>, u32>,
    prop_canon: FxHashMap<Arc<Prop>, u32>,
    obj_canon: FxHashMap<Arc<Obj>, u32>,
    // --- raw-tree memos (permanent names / fresh names, separately capped)
    ty_memo: FxHashMap<Ty, u32>,
    fresh_ty_memo: FxHashMap<Ty, u32>,
    prop_memo: FxHashMap<Prop, u32>,
    fresh_prop_memo: FxHashMap<Prop, u32>,
    obj_memo: FxHashMap<Obj, u32>,
    fresh_obj_memo: FxHashMap<Obj, u32>,
    // --- id-level structure (constructors/destructors) --------------------
    /// Member ids of interned union types.
    ty_unions: FxHashMap<u32, Vec<u32>>,
    ty_union_canon: FxHashMap<Vec<u32>, u32>,
    ty_pairs: FxHashMap<u32, (u32, u32)>,
    ty_pair_canon: FxHashMap<(u32, u32), u32>,
    ty_vecs: FxHashMap<u32, u32>,
    ty_vec_canon: FxHashMap<u32, u32>,
    ty_refines: FxHashMap<u32, (Symbol, u32, u32)>,
    ty_refine_canon: FxHashMap<(Symbol, u32, u32), u32>,
    /// Memoized id-level field projections.
    ty_projections: FxHashMap<(u32, Field), u32>,
    /// Conjunct ids of interned `And` chains (flattening support).
    prop_ands: FxHashMap<u32, Vec<u32>>,
    /// Disjunct ids of interned `Or` chains (flattening support).
    prop_ors: FxHashMap<u32, Vec<u32>>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// Resolves a fresh-region index against its generational base,
/// panicking on a stale (pre-eviction) id — loudly wrong beats silently
/// aliased, and the per-item panic isolation turns it into one `E0203`
/// diagnostic if it ever fires.
fn fresh_slot(idx: usize, base: usize, what: &str) -> usize {
    idx.checked_sub(base).unwrap_or_else(|| {
        panic!("stale fresh {what}: its interner region was evicted while the id was held")
    })
}

/// Checks currently running (interner ids live on their stacks/envs).
/// Eviction only proceeds when this is zero.
static ACTIVE_CHECKS: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Bumped once per fresh-region eviction; caches compare against their
/// last-seen value to drop id-valued entries (see
/// `crate::cache::Caches::reconcile_evictions`).
static EVICT_EPOCH: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// RAII marker for an in-flight check; created by the checking entry
/// points before any interning so [`maybe_evict_fresh`] never pulls the
/// fresh region out from under a live judgment.
pub struct CheckGuard(());

impl Drop for CheckGuard {
    fn drop(&mut self) {
        ACTIVE_CHECKS.fetch_sub(1, std::sync::atomic::Ordering::Release);
    }
}

/// Marks a check as in-flight for the duration of the returned guard.
pub fn check_guard() -> CheckGuard {
    ACTIVE_CHECKS.fetch_add(1, std::sync::atomic::Ordering::Acquire);
    CheckGuard(())
}

/// The number of fresh-region evictions performed so far.
pub fn evict_epoch() -> u64 {
    EVICT_EPOCH.load(std::sync::atomic::Ordering::Acquire)
}

/// Evicts the fresh arena region if it holds more than `threshold`
/// entries (types + propositions + objects) **and** no check is
/// currently running. Returns whether an eviction happened.
///
/// Called between checks (e.g. by the session layer): fresh-named trees
/// never recur across checked modules, so everything the region
/// accumulated for the last module is garbage by now. The monotone id
/// scheme makes this safe even against stragglers: an id minted before
/// the eviction can never read a later entry — it panics instead.
pub fn maybe_evict_fresh(threshold: usize) -> bool {
    let mut s = store().lock_recover();
    // Read under the store lock: a new check must intern through this
    // same lock, so a guard registered after this load cannot have
    // minted fresh ids before the eviction below.
    if ACTIVE_CHECKS.load(std::sync::atomic::Ordering::Acquire) != 0 {
        return false;
    }
    if s.fresh_tys.len() + s.fresh_props.len() + s.fresh_objs.len() <= threshold {
        return false;
    }
    s.evict_fresh_region();
    EVICT_EPOCH.fetch_add(1, std::sync::atomic::Ordering::Release);
    true
}

/// Cap on the permanent raw-tree memo maps (`*_memo`). These maps clone
/// every raw input tree as a key purely to skip re-canonicalization;
/// clearing them is always sound (the canonical arenas — which ids index
/// into — are untouched, so existing ids stay valid).
const MEMO_CAP: usize = 1 << 20;

/// Cap on the fresh-region raw-tree memos. Much smaller: fresh-named raw
/// trees recur only within one checked module, so there is no point
/// holding a module's worth of gensym'd keys after it finishes.
const FRESH_MEMO_CAP: usize = 1 << 16;

/// One tree-walk collecting everything the per-id metadata needs.
#[derive(Default)]
struct Scan {
    /// Object-level variable mentions, binders included.
    vars: HashSet<Symbol>,
    /// Type-variable mentions (only consulted for freshness).
    tvars: HashSet<Symbol>,
    mask: u8,
    has_refinement: bool,
}

impl Scan {
    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex => {}
            Ty::TVar(a) => {
                self.tvars.insert(*a);
            }
            Ty::Pair(a, b) => {
                self.ty(a);
                self.ty(b);
            }
            Ty::Vec(e) => self.ty(e),
            Ty::Union(ts) => ts.iter().for_each(|t| self.ty(t)),
            Ty::Fun(f) => {
                for (x, d) in &f.params {
                    self.vars.insert(*x);
                    self.ty(d);
                }
                self.result(&f.range);
            }
            Ty::Refine(r) => {
                self.has_refinement = true;
                self.vars.insert(r.var);
                self.ty(&r.base);
                self.prop(&r.prop);
            }
            Ty::Poly(p) => {
                self.tvars.extend(p.vars.iter().copied());
                self.ty(&p.body);
            }
        }
    }

    fn result(&mut self, r: &TyResult) {
        for (g, t) in &r.existentials {
            self.vars.insert(*g);
            self.ty(t);
        }
        self.ty(&r.ty);
        self.prop(&r.then_p);
        self.prop(&r.else_p);
        self.obj(&r.obj);
    }

    fn prop(&mut self, p: &Prop) {
        match p {
            Prop::TT | Prop::FF => {}
            Prop::Is(o, t) | Prop::IsNot(o, t) => {
                self.obj(o);
                self.ty(t);
            }
            Prop::And(a, b) | Prop::Or(a, b) => {
                self.prop(a);
                self.prop(b);
            }
            Prop::Alias(a, b) => {
                self.obj(a);
                self.obj(b);
            }
            Prop::Lin(a) => {
                self.mask |= THEORY_LIN;
                for (_, p) in a.lhs.terms.iter().chain(a.rhs.terms.iter()) {
                    self.vars.insert(p.base);
                }
            }
            Prop::Bv(a) => {
                self.mask |= THEORY_BV;
                self.bv(&a.lhs);
                self.bv(&a.rhs);
            }
            Prop::Str(a) => {
                self.mask |= THEORY_STR;
                if let crate::syntax::StrObj::Path(p) = &a.lhs {
                    self.vars.insert(p.base);
                }
            }
        }
    }

    fn obj(&mut self, o: &Obj) {
        o.free_vars(&mut self.vars);
    }

    fn bv(&mut self, b: &crate::syntax::BvObj) {
        use crate::syntax::BvObj;
        match b {
            BvObj::Const(_) => {}
            BvObj::Path(p) => {
                self.vars.insert(p.base);
            }
            BvObj::Not(a) => self.bv(a),
            BvObj::And(a, b)
            | BvObj::Or(a, b)
            | BvObj::Xor(a, b)
            | BvObj::Add(a, b)
            | BvObj::Sub(a, b)
            | BvObj::Mul(a, b) => {
                self.bv(a);
                self.bv(b);
            }
        }
    }

    /// Does anything in the scan mention a `Symbol::fresh` name? One
    /// symbol-interner lock for the whole batch.
    fn any_fresh(&self) -> bool {
        Symbol::any_fresh(self.vars.iter().chain(self.tvars.iter()).copied())
    }

    fn sorted_vars(&self) -> Arc<[Symbol]> {
        let mut v: Vec<Symbol> = self.vars.iter().copied().collect();
        v.sort_unstable();
        v.into()
    }
}

/// Canonical sort rank for union members: base types in a fixed order
/// (so canonical member order is stable across processes for base-type
/// unions — `Bool` is always `(U True False)`), compound types after,
/// ordered among themselves by id.
fn ty_rank(t: &Ty) -> u8 {
    match t {
        Ty::Top => 0,
        Ty::Int => 1,
        Ty::True => 2,
        Ty::False => 3,
        Ty::Unit => 4,
        Ty::BitVec => 5,
        Ty::Str => 6,
        Ty::Regex => 7,
        Ty::TVar(_) => 8,
        Ty::Pair(_, _) => 9,
        Ty::Vec(_) => 10,
        Ty::Union(_) => 11,
        Ty::Fun(_) => 12,
        Ty::Refine(_) => 13,
        Ty::Poly(_) => 14,
    }
}

impl Store {
    // --- region plumbing --------------------------------------------------

    fn ty_arc(&self, id: u32) -> &Arc<Ty> {
        let idx = (id & TY_IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_tys[fresh_slot(idx, self.fresh_ty_base, "TyId")]
        } else {
            &self.tys[idx]
        }
    }

    fn ty_meta(&self, id: u32) -> &TyMeta {
        let idx = (id & TY_IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_ty_metas[fresh_slot(idx, self.fresh_ty_base, "TyId")]
        } else {
            &self.ty_metas[idx]
        }
    }

    fn prop_arc(&self, id: u32) -> &Arc<Prop> {
        let idx = (id & IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_props[fresh_slot(idx, self.fresh_prop_base, "PropId")]
        } else {
            &self.props[idx]
        }
    }

    fn prop_meta(&self, id: u32) -> &PropMeta {
        let idx = (id & IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_prop_metas[fresh_slot(idx, self.fresh_prop_base, "PropId")]
        } else {
            &self.prop_metas[idx]
        }
    }

    fn obj_arc(&self, id: u32) -> &Arc<Obj> {
        let idx = (id & IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_objs[fresh_slot(idx, self.fresh_obj_base, "ObjId")]
        } else {
            &self.objs[idx]
        }
    }

    fn obj_meta(&self, id: u32) -> &ObjMeta {
        let idx = (id & IDX) as usize;
        if id & FRESH_BIT != 0 {
            &self.fresh_obj_metas[fresh_slot(idx, self.fresh_obj_base, "ObjId")]
        } else {
            &self.obj_metas[idx]
        }
    }

    /// Drops every fresh-region entry, advancing the region bases so the
    /// ids handed out so far can never alias a later entry (stale ids
    /// panic in the accessors above instead — loudly wrong, never
    /// silently wrong). Canonical lookup maps and id-level structure
    /// maps shed their fresh entries; fresh raw-tree memos are cleared
    /// wholesale.
    fn evict_fresh_region(&mut self) {
        self.fresh_ty_base += self.fresh_tys.len();
        self.fresh_tys.clear();
        self.fresh_ty_metas.clear();
        self.fresh_prop_base += self.fresh_props.len();
        self.fresh_props.clear();
        self.fresh_prop_metas.clear();
        self.fresh_obj_base += self.fresh_objs.len();
        self.fresh_objs.clear();
        self.fresh_obj_metas.clear();
        self.fresh_ty_memo.clear();
        self.fresh_prop_memo.clear();
        self.fresh_obj_memo.clear();
        let live = |id: &u32| *id & FRESH_BIT == 0;
        self.ty_canon.retain(|_, id| live(id));
        self.prop_canon.retain(|_, id| live(id));
        self.obj_canon.retain(|_, id| live(id));
        // Whole-tree freshness means a structure over any fresh id is
        // itself fresh, so retaining by the entry's own id (key for the
        // id→parts maps, value for the parts→id maps) sheds exactly the
        // evicted entries.
        self.ty_unions.retain(|id, _| live(id));
        self.ty_union_canon.retain(|_, id| live(id));
        self.ty_pairs.retain(|id, _| live(id));
        self.ty_pair_canon.retain(|_, id| live(id));
        self.ty_vecs.retain(|id, _| live(id));
        self.ty_vec_canon.retain(|_, id| live(id));
        self.ty_refines.retain(|id, _| live(id));
        self.ty_refine_canon.retain(|_, id| live(id));
        self.ty_projections
            .retain(|(id, _), out| live(id) && live(out));
        self.prop_ands.retain(|id, _| live(id));
        self.prop_ors.retain(|id, _| live(id));
        // Best-effort wrap long before the index space runs out: once
        // the base passes half the addressable range, restart it. After
        // a wrap (billions of fresh entries later) staleness detection
        // is best-effort rather than exact; ids still never alias within
        // any realistic window.
        if self.fresh_ty_base > (TY_IDX as usize) / 2 {
            self.fresh_ty_base = 0;
        }
        if self.fresh_prop_base > (IDX as usize) / 2 {
            self.fresh_prop_base = 0;
        }
        if self.fresh_obj_base > (IDX as usize) / 2 {
            self.fresh_obj_base = 0;
        }
    }

    // --- types ------------------------------------------------------------

    fn insert_ty(&mut self, t: Ty) -> u32 {
        if let Some(&id) = self.ty_canon.get(&t) {
            return id;
        }
        fn env_free(t: &Ty) -> bool {
            match t {
                Ty::Top
                | Ty::Int
                | Ty::True
                | Ty::False
                | Ty::Unit
                | Ty::BitVec
                | Ty::Str
                | Ty::Regex
                | Ty::TVar(_) => true,
                Ty::Pair(a, b) => env_free(a) && env_free(b),
                Ty::Vec(e) => env_free(e),
                Ty::Union(ts) => ts.iter().all(env_free),
                Ty::Fun(_) | Ty::Refine(_) | Ty::Poly(_) => false,
            }
        }
        let mut scan = Scan::default();
        scan.ty(&t);
        let fresh = scan.any_fresh();
        let meta = TyMeta {
            vars: scan.sorted_vars(),
            theory_mask: scan.mask,
            has_refinement: scan.has_refinement,
            rank: ty_rank(&t),
        };
        let mut id_bits = if env_free(&t) { ENV_FREE_BIT } else { 0 };
        let arc = Arc::new(t);
        let idx = if fresh {
            id_bits |= FRESH_BIT;
            self.fresh_tys.push(arc.clone());
            self.fresh_ty_metas.push(meta);
            self.fresh_ty_base + self.fresh_tys.len() - 1
        } else {
            self.tys.push(arc.clone());
            self.ty_metas.push(meta);
            self.tys.len() - 1
        };
        assert!(idx < TY_IDX as usize, "type arena overflow");
        let id = idx as u32 | id_bits;
        self.ty_canon.insert(arc, id);
        id
    }

    fn ty_tree(&self, id: u32) -> Ty {
        (**self.ty_arc(id)).clone()
    }

    /// The canonical union of (already canonical) member ids: members
    /// that are unions splice in, duplicates drop, base members sort by
    /// structural rank and compound members by id. The single code path
    /// for both the tree-interning route and the id-level constructor.
    fn make_union(&mut self, members: Vec<u32>) -> u32 {
        let mut flat: Vec<u32> = Vec::with_capacity(members.len());
        for mid in members {
            match self.ty_unions.get(&mid) {
                Some(ms) => flat.extend(ms.iter().copied()),
                None => flat.push(mid),
            }
        }
        flat.sort_unstable_by_key(|&id| (self.ty_meta(id).rank, id));
        flat.dedup();
        if flat.len() == 1 {
            return flat[0];
        }
        if let Some(&id) = self.ty_union_canon.get(&flat) {
            return id;
        }
        let tree = Ty::Union(flat.iter().map(|&i| self.ty_tree(i)).collect());
        let id = self.insert_ty(tree);
        // Recording ⊥ (the empty union) with zero members makes it splice
        // away as a member of any later union, matching `Ty::union_of`.
        self.ty_unions.entry(id).or_insert_with(|| flat.clone());
        self.ty_union_canon.insert(flat, id);
        id
    }

    fn make_pair(&mut self, a: u32, b: u32) -> u32 {
        if let Some(&id) = self.ty_pair_canon.get(&(a, b)) {
            return id;
        }
        let tree = Ty::Pair(Box::new(self.ty_tree(a)), Box::new(self.ty_tree(b)));
        let id = self.insert_ty(tree);
        self.ty_pair_canon.insert((a, b), id);
        self.ty_pairs.entry(id).or_insert((a, b));
        id
    }

    fn make_vec(&mut self, e: u32) -> u32 {
        if let Some(&id) = self.ty_vec_canon.get(&e) {
            return id;
        }
        let tree = Ty::Vec(Box::new(self.ty_tree(e)));
        let id = self.insert_ty(tree);
        self.ty_vec_canon.insert(e, id);
        self.ty_vecs.entry(id).or_insert(e);
        id
    }

    fn make_refine(&mut self, var: Symbol, base: u32, prop: u32) -> u32 {
        if matches!(&**self.prop_arc(prop), Prop::TT) {
            return base;
        }
        if let Some(&id) = self.ty_refine_canon.get(&(var, base, prop)) {
            return id;
        }
        let tree = Ty::Refine(Box::new(RefineTy {
            var,
            base: self.ty_tree(base),
            prop: self.prop_tree(prop),
        }));
        let id = self.insert_ty(tree);
        self.ty_refine_canon.insert((var, base, prop), id);
        self.ty_refines.entry(id).or_insert((var, base, prop));
        id
    }

    fn project(&mut self, id: u32, f: Field) -> u32 {
        if let Some(&p) = self.ty_projections.get(&(id, f)) {
            return p;
        }
        let out = if f == Field::Len {
            self.ty(&Ty::Int)
        } else if let Some(&(a, b)) = self.ty_pairs.get(&id) {
            if f == Field::Fst {
                a
            } else {
                b
            }
        } else if let Some(ms) = self.ty_unions.get(&id).cloned() {
            let projected: Vec<u32> = ms.into_iter().map(|m| self.project(m, f)).collect();
            self.make_union(projected)
        } else if let Some(&(_, base, _)) = self.ty_refines.get(&id) {
            self.project(base, f)
        } else {
            self.ty(&Ty::Top)
        };
        self.ty_projections.insert((id, f), out);
        out
    }

    fn ty(&mut self, t: &Ty) -> u32 {
        if let Some(&id) = self.ty_memo.get(t) {
            return id;
        }
        if let Some(&id) = self.fresh_ty_memo.get(t) {
            return id;
        }
        let id = match t {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => self.insert_ty(t.clone()),
            Ty::Pair(a, b) => {
                let (a, b) = (self.ty(a), self.ty(b));
                self.make_pair(a, b)
            }
            Ty::Vec(e) => {
                let e = self.ty(e);
                self.make_vec(e)
            }
            Ty::Union(ts) => {
                let ids: Vec<u32> = ts.iter().map(|m| self.ty(m)).collect();
                self.make_union(ids)
            }
            Ty::Fun(f) => {
                let params = f
                    .params
                    .iter()
                    .map(|(x, t)| {
                        let t = self.ty(t);
                        (*x, self.ty_tree(t))
                    })
                    .collect();
                let range = self.ty_result(&f.range);
                self.insert_ty(Ty::Fun(Box::new(FunTy { params, range })))
            }
            Ty::Refine(r) => {
                let base = self.ty(&r.base);
                let prop = self.prop(&r.prop);
                self.make_refine(r.var, base, prop)
            }
            Ty::Poly(p) => {
                let body = self.ty(&p.body);
                if p.vars.is_empty() {
                    body
                } else {
                    let tree = Ty::Poly(Box::new(PolyTy {
                        vars: p.vars.clone(),
                        body: self.ty_tree(body),
                    }));
                    self.insert_ty(tree)
                }
            }
        };
        if id & FRESH_BIT != 0 {
            if self.fresh_ty_memo.len() >= FRESH_MEMO_CAP {
                self.fresh_ty_memo.clear();
            }
            self.fresh_ty_memo.insert(t.clone(), id);
        } else {
            if self.ty_memo.len() >= MEMO_CAP {
                self.ty_memo.clear();
            }
            self.ty_memo.insert(t.clone(), id);
        }
        id
    }

    fn ty_result(&mut self, r: &TyResult) -> TyResult {
        let existentials = r
            .existentials
            .iter()
            .map(|(x, t)| {
                let t = self.ty(t);
                (*x, self.ty_tree(t))
            })
            .collect();
        let ty = self.ty(&r.ty);
        let then_p = self.prop(&r.then_p);
        let else_p = self.prop(&r.else_p);
        let obj = self.obj(&r.obj);
        TyResult {
            existentials,
            ty: self.ty_tree(ty),
            then_p: self.prop_tree(then_p),
            else_p: self.prop_tree(else_p),
            obj: self.obj_tree(obj),
        }
    }

    // --- propositions ------------------------------------------------------

    /// Inserts a canonical proposition. `embedded_fresh` carries
    /// freshness of components that [`Prop::free_vars`] does not see
    /// (types inside membership atoms, spliced chain members).
    fn insert_prop(&mut self, p: Prop, embedded_fresh: bool) -> u32 {
        if let Some(&id) = self.prop_canon.get(&p) {
            return id;
        }
        let mut fv = HashSet::new();
        p.free_vars(&mut fv);
        let fresh = (embedded_fresh || Symbol::any_fresh(fv.iter().copied()))
            && !matches!(p, Prop::TT | Prop::FF);
        let mut sorted: Vec<Symbol> = fv.into_iter().collect();
        sorted.sort_unstable();
        let mut scan = Scan::default();
        scan.prop(&p);
        let meta = PropMeta {
            free_vars: sorted.into(),
            theory_mask: scan.mask,
        };
        let arc = Arc::new(p);
        let idx = if fresh {
            self.fresh_props.push(arc.clone());
            self.fresh_prop_metas.push(meta);
            self.fresh_prop_base + self.fresh_props.len() - 1
        } else {
            self.props.push(arc.clone());
            self.prop_metas.push(meta);
            self.props.len() - 1
        };
        assert!(idx < IDX as usize, "proposition arena overflow");
        let id = idx as u32 | if fresh { FRESH_BIT } else { 0 };
        self.prop_canon.insert(arc, id);
        id
    }

    fn prop_tree(&self, id: u32) -> Prop {
        (**self.prop_arc(id)).clone()
    }

    /// Flattens a connective chain into canonical member ids: `tt`/`ff`
    /// units are dropped, the absorbing element short-circuits (signalled
    /// by `None`), nested chains of the same connective splice in, and
    /// duplicates are dropped (keeping first-occurrence order — unlike
    /// union members, conjunct order is preserved because assumption
    /// replays them in sequence).
    fn flatten_chain(&mut self, p: &Prop, and: bool) -> Option<Vec<u32>> {
        let mut out: Vec<u32> = Vec::new();
        let mut stack: Vec<&Prop> = vec![p];
        let mut flat: Vec<u32> = Vec::new();
        while let Some(q) = stack.pop() {
            match (and, q) {
                (true, Prop::And(a, b)) | (false, Prop::Or(a, b)) => {
                    // Preserve left-to-right order on the stack.
                    stack.push(b);
                    stack.push(a);
                }
                _ => {
                    let id = self.prop(q);
                    let nested = if and {
                        self.prop_ands.get(&id)
                    } else {
                        self.prop_ors.get(&id)
                    };
                    match nested {
                        Some(members) => flat.extend(members.iter().copied()),
                        None => flat.push(id),
                    }
                }
            }
        }
        let (unit, absorb) = if and {
            (Prop::TT, Prop::FF)
        } else {
            (Prop::FF, Prop::TT)
        };
        let mut seen = HashSet::new();
        for id in flat {
            let tree = &**self.prop_arc(id);
            if *tree == unit {
                continue;
            }
            if *tree == absorb {
                return None;
            }
            if seen.insert(id) {
                out.push(id);
            }
        }
        Some(out)
    }

    fn prop(&mut self, p: &Prop) -> u32 {
        if let Some(&id) = self.prop_memo.get(p) {
            return id;
        }
        if let Some(&id) = self.fresh_prop_memo.get(p) {
            return id;
        }
        let id = match p {
            Prop::TT | Prop::FF | Prop::Lin(_) | Prop::Bv(_) | Prop::Str(_) => {
                self.insert_prop(p.clone(), false)
            }
            Prop::Is(o, t) => {
                let (o, t) = (self.obj(o), self.ty(t));
                let candidate = Prop::is(self.obj_tree(o), self.ty_tree(t));
                self.insert_prop(candidate, t & FRESH_BIT != 0)
            }
            Prop::IsNot(o, t) => {
                let (o, t) = (self.obj(o), self.ty(t));
                let candidate = Prop::is_not(self.obj_tree(o), self.ty_tree(t));
                self.insert_prop(candidate, t & FRESH_BIT != 0)
            }
            Prop::Alias(o1, o2) => {
                let (o1, o2) = (self.obj(o1), self.obj(o2));
                let candidate = Prop::alias(self.obj_tree(o1), self.obj_tree(o2));
                self.insert_prop(candidate, false)
            }
            Prop::And(_, _) | Prop::Or(_, _) => {
                let and = matches!(p, Prop::And(_, _));
                match self.flatten_chain(p, and) {
                    None => self.insert_prop(if and { Prop::FF } else { Prop::TT }, false),
                    Some(ids) if ids.is_empty() => {
                        self.insert_prop(if and { Prop::TT } else { Prop::FF }, false)
                    }
                    Some(ids) if ids.len() == 1 => ids[0],
                    Some(ids) => {
                        // Rebuild right-nested from canonical members.
                        let embedded_fresh = ids.iter().any(|&i| i & FRESH_BIT != 0);
                        let mut tree = self.prop_tree(ids[ids.len() - 1]);
                        for &id in ids[..ids.len() - 1].iter().rev() {
                            let member = self.prop_tree(id);
                            tree = if and {
                                Prop::And(Box::new(member), Box::new(tree))
                            } else {
                                Prop::Or(Box::new(member), Box::new(tree))
                            };
                        }
                        let id = self.insert_prop(tree, embedded_fresh);
                        if and {
                            self.prop_ands.entry(id).or_insert(ids);
                        } else {
                            self.prop_ors.entry(id).or_insert(ids);
                        }
                        id
                    }
                }
            }
        };
        if id & FRESH_BIT != 0 {
            if self.fresh_prop_memo.len() >= FRESH_MEMO_CAP {
                self.fresh_prop_memo.clear();
            }
            self.fresh_prop_memo.insert(p.clone(), id);
        } else {
            if self.prop_memo.len() >= MEMO_CAP {
                self.prop_memo.clear();
            }
            self.prop_memo.insert(p.clone(), id);
        }
        id
    }

    // --- objects -----------------------------------------------------------

    fn insert_obj(&mut self, o: Obj) -> u32 {
        if let Some(&id) = self.obj_canon.get(&o) {
            return id;
        }
        let mut fv = HashSet::new();
        o.free_vars(&mut fv);
        let fresh = Symbol::any_fresh(fv.iter().copied());
        let mut sorted: Vec<Symbol> = fv.into_iter().collect();
        sorted.sort_unstable();
        let meta = ObjMeta {
            free_vars: sorted.into(),
        };
        let arc = Arc::new(o);
        let idx = if fresh {
            self.fresh_objs.push(arc.clone());
            self.fresh_obj_metas.push(meta);
            self.fresh_obj_base + self.fresh_objs.len() - 1
        } else {
            self.objs.push(arc.clone());
            self.obj_metas.push(meta);
            self.objs.len() - 1
        };
        assert!(idx < IDX as usize, "object arena overflow");
        let id = idx as u32 | if fresh { FRESH_BIT } else { 0 };
        self.obj_canon.insert(arc, id);
        id
    }

    fn obj_tree(&self, id: u32) -> Obj {
        (**self.obj_arc(id)).clone()
    }

    fn obj(&mut self, o: &Obj) -> u32 {
        if let Some(&id) = self.obj_memo.get(o) {
            return id;
        }
        if let Some(&id) = self.fresh_obj_memo.get(o) {
            return id;
        }
        let id = match o {
            Obj::Null | Obj::Path(_) | Obj::Lin(_) | Obj::Bv(_) | Obj::Str(_) | Obj::Re(_) => {
                self.insert_obj(o.clone())
            }
            Obj::Pair(a, b) => {
                let (a, b) = (self.obj(a), self.obj(b));
                // `Obj::pair` collapses ⟨∅,∅⟩ to ∅.
                let candidate = Obj::pair(self.obj_tree(a), self.obj_tree(b));
                self.insert_obj(candidate)
            }
        };
        if id & FRESH_BIT != 0 {
            if self.fresh_obj_memo.len() >= FRESH_MEMO_CAP {
                self.fresh_obj_memo.clear();
            }
            self.fresh_obj_memo.insert(o.clone(), id);
        } else {
            if self.obj_memo.len() >= MEMO_CAP {
                self.obj_memo.clear();
            }
            self.obj_memo.insert(o.clone(), id);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{LinCmp, Symbol};

    fn x() -> Symbol {
        Symbol::intern("ix")
    }

    #[test]
    fn interning_is_stable_and_o1_equal() {
        let t = Ty::pair(Ty::Int, Ty::bool_ty());
        assert_eq!(TyId::of(&t), TyId::of(&t.clone()));
        assert_ne!(TyId::of(&t), TyId::of(&Ty::Int));
        assert_eq!(*TyId::of(&Ty::Int).get(), Ty::Int);
    }

    #[test]
    fn unions_flatten_dedup_and_sort() {
        let a = Ty::Union(vec![Ty::Int, Ty::Union(vec![Ty::True, Ty::Int]), Ty::False]);
        let b = Ty::Union(vec![Ty::False, Ty::True, Ty::Int]);
        assert_eq!(TyId::of(&a), TyId::of(&b));
        // Canonical form is flat with unique members.
        match &*TyId::of(&a).get() {
            Ty::Union(ts) => {
                assert_eq!(ts.len(), 3);
                assert!(!ts.iter().any(|t| matches!(t, Ty::Union(_))));
            }
            other => panic!("expected union, got {other}"),
        }
        // Base-type members sort in structural rank order, so the
        // canonical boolean really is `Bool`.
        assert_eq!(
            canon_ty(&Ty::Union(vec![Ty::False, Ty::True])).to_string(),
            "Bool"
        );
    }

    #[test]
    fn singleton_and_empty_unions_normalize() {
        assert_eq!(TyId::of(&Ty::Union(vec![Ty::Int])), TyId::of(&Ty::Int));
        assert_eq!(
            TyId::of(&Ty::Union(vec![Ty::Int, Ty::Int])),
            TyId::of(&Ty::Int)
        );
        assert_eq!(
            TyId::of(&Ty::bot()),
            TyId::of(&Ty::Union(vec![Ty::bot(), Ty::bot()]))
        );
    }

    #[test]
    fn trivial_refinements_collapse() {
        let r = Ty::Refine(Box::new(RefineTy {
            var: x(),
            base: Ty::Int,
            prop: Prop::TT,
        }));
        assert_eq!(TyId::of(&r), TyId::of(&Ty::Int));
    }

    #[test]
    fn and_chains_flatten_with_units() {
        let p = Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(3));
        let q = Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(x()));
        let nested = Prop::And(
            Box::new(Prop::And(Box::new(p.clone()), Box::new(Prop::TT))),
            Box::new(Prop::And(Box::new(q.clone()), Box::new(p.clone()))),
        );
        let flat = Prop::And(Box::new(p.clone()), Box::new(q.clone()));
        assert_eq!(PropId::of(&nested), PropId::of(&flat));
        // ff absorbs.
        let absurd = Prop::And(Box::new(p.clone()), Box::new(Prop::FF));
        assert_eq!(PropId::of(&absurd), PropId::of(&Prop::FF));
        // Dually for or: tt absorbs, ff is the unit.
        let or = Prop::Or(Box::new(Prop::FF), Box::new(p.clone()));
        assert_eq!(PropId::of(&or), PropId::of(&p));
        let taut = Prop::Or(Box::new(p), Box::new(Prop::TT));
        assert_eq!(PropId::of(&taut), PropId::of(&Prop::TT));
    }

    #[test]
    fn null_objects_vacate_interned_atoms() {
        let p = Prop::Is(Obj::Null, Box::new(Ty::Int));
        assert_eq!(PropId::of(&p), PropId::of(&Prop::TT));
        assert_eq!(
            ObjId::of(&Obj::Pair(Box::new(Obj::Null), Box::new(Obj::Null))),
            ObjId::of(&Obj::Null)
        );
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + Copy>() {}
        assert_send_sync::<TyId>();
        assert_send_sync::<PropId>();
        assert_send_sync::<ObjId>();
    }

    #[test]
    fn id_constructors_agree_with_tree_interning() {
        let int = TyId::of(&Ty::Int);
        let b = TyId::of(&Ty::bool_ty());
        assert_eq!(
            TyId::union_of(&[int, b]),
            TyId::of(&Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))
        );
        assert_eq!(TyId::union_of(&[int]), int);
        assert_eq!(TyId::union_of(&[]), TyId::bot());
        assert_eq!(
            TyId::pair(int, b),
            TyId::of(&Ty::pair(Ty::Int, Ty::bool_ty()))
        );
        assert_eq!(TyId::vec(int), TyId::of(&Ty::vec(Ty::Int)));
        let psi = Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(5));
        assert_eq!(
            TyId::refine(x(), int, PropId::of(&psi)),
            TyId::of(&Ty::refine(x(), Ty::Int, psi))
        );
        // tt-refinements collapse at the id level too.
        assert_eq!(TyId::refine(x(), int, PropId::of(&Prop::TT)), int);
    }

    #[test]
    fn id_destructors_recover_structure() {
        let int = TyId::of(&Ty::Int);
        let b = TyId::of(&Ty::bool_ty());
        let p = TyId::pair(int, b);
        assert_eq!(p.pair_parts(), Some((int, b)));
        assert_eq!(int.pair_parts(), None);
        let u = TyId::union_of(&[int, p]);
        let ms = u.union_members().expect("union");
        assert_eq!(ms.len(), 2);
        assert!(ms.contains(&int) && ms.contains(&p));
        assert_eq!(TyId::vec(int).vec_elem(), Some(int));
        let psi = Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(5));
        let r = TyId::refine(x(), int, PropId::of(&psi));
        assert_eq!(r.refine_parts(), Some((x(), int, PropId::of(&psi))));
    }

    #[test]
    fn id_projection_matches_tree_projection() {
        let int = TyId::of(&Ty::Int);
        let b = TyId::of(&Ty::bool_ty());
        let p = TyId::pair(int, b);
        assert_eq!(p.project(Field::Fst), int);
        assert_eq!(p.project(Field::Snd), b);
        assert_eq!(p.project(Field::Len), int);
        // Unions project pointwise; refinements project through the base.
        let p2 = TyId::pair(b, int);
        let u = TyId::union_of(&[p, p2]);
        assert_eq!(u.project(Field::Fst), TyId::union_of(&[int, b]));
        let psi = Prop::lin(Obj::var(x()).len(), LinCmp::Le, Obj::int(5));
        let r = TyId::refine(x(), p, PropId::of(&psi));
        assert_eq!(r.project(Field::Fst), int);
        // Non-pairs project to ⊤.
        assert_eq!(int.project(Field::Fst), TyId::top());
    }

    #[test]
    fn per_id_metadata_is_cached() {
        let y = Symbol::intern("meta_y");
        let psi = Prop::lin(Obj::var(x()), LinCmp::Le, Obj::var(y));
        let t = Ty::refine(x(), Ty::Int, psi);
        let id = TyId::of(&t);
        assert!(!id.env_free());
        assert!(id.has_refinement());
        assert!(id.theory_mask() & THEORY_LIN != 0);
        assert!(id.mentions_var(y));
        assert!(!id.mentions_var(Symbol::intern("meta_absent")));
        assert!(!id.is_closed());
        let base = TyId::of(&Ty::pair(Ty::Int, Ty::bool_ty()));
        assert!(base.env_free());
        assert!(base.is_closed());
        assert_eq!(base.theory_mask(), 0);
        assert!(!base.has_refinement());
    }

    #[test]
    fn fresh_named_trees_go_to_the_fresh_region() {
        let before = arena_stats();
        let g = Symbol::fresh("ghost");
        let psi = Prop::lin(Obj::var(g), LinCmp::Le, Obj::int(1));
        let t = Ty::refine(g, Ty::Int, psi.clone());
        let tid = TyId::of(&t);
        let pid = PropId::of(&psi);
        let oid = ObjId::of(&Obj::var(g));
        assert!(tid.in_fresh_region());
        assert!(pid.in_fresh_region());
        assert!(oid.in_fresh_region());
        let after = arena_stats();
        // Fresh entries grew the fresh region, not the permanent arena
        // (the permanent region may still grow from this test's plain
        // subtrees, e.g. `Int`, interned for the first time).
        assert!(after.fresh_tys > before.fresh_tys);
        assert!(after.fresh_props > before.fresh_props);
        assert!(after.fresh_objs > before.fresh_objs);
        // Ordinary names stay permanent.
        assert!(!TyId::of(&Ty::refine(
            Symbol::intern("plain_v"),
            Ty::Int,
            Prop::lin(Obj::var(Symbol::intern("plain_v")), LinCmp::Le, Obj::int(1))
        ))
        .in_fresh_region());
        // Interning is still stable across regions.
        assert_eq!(TyId::of(&t), tid);
        assert_eq!(*tid.get(), *canon_ty(&t));
    }

    #[test]
    fn prop_and_obj_mention_sets_match_free_vars() {
        let y = Symbol::intern("pm_y");
        let p = Prop::and(
            Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(3)),
            Prop::is(Obj::var(y), Ty::Int),
        );
        let pid = PropId::of(&p);
        assert!(pid.mentions_var(x()));
        assert!(pid.mentions_var(y));
        assert!(!pid.mentions_var(Symbol::intern("pm_absent")));
        let o = Obj::pair(Obj::var(x()), Obj::var(y).len());
        let oid = ObjId::of(&o);
        assert!(oid.mentions_var(x()) && oid.mentions_var(y));
        assert!(!oid.mentions_var(Symbol::intern("pm_absent")));
    }
}
