//! Hash-consing interner for types, propositions and symbolic objects.
//!
//! The checker's hot judgments (`subtype`, `proves`, `env_inconsistent`)
//! are re-derived many times over structurally identical inputs; deep
//! tree comparison and deep `HashMap` keys make that expensive. This
//! module canonicalizes [`Ty`]/[`Prop`]/[`Obj`] values into arena-backed
//! `u32` handles ([`TyId`]/[`PropId`]/[`ObjId`]) with O(1) equality and
//! hashing, which the memo tables on [`crate::check::Checker`] use as
//! keys, and which [`crate::env::Env`] stores for deferred disjunctions.
//!
//! Canonicalization normalizes on the way in:
//!
//! * unions are flattened, deduplicated and sorted (by member id), and
//!   singleton unions collapse to their member;
//! * refinements with a trivial (`tt`) proposition collapse to their base;
//! * conjunction/disjunction chains are flattened and deduplicated with
//!   `tt`/`ff` unit/absorption short-circuits;
//! * type-membership and alias atoms over the null object vacate to `tt`
//!   (§3.1), and pairs of null objects collapse to the null object.
//!
//! Two semantically-equal-modulo-normalization trees therefore intern to
//! the same id, which is what makes the memo tables effective on union-
//! and refinement-heavy programs. Ids are `Copy + Send + Sync`, so they
//! can cross thread boundaries where deep trees cannot — the prerequisite
//! for sharding the corpus checker.
//!
//! The interner is global (like [`crate::syntax::Symbol`]'s); canonical
//! arena entries live for the program's lifetime (ids index into them),
//! while the raw-tree memo maps that shortcut re-canonicalization are
//! capped and flushed on overflow. Handles returned by `get` are `Arc`s
//! into the arena. Fresh-name-bearing goals still grow the arenas
//! slowly (a few entries per checked module); an evictable arena is a
//! ROADMAP follow-on.

use std::sync::{Arc, Mutex, OnceLock};

use rtr_solver::fxhash::FxHashMap;

use crate::syntax::{FunTy, Obj, PolyTy, Prop, RefineTy, Ty, TyResult};

/// An interned, canonicalized type.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TyId(u32);

/// An interned, canonicalized proposition.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PropId(u32);

/// An interned, canonicalized symbolic object.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjId(u32);

impl TyId {
    /// Interns (and canonicalizes) a type.
    pub fn of(t: &Ty) -> TyId {
        TyId(store().lock().expect("interner poisoned").ty(t))
    }

    /// Interns `t` and reports whether its subtype verdicts are
    /// *environment-independent*: a type with no refinement, function or
    /// polymorphic component anywhere is compared purely structurally, so
    /// one cached verdict serves every environment.
    pub fn of_with_env_free(t: &Ty) -> (TyId, bool) {
        let mut s = store().lock().expect("interner poisoned");
        let id = s.ty(t);
        let env_free = s.ty_envfree[id as usize];
        (TyId(id), env_free)
    }

    /// The canonical type this id stands for.
    pub fn get(self) -> Arc<Ty> {
        store().lock().expect("interner poisoned").tys[self.0 as usize].clone()
    }

    /// The raw arena index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl PropId {
    /// Interns (and canonicalizes) a proposition.
    pub fn of(p: &Prop) -> PropId {
        PropId(store().lock().expect("interner poisoned").prop(p))
    }

    /// The canonical proposition this id stands for.
    pub fn get(self) -> Arc<Prop> {
        store().lock().expect("interner poisoned").props[self.0 as usize].clone()
    }

    /// The raw arena index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl ObjId {
    /// Interns (and canonicalizes) a symbolic object.
    pub fn of(o: &Obj) -> ObjId {
        ObjId(store().lock().expect("interner poisoned").obj(o))
    }

    /// The canonical object this id stands for.
    pub fn get(self) -> Arc<Obj> {
        store().lock().expect("interner poisoned").objs[self.0 as usize].clone()
    }

    /// The raw arena index.
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// Canonicalizes a type (flattened/deduped/sorted unions, collapsed
/// trivial refinements) without keeping the id.
pub fn canon_ty(t: &Ty) -> Arc<Ty> {
    TyId::of(t).get()
}

/// Canonicalizes a proposition.
pub fn canon_prop(p: &Prop) -> Arc<Prop> {
    PropId::of(p).get()
}

/// Canonicalizes a symbolic object.
pub fn canon_obj(o: &Obj) -> Arc<Obj> {
    ObjId::of(o).get()
}

/// Current arena sizes `(types, propositions, objects)` — a coarse gauge
/// of interner growth for diagnostics.
pub fn arena_sizes() -> (usize, usize, usize) {
    let s = store().lock().expect("interner poisoned");
    (s.tys.len(), s.props.len(), s.objs.len())
}

#[derive(Default)]
struct Store {
    tys: Vec<Arc<Ty>>,
    /// Parallel to `tys`: subtype verdicts need no environment (see
    /// [`TyId::of_with_env_free`]).
    ty_envfree: Vec<bool>,
    ty_canon: FxHashMap<Arc<Ty>, u32>,
    ty_memo: FxHashMap<Ty, u32>,
    /// Member ids of interned union types (flattening support).
    ty_unions: FxHashMap<u32, Vec<u32>>,
    props: Vec<Arc<Prop>>,
    prop_canon: FxHashMap<Arc<Prop>, u32>,
    prop_memo: FxHashMap<Prop, u32>,
    /// Conjunct ids of interned `And` chains (flattening support).
    prop_ands: FxHashMap<u32, Vec<u32>>,
    /// Disjunct ids of interned `Or` chains (flattening support).
    prop_ors: FxHashMap<u32, Vec<u32>>,
    objs: Vec<Arc<Obj>>,
    obj_canon: FxHashMap<Arc<Obj>, u32>,
    obj_memo: FxHashMap<Obj, u32>,
}

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::default()))
}

/// Cap on the raw-tree memo maps (`*_memo`). These maps clone every raw
/// input tree as a key purely to skip re-canonicalization, and checks of
/// fresh-name-bearing goals keep adding keys that can never recur;
/// clearing them is always sound (the canonical arenas — which ids index
/// into — are untouched, so existing ids stay valid).
const MEMO_CAP: usize = 1 << 20;

impl Store {
    fn insert_ty(&mut self, t: Ty) -> u32 {
        if let Some(&id) = self.ty_canon.get(&t) {
            return id;
        }
        fn env_free(t: &Ty) -> bool {
            match t {
                Ty::Top
                | Ty::Int
                | Ty::True
                | Ty::False
                | Ty::Unit
                | Ty::BitVec
                | Ty::Str
                | Ty::Regex
                | Ty::TVar(_) => true,
                Ty::Pair(a, b) => env_free(a) && env_free(b),
                Ty::Vec(e) => env_free(e),
                Ty::Union(ts) => ts.iter().all(env_free),
                Ty::Fun(_) | Ty::Refine(_) | Ty::Poly(_) => false,
            }
        }
        let id = self.tys.len() as u32;
        self.ty_envfree.push(env_free(&t));
        let arc = Arc::new(t);
        self.tys.push(arc.clone());
        self.ty_canon.insert(arc, id);
        id
    }

    fn ty_tree(&self, id: u32) -> Ty {
        (*self.tys[id as usize]).clone()
    }

    fn ty(&mut self, t: &Ty) -> u32 {
        if let Some(&id) = self.ty_memo.get(t) {
            return id;
        }
        let id = match t {
            Ty::Top
            | Ty::Int
            | Ty::True
            | Ty::False
            | Ty::Unit
            | Ty::BitVec
            | Ty::Str
            | Ty::Regex
            | Ty::TVar(_) => self.insert_ty(t.clone()),
            Ty::Pair(a, b) => {
                let (a, b) = (self.ty(a), self.ty(b));
                let tree = Ty::Pair(Box::new(self.ty_tree(a)), Box::new(self.ty_tree(b)));
                self.insert_ty(tree)
            }
            Ty::Vec(e) => {
                let e = self.ty(e);
                let tree = Ty::Vec(Box::new(self.ty_tree(e)));
                self.insert_ty(tree)
            }
            Ty::Union(ts) => {
                // Flatten (members that canonicalize to unions splice in),
                // then dedup + sort by id so member order never splits ids.
                let mut ids: Vec<u32> = Vec::with_capacity(ts.len());
                for m in ts {
                    let mid = self.ty(m);
                    match self.ty_unions.get(&mid) {
                        Some(members) => ids.extend(members.iter().copied()),
                        None => ids.push(mid),
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                if ids.len() == 1 {
                    ids[0]
                } else {
                    let tree = Ty::Union(ids.iter().map(|&i| self.ty_tree(i)).collect());
                    let id = self.insert_ty(tree);
                    self.ty_unions.entry(id).or_insert(ids);
                    id
                }
            }
            Ty::Fun(f) => {
                let params = f
                    .params
                    .iter()
                    .map(|(x, t)| {
                        let t = self.ty(t);
                        (*x, self.ty_tree(t))
                    })
                    .collect();
                let range = self.ty_result(&f.range);
                self.insert_ty(Ty::Fun(Box::new(FunTy { params, range })))
            }
            Ty::Refine(r) => {
                let base = self.ty(&r.base);
                let prop = self.prop(&r.prop);
                if matches!(&*self.props[prop as usize], Prop::TT) {
                    base
                } else {
                    let tree = Ty::Refine(Box::new(RefineTy {
                        var: r.var,
                        base: self.ty_tree(base),
                        prop: self.prop_tree(prop),
                    }));
                    self.insert_ty(tree)
                }
            }
            Ty::Poly(p) => {
                let body = self.ty(&p.body);
                if p.vars.is_empty() {
                    body
                } else {
                    let tree = Ty::Poly(Box::new(PolyTy {
                        vars: p.vars.clone(),
                        body: self.ty_tree(body),
                    }));
                    self.insert_ty(tree)
                }
            }
        };
        if self.ty_memo.len() >= MEMO_CAP {
            self.ty_memo.clear();
        }
        self.ty_memo.insert(t.clone(), id);
        id
    }

    fn ty_result(&mut self, r: &TyResult) -> TyResult {
        let existentials = r
            .existentials
            .iter()
            .map(|(x, t)| {
                let t = self.ty(t);
                (*x, self.ty_tree(t))
            })
            .collect();
        let ty = self.ty(&r.ty);
        let then_p = self.prop(&r.then_p);
        let else_p = self.prop(&r.else_p);
        let obj = self.obj(&r.obj);
        TyResult {
            existentials,
            ty: self.ty_tree(ty),
            then_p: self.prop_tree(then_p),
            else_p: self.prop_tree(else_p),
            obj: self.obj_tree(obj),
        }
    }

    fn insert_prop(&mut self, p: Prop) -> u32 {
        if let Some(&id) = self.prop_canon.get(&p) {
            return id;
        }
        let id = self.props.len() as u32;
        let arc = Arc::new(p);
        self.props.push(arc.clone());
        self.prop_canon.insert(arc, id);
        id
    }

    fn prop_tree(&self, id: u32) -> Prop {
        (*self.props[id as usize]).clone()
    }

    /// Flattens a connective chain into canonical member ids: `tt`/`ff`
    /// units are dropped, the absorbing element short-circuits (signalled
    /// by `None`), nested chains of the same connective splice in, and
    /// duplicates are dropped (keeping first-occurrence order — unlike
    /// union members, conjunct order is preserved because assumption
    /// replays them in sequence).
    fn flatten_chain(&mut self, p: &Prop, and: bool) -> Option<Vec<u32>> {
        let mut out: Vec<u32> = Vec::new();
        let mut stack: Vec<&Prop> = vec![p];
        let mut flat: Vec<u32> = Vec::new();
        while let Some(q) = stack.pop() {
            match (and, q) {
                (true, Prop::And(a, b)) | (false, Prop::Or(a, b)) => {
                    // Preserve left-to-right order on the stack.
                    stack.push(b);
                    stack.push(a);
                }
                _ => {
                    let id = self.prop(q);
                    let nested = if and {
                        self.prop_ands.get(&id)
                    } else {
                        self.prop_ors.get(&id)
                    };
                    match nested {
                        Some(members) => flat.extend(members.iter().copied()),
                        None => flat.push(id),
                    }
                }
            }
        }
        let (unit, absorb) = if and {
            (Prop::TT, Prop::FF)
        } else {
            (Prop::FF, Prop::TT)
        };
        let mut seen = std::collections::HashSet::new();
        for id in flat {
            let tree = &*self.props[id as usize];
            if *tree == unit {
                continue;
            }
            if *tree == absorb {
                return None;
            }
            if seen.insert(id) {
                out.push(id);
            }
        }
        Some(out)
    }

    fn prop(&mut self, p: &Prop) -> u32 {
        if let Some(&id) = self.prop_memo.get(p) {
            return id;
        }
        let id = match p {
            Prop::TT | Prop::FF | Prop::Lin(_) | Prop::Bv(_) | Prop::Str(_) => {
                self.insert_prop(p.clone())
            }
            Prop::Is(o, t) => {
                let (o, t) = (self.obj(o), self.ty(t));
                let candidate = Prop::is(self.obj_tree(o), self.ty_tree(t));
                self.insert_prop(candidate)
            }
            Prop::IsNot(o, t) => {
                let (o, t) = (self.obj(o), self.ty(t));
                let candidate = Prop::is_not(self.obj_tree(o), self.ty_tree(t));
                self.insert_prop(candidate)
            }
            Prop::Alias(o1, o2) => {
                let (o1, o2) = (self.obj(o1), self.obj(o2));
                let candidate = Prop::alias(self.obj_tree(o1), self.obj_tree(o2));
                self.insert_prop(candidate)
            }
            Prop::And(_, _) | Prop::Or(_, _) => {
                let and = matches!(p, Prop::And(_, _));
                match self.flatten_chain(p, and) {
                    None => self.insert_prop(if and { Prop::FF } else { Prop::TT }),
                    Some(ids) if ids.is_empty() => {
                        self.insert_prop(if and { Prop::TT } else { Prop::FF })
                    }
                    Some(ids) if ids.len() == 1 => ids[0],
                    Some(ids) => {
                        // Rebuild right-nested from canonical members.
                        let mut tree = self.prop_tree(ids[ids.len() - 1]);
                        for &id in ids[..ids.len() - 1].iter().rev() {
                            let member = self.prop_tree(id);
                            tree = if and {
                                Prop::And(Box::new(member), Box::new(tree))
                            } else {
                                Prop::Or(Box::new(member), Box::new(tree))
                            };
                        }
                        let id = self.insert_prop(tree);
                        if and {
                            self.prop_ands.entry(id).or_insert(ids);
                        } else {
                            self.prop_ors.entry(id).or_insert(ids);
                        }
                        id
                    }
                }
            }
        };
        if self.prop_memo.len() >= MEMO_CAP {
            self.prop_memo.clear();
        }
        self.prop_memo.insert(p.clone(), id);
        id
    }

    fn insert_obj(&mut self, o: Obj) -> u32 {
        if let Some(&id) = self.obj_canon.get(&o) {
            return id;
        }
        let id = self.objs.len() as u32;
        let arc = Arc::new(o);
        self.objs.push(arc.clone());
        self.obj_canon.insert(arc, id);
        id
    }

    fn obj_tree(&self, id: u32) -> Obj {
        (*self.objs[id as usize]).clone()
    }

    fn obj(&mut self, o: &Obj) -> u32 {
        if let Some(&id) = self.obj_memo.get(o) {
            return id;
        }
        let id = match o {
            Obj::Null | Obj::Path(_) | Obj::Lin(_) | Obj::Bv(_) | Obj::Str(_) | Obj::Re(_) => {
                self.insert_obj(o.clone())
            }
            Obj::Pair(a, b) => {
                let (a, b) = (self.obj(a), self.obj(b));
                // `Obj::pair` collapses ⟨∅,∅⟩ to ∅.
                let candidate = Obj::pair(self.obj_tree(a), self.obj_tree(b));
                self.insert_obj(candidate)
            }
        };
        if self.obj_memo.len() >= MEMO_CAP {
            self.obj_memo.clear();
        }
        self.obj_memo.insert(o.clone(), id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{LinCmp, Symbol};

    fn x() -> Symbol {
        Symbol::intern("ix")
    }

    #[test]
    fn interning_is_stable_and_o1_equal() {
        let t = Ty::pair(Ty::Int, Ty::bool_ty());
        assert_eq!(TyId::of(&t), TyId::of(&t.clone()));
        assert_ne!(TyId::of(&t), TyId::of(&Ty::Int));
        assert_eq!(*TyId::of(&Ty::Int).get(), Ty::Int);
    }

    #[test]
    fn unions_flatten_dedup_and_sort() {
        let a = Ty::Union(vec![Ty::Int, Ty::Union(vec![Ty::True, Ty::Int]), Ty::False]);
        let b = Ty::Union(vec![Ty::False, Ty::True, Ty::Int]);
        assert_eq!(TyId::of(&a), TyId::of(&b));
        // Canonical form is flat with unique members.
        match &*TyId::of(&a).get() {
            Ty::Union(ts) => {
                assert_eq!(ts.len(), 3);
                assert!(!ts.iter().any(|t| matches!(t, Ty::Union(_))));
            }
            other => panic!("expected union, got {other}"),
        }
    }

    #[test]
    fn singleton_and_empty_unions_normalize() {
        assert_eq!(TyId::of(&Ty::Union(vec![Ty::Int])), TyId::of(&Ty::Int));
        assert_eq!(
            TyId::of(&Ty::Union(vec![Ty::Int, Ty::Int])),
            TyId::of(&Ty::Int)
        );
        assert_eq!(
            TyId::of(&Ty::bot()),
            TyId::of(&Ty::Union(vec![Ty::bot(), Ty::bot()]))
        );
    }

    #[test]
    fn trivial_refinements_collapse() {
        let r = Ty::Refine(Box::new(RefineTy {
            var: x(),
            base: Ty::Int,
            prop: Prop::TT,
        }));
        assert_eq!(TyId::of(&r), TyId::of(&Ty::Int));
    }

    #[test]
    fn and_chains_flatten_with_units() {
        let p = Prop::lin(Obj::var(x()), LinCmp::Le, Obj::int(3));
        let q = Prop::lin(Obj::int(0), LinCmp::Le, Obj::var(x()));
        let nested = Prop::And(
            Box::new(Prop::And(Box::new(p.clone()), Box::new(Prop::TT))),
            Box::new(Prop::And(Box::new(q.clone()), Box::new(p.clone()))),
        );
        let flat = Prop::And(Box::new(p.clone()), Box::new(q.clone()));
        assert_eq!(PropId::of(&nested), PropId::of(&flat));
        // ff absorbs.
        let absurd = Prop::And(Box::new(p.clone()), Box::new(Prop::FF));
        assert_eq!(PropId::of(&absurd), PropId::of(&Prop::FF));
        // Dually for or: tt absorbs, ff is the unit.
        let or = Prop::Or(Box::new(Prop::FF), Box::new(p.clone()));
        assert_eq!(PropId::of(&or), PropId::of(&p));
        let taut = Prop::Or(Box::new(p), Box::new(Prop::TT));
        assert_eq!(PropId::of(&taut), PropId::of(&Prop::TT));
    }

    #[test]
    fn null_objects_vacate_interned_atoms() {
        let p = Prop::Is(Obj::Null, Box::new(Ty::Int));
        assert_eq!(PropId::of(&p), PropId::of(&Prop::TT));
        assert_eq!(
            ObjId::of(&Obj::Pair(Box::new(Obj::Null), Box::new(Obj::Null))),
            ObjId::of(&Obj::Null)
        );
    }

    #[test]
    fn ids_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync + Copy>() {}
        assert_send_sync::<TyId>();
        assert_send_sync::<PropId>();
        assert_send_sync::<ObjId>();
    }
}
