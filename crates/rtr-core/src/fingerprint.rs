//! α-stable fingerprints for module items.
//!
//! The incremental module driver ([`crate::incremental`]) needs to ask
//! "is this the same definition I checked last time?" for *elaborated*
//! core terms. Structural equality is the wrong tool: the elaborator
//! mints fresh binder names (`ignored%N` for `begin` chains, loop
//! indices, …) and span [`crate::diag::NodeId`]s on every run, so two
//! elaborations of byte-identical source are only *α*-equivalent, never
//! equal. The fingerprint hashes the term modulo exactly those two
//! sources of noise:
//!
//! * **binders** are hashed by De Bruijn depth (two independent stacks:
//!   object variables and type variables), so fresh binder names vanish;
//! * **free names** are hashed by their *string* — module references
//!   must stay part of the key (Castagna et al.'s point: a verdict
//!   depends on the types of free references), and string hashing keeps
//!   the fingerprint stable across processes and intern orders;
//! * **spans** ([`Expr::Spanned`] wrappers and the items' node fields)
//!   are skipped entirely.
//!
//! The same traversal provides [`item_salt`] — the name-keyed salt for
//! per-item budget/chaos forks, stable under inserting or reordering
//! neighbouring definitions — and [`free_refs`], the item-level
//! dependency edges the driver's cutoff accounting uses.

use std::collections::HashSet;

use crate::module::ModuleItem;
use crate::syntax::{
    BvAtomProp, BvCmp, BvObj, Expr, Field, Lambda, LinAtom, LinCmp, LinObj, Obj, Path, Prop,
    StrAtomProp, StrObj, Symbol, Ty, TyResult,
};

const K1: u64 = 0x9E37_79B9_7F4A_7C15;
const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// Stable 64-bit string hash (FNV-1a). Used for free names and for the
/// name-keyed item salt; must not depend on interner state.
pub(crate) fn str_hash(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The streaming 128-bit hasher: two 64-bit lanes mixed with distinct
/// odd multipliers, plus the two De Bruijn binder stacks.
struct Fp {
    lo: u64,
    hi: u64,
    /// Object-variable binders, innermost last.
    objs: Vec<Symbol>,
    /// Type-variable binders, innermost last.
    tvars: Vec<Symbol>,
}

impl Fp {
    fn new() -> Fp {
        Fp {
            lo: 0x0123_4567_89AB_CDEF,
            hi: 0xFEDC_BA98_7654_3210,
            objs: Vec::new(),
            tvars: Vec::new(),
        }
    }

    fn word(&mut self, w: u64) {
        self.lo = (self.lo.rotate_left(5) ^ w).wrapping_mul(K1);
        self.hi = (self.hi.rotate_left(9) ^ w).wrapping_mul(K2);
    }

    fn tag(&mut self, t: u8) {
        self.word(u64::from(t));
    }

    fn bytes(&mut self, s: &str) {
        self.word(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut w = 0u64;
            for (i, b) in chunk.iter().enumerate() {
                w |= u64::from(*b) << (8 * i);
            }
            self.word(w);
        }
    }

    fn finish(&self) -> u128 {
        (u128::from(self.hi) << 64) | u128::from(self.lo)
    }

    /// An object-variable occurrence: De Bruijn depth when bound here,
    /// name string when free (a module-level reference).
    fn obj_var(&mut self, x: Symbol) {
        // Innermost binding wins, mirroring shadowing.
        match self.objs.iter().rposition(|&y| y == x) {
            Some(i) => {
                self.tag(0xB0);
                self.word((self.objs.len() - 1 - i) as u64);
            }
            None => {
                self.tag(0xB1);
                self.word(str_hash(x.as_str()));
            }
        }
    }

    fn ty_var(&mut self, a: Symbol) {
        match self.tvars.iter().rposition(|&b| b == a) {
            Some(i) => {
                self.tag(0xB2);
                self.word((self.tvars.len() - 1 - i) as u64);
            }
            None => {
                self.tag(0xB3);
                self.word(str_hash(a.as_str()));
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            // Span wrappers are exactly the noise this hash exists to
            // ignore.
            Expr::Spanned(_, inner) => self.expr(inner),
            Expr::Var(x) => {
                self.tag(0x01);
                self.obj_var(*x);
            }
            Expr::Int(n) => {
                self.tag(0x02);
                self.word(*n as u64);
            }
            Expr::Bool(b) => {
                self.tag(0x03);
                self.word(u64::from(*b));
            }
            Expr::BvLit(v) => {
                self.tag(0x04);
                self.word(*v);
            }
            Expr::Str(s) => {
                self.tag(0x05);
                self.bytes(s);
            }
            Expr::ReLit(r) => {
                self.tag(0x06);
                self.bytes(&r.to_string());
            }
            Expr::Prim(p) => {
                self.tag(0x07);
                self.bytes(p.name());
            }
            Expr::Lam(l) => {
                self.tag(0x08);
                self.lambda(l);
            }
            Expr::App(f, args) => {
                self.tag(0x09);
                self.expr(f);
                self.word(args.len() as u64);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::If(c, t, e) => {
                self.tag(0x0A);
                self.expr(c);
                self.expr(t);
                self.expr(e);
            }
            Expr::Let(x, rhs, body) => {
                self.tag(0x0B);
                self.expr(rhs);
                self.objs.push(*x);
                self.expr(body);
                self.objs.pop();
            }
            Expr::LetRec(f, ty, lam, body) => {
                self.tag(0x0C);
                self.objs.push(*f);
                self.ty(ty);
                self.lambda(lam);
                self.expr(body);
                self.objs.pop();
            }
            Expr::Cons(a, b) => {
                self.tag(0x0D);
                self.expr(a);
                self.expr(b);
            }
            Expr::Fst(a) => {
                self.tag(0x0E);
                self.expr(a);
            }
            Expr::Snd(a) => {
                self.tag(0x0F);
                self.expr(a);
            }
            Expr::VecLit(es) => {
                self.tag(0x10);
                self.word(es.len() as u64);
                for e in es {
                    self.expr(e);
                }
            }
            Expr::Ann(e, t) => {
                self.tag(0x11);
                self.expr(e);
                self.ty(t);
            }
            Expr::Error(msg) => {
                self.tag(0x12);
                self.bytes(msg);
            }
            Expr::Set(x, e) => {
                self.tag(0x13);
                self.obj_var(*x);
                self.expr(e);
            }
            Expr::Begin(es) => {
                self.tag(0x14);
                self.word(es.len() as u64);
                for e in es {
                    self.expr(e);
                }
            }
        }
    }

    fn lambda(&mut self, l: &Lambda) {
        let base = self.objs.len();
        self.word(l.params.len() as u64);
        // Each parameter type is hashed with the *earlier* parameters in
        // scope, the discipline `FunTy` documents for dependent domains.
        for (x, t) in &l.params {
            self.ty(t);
            self.objs.push(*x);
        }
        self.expr(&l.body);
        self.objs.truncate(base);
    }

    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Top => self.tag(0x20),
            Ty::Int => self.tag(0x21),
            Ty::True => self.tag(0x22),
            Ty::False => self.tag(0x23),
            Ty::Unit => self.tag(0x24),
            Ty::BitVec => self.tag(0x25),
            Ty::Str => self.tag(0x26),
            Ty::Regex => self.tag(0x27),
            Ty::Pair(a, b) => {
                self.tag(0x28);
                self.ty(a);
                self.ty(b);
            }
            Ty::Vec(e) => {
                self.tag(0x29);
                self.ty(e);
            }
            Ty::Union(ts) => {
                self.tag(0x2A);
                self.word(ts.len() as u64);
                for t in ts {
                    self.ty(t);
                }
            }
            Ty::Fun(f) => {
                self.tag(0x2B);
                let base = self.objs.len();
                self.word(f.params.len() as u64);
                for (x, t) in &f.params {
                    self.ty(t);
                    self.objs.push(*x);
                }
                self.ty_result(&f.range);
                self.objs.truncate(base);
            }
            Ty::Refine(r) => {
                self.tag(0x2C);
                // The refinement variable binds in `prop` only, not in
                // `base` (see `RefineTy`'s free-variable discipline).
                self.ty(&r.base);
                self.objs.push(r.var);
                self.prop(&r.prop);
                self.objs.pop();
            }
            Ty::TVar(a) => {
                self.tag(0x2D);
                self.ty_var(*a);
            }
            Ty::Poly(p) => {
                self.tag(0x2E);
                let base = self.tvars.len();
                self.word(p.vars.len() as u64);
                self.tvars.extend(p.vars.iter().copied());
                self.ty(&p.body);
                self.tvars.truncate(base);
            }
        }
    }

    fn ty_result(&mut self, r: &TyResult) {
        let base = self.objs.len();
        self.word(r.existentials.len() as u64);
        // Existentials scope over everything to their right.
        for (x, t) in &r.existentials {
            self.ty(t);
            self.objs.push(*x);
        }
        self.ty(&r.ty);
        self.prop(&r.then_p);
        self.prop(&r.else_p);
        self.obj(&r.obj);
        self.objs.truncate(base);
    }

    fn prop(&mut self, p: &Prop) {
        match p {
            Prop::TT => self.tag(0x40),
            Prop::FF => self.tag(0x41),
            Prop::Is(o, t) => {
                self.tag(0x42);
                self.obj(o);
                self.ty(t);
            }
            Prop::IsNot(o, t) => {
                self.tag(0x43);
                self.obj(o);
                self.ty(t);
            }
            Prop::And(a, b) => {
                self.tag(0x44);
                self.prop(a);
                self.prop(b);
            }
            Prop::Or(a, b) => {
                self.tag(0x45);
                self.prop(a);
                self.prop(b);
            }
            Prop::Alias(a, b) => {
                self.tag(0x46);
                self.obj(a);
                self.obj(b);
            }
            Prop::Lin(a) => {
                self.tag(0x47);
                self.lin_atom(a);
            }
            Prop::Bv(a) => {
                self.tag(0x48);
                self.bv_atom(a);
            }
            Prop::Str(a) => {
                self.tag(0x49);
                self.str_atom(a);
            }
        }
    }

    fn obj(&mut self, o: &Obj) {
        match o {
            Obj::Null => self.tag(0x50),
            Obj::Path(p) => {
                self.tag(0x51);
                self.path(p);
            }
            Obj::Pair(a, b) => {
                self.tag(0x52);
                self.obj(a);
                self.obj(b);
            }
            Obj::Lin(l) => {
                self.tag(0x53);
                self.lin_obj(l);
            }
            Obj::Bv(b) => {
                self.tag(0x54);
                self.bv_obj(b);
            }
            Obj::Str(s) => {
                self.tag(0x55);
                self.bytes(s);
            }
            Obj::Re(r) => {
                self.tag(0x56);
                self.bytes(&r.to_string());
            }
        }
    }

    fn path(&mut self, p: &Path) {
        self.obj_var(p.base);
        self.word(p.fields.len() as u64);
        for f in &p.fields {
            self.tag(match f {
                Field::Fst => 0x60,
                Field::Snd => 0x61,
                Field::Len => 0x62,
            });
        }
    }

    fn lin_obj(&mut self, l: &LinObj) {
        self.word(l.constant as u64);
        self.word(l.terms.len() as u64);
        for (c, p) in &l.terms {
            self.word(*c as u64);
            self.path(p);
        }
    }

    fn lin_atom(&mut self, a: &LinAtom) {
        self.lin_obj(&a.lhs);
        self.tag(match a.cmp {
            LinCmp::Lt => 0x70,
            LinCmp::Le => 0x71,
            LinCmp::Eq => 0x72,
            LinCmp::Ne => 0x73,
        });
        self.lin_obj(&a.rhs);
    }

    fn bv_obj(&mut self, b: &BvObj) {
        match b {
            BvObj::Const(v) => {
                self.tag(0x80);
                self.word(*v);
            }
            BvObj::Path(p) => {
                self.tag(0x81);
                self.path(p);
            }
            BvObj::Not(a) => {
                self.tag(0x82);
                self.bv_obj(a);
            }
            BvObj::And(a, b) => {
                self.tag(0x83);
                self.bv_obj(a);
                self.bv_obj(b);
            }
            BvObj::Or(a, b) => {
                self.tag(0x84);
                self.bv_obj(a);
                self.bv_obj(b);
            }
            BvObj::Xor(a, b) => {
                self.tag(0x85);
                self.bv_obj(a);
                self.bv_obj(b);
            }
            BvObj::Add(a, b) => {
                self.tag(0x86);
                self.bv_obj(a);
                self.bv_obj(b);
            }
            BvObj::Sub(a, b) => {
                self.tag(0x87);
                self.bv_obj(a);
                self.bv_obj(b);
            }
            BvObj::Mul(a, b) => {
                self.tag(0x88);
                self.bv_obj(a);
                self.bv_obj(b);
            }
        }
    }

    fn bv_atom(&mut self, a: &BvAtomProp) {
        self.bv_obj(&a.lhs);
        self.tag(match a.cmp {
            BvCmp::Eq => 0x90,
            BvCmp::Ule => 0x91,
            BvCmp::Ult => 0x92,
        });
        self.bv_obj(&a.rhs);
        self.word(u64::from(a.positive));
    }

    fn str_atom(&mut self, a: &StrAtomProp) {
        match &a.lhs {
            StrObj::Const(s) => {
                self.tag(0xA0);
                self.bytes(s);
            }
            StrObj::Path(p) => {
                self.tag(0xA1);
                self.path(p);
            }
        }
        self.bytes(&a.re.to_string());
        self.word(u64::from(a.positive));
    }
}

/// The α-stable fingerprint of one elaborated module item: a 128-bit
/// stable hash of the item kind, its (exported) name, its declared
/// signature and its core term, independent of spans, `NodeId`s and
/// elaborator-minted fresh binder names. Free references hash by name —
/// the part of the key that ties a verdict to the definitions it reads.
pub fn item_fingerprint(item: &ModuleItem) -> u128 {
    let mut fp = Fp::new();
    match item {
        ModuleItem::DefineRec { name, sig, lam, .. } => {
            fp.tag(0xD1);
            fp.bytes(name.as_str());
            fp.ty(sig);
            fp.lambda(lam);
        }
        ModuleItem::Define { name, sig, rhs, .. } => {
            fp.tag(0xD2);
            fp.bytes(name.as_str());
            match sig {
                Some(t) => {
                    fp.word(1);
                    fp.ty(t);
                }
                None => fp.word(0),
            }
            fp.expr(rhs);
        }
        ModuleItem::Expr { expr, .. } => {
            fp.tag(0xD3);
            fp.expr(expr);
        }
        ModuleItem::Opaque { name, ty } => {
            fp.tag(0xD4);
            fp.bytes(name.as_str());
            fp.ty(ty);
        }
    }
    fp.finish()
}

/// The budget/chaos salt for an item's per-item checker fork. Keyed by
/// the item's *name* (or, for anonymous trailing expressions, the low
/// bits of its term fingerprint) rather than its position, so chaos
/// schedules and budget replay stay stable when an edit inserts,
/// removes or reorders neighbouring definitions.
pub fn item_salt(item: &ModuleItem) -> u64 {
    match item.name() {
        Some(name) => str_hash(name.as_str()),
        None => item_fingerprint(item) as u64,
    }
}

/// The free references of an item: every module-level name its check can
/// read (term free variables plus names mentioned by the declared
/// signature's dependent positions), minus the item's own recursive
/// binding. Sorted for determinism. These are the edges of the
/// item-level dependency graph the incremental driver's early-cutoff
/// accounting walks.
pub fn free_refs(item: &ModuleItem) -> Vec<Symbol> {
    let mut set: HashSet<Symbol> = HashSet::new();
    match item {
        ModuleItem::DefineRec { name, sig, lam, .. } => {
            Expr::Lam(lam.clone()).free_vars(&mut set);
            sig.free_obj_vars(&mut set);
            set.remove(name);
        }
        ModuleItem::Define { sig, rhs, .. } => {
            rhs.free_vars(&mut set);
            if let Some(t) = sig {
                t.free_obj_vars(&mut set);
            }
        }
        ModuleItem::Expr { expr, .. } => expr.free_vars(&mut set),
        ModuleItem::Opaque { ty, .. } => ty.free_obj_vars(&mut set),
    }
    let mut out: Vec<Symbol> = set.into_iter().collect();
    out.sort_by_key(|s| s.as_str());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Span, SpanTable};
    use crate::syntax::Ty;
    use std::sync::Arc;

    fn s(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    fn rec_item(name: &str, param: &str, body: Expr) -> ModuleItem {
        ModuleItem::DefineRec {
            name: s(name),
            sig: Ty::fun(vec![(s(param), Ty::Int)], TyResult::of_type(Ty::Int)),
            lam: Arc::new(Lambda {
                params: vec![(s(param), Ty::Top)],
                body,
            }),
            node: None,
            sig_node: None,
        }
    }

    #[test]
    fn spans_and_nodes_are_ignored() {
        let mut spans = SpanTable::new();
        let n1 = spans.insert(Span::default());
        let n2 = spans.insert(Span::default());
        let n3 = spans.insert(Span::default());
        let plain = rec_item("f", "x", Expr::Var(s("x")));
        let spanned = ModuleItem::DefineRec {
            name: s("f"),
            sig: Ty::fun(vec![(s("x"), Ty::Int)], TyResult::of_type(Ty::Int)),
            lam: Arc::new(Lambda {
                params: vec![(s("x"), Ty::Top)],
                body: Expr::spanned(n3, Expr::Var(s("x"))),
            }),
            node: Some(n1),
            sig_node: Some(n2),
        };
        assert_eq!(item_fingerprint(&plain), item_fingerprint(&spanned));
    }

    #[test]
    fn bound_names_are_alpha_stable_but_free_names_are_not() {
        // (λ x. let a = x in a) ≡α (λ x. let b = x in b)
        let via_a = rec_item(
            "g",
            "x",
            Expr::let_(s("tmp_a"), Expr::Var(s("x")), Expr::Var(s("tmp_a"))),
        );
        let via_b = rec_item(
            "g",
            "x",
            Expr::let_(s("tmp_b"), Expr::Var(s("x")), Expr::Var(s("tmp_b"))),
        );
        assert_eq!(item_fingerprint(&via_a), item_fingerprint(&via_b));

        // A *free* reference renamed is a different item.
        let calls_h = rec_item(
            "g",
            "x",
            Expr::app(Expr::Var(s("h")), vec![Expr::Var(s("x"))]),
        );
        let calls_k = rec_item(
            "g",
            "x",
            Expr::app(Expr::Var(s("k")), vec![Expr::Var(s("x"))]),
        );
        assert_ne!(item_fingerprint(&calls_h), item_fingerprint(&calls_k));

        // Shadowing: an inner binder must not capture the free hash.
        let shadowed = rec_item(
            "g",
            "x",
            Expr::let_(s("h"), Expr::Int(1), Expr::Var(s("h"))),
        );
        let not_shadowed = rec_item(
            "g",
            "x",
            Expr::let_(s("q"), Expr::Int(1), Expr::Var(s("h"))),
        );
        assert_ne!(item_fingerprint(&shadowed), item_fingerprint(&not_shadowed));
    }

    #[test]
    fn renaming_the_item_changes_the_fingerprint_and_salt() {
        let f = rec_item("ren_f", "x", Expr::Var(s("x")));
        let g = rec_item("ren_g", "x", Expr::Var(s("x")));
        assert_ne!(item_fingerprint(&f), item_fingerprint(&g));
        assert_ne!(item_salt(&f), item_salt(&g));
        // The salt is purely name-keyed for definitions.
        let f2 = rec_item("ren_f", "y", Expr::Int(0));
        assert_eq!(item_salt(&f), item_salt(&f2));
    }

    #[test]
    fn free_refs_cover_body_and_signature_minus_self() {
        let item = ModuleItem::DefineRec {
            name: s("fr_f"),
            sig: Ty::fun(vec![(s("x"), Ty::Int)], TyResult::of_type(Ty::Int)),
            lam: Arc::new(Lambda {
                params: vec![(s("x"), Ty::Top)],
                body: Expr::app(
                    Expr::Var(s("fr_f")),
                    vec![Expr::app(Expr::Var(s("fr_g")), vec![Expr::Var(s("x"))])],
                ),
            }),
            node: None,
            sig_node: None,
        };
        let refs = free_refs(&item);
        assert!(refs.contains(&s("fr_g")));
        assert!(!refs.contains(&s("fr_f")), "self-reference excluded");
        assert!(!refs.contains(&s("x")), "parameters are bound");
    }
}
