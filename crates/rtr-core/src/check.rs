//! The typing judgment `Γ ⊢ e : (τ; ψ₊|ψ₋; o)` (Fig. 4), in algorithmic
//! (synthesis) form.
//!
//! Differences from the declarative rules are exactly the implementation
//! techniques of §4.1: subsumption is inlined as result subtyping at the
//! leaves that need it, existential bindings on subterm results are
//! propagated upward instead of eagerly simplified, and let-bound aliases
//! are applied eagerly (representative objects).

use crate::budget::{BudgetState, CancelToken, Judgment, LimitKind};
use crate::cache::LockRecover;
use crate::config::CheckerConfig;
use crate::diag::{Code, Diagnostic, NodeId};
use crate::env::Env;
use crate::mutation::mutated_vars;
use crate::prims::delta;
use crate::syntax::{Expr, FunTy, Lambda, LinCmp, Obj, Prim, Prop, Symbol, Ty, TyResult};

/// A process-wide, lazily spawned worker thread with a 256 MiB stack for
/// checking deep programs.
///
/// Spawning a fresh big-stack thread per deep check is cheap to create
/// but expensive to *use*: the recursion touches megabytes of brand-new
/// stack, and every page is a minor fault. A single long-lived worker
/// pays that cost once; subsequent deep checks run on warm pages.
pub(crate) mod big_stack {
    use std::sync::mpsc::{channel, Sender};
    use std::sync::{Mutex, OnceLock};

    type Job = Box<dyn FnOnce() + Send>;

    fn spawn_worker() -> Sender<Job> {
        let (tx, rx) = channel::<Job>();
        std::thread::Builder::new()
            .name("rtr-checker".into())
            .stack_size(256 * 1024 * 1024)
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .expect("spawning the checker worker thread");
        tx
    }

    fn worker() -> &'static Mutex<Sender<Job>> {
        static WORKER: OnceLock<Mutex<Sender<Job>>> = OnceLock::new();
        WORKER.get_or_init(|| Mutex::new(spawn_worker()))
    }

    /// Runs `f` on the persistent big-stack worker, or returns `None`
    /// when the worker is busy (a concurrent deep check holds it) so the
    /// caller can fall back to a one-shot scoped thread. A worker killed
    /// by an earlier panic is respawned transparently.
    pub(crate) fn run<R: Send + 'static>(f: impl FnOnce() -> R + Send + 'static) -> Option<R> {
        try_run(f).ok()
    }

    /// Like [`run`], but hands the closure back when the worker is busy so
    /// the caller can fall back to a one-shot thread without cloning the
    /// captured state.
    pub(crate) fn try_run<R, F>(f: F) -> Result<R, F>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let Ok(mut guard) = worker().try_lock() else {
            return Err(f);
        };
        let (rtx, rrx) = channel();
        let job: Job = Box::new(move || {
            let _ = rtx.send(f());
        });
        if let Err(returned) = guard.send(job) {
            // The worker died (a previous job panicked). Respawn and
            // resubmit this job on the fresh worker.
            *guard = spawn_worker();
            guard
                .send(returned.0)
                .expect("fresh checker worker must accept jobs");
        }
        // A dropped sender without a result means the job panicked:
        // mirror the scoped path's join().expect(..).
        Ok(rrx.recv().expect("checker thread must not panic"))
    }
}

/// Attaches `node` to a bubbling diagnostic unless an inner (more
/// precise) node is already recorded. Diagnostics travel boxed through
/// the judgments so the hot `Ok` path moves a thin pointer, not the
/// full structure.
pub(crate) fn attach_node(mut d: Box<Diagnostic>, node: Option<NodeId>) -> Box<Diagnostic> {
    if d.node.is_none() {
        d.node = node;
    }
    d
}

/// Extracts the human-readable payload of a caught panic for an `E0203`
/// internal-error diagnostic. `panic!("...")` payloads are `&str` or
/// `String`; anything else gets a fixed placeholder.
/// Extracts the human-readable message from a caught panic payload, for
/// rendering an isolated internal error (`E0203`) diagnostic.
pub fn panic_detail(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_owned()
    }
}

/// The λ_RTR type checker.
///
/// # Examples
///
/// ```
/// use rtr_core::check::Checker;
/// use rtr_core::syntax::{Expr, Prim, Ty};
///
/// // (if (int? #t) 1 2) : Int
/// let e = Expr::if_(
///     Expr::prim_app(Prim::IsInt, vec![Expr::Bool(true)]),
///     Expr::Int(1),
///     Expr::Int(2),
/// );
/// let r = Checker::default().check_program(&e).unwrap();
/// assert_eq!(r.ty, Ty::Int);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Checker {
    /// Configuration (theories, ablations, budgets). Crate-private on
    /// purpose: memo verdicts depend on it and the tables are shared with
    /// clones, so it must not change after construction — build a new
    /// checker via [`Checker::with_config`] instead.
    pub(crate) config: CheckerConfig,
    /// Memo tables for the mutually recursive judgments; shared by clones
    /// (sound: keys embed globally unique environment generations).
    caches: std::sync::Arc<crate::cache::Caches>,
    /// Resource-governance state (see [`crate::budget`]). The resident
    /// state is shared by clones; `check_program`/`check_module` fork a
    /// fresh one per check (and per module item) so one pathological
    /// item cannot starve its neighbours.
    budget: std::sync::Arc<BudgetState>,
}

/// Cache-effectiveness counters, per memo table (`hits`, `misses`).
///
/// Only available with the `stats` Cargo feature; surfaced by
/// `rtr check --stats`.
#[cfg(feature = "stats")]
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Subtype memo table.
    pub subtype: (u64, u64),
    /// Proof (`proves`) memo table.
    pub proves: (u64, u64),
    /// Environment-inconsistency memo table.
    pub inconsistent: (u64, u64),
    /// Type-emptiness memo table.
    pub empty: (u64, u64),
    /// Id-native `update±` memo table.
    pub update: (u64, u64),
    /// Type-overlap memo table.
    pub overlap: (u64, u64),
    /// Linear-theory fingerprint verdict table.
    pub lin: (u64, u64),
    /// Bitvector-theory fingerprint verdict table.
    pub bv: (u64, u64),
    /// Regex-theory fingerprint verdict table.
    pub re: (u64, u64),
    /// Clause-relevance metadata table (free variables + theory mask per
    /// stored disjunction, consulted by the lazy split scheduler).
    pub clause_meta: (u64, u64),
    /// Case-split scheduler counters: `(unit_propagations, splits_taken,
    /// splits_deferred)`. Units are split branches collapsed without
    /// recursion because assuming one disjunct refuted the environment;
    /// deferred counts clauses postponed to the second (goal-irrelevant)
    /// pass of a lazy split round.
    pub splits: (u64, u64, u64),
    /// Persistent regex-session cache counters (DFA compilations,
    /// intersection products, emptiness witnesses).
    pub re_session: rtr_solver::re::ReSessionStats,
}

impl Checker {
    /// A checker with the default (full λ_RTR) configuration.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// A checker with an explicit configuration.
    pub fn with_config(config: CheckerConfig) -> Checker {
        let budget = std::sync::Arc::new(BudgetState::from_config(&config, None));
        Checker {
            config,
            caches: Default::default(),
            budget,
        }
    }

    /// The configuration this checker was built with (read-only: memoized
    /// verdicts depend on it, so it cannot change after construction).
    pub fn config(&self) -> &CheckerConfig {
        &self.config
    }

    /// A clone of this checker whose checks can be revoked externally:
    /// every check forked from the returned checker polls `token` at
    /// the deadline cadence (and at solver-adapter boundaries) and
    /// degrades to `E0202` (`limit: "cancelled"`) once
    /// [`CancelToken::cancel`] is called. Cancellation-degraded
    /// verdicts follow the usual exhaustion contract — conservative,
    /// never cached — so a long-lived service (`rtr lsp`) can abandon
    /// the check of a superseded document version and immediately
    /// re-check the new one against the same warm caches.
    pub fn with_cancel_token(&self, token: CancelToken) -> Checker {
        Checker {
            config: self.config.clone(),
            caches: std::sync::Arc::clone(&self.caches),
            budget: std::sync::Arc::new(self.budget.fork_check_cancellable(None, token)),
        }
    }

    pub(crate) fn caches(&self) -> &crate::cache::Caches {
        &self.caches
    }

    /// The resource-governance state governing the current check.
    pub(crate) fn budget(&self) -> &BudgetState {
        &self.budget
    }

    /// A clone of this checker with a fresh per-check budget (deadline
    /// computed now from `timeout_ms`, zeroed counters and trip flag).
    pub(crate) fn fork_check(&self) -> Checker {
        Checker {
            config: self.config.clone(),
            caches: std::sync::Arc::clone(&self.caches),
            budget: std::sync::Arc::new(self.budget.fork_check(self.config.timeout_ms)),
        }
    }

    /// A clone of this checker with a fresh per-item budget: same
    /// limits and deadline as the current check, zeroed counters and
    /// trip flag, chaos stream salted by `salt` (the item's name-keyed
    /// salt, [`crate::fingerprint::item_salt`], so the stream is stable
    /// when an edit inserts or reorders neighbouring items).
    pub(crate) fn fork_item(&self, salt: u64) -> Checker {
        Checker {
            config: self.config.clone(),
            caches: std::sync::Arc::clone(&self.caches),
            budget: std::sync::Arc::new(self.budget.fork_item(salt)),
        }
    }

    /// Should the current judgment verdict be written to the shared
    /// memo tables? Not once the budget tripped: post-trip verdicts are
    /// conservative degradations, and the trip condition (steps,
    /// deadline, injected faults) is not part of any cache key.
    pub(crate) fn may_store(&self) -> bool {
        self.budget.tripped().is_none()
    }

    /// Theory-solver entry gate: `true` means "skip the query and answer
    /// conservatively". Fires when the wall-clock deadline has passed
    /// (a single solver query can run long between step polls, so the
    /// boundary is re-checked here) or when the chaos harness injects a
    /// forced-unknown at this query.
    pub(crate) fn solver_gate(&self) -> bool {
        if self.budget.tripped().is_some() || self.budget.poll_deadline() {
            return true;
        }
        #[cfg(feature = "chaos")]
        if self
            .budget
            .chaos_roll(crate::budget::ChaosPoint::SolverEntry)
        {
            self.budget.trip(LimitKind::Chaos);
            return true;
        }
        false
    }

    /// Replaces a conservative rejection obtained under a tripped
    /// budget with the structured `E0202` diagnostic (keeping the
    /// original location and recording the masked failure in a note).
    /// Diagnostics that already carry a resource/ICE code pass through.
    pub(crate) fn degrade_to_exhausted(
        &self,
        d: Diagnostic,
        context: impl FnOnce() -> String,
    ) -> Diagnostic {
        let tripped = self.budget.tripped();
        self.degrade_with(d, tripped, context)
    }

    /// [`Checker::degrade_to_exhausted`] with an explicit limit: the
    /// module driver passes "this item's trip, or any earlier item's"
    /// so downstream failures caused by a starved (and thus
    /// coarsely-poisoned) earlier definition also surface as `E0202`.
    pub(crate) fn degrade_with(
        &self,
        d: Diagnostic,
        limit: Option<LimitKind>,
        context: impl FnOnce() -> String,
    ) -> Diagnostic {
        if matches!(d.code, Code::ResourceExhausted | Code::InternalError) {
            return d;
        }
        let Some(limit) = limit else {
            return d;
        };
        let mut out = Diagnostic::exhausted(context(), limit)
            .with_note(format!("the conservative failure was: {}", d.message));
        out.node = d.node;
        out.primary = d.primary;
        out
    }

    /// Module-item entry hook for the chaos harness: may flush the
    /// judgment memo tables (verdict-neutral — every entry is a pure
    /// function of its key). No-op without the `chaos` feature.
    pub(crate) fn chaos_item_entry(&self) {
        #[cfg(feature = "chaos")]
        if self
            .budget
            .chaos_roll(crate::budget::ChaosPoint::CacheFlush)
        {
            self.caches.flush_judgment_tables();
        }
    }

    /// Module-item panic injection (exercises the `catch_unwind` → ICE
    /// isolation path). No-op without the `chaos` feature.
    pub(crate) fn chaos_item_panic(&self) {
        #[cfg(feature = "chaos")]
        if self.budget.chaos_roll(crate::budget::ChaosPoint::ItemPanic) {
            panic!("{}", crate::budget::CHAOS_PANIC_MSG);
        }
    }

    /// Total entries currently held across the memo tables.
    pub fn cache_entry_count(&self) -> usize {
        self.caches.entry_count()
    }

    /// Hit/miss counters for each memo table.
    #[cfg(feature = "stats")]
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            subtype: self.caches.subtype.counters.snapshot(),
            proves: self.caches.proves.counters.snapshot(),
            inconsistent: self.caches.inconsistent.counters.snapshot(),
            empty: self.caches.empty.counters.snapshot(),
            update: self.caches.update.counters.snapshot(),
            overlap: self.caches.overlap.counters.snapshot(),
            lin: self.caches.lin.counters.snapshot(),
            bv: self.caches.bv.counters.snapshot(),
            re: self.caches.re.counters.snapshot(),
            clause_meta: self.caches.clause_meta.counters.snapshot(),
            splits: self.caches.splits.snapshot(),
            re_session: self.re_session_stats(),
        }
    }

    /// Budget-consumption counters accumulated by this checker's forks:
    /// steps burned per judgment, the recursion-depth high-water mark,
    /// the minimum wall-clock margin observed, and limit trips.
    #[cfg(feature = "stats")]
    pub fn budget_stats(&self) -> crate::budget::BudgetStats {
        self.budget.stats()
    }

    /// Type checks a whole program: runs the mutation pre-pass (§4.2) and
    /// synthesizes a type-result in the empty environment.
    ///
    /// Deep programs are checked on a dedicated thread with a large stack:
    /// the judgments are deeply recursive and real modules nest
    /// `let`/`begin` chains hundreds of levels deep once macros expand.
    /// Shallow programs (the overwhelmingly common case) are checked
    /// inline — a thread spawn with a 256 MiB stack costs tens of
    /// microseconds, which dominates small checks.
    // One call per whole-program check: the unboxed Diagnostic is the
    // ergonomic public shape, and the hot recursive judgments box it.
    #[allow(clippy::result_large_err)]
    pub fn check_program(&self, e: &Expr) -> Result<TyResult, Diagnostic> {
        let this = self.fork_check();
        let _live = crate::intern::check_guard();
        this.caches.reconcile_evictions();
        // ~160 expression levels plus the (default-sized) logic fuel
        // bound stays well within a default 2 MiB test-thread stack. The
        // judgments also recurse up to `logic_fuel` frames, so a raised
        // fuel budget forces the big-stack thread even for shallow
        // programs.
        let r = if this.fits_inline_stack(e) {
            this.check_program_caught(e)
        } else {
            // Deep programs: prefer the persistent worker — a freshly
            // spawned thread faults in every stack page the deep
            // recursion touches (hundreds of microseconds for a
            // 256-binder chain), while the long-lived worker keeps those
            // pages warm across checks. The worker needs owned inputs; a
            // `Checker` clone is two `Arc`s and the program copy is
            // linear in its size, both far below one cold-stack penalty.
            // When the worker is busy (parallel deep checks), fall back
            // to a scoped one-shot thread.
            let that = this.clone();
            let owned = e.clone();
            match big_stack::run(move || that.check_program_caught(&owned)) {
                Some(r) => r,
                None => this.on_big_stack(|| this.check_program_caught(e)),
            }
        };
        this.budget.note_margin();
        r.map_err(|d| this.degrade_to_exhausted(d, || "this program".to_owned()))
    }

    /// [`Checker::check_program`] by move: deep programs ship the owned
    /// AST to the big-stack worker instead of cloning it (a 256-binder
    /// chain costs a triple-digit-microsecond copy otherwise). Prefer
    /// this whenever the caller is done with the expression.
    #[allow(clippy::result_large_err)]
    pub fn check_program_owned(&self, e: Expr) -> Result<TyResult, Diagnostic> {
        let this = self.fork_check();
        let _live = crate::intern::check_guard();
        this.caches.reconcile_evictions();
        let r = if this.fits_inline_stack(&e) {
            this.check_program_caught(&e)
        } else {
            let that = this.clone();
            match big_stack::try_run(move || that.check_program_caught(&e)) {
                Ok(r) => r,
                Err(job) => this.on_big_stack(job),
            }
        };
        this.budget.note_margin();
        r.map_err(|d| this.degrade_to_exhausted(d, || "this program".to_owned()))
    }

    /// [`Checker::check_program_inner`] with panic isolation: an
    /// internal checker bug yields an `E0203` diagnostic instead of
    /// tearing down the caller (and, through the big-stack worker's
    /// result channel, the whole process).
    #[allow(clippy::result_large_err)]
    fn check_program_caught(&self, e: &Expr) -> Result<TyResult, Diagnostic> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.check_program_inner(e)))
            .unwrap_or_else(|p| Err(Diagnostic::ice("this program".to_owned(), panic_detail(&p))))
    }

    #[allow(clippy::result_large_err)]
    fn check_program_inner(&self, e: &Expr) -> Result<TyResult, Diagnostic> {
        let mut env = Env::new();
        for x in mutated_vars(e) {
            env.mark_mutable(x);
        }
        self.synth(&env, e).map_err(|d| *d)
    }

    /// Whether `e` (at this checker's fuel and depth budgets) can be
    /// checked on the caller's stack, or needs the dedicated big-stack
    /// thread. The inline depth cap is clamped by the budget's
    /// `max_depth`, so a lowered depth limit keeps shallow programs
    /// inline and the runtime depth guard (see [`Checker::synth`])
    /// turns overruns into `E0202` diagnostics on either path — a
    /// raised limit can never silently overflow the inline stack.
    pub(crate) fn fits_inline_stack(&self, e: &Expr) -> bool {
        const INLINE_DEPTH: usize = 160;
        const INLINE_MAX_FUEL: u32 = 256;
        let inline_depth = INLINE_DEPTH.min(self.config.max_depth as usize);
        self.config.logic_fuel <= INLINE_MAX_FUEL && e.depth_capped(inline_depth) <= inline_depth
    }

    /// Runs `f` on a dedicated thread with a 256 MiB stack — the
    /// judgments are deeply recursive and real modules nest `let`/`begin`
    /// chains hundreds of levels deep once macros expand.
    ///
    /// This is the borrowing one-shot path; callers with owned (`'static`)
    /// work should prefer [`big_stack::run`], which reuses a persistent
    /// worker whose stack pages stay warm.
    pub(crate) fn on_big_stack<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("rtr-checker".into())
                .stack_size(256 * 1024 * 1024)
                .spawn_scoped(scope, f)
                .expect("spawning the checker thread")
                .join()
                .expect("checker thread must not panic")
        })
    }

    /// Synthesizes the type-result of `e` under `env`.
    ///
    /// Errors are boxed: the `Ok` path (every well-typed subterm) moves a
    /// pointer-sized error slot instead of the full [`Diagnostic`].
    #[inline]
    pub fn synth(&self, env: &Env, e: &Expr) -> Result<TyResult, Box<Diagnostic>> {
        // Peel span wrappers without a judgment frame; the innermost
        // wrapper is the most precise location for errors arising here.
        let (e, node) = e.peel_spans_with_node();
        let _frame = self.enter_judgment(Judgment::Synth, node)?;
        match node {
            None => self.synth_peeled(env, e),
            Some(n) => self
                .synth_peeled(env, e)
                .map_err(|d| attach_node(d, Some(n))),
        }
    }

    /// The per-frame budget charge shared by [`Checker::synth`] and
    /// [`Checker::check_result`]: burn one step, then take the recursion
    /// depth guard. Either limit tripping turns into a located `E0202`
    /// diagnostic; the trip is sticky, so every enclosing frame unwinds
    /// with the same verdict.
    #[inline]
    fn enter_judgment(
        &self,
        j: Judgment,
        node: Option<NodeId>,
    ) -> Result<crate::budget::DepthGuard<'_>, Box<Diagnostic>> {
        if let Some(k) = self.budget.burn(j) {
            return Err(Box::new(
                Diagnostic::exhausted("this expression".to_owned(), k).at(node),
            ));
        }
        self.budget
            .descend()
            .map_err(|k| Box::new(Diagnostic::exhausted("this expression".to_owned(), k).at(node)))
    }

    fn synth_peeled(&self, env: &Env, e: &Expr) -> Result<TyResult, Box<Diagnostic>> {
        let fuel = self.config.logic_fuel;
        match e {
            // T-Int (enriched per §3.4: the literal is its own object).
            Expr::Int(n) => {
                let obj = if self.config.theories {
                    Obj::int(*n)
                } else {
                    Obj::Null
                };
                Ok(TyResult::truthy(Ty::Int, obj))
            }
            // T-True / T-False.
            Expr::Bool(true) => Ok(TyResult::new(Ty::True, Prop::TT, Prop::FF, Obj::Null)),
            Expr::Bool(false) => Ok(TyResult::new(Ty::False, Prop::FF, Prop::TT, Obj::Null)),
            Expr::BvLit(v) => {
                let obj = if self.config.theories {
                    Obj::bv(*v)
                } else {
                    Obj::Null
                };
                Ok(TyResult::truthy(Ty::BitVec, obj))
            }
            // T-Str / T-Regex (theory RE enrichments: literals are their
            // own objects, like integers under theory LI).
            Expr::Str(s) => {
                let obj = if self.config.theories {
                    Obj::str_const(s.clone())
                } else {
                    Obj::Null
                };
                Ok(TyResult::truthy(Ty::Str, obj))
            }
            Expr::ReLit(r) => {
                let obj = if self.config.theories {
                    Obj::re(r.clone())
                } else {
                    Obj::Null
                };
                Ok(TyResult::truthy(Ty::Regex, obj))
            }
            // T-Prim.
            Expr::Prim(p) => Ok(TyResult::truthy(delta(*p), Obj::Null)),
            // T-Var.
            Expr::Var(x) => {
                if !env.is_bound(*x) {
                    return Err(Box::new(Diagnostic::unbound(*x)));
                }
                if env.is_mutable(*x) {
                    // §4.2: mutable variables have no symbolic object and
                    // their tests teach the system nothing.
                    let t = env.raw_ty(*x).map(|t| (*t).clone()).unwrap_or(Ty::Top);
                    return Ok(TyResult::of_type(t));
                }
                let o = env.resolve(&Obj::var(*x));
                let t = self.ty_of_obj(env, &o);
                Ok(TyResult::new(
                    t,
                    Prop::is_not(o.clone(), Ty::False),
                    Prop::is(o.clone(), Ty::False),
                    o,
                ))
            }
            // T-Abs.
            Expr::Lam(l) => {
                let mut env2 = env.clone();
                for (x, t) in &l.params {
                    self.bind(&mut env2, *x, t, fuel);
                }
                let r = self.synth(&env2, &l.body)?;
                Ok(TyResult::truthy(Ty::fun(l.params.clone(), r), Obj::Null))
            }
            // T-App.
            // The error context renders the whole application expression;
            // build it lazily so the happy path never pays the (recursive,
            // quadratic-in-depth) `Display` cost.
            Expr::App(f, args) => self.synth_app(env, f, args, &|| e.to_string()),
            // T-If.
            Expr::If(c, t, f) => {
                let rc = self.synth(env, c)?;
                let mut env2 = env.clone();
                let exes = rc.existentials.clone();
                for (x, t) in &exes {
                    self.bind(&mut env2, *x, t, fuel);
                }
                let mut env_then = env2.clone();
                self.assume(&mut env_then, &rc.then_p, fuel);
                let rt = self.synth_branch(&env_then, t)?;
                let mut env_else = env2;
                self.assume(&mut env_else, &rc.else_p, fuel);
                let rf = self.synth_branch(&env_else, f)?;
                Ok(self.join_if(&rc, rt, rf).with_existentials(exes))
            }
            // T-Let.
            Expr::Let(x, rhs, body) => {
                let r1 = self.synth(env, rhs)?;
                let mut env2 = env.clone();
                let (o1, mutable) = self.open_let_binding(&mut env2, *x, &r1);
                let r2 = self.synth(&env2, body)?;
                // Lifting substitution on exit (T-Let's R₂[x ⟹τ₁ o₁]).
                let lifted = if mutable {
                    r2.lift_subst(*x, &r1.ty, &Obj::Null)
                } else {
                    r2.lift_subst(*x, &r1.ty, &o1)
                };
                Ok(lifted.with_existentials(r1.existentials))
            }
            Expr::LetRec(fname, fty, lam, body) => {
                let mut env2 = env.clone();
                self.bind(&mut env2, *fname, fty, fuel);
                self.check_lambda(&env2, lam, fty, &|| format!("(letrec {fname} …)"))?;
                let r = self.synth(&env2, body)?;
                Ok(r.lift_subst(*fname, fty, &Obj::Null))
            }
            // T-Cons.
            Expr::Cons(a, b) => {
                let (ra, rb) = (self.synth(env, a)?, self.synth(env, b)?);
                let mut exes = ra.existentials.clone();
                exes.extend(rb.existentials.clone());
                let obj = Obj::pair(env.resolve(&ra.obj), env.resolve(&rb.obj));
                Ok(TyResult::truthy(Ty::pair(ra.ty, rb.ty), obj).with_existentials(exes))
            }
            // T-Fst / T-Snd.
            Expr::Fst(a) | Expr::Snd(a) => {
                let is_fst = matches!(e, Expr::Fst(_));
                let r = self.synth(env, a)?;
                let mut env2 = env.clone();
                let exes = r.existentials.clone();
                for (g, t) in &exes {
                    self.bind(&mut env2, *g, t, fuel);
                }
                let pairish = Ty::pair(Ty::Top, Ty::Top);
                if !self.subtype(&env2, &r.ty, &pairish, fuel) {
                    return Err(Box::new(
                        Diagnostic::not_a_pair(a.to_string(), &r.ty).at(a.span_node()),
                    ));
                }
                let field = if is_fst {
                    crate::syntax::Field::Fst
                } else {
                    crate::syntax::Field::Snd
                };
                let comp = self.project_field(&r.ty, field);
                let obj = env2.resolve(&r.obj);
                let obj = if is_fst { obj.fst() } else { obj.snd() };
                Ok(TyResult::new(comp, Prop::TT, Prop::TT, obj).with_existentials(exes))
            }
            Expr::VecLit(es) => {
                let mut exes = Vec::new();
                let mut elem_tys = Vec::new();
                for el in es {
                    let r = self.synth(env, el)?;
                    exes.extend(r.existentials.clone());
                    elem_tys.push(r.ty);
                }
                let elem = if elem_tys.is_empty() {
                    Ty::bot()
                } else {
                    // Generalize singleton boolean types: vectors are
                    // mutable (invariant element), so `(vec #t)` must be a
                    // (Vecof Bool), not a (Vecof True) — the same
                    // generalization Typed Racket applies at mutable
                    // container construction.
                    generalize_literal(&Ty::union_of(elem_tys))
                };
                let ty = if self.config.theories {
                    let v = Symbol::fresh("vlit");
                    Ty::refine(
                        v,
                        Ty::vec(elem),
                        Prop::lin(Obj::var(v).len(), LinCmp::Eq, Obj::int(es.len() as i64)),
                    )
                } else {
                    Ty::vec(elem)
                };
                Ok(TyResult::truthy(ty, Obj::Null).with_existentials(exes))
            }
            Expr::Ann(inner, ty) => {
                // Lambdas are checked against function annotations
                // (bidirectional); everything else synthesizes and
                // subsumes.
                if let (Expr::Lam(l), Ty::Fun(_) | Ty::Poly(_)) = (inner.peel_spans(), ty) {
                    self.check_lambda(env, l, ty, &|| inner.to_string())
                        .map_err(|d| attach_node(d, inner.span_node()))?;
                    return Ok(TyResult::truthy(ty.clone(), Obj::Null));
                }
                let r = self.synth(env, inner)?;
                let mut env2 = env.clone();
                for (g, t) in &r.existentials {
                    self.bind(&mut env2, *g, t, fuel);
                }
                let inner_r = r.without_existentials();
                if !self.subtype_result(&env2, &inner_r, &TyResult::of_type(ty.clone()), fuel) {
                    return Err(Box::new(
                        Diagnostic::mismatch(inner.to_string(), ty, &r.ty).at(inner.span_node()),
                    ));
                }
                Ok(TyResult {
                    existentials: r.existentials,
                    ty: ty.clone(),
                    then_p: r.then_p,
                    else_p: r.else_p,
                    obj: r.obj,
                })
            }
            Expr::Error(_) => Ok(TyResult::new(Ty::bot(), Prop::FF, Prop::FF, Obj::Null)),
            Expr::Set(x, rhs) => {
                let declared = env
                    .raw_ty(*x)
                    .map(|t| (*t).clone())
                    .ok_or_else(|| Box::new(Diagnostic::unbound(*x)))?;
                let r = self.synth(env, rhs)?;
                let mut env2 = env.clone();
                for (g, t) in &r.existentials {
                    self.bind(&mut env2, *g, t, fuel);
                }
                let inner = r.without_existentials();
                if !self.subtype_result(&env2, &inner, &TyResult::of_type(declared.clone()), fuel) {
                    return Err(Box::new(
                        Diagnostic::bad_assignment(*x, &declared, &r.ty).at(rhs.span_node()),
                    ));
                }
                Ok(TyResult::truthy(Ty::Unit, Obj::Null))
            }
            Expr::Begin(es) => {
                let mut last = TyResult::truthy(Ty::Unit, Obj::Null);
                for e in es {
                    last = self.synth(env, e)?;
                }
                Ok(last)
            }
            Expr::Spanned(..) => unreachable!("peeled by synth"),
        }
    }

    /// Opens a `let`-binding `x = r1` into `env2` exactly as T-Let does:
    /// binds `r1`'s existentials and `x`, records the alias to `r1`'s
    /// object (immutable bindings only), and assumes
    /// ψx = (x ∉ F ∧ ψ₁₊) ∨ (x ∈ F ∧ ψ₁₋). Returns the resolved object
    /// and whether `x` is mutable — the bits the exit substitution needs.
    /// Shared by `synth`, `check_result` and module-level checking so all
    /// three produce identical environments.
    pub(crate) fn open_let_binding(&self, env2: &mut Env, x: Symbol, r1: &TyResult) -> (Obj, bool) {
        let fuel = self.config.logic_fuel;
        for (g, t) in &r1.existentials {
            self.bind(env2, *g, t, fuel);
        }
        // `let x = y` fast path: when the right-hand side's object already
        // resolves to a tracked representative whose recorded type equals
        // the synthesized one, the binder adds *no* information — the
        // type write-back is a guaranteed no-op, the alias copy copies
        // facts the representative already carries, and ψ_x is the
        // excluded middle over `o ∈ False`. Recording the alias alone is
        // observationally equivalent and skips two environment writes and
        // a proposition walk per binder — the dominant cost on deep
        // binder chains.
        if self.config.representative_objects
            && self.config.hybrid_env
            && !env2.is_bound(x)
            && !env2.is_mutable(x)
            && !matches!(r1.ty, Ty::Refine(_))
            && !matches!(r1.obj, Obj::Pair(..) | Obj::Null)
        {
            let o1 = env2.resolve(&r1.obj);
            let psi_trivial = matches!(
                (&r1.then_p, &r1.else_p),
                (Prop::IsNot(ot, tt_), Prop::Is(oe, te_))
                    if ot == &o1 && oe == &o1 && **tt_ == Ty::False && **te_ == Ty::False
            );
            if psi_trivial
                && !matches!(o1, Obj::Pair(..) | Obj::Null)
                && o1.find_var(&mut |v| v == x).is_none()
                && crate::intern::TyId::of(&r1.ty) == self.ty_of_obj_id(env2, &o1)
            {
                env2.add_alias(x, o1.clone());
                return (o1, false);
            }
        }
        self.bind(env2, x, &r1.ty, fuel);
        let o1 = env2.resolve(&r1.obj);
        let mutable = env2.is_mutable(x);
        if !o1.is_null() && !mutable {
            self.assume(env2, &Prop::alias(Obj::var(x), o1.clone()), fuel);
        }
        let ox = if o1.is_null() || mutable {
            Obj::var(x)
        } else {
            o1.clone()
        };
        let ox = if mutable { Obj::Null } else { ox };
        // ψ_x = (ox ∉ False ∧ ψ₁⁺) ∨ (ox ∈ False ∧ ψ₁⁻), with statically
        // decided disjuncts pruned at construction: an `ff` branch
        // proposition makes its whole disjunct absurd, so the other side
        // is a *unit* — assumed directly, no disjunction stored, no
        // proposition interned. Truthy results (literals, applications)
        // hit this on every `let`, which keeps deep binder chains off the
        // case-split machinery entirely.
        let disjunct = |guard: Prop, branch: &Prop| match branch {
            Prop::TT => Some(guard),
            Prop::FF => None,
            p if *p == guard => Some(guard),
            p => Some(Prop::and(guard, p.clone())),
        };
        let psi_then = disjunct(Prop::is_not(ox.clone(), Ty::False), &r1.then_p);
        let psi_else = disjunct(Prop::is(ox, Ty::False), &r1.else_p);
        let psi_x = match (psi_then, psi_else) {
            // Both disjuncts collapsed to their guards: ψ_x is exactly
            // the excluded middle over `ox ∈ False` — a tautology (the
            // `let`-of-a-variable shape), nothing to learn.
            (Some(Prop::IsNot(o1_, t1_)), Some(Prop::Is(o2_, t2_))) if o1_ == o2_ && t1_ == t2_ => {
                Prop::TT
            }
            (Some(a), Some(b)) => Prop::or(a, b),
            (Some(a), None) | (None, Some(a)) => a,
            (None, None) => Prop::FF,
        };
        self.assume(env2, &psi_x, fuel);
        (o1, mutable)
    }

    /// Checks `e` against an expected type-result (T-Subsume, applied
    /// inside each conditional branch rather than at the join — the
    /// algorithmic counterpart of the declarative system typing both
    /// branches of an `if` at the same result `R`). This is what lets
    /// `max`'s two branches each prove the refined range with their own
    /// branch facts.
    #[inline]
    pub fn check_result(
        &self,
        env: &Env,
        e: &Expr,
        expected: &TyResult,
    ) -> Result<(), Box<Diagnostic>> {
        // As in `synth`: peel span wrappers (so the structural dispatch
        // below still sees `if`/`let`/`begin`) and attach the location to
        // bubbling errors.
        let (e, node) = e.peel_spans_with_node();
        let _frame = self.enter_judgment(Judgment::Synth, node)?;
        match node {
            None => self.check_result_peeled(env, e, expected),
            Some(n) => self
                .check_result_peeled(env, e, expected)
                .map_err(|d| attach_node(d, Some(n))),
        }
    }

    fn check_result_peeled(
        &self,
        env: &Env,
        e: &Expr,
        expected: &TyResult,
    ) -> Result<(), Box<Diagnostic>> {
        let fuel = self.config.logic_fuel;
        match e {
            Expr::If(c, t, f) => {
                let rc = self.synth(env, c)?;
                let mut env2 = env.clone();
                for (x, ty) in &rc.existentials {
                    self.bind(&mut env2, *x, ty, fuel);
                }
                let mut env_then = env2.clone();
                self.assume(&mut env_then, &rc.then_p, fuel);
                if !self.env_inconsistent(&env_then, fuel) {
                    self.check_result(&env_then, t, expected)?;
                }
                let mut env_else = env2;
                self.assume(&mut env_else, &rc.else_p, fuel);
                if !self.env_inconsistent(&env_else, fuel) {
                    self.check_result(&env_else, f, expected)?;
                }
                Ok(())
            }
            Expr::Let(x, rhs, body) => {
                // Push through the binding unless the bound name shadows a
                // variable the expected result mentions.
                let mut fv = std::collections::HashSet::new();
                expected
                    .ty
                    .free_tvars(&mut std::collections::HashSet::new());
                expected.then_p.free_vars(&mut fv);
                expected.else_p.free_vars(&mut fv);
                let mut ty_fv = std::collections::HashSet::new();
                expected.ty.free_obj_vars(&mut ty_fv);
                if fv.contains(x) || ty_fv.contains(x) {
                    return self.check_via_synth(env, e, expected);
                }
                let r1 = self.synth(env, rhs)?;
                let mut env2 = env.clone();
                self.open_let_binding(&mut env2, *x, &r1);
                self.check_result(&env2, body, expected)
            }
            Expr::Begin(es) => match es.split_last() {
                None => self.check_via_synth(env, e, expected),
                Some((last, init)) => {
                    for e in init {
                        self.synth(env, e)?;
                    }
                    self.check_result(env, last, expected)
                }
            },
            _ => self.check_via_synth(env, e, expected),
        }
    }

    fn check_via_synth(
        &self,
        env: &Env,
        e: &Expr,
        expected: &TyResult,
    ) -> Result<(), Box<Diagnostic>> {
        let fuel = self.config.logic_fuel;
        let r = self.synth(env, e)?;
        let mut env2 = env.clone();
        for (g, t) in &r.existentials {
            self.bind(&mut env2, *g, t, fuel);
        }
        let inner = r.without_existentials();
        if !self.subtype_result(&env2, &inner, expected, fuel) {
            return Err(Box::new(
                Diagnostic::mismatch(e.to_string(), &expected.ty, &r.ty).at(e.span_node()),
            ));
        }
        Ok(())
    }

    /// Synthesizes a conditional branch, short-circuiting unreachable
    /// branches to ⊥ (their environment proves `ff`, so any result is
    /// derivable — and errors inside them are not reported, matching the
    /// implementation).
    fn synth_branch(&self, env: &Env, e: &Expr) -> Result<TyResult, Box<Diagnostic>> {
        if self.env_inconsistent(env, self.config.logic_fuel) {
            return Ok(TyResult::new(Ty::bot(), Prop::FF, Prop::FF, Obj::Null));
        }
        self.synth(env, e)
    }

    /// T-If's result join: `R` must subsume both branch results; the
    /// algorithmic join unions the types and tags each branch's
    /// propositions with the test's.
    fn join_if(&self, rc: &TyResult, rt: TyResult, rf: TyResult) -> TyResult {
        let ty = Ty::union_of(vec![rt.ty.clone(), rf.ty.clone()]);
        let then_p = Prop::or(
            Prop::and(rc.then_p.clone(), rt.then_p.clone()),
            Prop::and(rc.else_p.clone(), rf.then_p.clone()),
        );
        let else_p = Prop::or(
            Prop::and(rc.then_p.clone(), rt.else_p.clone()),
            Prop::and(rc.else_p.clone(), rf.else_p.clone()),
        );
        let obj = if !rt.obj.is_null() && rt.obj == rf.obj {
            rt.obj.clone()
        } else if rt.ty.is_bot() {
            rf.obj.clone()
        } else if rf.ty.is_bot() {
            rt.obj.clone()
        } else {
            Obj::Null
        };
        let mut exes = rt.existentials.clone();
        exes.extend(rf.existentials);
        TyResult {
            existentials: exes,
            ty,
            then_p,
            else_p,
            obj,
        }
    }

    fn synth_app(
        &self,
        env: &Env,
        f: &Expr,
        args: &[Expr],
        context: &dyn Fn() -> String,
    ) -> Result<TyResult, Box<Diagnostic>> {
        let fuel = self.config.logic_fuel;
        // The operator is matched structurally below (primitive fast
        // path, enrichments), so look through its span wrapper once.
        let fp = f.peel_spans();
        // Synthesize the operator and arguments. Primitive operators skip
        // synthesis entirely: their Δ-table type is borrowed statically
        // (truthy, object-free, no existentials), so the large
        // refinement-bearing trees are never cloned per application.
        let rf = match fp {
            Expr::Prim(_) => None,
            _ => Some(self.synth(env, f)?),
        };
        let mut arg_results = Vec::with_capacity(args.len());
        for a in args {
            arg_results.push(self.synth(env, a)?);
        }

        let mut env2 = env.clone();
        let mut ghosts: Vec<(Symbol, Ty)> = Vec::new();
        if let Some(rf) = &rf {
            for (g, t) in &rf.existentials {
                self.bind(&mut env2, *g, t, fuel);
                ghosts.push((*g, t.clone()));
            }
        }

        // Peel refinements off the operator type by reference (S-Weaken);
        // only the function node itself is cloned, and polymorphic
        // operators go straight to instantiation without any clone.
        let mut fun_ty: &Ty = match (&rf, fp) {
            (Some(r), _) => &r.ty,
            (None, Expr::Prim(p)) => crate::prims::delta_ref(*p),
            (None, _) => unreachable!("rf is None only for prim operators"),
        };
        while let Ty::Refine(r) = fun_ty {
            fun_ty = &r.base;
        }
        let fun: FunTy = match fun_ty {
            Ty::Fun(f) => (**f).clone(),
            Ty::Poly(p) => {
                // Primitive operators: memoize the instantiation on the
                // canonical argument-type ids — local type inference is a
                // pure function of the poly type and the argument types,
                // and modules re-apply the same primitives at the same
                // types constantly.
                if let Expr::Prim(prim) = fp {
                    let key = (
                        *prim,
                        arg_results
                            .iter()
                            .map(|r| crate::intern::TyId::of(&r.ty))
                            .collect::<Vec<_>>(),
                    );
                    let hit = self
                        .caches()
                        .instantiations
                        .lock_recover()
                        .get(&key)
                        .cloned();
                    match hit {
                        Some(fun) => fun,
                        None => {
                            let arg_tys: Vec<Ty> =
                                arg_results.iter().map(|r| r.ty.clone()).collect();
                            let fun = self.instantiate_poly(p, &arg_tys, context)?;
                            // A starved instantiation may be coarser than the
                            // fault-free one; don't let it poison warm caches.
                            if self.may_store() {
                                let mut memo = self.caches().instantiations.lock_recover();
                                if memo.len() >= crate::cache::SOLVER_TABLE_CAP {
                                    memo.clear();
                                }
                                memo.insert(key, fun.clone());
                            }
                            fun
                        }
                    }
                } else {
                    let arg_tys: Vec<Ty> = arg_results.iter().map(|r| r.ty.clone()).collect();
                    self.instantiate_poly(p, &arg_tys, context)?
                }
            }
            other => {
                return Err(Box::new(
                    Diagnostic::not_a_function(context(), other).at(f.span_node()),
                ))
            }
        };
        if fun.params.len() != args.len() {
            return Err(Box::new(Diagnostic::arity(
                context(),
                fun.params.len(),
                args.len(),
            )));
        }

        // Check each argument against its (progressively substituted)
        // domain, then substitute its object into the remaining domains
        // and the range (the lifting substitution, with ghost variables
        // standing in for object-less arguments). `fun` is owned here, so
        // its parts move instead of cloning.
        let FunTy {
            mut params,
            mut range,
        } = fun;
        let mut arg_objs: Vec<Obj> = Vec::with_capacity(args.len());
        for (idx, r_arg) in arg_results.iter().enumerate() {
            for (g, t) in &r_arg.existentials {
                self.bind(&mut env2, *g, t, fuel);
                ghosts.push((*g, t.clone()));
            }
            let x = params[idx].0;
            let o = {
                let o = env2.resolve(&r_arg.obj);
                if o.is_null() {
                    let g = Symbol::fresh(x.as_str());
                    self.bind(&mut env2, g, &r_arg.ty, fuel);
                    ghosts.push((g, r_arg.ty.clone()));
                    Obj::var(g)
                } else {
                    o
                }
            };
            let fitted = TyResult {
                existentials: Vec::new(),
                ty: r_arg.ty.clone(),
                then_p: Prop::TT,
                else_p: Prop::TT,
                obj: o.clone(),
            };
            // One domain clone feeds the expected result; the error path
            // (cold) re-reads it from `expected`.
            let expected = TyResult::of_type(params[idx].1.clone());
            if !self.subtype_result(&env2, &fitted, &expected, fuel) {
                return Err(Box::new(
                    Diagnostic::mismatch(
                        format!("{}, argument {}", context(), idx + 1),
                        &expected.ty,
                        &r_arg.ty,
                    )
                    .at(args[idx].span_node()),
                ));
            }
            for (_, d) in params.iter_mut().skip(idx + 1) {
                *d = d.subst_obj(x, &o);
            }
            range = range.subst_obj(x, &o);
            arg_objs.push(o);
        }

        let mut result = range.with_existentials(ghosts);

        // Special enrichments the Δ-table templates cannot express.
        if let Expr::Prim(p) = fp {
            result = self.enrich_prim_app(env, *p, &arg_results, &arg_objs, result);
        }
        Ok(result)
    }

    /// `*` objects (linear only with a literal factor) and `equal?` on
    /// integers (one of the paper's 36 enriched base functions).
    fn enrich_prim_app(
        &self,
        env: &Env,
        p: Prim,
        arg_results: &[TyResult],
        arg_objs: &[Obj],
        mut result: TyResult,
    ) -> TyResult {
        if !self.config.theories {
            return result;
        }
        match p {
            Prim::Times => {
                if let [o1, o2] = arg_objs {
                    result.obj = o1.mul(o2);
                }
            }
            Prim::Equal => {
                if let ([r1, r2], [o1, o2]) = (arg_results, arg_objs) {
                    let fuel = self.config.logic_fuel;
                    let both_int = self.subtype(env, &r1.ty, &Ty::Int, fuel)
                        && self.subtype(env, &r2.ty, &Ty::Int, fuel);
                    if both_int {
                        result.then_p = Prop::lin(o1.clone(), LinCmp::Eq, o2.clone());
                        result.else_p = Prop::lin(o1.clone(), LinCmp::Ne, o2.clone());
                    }
                }
            }
            // (regexp-match? r s): when the regex argument resolves to a
            // literal, the test's outcome is exactly the membership atom
            // `s ∈ L(r)` — the theory-RE analogue of `(≤ x y)` emitting a
            // linear atom (§3.4).
            Prim::StrMatch => {
                if let [o_re, o_s] = arg_objs {
                    let atom = Prop::re_match(o_s, o_re);
                    if let Some(neg) = atom.negate() {
                        result.then_p = atom;
                        result.else_p = neg;
                    }
                }
            }
            _ => {}
        }
        result
    }

    /// Checks a lambda against an expected (possibly polymorphic)
    /// function type.
    pub fn check_lambda(
        &self,
        env: &Env,
        lam: &Lambda,
        expected: &Ty,
        context: &dyn Fn() -> String,
    ) -> Result<(), Box<Diagnostic>> {
        let fuel = self.config.logic_fuel;
        let fun: &FunTy = match expected {
            Ty::Fun(f) => f,
            // Type variables of a ∀ are checked opaquely (they only match
            // themselves in subtyping).
            Ty::Poly(p) => {
                return match &p.body {
                    Ty::Fun(_) => self.check_lambda(env, lam, &p.body, context),
                    other => Err(Box::new(Diagnostic::mismatch(context(), other, &Ty::Top))),
                };
            }
            other => return Err(Box::new(Diagnostic::not_a_function(context(), other))),
        };
        if fun.params.len() != lam.params.len() {
            return Err(Box::new(Diagnostic::arity(
                context(),
                fun.params.len(),
                lam.params.len(),
            )));
        }
        let mut env2 = env.clone();
        // Rename the signature's parameters to the lambda's names.
        let mut doms: Vec<Ty> = fun.params.iter().map(|(_, d)| d.clone()).collect();
        let mut range = fun.range.clone();
        for i in 0..doms.len() {
            let sig_name = fun.params[i].0;
            let lam_name = lam.params[i].0;
            if sig_name != lam_name {
                let rep = Obj::var(lam_name);
                for d in doms.iter_mut().skip(i + 1) {
                    *d = d.subst_obj(sig_name, &rep);
                }
                range = range.subst_obj(sig_name, &rep);
            }
        }
        for (i, (x, ann)) in lam.params.iter().enumerate() {
            // The signature's domain must satisfy any explicit annotation.
            if *ann != Ty::Top && !self.subtype(&env2, &doms[i], ann, fuel) {
                return Err(Box::new(Diagnostic::mismatch(
                    format!("{}, parameter {x}", context()),
                    ann,
                    &doms[i],
                )));
            }
            self.bind(&mut env2, *x, &doms[i], fuel);
        }
        self.check_result(&env2, &lam.body, &range)
    }

    /// Projects the component type of a pair-typed expression.
    pub(crate) fn project_field(&self, t: &Ty, f: crate::syntax::Field) -> Ty {
        match t {
            Ty::Pair(a, b) => {
                if f == crate::syntax::Field::Fst {
                    (**a).clone()
                } else {
                    (**b).clone()
                }
            }
            Ty::Union(ts) => Ty::union_of(ts.iter().map(|t| self.project_field(t, f)).collect()),
            Ty::Refine(r) => self.project_field(&r.base, f),
            _ => Ty::Top,
        }
    }
}

/// Widens singleton boolean types to `Bool` (recursively through pairs
/// and unions) for mutable-container element positions.
fn generalize_literal(t: &Ty) -> Ty {
    match t {
        Ty::True | Ty::False => Ty::bool_ty(),
        Ty::Pair(a, b) => Ty::pair(generalize_literal(a), generalize_literal(b)),
        Ty::Union(ts) => Ty::union_of(ts.iter().map(generalize_literal).collect()),
        _ => t.clone(),
    }
}
