//! # rtr-core — the λ_RTR calculus
//!
//! A from-scratch implementation of the type system of *Occurrence Typing
//! Modulo Theories* (Kent, Kempe, Tobin-Hochstadt; PLDI 2016): occurrence
//! typing à la Typed Racket extended with dependent refinement types whose
//! propositions are discharged by pluggable solver-backed theories.
//!
//! The crate mirrors the paper's structure:
//!
//! * [`syntax`] — Fig. 2: expressions, types, propositions, symbolic
//!   objects, type-results.
//! * [`prims`] — Fig. 3's Δ table, enriched per §3.4/§5.
//! * [`check`] — Fig. 4's typing judgment (algorithmic).
//! * [`subtype`] (impls on [`check::Checker`]) — Fig. 5.
//! * [`logic`] (impls on `Checker`) — Fig. 6's proof system and the
//!   L-Theory solver adapters.
//! * [`update`] (impls on `Checker`) — Fig. 7's `update`/`restrict`/
//!   `remove` metafunctions.
//! * [`interp`] — Fig. 8's big-step semantics.
//! * [`model`] — Fig. 8's satisfaction relation, used to test the
//!   soundness theorem (Lemma 2 / Theorem 1) executably.
//! * [`mod@env`], [`config`], [`mutation`], [`infer`] — the §4
//!   scaling machinery.
//! * [`diag`] — structured, located diagnostics (spans, `E0xxx` codes,
//!   payloads) and the human renderer; [`module`] — module-level checking
//!   with multi-error recovery ([`errors`] keeps the old `TypeError` name
//!   as an alias).
//! * [`intern`] — hash-consed `TyId`/`PropId`/`ObjId` handles backing the
//!   checker's memo tables and the environment's id-native storage.
//! * [`pmap`] — the persistent HAMT the environment stores those ids in.
//!
//! # Examples
//!
//! ```
//! use rtr_core::check::Checker;
//! use rtr_core::syntax::{Expr, Prim, Symbol, Ty};
//!
//! // (λ (n : (U Int Bool)) (if (int? n) n 0)) — occurrence typing narrows
//! // n to Int in the then-branch.
//! let n = Symbol::intern("n");
//! let f = Expr::lam(
//!     vec![(n, Ty::union_of(vec![Ty::Int, Ty::bool_ty()]))],
//!     Expr::if_(
//!         Expr::prim_app(Prim::IsInt, vec![Expr::Var(n)]),
//!         Expr::Var(n),
//!         Expr::Int(0),
//!     ),
//! );
//! assert!(Checker::default().check_program(&f).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod budget;
mod cache;
pub mod check;
pub mod config;
pub mod diag;
pub mod env;
pub mod errors;
pub mod fingerprint;
pub mod incremental;
pub mod infer;
pub mod intern;
pub mod interp;
pub mod logic;
pub mod model;
pub mod module;
pub mod mutation;
pub mod pmap;
pub mod prims;
mod solver_cache;
pub mod subtype;
pub mod syntax;
pub mod update;
