//! The incremental theory-solving layer: solver-query memoization,
//! incremental Fourier–Motzkin, and the persistent bitvector session.
//!
//! Three reuse mechanisms sit between the `L-Theory` adapters in
//! [`crate::logic`] and the one-shot solvers in `rtr-solver`, all gated
//! by [`crate::config::CheckerConfig::solver_cache`]:
//!
//! 1. **Fingerprint memoization.** Every satisfiability query (an
//!    entailment is `facts ∧ ¬goal`) is canonicalized into a
//!    [`TheoryFp`]: the atom list is sorted, deduplicated, and its paths
//!    renamed to de-Bruijn-style indices in first-occurrence order
//!    (keeping the `len`-path flag, which the linear translator turns
//!    into non-negativity side constraints). Canonicalization preserves
//!    the constraint system up to variable renaming, and solver verdicts
//!    are invariant under renaming, so a cached verdict transfers to
//!    every environment posing the same system — these tables are
//!    environment-independent, the solver-level analogue of the
//!    generation-0 subtype entries.
//! 2. **Incremental Fourier–Motzkin.** Each environment's linear store
//!    carries an epoch stamp ([`crate::env::Env::lin_epoch`]) with a
//!    parent pointer recording append-only extension. A [`LinStore`]
//!    (translated rows + elimination trace) is cached per epoch; adding
//!    facts after a snapshot replays only the delta through the parent's
//!    recorded eliminations (`FmTrace`), and entailment goals are a
//!    one-row delta against the warm trace.
//! 3. **Bitvector session.** One [`rtr_solver::bv::BvSession`] per
//!    checker keeps a growing CNF with hash-consed term encodings and the
//!    CDCL solver's learnt clauses; facts and goals are activation-guarded
//!    assumptions, so repeated goals over the same terms skip re-encoding
//!    and re-derivation.
//!
//! All tables live in [`crate::cache::Caches`], capped and flushed like
//! the judgment memo tables (a long-lived server process must not grow
//! them unboundedly).

use std::sync::Arc;

use rtr_solver::fxhash::FxHashMap;

use rtr_solver::bv::{BvLit, BvResult, BvSession, BvTerm};
use rtr_solver::lin::{Constraint, FmTrace, FourierMotzkin, LinExpr, LinResult, SolverVar};
use rtr_solver::rational::Rat;
use rtr_solver::re::{ReConstraint, ReResult, ReSession, Regex};

use crate::cache::{LockRecover, SOLVER_TABLE_CAP};
use crate::check::Checker;
use crate::env::Env;
use crate::syntax::{BvAtomProp, BvCmp, BvObj, Field, LinAtom, LinCmp, LinObj, Path, StrAtomProp};

/// Rebuild the elimination trace once this many rows accumulate past the
/// traced prefix — bounding the per-extension replay cost.
const TRACE_MAX_PENDING: usize = 8;

/// Retire the bitvector session once its CNF grows past this many
/// variables (a fresh session re-encodes lazily; verdict memos survive).
/// Must sit well below the blaster's aux-variable budget (1,000,000):
/// past that the blaster refuses new encodings, so a session allowed to
/// reach it would answer `Unknown` forever instead of being retired.
const SESSION_MAX_VARS: u32 = 1 << 19;

/// Retire the regex session once its DFA caches hold this many states
/// (a fresh session recompiles lazily; the fingerprint memos survive).
const SESSION_MAX_STATES: usize = 1 << 16;

// --- canonical fingerprints ---------------------------------------------

/// One token of a canonical constraint-system serialization.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) enum FpTok {
    /// Structural marker (atom separators, comparison and node opcodes).
    Op(u8),
    /// A renamed path.
    Var(u32),
    /// A renamed path whose last field is `len` (the linear translator
    /// adds `0 ≤ v` for these, so the flag is semantically relevant).
    LenVar(u32),
    /// An integer constant / coefficient.
    Int(i64),
    /// A bitvector constant.
    Word(u64),
    /// A string literal.
    Str(Arc<str>),
    /// A regex (compared and hashed structurally).
    Re(Arc<Regex>),
}

/// A canonicalized constraint-system fingerprint: sorted, deduplicated
/// atoms with paths renamed to first-occurrence indices. Two queries with
/// equal fingerprints pose variable-renamings of the same system, so
/// solver verdicts transfer between them.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct TheoryFp(Vec<FpTok>);

/// Opcode space for [`FpTok::Op`].
mod op {
    pub(super) const SEP: u8 = 0;
    pub(super) const LT: u8 = 1;
    pub(super) const LE: u8 = 2;
    pub(super) const EQ: u8 = 3;
    pub(super) const NE: u8 = 4;
    pub(super) const ULE: u8 = 5;
    pub(super) const ULT: u8 = 6;
    pub(super) const POS: u8 = 7;
    pub(super) const NEG: u8 = 8;
    pub(super) const CONST: u8 = 9;
    pub(super) const PATH: u8 = 10;
    pub(super) const NOT: u8 = 11;
    pub(super) const AND: u8 = 12;
    pub(super) const OR: u8 = 13;
    pub(super) const XOR: u8 = 14;
    pub(super) const ADD: u8 = 15;
    pub(super) const SUB: u8 = 16;
    pub(super) const MUL: u8 = 17;
    pub(super) const GOAL: u8 = 18;
}

/// First-occurrence path renamer shared by the atoms of one query.
/// Borrows the paths (a query touches a handful, so a linear scan beats
/// hashing plus cloning each `Path` into a map).
#[derive(Default)]
struct Renamer<'a> {
    seen: Vec<&'a Path>,
}

impl<'a> Renamer<'a> {
    fn tok(&mut self, p: &'a Path) -> FpTok {
        let idx = match self.seen.iter().position(|q| *q == p) {
            Some(i) => i as u32,
            None => {
                self.seen.push(p);
                (self.seen.len() - 1) as u32
            }
        };
        if p.fields.last() == Some(&Field::Len) {
            FpTok::LenVar(idx)
        } else {
            FpTok::Var(idx)
        }
    }
}

/// Sorts and dedups atoms by a deterministic structural order, then
/// serializes them through `emit` with a shared renamer. The sort order
/// (which still sees original paths) only fixes a canonical sequence —
/// the emitted tokens carry the full renamed structure, so distinct
/// systems can never collide.
fn fingerprint<'a, A: PartialEq>(
    atoms: Vec<&'a A>,
    cmp: impl Fn(&A, &A) -> std::cmp::Ordering,
    emit: impl Fn(&'a A, &mut Renamer<'a>, &mut Vec<FpTok>),
) -> TheoryFp {
    let mut sorted = atoms;
    sorted.sort_unstable_by(|a, b| cmp(a, b));
    sorted.dedup_by(|a, b| a == b);
    let mut renamer = Renamer::default();
    let mut toks = Vec::with_capacity(sorted.len() * 8);
    for a in sorted {
        emit(a, &mut renamer, &mut toks);
        toks.push(FpTok::Op(op::SEP));
    }
    TheoryFp(toks)
}

// --- structural atom orderings (allocation-free sort keys) --------------

fn cmp_lin_obj(a: &LinObj, b: &LinObj) -> std::cmp::Ordering {
    a.constant
        .cmp(&b.constant)
        .then_with(|| a.terms.cmp(&b.terms))
}

fn cmp_lin_atom(a: &LinAtom, b: &LinAtom) -> std::cmp::Ordering {
    (a.cmp as u8)
        .cmp(&(b.cmp as u8))
        .then_with(|| cmp_lin_obj(&a.lhs, &b.lhs))
        .then_with(|| cmp_lin_obj(&a.rhs, &b.rhs))
}

fn bv_node_rank(o: &BvObj) -> u8 {
    match o {
        BvObj::Const(_) => 0,
        BvObj::Path(_) => 1,
        BvObj::Not(_) => 2,
        BvObj::And(..) => 3,
        BvObj::Or(..) => 4,
        BvObj::Xor(..) => 5,
        BvObj::Add(..) => 6,
        BvObj::Sub(..) => 7,
        BvObj::Mul(..) => 8,
    }
}

fn cmp_bv_obj(a: &BvObj, b: &BvObj) -> std::cmp::Ordering {
    match (a, b) {
        (BvObj::Const(x), BvObj::Const(y)) => x.cmp(y),
        (BvObj::Path(x), BvObj::Path(y)) => x.cmp(y),
        (BvObj::Not(x), BvObj::Not(y)) => cmp_bv_obj(x, y),
        (BvObj::And(x1, x2), BvObj::And(y1, y2))
        | (BvObj::Or(x1, x2), BvObj::Or(y1, y2))
        | (BvObj::Xor(x1, x2), BvObj::Xor(y1, y2))
        | (BvObj::Add(x1, x2), BvObj::Add(y1, y2))
        | (BvObj::Sub(x1, x2), BvObj::Sub(y1, y2))
        | (BvObj::Mul(x1, x2), BvObj::Mul(y1, y2)) => {
            cmp_bv_obj(x1, y1).then_with(|| cmp_bv_obj(x2, y2))
        }
        _ => bv_node_rank(a).cmp(&bv_node_rank(b)),
    }
}

fn cmp_bv_atom(a: &BvAtomProp, b: &BvAtomProp) -> std::cmp::Ordering {
    a.positive
        .cmp(&b.positive)
        .then_with(|| (a.cmp as u8).cmp(&(b.cmp as u8)))
        .then_with(|| cmp_bv_obj(&a.lhs, &b.lhs))
        .then_with(|| cmp_bv_obj(&a.rhs, &b.rhs))
}

fn cmp_str_atom(a: &StrAtomProp, b: &StrAtomProp) -> std::cmp::Ordering {
    use crate::syntax::StrObj;
    use std::cmp::Ordering;
    let lhs = match (&a.lhs, &b.lhs) {
        (StrObj::Const(x), StrObj::Const(y)) => x.cmp(y),
        (StrObj::Path(x), StrObj::Path(y)) => x.cmp(y),
        (StrObj::Const(_), StrObj::Path(_)) => Ordering::Less,
        (StrObj::Path(_), StrObj::Const(_)) => Ordering::Greater,
    };
    a.positive
        .cmp(&b.positive)
        .then(lhs)
        // Regexes have no cheap total order; break the (rare) tie between
        // equal-polarity, equal-subject atoms structurally via the debug
        // rendering, so the canonical order — and with it the fingerprint
        // — never depends on heap addresses.
        .then_with(|| {
            if Arc::ptr_eq(&a.re, &b.re) {
                std::cmp::Ordering::Equal
            } else {
                format!("{:?}", a.re).cmp(&format!("{:?}", b.re))
            }
        })
}

fn lin_cmp_op(c: LinCmp) -> u8 {
    match c {
        LinCmp::Lt => op::LT,
        LinCmp::Le => op::LE,
        LinCmp::Eq => op::EQ,
        LinCmp::Ne => op::NE,
    }
}

fn emit_lin_obj<'a>(l: &'a LinObj, r: &mut Renamer<'a>, out: &mut Vec<FpTok>) {
    out.push(FpTok::Int(l.constant));
    for (c, p) in &l.terms {
        out.push(FpTok::Int(*c));
        out.push(r.tok(p));
    }
}

fn emit_lin_atom<'a>(a: &'a LinAtom, r: &mut Renamer<'a>, out: &mut Vec<FpTok>) {
    out.push(FpTok::Op(lin_cmp_op(a.cmp)));
    emit_lin_obj(&a.lhs, r, out);
    out.push(FpTok::Op(op::SEP));
    emit_lin_obj(&a.rhs, r, out);
}

fn emit_bv_obj<'a>(o: &'a BvObj, r: &mut Renamer<'a>, out: &mut Vec<FpTok>) {
    match o {
        BvObj::Const(v) => {
            out.push(FpTok::Op(op::CONST));
            out.push(FpTok::Word(*v));
        }
        BvObj::Path(p) => {
            out.push(FpTok::Op(op::PATH));
            out.push(r.tok(p));
        }
        BvObj::Not(a) => {
            out.push(FpTok::Op(op::NOT));
            emit_bv_obj(a, r, out);
        }
        BvObj::And(a, b) => emit_bv_binary(op::AND, a, b, r, out),
        BvObj::Or(a, b) => emit_bv_binary(op::OR, a, b, r, out),
        BvObj::Xor(a, b) => emit_bv_binary(op::XOR, a, b, r, out),
        BvObj::Add(a, b) => emit_bv_binary(op::ADD, a, b, r, out),
        BvObj::Sub(a, b) => emit_bv_binary(op::SUB, a, b, r, out),
        BvObj::Mul(a, b) => emit_bv_binary(op::MUL, a, b, r, out),
    }
}

fn emit_bv_binary<'a>(
    code: u8,
    a: &'a BvObj,
    b: &'a BvObj,
    r: &mut Renamer<'a>,
    out: &mut Vec<FpTok>,
) {
    out.push(FpTok::Op(code));
    emit_bv_obj(a, r, out);
    emit_bv_obj(b, r, out);
}

fn emit_bv_atom<'a>(a: &'a BvAtomProp, r: &mut Renamer<'a>, out: &mut Vec<FpTok>) {
    out.push(FpTok::Op(if a.positive { op::POS } else { op::NEG }));
    out.push(FpTok::Op(match a.cmp {
        BvCmp::Eq => op::EQ,
        BvCmp::Ule => op::ULE,
        BvCmp::Ult => op::ULT,
    }));
    emit_bv_obj(&a.lhs, r, out);
    emit_bv_obj(&a.rhs, r, out);
}

fn emit_str_atom<'a>(a: &'a StrAtomProp, r: &mut Renamer<'a>, out: &mut Vec<FpTok>) {
    out.push(FpTok::Op(if a.positive { op::POS } else { op::NEG }));
    match &a.lhs {
        crate::syntax::StrObj::Const(s) => {
            out.push(FpTok::Op(op::CONST));
            out.push(FpTok::Str(s.clone()));
        }
        crate::syntax::StrObj::Path(p) => {
            out.push(FpTok::Op(op::PATH));
            out.push(r.tok(p));
        }
    }
    out.push(FpTok::Re(a.re.clone()));
}

/// Canonical fingerprint of a linear constraint system (facts, optionally
/// extended with the negated entailment goal — the combined system is
/// what the solver actually decides).
pub(crate) fn lin_fingerprint(facts: &[LinAtom], neg_goal: Option<&LinAtom>) -> TheoryFp {
    let atoms: Vec<&LinAtom> = facts.iter().chain(neg_goal).collect();
    fingerprint(atoms, cmp_lin_atom, emit_lin_atom)
}

/// Canonical fingerprint of a bitvector literal conjunction.
pub(crate) fn bv_fingerprint(facts: &[BvAtomProp], neg_goal: Option<&BvAtomProp>) -> TheoryFp {
    let atoms: Vec<&BvAtomProp> = facts.iter().chain(neg_goal).collect();
    fingerprint(atoms, cmp_bv_atom, emit_bv_atom)
}

/// Canonical fingerprint of a regex-membership query. The goal (when
/// present) is marked rather than negated — the regex adapter's
/// ground-atom preprocessing is polarity-sensitive.
pub(crate) fn str_fingerprint(facts: &[StrAtomProp], goal: Option<&StrAtomProp>) -> TheoryFp {
    let mut sorted: Vec<&StrAtomProp> = facts.iter().collect();
    sorted.sort_unstable_by(|a, b| cmp_str_atom(a, b));
    sorted.dedup_by(|a, b| a == b);
    let mut renamer = Renamer::default();
    let mut toks = Vec::with_capacity((sorted.len() + 1) * 4);
    for a in sorted {
        emit_str_atom(a, &mut renamer, &mut toks);
        toks.push(FpTok::Op(op::SEP));
    }
    if let Some(g) = goal {
        toks.push(FpTok::Op(op::GOAL));
        emit_str_atom(g, &mut renamer, &mut toks);
    }
    TheoryFp(toks)
}

// --- incremental linear stores ------------------------------------------

/// The cached linear-solver state of one environment's fact store: the
/// path→variable mapping (stable across extensions, so delta rows
/// compose), the satisfiability verdict, and — when available — the
/// recorded elimination trace plus the few `pending` rows added since it
/// was recorded. A child store or an entailment goal replays only
/// `pending` (plus its own delta) through the trace instead of
/// re-eliminating the whole system; once `pending` outgrows
/// [`TRACE_MAX_PENDING`], the system is re-solved and re-traced.
#[derive(Debug)]
pub(crate) struct LinStore {
    vars: Arc<FxHashMap<Path, SolverVar>>,
    /// Translated rows not covered by `trace` (small by construction).
    pending: Vec<Constraint>,
    num_atoms: usize,
    pub(crate) result: LinResult,
    trace: Option<Arc<FmTrace>>,
}

/// Allocates (or finds) the solver variable for `p`, appending the
/// `0 ≤ v` side constraint the first time a `len` path is seen — the
/// persistent-translation equivalent of the one-shot translator's
/// `add_len_nonneg` pass.
fn lin_var(
    p: &Path,
    vars: &mut FxHashMap<Path, SolverVar>,
    rows: &mut Vec<Constraint>,
) -> SolverVar {
    if let Some(&v) = vars.get(p) {
        return v;
    }
    let v = SolverVar(vars.len() as u32);
    vars.insert(p.clone(), v);
    if p.fields.last() == Some(&Field::Len) {
        rows.push(Constraint::ge(LinExpr::var(v), LinExpr::constant(0)));
    }
    v
}

fn lin_expr(
    l: &LinObj,
    vars: &mut FxHashMap<Path, SolverVar>,
    rows: &mut Vec<Constraint>,
) -> LinExpr {
    let terms: Vec<(Rat, SolverVar)> = l
        .terms
        .iter()
        .map(|(c, p)| (Rat::from(*c), lin_var(p, vars, rows)))
        .collect();
    LinExpr::from_terms(terms, Rat::from(l.constant))
}

/// Translates `a` and appends its row (plus any new `len` side rows).
fn push_lin_atom(a: &LinAtom, vars: &mut FxHashMap<Path, SolverVar>, rows: &mut Vec<Constraint>) {
    let lhs = lin_expr(&a.lhs, vars, rows);
    let rhs = lin_expr(&a.rhs, vars, rows);
    rows.push(match a.cmp {
        LinCmp::Lt => Constraint::lt(lhs, rhs),
        LinCmp::Le => Constraint::le(lhs, rhs),
        LinCmp::Eq => Constraint::eq(lhs, rhs),
        LinCmp::Ne => Constraint::ne(lhs, rhs),
    });
}

/// Translates every atom from scratch (the slow path, used when no trace
/// can be extended) and returns the full row set with its var map.
fn translate_all(facts: &[LinAtom]) -> (FxHashMap<Path, SolverVar>, Vec<Constraint>) {
    let mut vars = FxHashMap::default();
    let mut rows = Vec::with_capacity(facts.len() + 2);
    for a in facts {
        push_lin_atom(a, &mut vars, &mut rows);
    }
    (vars, rows)
}

impl Checker {
    /// The cached [`LinStore`] for `env`'s linear facts, built by
    /// extending the parent epoch's store when the facts are an
    /// append-only extension, else from scratch.
    fn lin_store_for(&self, env: &Env) -> Arc<LinStore> {
        let epoch = env.lin_epoch();
        {
            let stores = self.caches().lin_stores.lock_recover();
            if let Some(s) = stores.get(&epoch) {
                return s.clone();
            }
        }
        let parent = env
            .lin_parent()
            .and_then(|p| self.caches().lin_stores.lock_recover().get(&p).cloned());
        let facts = env.lin_facts();
        let store = match parent {
            Some(p) if p.num_atoms <= facts.len() => self.lin_store_extended(&p, facts),
            _ => self.lin_store_full(facts),
        };
        let store = Arc::new(store);
        // A deadline-degraded verdict is transient: caching it would leave
        // later, unhurried checks reading a starved `Unknown` forever.
        self.budget().poll_deadline();
        if self.may_store() {
            let mut stores = self.caches().lin_stores.lock_recover();
            if stores.len() >= SOLVER_TABLE_CAP {
                stores.clear();
            }
            stores.insert(epoch, store.clone());
        }
        store
    }

    /// A Fourier–Motzkin instance carrying the budget's wall-clock
    /// deadline, so long eliminations degrade to `Unknown` in time.
    pub(crate) fn fm_solver(&self) -> FourierMotzkin {
        let mut fm = FourierMotzkin::new(self.config.fm);
        fm.set_deadline(self.budget().deadline());
        fm
    }

    fn lin_store_full(&self, facts: &[LinAtom]) -> LinStore {
        let (vars, rows) = translate_all(facts);
        let fm = self.fm_solver();
        let (result, trace) = fm.check_traced(&rows);
        match trace {
            Some(t) => LinStore {
                vars: Arc::new(vars),
                pending: Vec::new(),
                num_atoms: facts.len(),
                result,
                trace: Some(Arc::new(t)),
            },
            None => LinStore {
                vars: Arc::new(vars),
                pending: rows,
                num_atoms: facts.len(),
                result,
                trace: None,
            },
        }
    }

    /// Extends `parent` with `facts[parent.num_atoms..]`: the delta rows
    /// join the parent's pending set and are replayed through its trace;
    /// once the pending set outgrows the budget (or the trace can't
    /// replay the delta) the whole system is re-solved and re-traced.
    fn lin_store_extended(&self, parent: &LinStore, facts: &[LinAtom]) -> LinStore {
        if parent.result == LinResult::Unsat {
            // Supersets of an unsat system are unsat; nothing to solve.
            return LinStore {
                vars: parent.vars.clone(),
                pending: Vec::new(),
                num_atoms: facts.len(),
                result: LinResult::Unsat,
                trace: None,
            };
        }
        let mut vars = parent.vars.clone();
        let mut pending = parent.pending.clone();
        for a in &facts[parent.num_atoms..] {
            push_lin_atom(a, Arc::make_mut(&mut vars), &mut pending);
        }
        if let Some(t) = &parent.trace {
            if pending.len() <= TRACE_MAX_PENDING {
                let fm = self.fm_solver();
                // The trace covers everything but `pending`; replay it all.
                if let Some(result) = fm.check_with_trace(t, &pending) {
                    return LinStore {
                        vars,
                        pending,
                        num_atoms: facts.len(),
                        result,
                        trace: Some(t.clone()),
                    };
                }
            }
        }
        self.lin_store_full(facts)
    }

    /// Satisfiability of `env`'s linear facts via the incremental store.
    pub(crate) fn lin_check_cached(&self, env: &Env) -> LinResult {
        self.lin_store_for(env).result
    }

    /// Entailment `facts ⊨ goal` via the fingerprint memo and a
    /// pending+¬goal delta replay of the store's elimination trace.
    pub(crate) fn lin_entails_cached(&self, env: &Env, goal: &LinAtom) -> bool {
        // Ground goals (both sides constant — literal loop bounds and
        // indices produce these constantly) are decided by evaluation:
        // a true ground goal is entailed by anything, a false one only
        // by an inconsistent fact set.
        if let (Some(l), Some(r)) = (goal.lhs.as_constant(), goal.rhs.as_constant()) {
            let truth = match goal.cmp {
                LinCmp::Lt => l < r,
                LinCmp::Le => l <= r,
                LinCmp::Eq => l == r,
                LinCmp::Ne => l != r,
            };
            return truth || self.lin_check_cached(env).is_unsat();
        }
        let neg = goal.negate();
        let fp = lin_fingerprint(env.lin_facts(), Some(&neg));
        if let Some(r) = self.caches().lin.lookup(&fp) {
            return r.is_unsat();
        }
        let store = self.lin_store_for(env);
        let result = if store.result == LinResult::Unsat {
            LinResult::Unsat
        } else {
            let mut delta = store.pending.clone();
            let mut vars = store.vars.clone();
            push_lin_atom(&neg, Arc::make_mut(&mut vars), &mut delta);
            let fm = self.fm_solver();
            let traced = store
                .trace
                .as_ref()
                .and_then(|t| fm.check_with_trace(t, &delta));
            traced.unwrap_or_else(|| {
                // Full fallback: re-translate everything plus the goal.
                let (mut all_vars, mut all) = translate_all(env.lin_facts());
                push_lin_atom(&neg, &mut all_vars, &mut all);
                fm.check(&all)
            })
        };
        self.budget().poll_deadline();
        if self.may_store() {
            self.caches().lin.store(fp, result);
        }
        result.is_unsat()
    }
}

// --- the persistent bitvector oracle ------------------------------------

/// The checker's long-lived bitvector solving state: a stable
/// path→variable mapping (so identical atoms re-encode to identical
/// terms across queries) and the incremental [`BvSession`].
#[derive(Debug)]
pub(crate) struct BvOracle {
    vars: FxHashMap<Path, SolverVar>,
    session: BvSession,
}

impl BvOracle {
    fn new(config: &crate::config::CheckerConfig) -> BvOracle {
        BvOracle {
            vars: FxHashMap::default(),
            session: BvSession::new(config.sat),
        }
    }

    fn var(&mut self, p: &Path) -> SolverVar {
        if let Some(&v) = self.vars.get(p) {
            return v;
        }
        let v = SolverVar(self.vars.len() as u32);
        self.vars.insert(p.clone(), v);
        v
    }

    fn term(&mut self, o: &BvObj, width: u32) -> BvTerm {
        match o {
            BvObj::Const(v) => BvTerm::constant(*v, width),
            BvObj::Path(p) => BvTerm::var(self.var(p), width),
            BvObj::Not(a) => self.term(a, width).not(),
            BvObj::And(a, b) => self.term(a, width).and(self.term(b, width)),
            BvObj::Or(a, b) => self.term(a, width).or(self.term(b, width)),
            BvObj::Xor(a, b) => self.term(a, width).xor(self.term(b, width)),
            BvObj::Add(a, b) => self.term(a, width).add(self.term(b, width)),
            BvObj::Sub(a, b) => self.term(a, width).sub(self.term(b, width)),
            BvObj::Mul(a, b) => self.term(a, width).mul(self.term(b, width)),
        }
    }

    fn lit(&mut self, a: &BvAtomProp, width: u32) -> Option<BvLit> {
        use rtr_solver::bv::BvAtom;
        let lhs = self.term(&a.lhs, width);
        let rhs = self.term(&a.rhs, width);
        let atom = match a.cmp {
            BvCmp::Eq => BvAtom::try_eq(lhs, rhs)?,
            BvCmp::Ule => BvAtom::ule(lhs, rhs),
            BvCmp::Ult => BvAtom::ult(lhs, rhs),
        };
        Some(if a.positive {
            BvLit::positive(atom)
        } else {
            BvLit::negative(atom)
        })
    }
}

impl Checker {
    /// Runs `query` against the persistent session, retiring and
    /// recreating the session when it has grown past its budget.
    fn with_bv_oracle<R>(&self, query: impl FnOnce(&mut BvOracle, u32) -> R) -> R {
        let mut guard = self.caches().bv_oracle.lock_recover();
        let oracle = guard.get_or_insert_with(|| BvOracle::new(&self.config));
        if oracle.session.num_vars() > SESSION_MAX_VARS {
            *oracle = BvOracle::new(&self.config);
        }
        oracle.session.set_deadline(self.budget().deadline());
        query(oracle, self.config.bv_width)
    }

    /// Satisfiability of `env`'s bitvector facts via fingerprint memo +
    /// persistent session.
    pub(crate) fn bv_check_cached(&self, env: &Env) -> BvResult {
        let fp = bv_fingerprint(env.bv_facts(), None);
        if let Some(r) = self.caches().bv.lookup(&fp) {
            return r;
        }
        let result = self.with_bv_oracle(|oracle, width| {
            let lits: Vec<BvLit> = env
                .bv_facts()
                .iter()
                .filter_map(|a| oracle.lit(a, width))
                .collect();
            oracle.session.check(&lits)
        });
        self.budget().poll_deadline();
        if self.may_store() {
            self.caches().bv.store(fp, result);
        }
        result
    }

    /// Entailment `facts ⊨ goal` via fingerprint memo + persistent
    /// session (`facts ∧ ¬goal` unsatisfiable).
    pub(crate) fn bv_entails_cached(&self, env: &Env, goal: &BvAtomProp) -> bool {
        let neg = goal.negate();
        let fp = bv_fingerprint(env.bv_facts(), Some(&neg));
        if let Some(r) = self.caches().bv.lookup(&fp) {
            return r.is_unsat();
        }
        let result = self.with_bv_oracle(|oracle, width| {
            let mut lits: Vec<BvLit> = env
                .bv_facts()
                .iter()
                .filter_map(|a| oracle.lit(a, width))
                .collect();
            let Some(goal_lit) = oracle.lit(&neg, width) else {
                // Untranslatable goal: not entailed, and not cacheable as
                // a satisfiability verdict — mirror the one-shot adapter.
                return None;
            };
            lits.push(goal_lit);
            Some(oracle.session.check(&lits))
        });
        match result {
            Some(r) => {
                self.budget().poll_deadline();
                if self.may_store() {
                    self.caches().bv.store(fp, r);
                }
                r.is_unsat()
            }
            None => false,
        }
    }
}

// --- the persistent regex oracle ----------------------------------------

/// The checker's long-lived regex solving state: a stable path→variable
/// mapping (so identical atoms re-translate to identical constraints
/// across queries) and the persistent [`ReSession`] whose literal-DFA,
/// intersection-product, and emptiness-witness caches warm up across the
/// checking run. Session verdicts are per-variable and invariant under
/// variable renaming, so the stable mapping cannot change any verdict
/// relative to the one-shot translator's per-query numbering.
#[derive(Debug)]
pub(crate) struct ReOracle {
    vars: FxHashMap<Path, SolverVar>,
    pub(crate) session: ReSession,
}

impl ReOracle {
    fn new(config: &crate::config::CheckerConfig) -> ReOracle {
        ReOracle {
            vars: FxHashMap::default(),
            session: ReSession::new(config.re),
        }
    }

    fn var(&mut self, p: &Path) -> SolverVar {
        if let Some(&v) = self.vars.get(p) {
            return v;
        }
        let v = SolverVar(self.vars.len() as u32);
        self.vars.insert(p.clone(), v);
        v
    }

    fn constraint(&mut self, a: &StrAtomProp) -> ReConstraint {
        let crate::syntax::StrObj::Path(p) = &a.lhs else {
            unreachable!("ground atoms are filtered before translation")
        };
        ReConstraint {
            var: self.var(p),
            regex: a.re.clone(),
            positive: a.positive,
        }
    }
}

impl Checker {
    /// Runs `query` against the persistent regex session, retiring and
    /// recreating the session when its DFA caches outgrow the budget.
    fn with_re_oracle<R>(&self, query: impl FnOnce(&mut ReOracle) -> R) -> R {
        let mut guard = self.caches().re_oracle.lock_recover();
        let oracle = guard.get_or_insert_with(|| ReOracle::new(&self.config));
        if oracle.session.num_states() > SESSION_MAX_STATES {
            *oracle = ReOracle::new(&self.config);
        }
        oracle.session.set_deadline(self.budget().deadline());
        query(oracle)
    }

    /// Cache-effectiveness counters of the live regex session (zeroes
    /// when no string-theory query has run yet).
    #[cfg(feature = "stats")]
    pub(crate) fn re_session_stats(&self) -> rtr_solver::re::ReSessionStats {
        self.caches()
            .re_oracle
            .lock_recover()
            .as_ref()
            .map(|o| o.session.stats())
            .unwrap_or_default()
    }

    /// Entailment `facts ⊨ goal` in the regex theory via the persistent
    /// session. Ground atoms are decided by the matcher first, exactly as
    /// in the one-shot adapter, so verdicts agree with it everywhere.
    pub(crate) fn str_entails_session(&self, env: &Env, goal: &StrAtomProp) -> bool {
        let mut facts = Vec::new();
        for a in env.str_facts() {
            match crate::logic::ground_str_atom(a) {
                // A false ground fact makes Γ inconsistent: entail anything.
                Some(false) => return true,
                Some(true) => {}
                None => facts.push(a),
            }
        }
        match crate::logic::ground_str_atom(goal) {
            Some(truth) => truth,
            None => self.with_re_oracle(|oracle| {
                let facts: Vec<ReConstraint> =
                    facts.into_iter().map(|a| oracle.constraint(a)).collect();
                let goal = oracle.constraint(goal);
                oracle.session.entails(&facts, &goal)
            }),
        }
    }

    /// Satisfiability of `env`'s regex facts via the persistent session.
    pub(crate) fn str_check_session(&self, env: &Env) -> ReResult {
        let mut facts = Vec::new();
        for a in env.str_facts() {
            match crate::logic::ground_str_atom(a) {
                Some(false) => return ReResult::Unsat,
                Some(true) => {}
                None => facts.push(a),
            }
        }
        self.with_re_oracle(|oracle| {
            let facts: Vec<ReConstraint> =
                facts.into_iter().map(|a| oracle.constraint(a)).collect();
            oracle.session.check(&facts)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{Obj, Symbol};

    fn lin_atom(cmp: LinCmp, lhs: Obj, rhs: Obj) -> LinAtom {
        LinAtom {
            lhs: lhs.as_lin().expect("lin obj"),
            cmp,
            rhs: rhs.as_lin().expect("lin obj"),
        }
    }

    #[test]
    fn fingerprints_are_name_independent() {
        // 0 ≤ x ∧ x < len v  vs  0 ≤ a ∧ a < len b: same fingerprint.
        let (x, v) = (Symbol::fresh("fx"), Symbol::fresh("fv"));
        let (a, b) = (Symbol::fresh("fa"), Symbol::fresh("fb"));
        let sys = |i: Symbol, n: Symbol| {
            vec![
                lin_atom(LinCmp::Le, Obj::int(0), Obj::var(i)),
                lin_atom(LinCmp::Lt, Obj::var(i), Obj::var(n).len()),
            ]
        };
        assert_eq!(
            lin_fingerprint(&sys(x, v), None),
            lin_fingerprint(&sys(a, b), None)
        );
        // …and order-independent.
        let mut rev = sys(x, v);
        rev.reverse();
        assert_eq!(
            lin_fingerprint(&rev, None),
            lin_fingerprint(&sys(x, v), None)
        );
    }

    #[test]
    fn fingerprints_distinguish_len_paths() {
        // `x < y` and `x < len y` must not collide: only the latter gets
        // the implicit non-negativity side constraint.
        let (x, y) = (Symbol::fresh("dx"), Symbol::fresh("dy"));
        let plain = vec![lin_atom(LinCmp::Lt, Obj::var(x), Obj::var(y))];
        let len = vec![lin_atom(LinCmp::Lt, Obj::var(x), Obj::var(y).len())];
        assert_ne!(lin_fingerprint(&plain, None), lin_fingerprint(&len, None));
    }

    #[test]
    fn goal_extends_the_fingerprint() {
        let x = Symbol::fresh("gx");
        let facts = vec![lin_atom(LinCmp::Le, Obj::int(0), Obj::var(x))];
        let goal = lin_atom(LinCmp::Le, Obj::int(-1), Obj::var(x));
        assert_ne!(
            lin_fingerprint(&facts, None),
            lin_fingerprint(&facts, Some(&goal.negate()))
        );
    }
}
