//! The `update`, `restrict` and `remove` metafunctions (Fig. 7).
//!
//! `update⁺(τ, ϕ⃗, σ)` refines what we know about an object of type `τ`
//! once we learn its field `(ϕ⃗ o)` **is** of type `σ`; `update⁻` once we
//! learn it **is not**. At the empty path, positive knowledge computes a
//! conservative intersection (`restrict`) and negative knowledge a
//! conservative difference (`remove`). Structural fields (`fst`/`snd`)
//! walk into pair types; the vector-length field `len` carries no
//! type-structure information (lengths live in the linear theory).
//!
//! Two implementations coexist:
//!
//! * the original tree-to-tree versions ([`Checker::update_ty`],
//!   [`Checker::restrict`], [`Checker::remove`]) — the reference
//!   semantics, used when memoization is disabled and by the equivalence
//!   property tests;
//! * id-native versions ([`Checker::update_ty_id`] and friends) that walk
//!   interned [`TyId`]s via the interner's id-level constructors and
//!   destructors, memoized on `(generation, τ, path, σ, polarity, fuel)`
//!   — generation 0 when both types are environment-free, so one entry
//!   serves every environment. Repeated `update±` along alias/narrowing
//!   chains previously rebuilt identical trees at every binder; a memo
//!   hit now returns an id without touching a tree at all.

use crate::cache::path_fingerprint;
use crate::check::Checker;
use crate::env::Env;
use crate::intern::TyId;
use crate::syntax::{Field, Ty};

impl Checker {
    /// Id-native `update±(τ, ϕ⃗, σ)` — the judgment layer's entry point.
    /// Falls back to the tree-based reference when memoization is off.
    pub fn update_ty_id(
        &self,
        env: &Env,
        t: TyId,
        fields: &[Field],
        s: TyId,
        positive: bool,
        fuel: u32,
    ) -> TyId {
        if !self.config.memoize {
            return TyId::of(&self.update_ty(env, &t.get(), fields, &s.get(), positive, fuel));
        }
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t;
        };
        // Resource governance: a tripped budget stops narrowing (the
        // unrefined type is the sound identity degradation, exactly as
        // at fuel 0).
        if self
            .budget()
            .burn(crate::budget::Judgment::Update)
            .is_some()
        {
            return t;
        }
        // Memoize environment-free pairs only: their updates consult
        // nothing but the two types (subtype/overlap on env-free types
        // are generation-0 judgments), so entries transfer across every
        // environment — exactly the repeated narrowing along alias and
        // narrowing chains. Environment-dependent pairs skip the table:
        // a generation-stamped key would be dead weight, since every
        // binder advances the generation.
        let key = (t.env_free() && s.env_free())
            .then(|| path_fingerprint(fields).map(|fp| (t, fp, s, positive, fuel)))
            .flatten();
        if let Some(key) = &key {
            if let Some(hit) = self.caches().update.lookup(key) {
                return hit;
            }
        }
        let result = match fields.split_first() {
            None => {
                if positive {
                    self.restrict_id(env, t, s, next_fuel)
                } else {
                    self.remove_id(env, t, s, next_fuel)
                }
            }
            // Lengths are integers; the type structure of the vector is
            // unaffected. (The linear theory tracks the length facts.)
            Some((Field::Len, _)) => t,
            Some((f @ (Field::Fst | Field::Snd), rest)) => {
                if let Some((a, b)) = t.pair_parts() {
                    if *f == Field::Fst {
                        TyId::pair(self.update_ty_id(env, a, rest, s, positive, next_fuel), b)
                    } else {
                        TyId::pair(a, self.update_ty_id(env, b, rest, s, positive, next_fuel))
                    }
                } else if let Some(members) = t.union_members() {
                    let updated: Vec<TyId> = members
                        .into_iter()
                        .map(|m| self.update_ty_id(env, m, fields, s, positive, next_fuel))
                        .collect();
                    TyId::union_of(&updated)
                } else if let Some((var, base, prop)) = t.refine_parts() {
                    TyId::refine(
                        var,
                        self.update_ty_id(env, base, fields, s, positive, next_fuel),
                        prop,
                    )
                } else if t == TyId::top() {
                    // Learning about (fst o) implies o is a pair: refine ⊤
                    // through ⊤×⊤ first.
                    let pairish = TyId::pair(TyId::top(), TyId::top());
                    self.update_ty_id(env, pairish, fields, s, positive, next_fuel)
                } else {
                    // A non-pair cannot have the field at all.
                    TyId::bot()
                }
            }
        };
        if let Some(key) = key {
            // Post-trip results may be fuel-identity degradations; keep
            // them out of the budget-agnostic memo.
            if self.may_store() {
                self.caches().update.store(key, result);
            }
        }
        result
    }

    /// Id-native `restrictΓ(τ, σ)` (Fig. 7).
    pub(crate) fn restrict_id(&self, env: &Env, t: TyId, s: TyId, fuel: u32) -> TyId {
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t;
        };
        if !self.overlap_ids(t, s) {
            return TyId::bot();
        }
        if let Some(members) = t.union_members() {
            let restricted: Vec<TyId> = members
                .into_iter()
                .map(|m| self.restrict_id(env, m, s, next_fuel))
                .collect();
            return TyId::union_of(&restricted);
        }
        if let Some((var, base, prop)) = t.refine_parts() {
            return TyId::refine(var, self.restrict_id(env, base, s, next_fuel), prop);
        }
        if self.subtype_ids(env, t, s, next_fuel) {
            t
        } else {
            s
        }
    }

    /// Id-native `removeΓ(τ, σ)` (Fig. 7).
    pub(crate) fn remove_id(&self, env: &Env, t: TyId, s: TyId, fuel: u32) -> TyId {
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t;
        };
        if self.subtype_ids(env, t, s, next_fuel) {
            return TyId::bot();
        }
        if let Some(members) = t.union_members() {
            let removed: Vec<TyId> = members
                .into_iter()
                .map(|m| self.remove_id(env, m, s, next_fuel))
                .collect();
            return TyId::union_of(&removed);
        }
        if let Some((var, base, prop)) = t.refine_parts() {
            return TyId::refine(var, self.remove_id(env, base, s, next_fuel), prop);
        }
        t
    }

    /// May-overlap on ids, memoized (the verdict consults only the two
    /// types, so entries are environment- and fuel-free).
    pub(crate) fn overlap_ids(&self, t: TyId, s: TyId) -> bool {
        if !self.config.memoize {
            return self.overlap(&t.get(), &s.get());
        }
        let key = (t, s);
        if let Some(verdict) = self.caches().overlap.lookup(key) {
            return verdict;
        }
        let verdict = self.overlap(&t.get(), &s.get());
        if self.may_store() {
            self.caches().overlap.store(key, verdict);
        }
        verdict
    }

    /// Id-keyed emptiness: the single memoized implementation behind
    /// [`Checker::is_empty_ty`] (which delegates here on the memoized
    /// path, so the classification logic lives in one place).
    pub(crate) fn is_empty_id(&self, t: TyId) -> bool {
        if t == TyId::bot() {
            return true;
        }
        let tree = t.get();
        if !self.config.memoize {
            return self.is_empty_structural_shallow(&tree);
        }
        match &*tree {
            Ty::Union(ts) if ts.is_empty() => true,
            Ty::Union(_) | Ty::Pair(_, _) | Ty::Refine(_) => {
                if let Some(verdict) = self.caches().empty.lookup(t) {
                    return verdict;
                }
                let verdict = self.is_empty_structural(&tree);
                if self.may_store() {
                    self.caches().empty.store(t, verdict);
                }
                verdict
            }
            _ => false,
        }
    }

    fn is_empty_structural_shallow(&self, t: &Ty) -> bool {
        match t {
            Ty::Union(ts) if ts.is_empty() => true,
            Ty::Union(_) | Ty::Pair(_, _) | Ty::Refine(_) => self.is_empty_structural(t),
            _ => false,
        }
    }

    /// `update±(τ, ϕ⃗, σ)` — Fig. 7. `fields` is innermost-first, matching
    /// [`crate::syntax::Path`].
    pub fn update_ty(
        &self,
        env: &Env,
        t: &Ty,
        fields: &[Field],
        s: &Ty,
        positive: bool,
        fuel: u32,
    ) -> Ty {
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t.clone();
        };
        match fields.split_first() {
            None => {
                if positive {
                    self.restrict(env, t, s, next_fuel)
                } else {
                    self.remove(env, t, s, next_fuel)
                }
            }
            Some((Field::Len, rest)) => {
                // Lengths are integers; the type structure of the vector is
                // unaffected. (The linear theory tracks the length facts.)
                let _ = rest;
                t.clone()
            }
            Some((f @ (Field::Fst | Field::Snd), rest)) => match t {
                Ty::Pair(a, b) => {
                    if *f == Field::Fst {
                        Ty::pair(
                            self.update_ty(env, a, rest, s, positive, next_fuel),
                            (**b).clone(),
                        )
                    } else {
                        Ty::pair(
                            (**a).clone(),
                            self.update_ty(env, b, rest, s, positive, next_fuel),
                        )
                    }
                }
                Ty::Union(ts) => Ty::union_of(
                    ts.iter()
                        .map(|t| self.update_ty(env, t, fields, s, positive, next_fuel))
                        .collect(),
                ),
                Ty::Refine(r) => Ty::refine(
                    r.var,
                    self.update_ty(env, &r.base, fields, s, positive, next_fuel),
                    r.prop.clone(),
                ),
                // Learning about (fst o) implies o is a pair: refine ⊤
                // through ⊤×⊤ first.
                Ty::Top => self.update_ty(
                    env,
                    &Ty::pair(Ty::Top, Ty::Top),
                    fields,
                    s,
                    positive,
                    next_fuel,
                ),
                // A non-pair cannot have the field at all.
                _ => Ty::bot(),
            },
        }
    }

    /// `restrictΓ(τ, σ)` — a conservative intersection (Fig. 7).
    pub fn restrict(&self, env: &Env, t: &Ty, s: &Ty, fuel: u32) -> Ty {
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t.clone();
        };
        if !self.overlap(t, s) {
            return Ty::bot();
        }
        match t {
            Ty::Union(ts) => Ty::union_of(
                ts.iter()
                    .map(|t| self.restrict(env, t, s, next_fuel))
                    .collect(),
            ),
            Ty::Refine(r) => Ty::refine(
                r.var,
                self.restrict(env, &r.base, s, next_fuel),
                r.prop.clone(),
            ),
            _ => {
                if self.subtype(env, t, s, next_fuel) {
                    t.clone()
                } else {
                    s.clone()
                }
            }
        }
    }

    /// `removeΓ(τ, σ)` — a conservative difference (Fig. 7).
    pub fn remove(&self, env: &Env, t: &Ty, s: &Ty, fuel: u32) -> Ty {
        let Some(next_fuel) = fuel.checked_sub(1) else {
            return t.clone();
        };
        if self.subtype(env, t, s, next_fuel) {
            return Ty::bot();
        }
        match t {
            Ty::Union(ts) => Ty::union_of(
                ts.iter()
                    .map(|t| self.remove(env, t, s, next_fuel))
                    .collect(),
            ),
            Ty::Refine(r) => Ty::refine(
                r.var,
                self.remove(env, &r.base, s, next_fuel),
                r.prop.clone(),
            ),
            _ => t.clone(),
        }
    }

    /// May values of `t` and `s` overlap? A conservative (may-)analysis:
    /// `false` is a proof of disjointness, `true` is inconclusive.
    pub fn overlap(&self, t: &Ty, s: &Ty) -> bool {
        use Ty::*;
        match (t, s) {
            (u, _) | (_, u) if u.is_bot() => false,
            (Top, _) | (_, Top) => true,
            (TVar(_), _) | (_, TVar(_)) => true,
            (Poly(_), _) | (_, Poly(_)) => true,
            (Union(ts), s) => ts.iter().any(|t| self.overlap(t, s)),
            (t, Union(ss)) => ss.iter().any(|s| self.overlap(t, s)),
            (Refine(r), s) => self.overlap(&r.base, s),
            (t, Refine(r)) => self.overlap(t, &r.base),
            (Int, Int)
            | (True, True)
            | (False, False)
            | (Unit, Unit)
            | (BitVec, BitVec)
            | (Str, Str)
            | (Regex, Regex) => true,
            (Pair(a1, b1), Pair(a2, b2)) => self.overlap(a1, a2) && self.overlap(b1, b2),
            // The empty vector inhabits every vector type, so vector types
            // always overlap.
            (Vec(_), Vec(_)) => true,
            (Fun(_), Fun(_)) => true,
            _ => false,
        }
    }

    /// Is `t` provably uninhabited (structurally)? Memoized on the
    /// interned type id for the recursive cases (the judgment consults
    /// nothing but the type itself).
    pub fn is_empty_ty(&self, t: &Ty) -> bool {
        match t {
            Ty::Union(ts) if ts.is_empty() => true,
            Ty::Union(_) | Ty::Pair(_, _) | Ty::Refine(_) => {
                if !self.config.memoize {
                    // Structural reference: stay on the raw tree, no
                    // interning.
                    return self.is_empty_structural(t);
                }
                self.is_empty_id(TyId::of(t))
            }
            _ => false,
        }
    }

    fn is_empty_structural(&self, t: &Ty) -> bool {
        match t {
            Ty::Union(ts) => ts.iter().all(|t| self.is_empty_ty(t)),
            Ty::Pair(a, b) => self.is_empty_ty(a) || self.is_empty_ty(b),
            Ty::Refine(r) => self.is_empty_ty(&r.base),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::Checker;
    use crate::syntax::{LinCmp, Obj, Prop, Symbol};

    fn checker() -> Checker {
        Checker::default()
    }
    fn env() -> Env {
        Env::new()
    }

    #[test]
    fn restrict_computes_occurrence_narrowing() {
        // The §2 example: (U Int (Listof Bit)) restricted by Int — here
        // (U Int (Int × Int)) restricted by Int = Int.
        let c = checker();
        let t = Ty::union_of(vec![Ty::Int, Ty::pair(Ty::Int, Ty::Int)]);
        assert_eq!(c.restrict(&env(), &t, &Ty::Int, 32), Ty::Int);
    }

    #[test]
    fn remove_computes_else_branch_narrowing() {
        let c = checker();
        let t = Ty::union_of(vec![Ty::Int, Ty::pair(Ty::Int, Ty::Int)]);
        assert_eq!(
            c.remove(&env(), &t, &Ty::Int, 32),
            Ty::pair(Ty::Int, Ty::Int)
        );
        // Removing everything yields ⊥.
        assert!(c.remove(&env(), &Ty::Int, &Ty::Int, 32).is_bot());
    }

    #[test]
    fn restrict_disjoint_is_bottom() {
        let c = checker();
        assert!(c.restrict(&env(), &Ty::Int, &Ty::bool_ty(), 32).is_bot());
    }

    #[test]
    fn restrict_keeps_refinements() {
        // restrict({x:(U Int Bool) | ψ}, Int) = {x:Int | ψ}
        let c = checker();
        let x = Symbol::intern("x");
        let psi = Prop::lin(Obj::var(x), LinCmp::Le, Obj::int(5));
        let t = Ty::refine(x, Ty::union_of(vec![Ty::Int, Ty::bool_ty()]), psi.clone());
        let got = c.restrict(&env(), &t, &Ty::Int, 32);
        assert_eq!(got, Ty::refine(x, Ty::Int, psi));
    }

    #[test]
    fn update_walks_pair_fields() {
        // update+((U Int Bool) × Int, [fst], Int) = Int × Int
        let c = checker();
        let t = Ty::pair(Ty::union_of(vec![Ty::Int, Ty::bool_ty()]), Ty::Int);
        let got = c.update_ty(&env(), &t, &[Field::Fst], &Ty::Int, true, 32);
        assert_eq!(got, Ty::pair(Ty::Int, Ty::Int));
        // update−(Bool × Int, [fst], False) = True × Int
        let t = Ty::pair(Ty::bool_ty(), Ty::Int);
        let got = c.update_ty(&env(), &t, &[Field::Fst], &Ty::False, false, 32);
        assert_eq!(got, Ty::pair(Ty::True, Ty::Int));
    }

    #[test]
    fn update_on_top_assumes_pair_structure() {
        let c = checker();
        let got = c.update_ty(&env(), &Ty::Top, &[Field::Fst], &Ty::Int, true, 32);
        assert_eq!(got, Ty::pair(Ty::Int, Ty::Top));
    }

    #[test]
    fn update_len_leaves_type_alone() {
        let c = checker();
        let t = Ty::vec(Ty::Int);
        assert_eq!(
            c.update_ty(&env(), &t, &[Field::Len], &Ty::Int, true, 32),
            t
        );
    }

    #[test]
    fn update_field_of_non_pair_is_absurd() {
        let c = checker();
        assert!(c
            .update_ty(&env(), &Ty::Int, &[Field::Fst], &Ty::Top, true, 32)
            .is_bot());
    }

    #[test]
    fn overlap_cases() {
        let c = checker();
        assert!(c.overlap(&Ty::Int, &Ty::Int));
        assert!(!c.overlap(&Ty::Int, &Ty::bool_ty()));
        assert!(c.overlap(&Ty::Top, &Ty::Int));
        assert!(!c.overlap(&Ty::bot(), &Ty::Top));
        assert!(c.overlap(&Ty::vec(Ty::Int), &Ty::vec(Ty::bool_ty())));
        assert!(!c.overlap(&Ty::pair(Ty::Int, Ty::Int), &Ty::pair(Ty::Int, Ty::True)));
    }

    #[test]
    fn emptiness() {
        let c = checker();
        assert!(c.is_empty_ty(&Ty::bot()));
        assert!(c.is_empty_ty(&Ty::pair(Ty::bot(), Ty::Int)));
        assert!(c.is_empty_ty(&Ty::Union(vec![Ty::bot(), Ty::pair(Ty::Int, Ty::bot())])));
        assert!(!c.is_empty_ty(&Ty::Int));
        assert!(!c.is_empty_ty(&Ty::vec(Ty::bot()))); // the empty vector
    }
}
