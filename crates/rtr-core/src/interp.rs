//! Big-step reduction semantics (Fig. 8).
//!
//! The evaluation judgment `ρ ⊢ e ⇓ v` with the paper's conventions: every
//! non-`false` value is truthy in conditional tests (B-IfTrue/B-IfFalse),
//! and primitive application goes through the δ metafunction.
//!
//! The evaluator distinguishes three failure modes, which is what makes
//! the soundness theorem *testable*:
//!
//! * [`EvalError::Stuck`] — a dynamic type error (δ undefined). Theorem 1
//!   says well-typed programs never produce this. `unsafe-vec-ref` out of
//!   bounds is deliberately Stuck: it models memory unsafety.
//! * [`EvalError::UserError`] — the `(error …)` primitive and the *checked*
//!   `vec-ref`'s bounds failure: well-typed programs may raise these.
//! * [`EvalError::OutOfFuel`] — the fuel bound; big-step soundness says
//!   nothing about divergence (§3.5.2).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::syntax::{Expr, Lambda, Prim, Symbol};

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A bitvector (width fixed by the checker's theory adapter; values
    /// are stored masked to 16 bits to match).
    Bv(u64),
    /// A pair `⟨v, v⟩`.
    Pair(Rc<Value>, Rc<Value>),
    /// A mutable vector.
    Vector(Rc<RefCell<Vec<Value>>>),
    /// A closure `[ρ, λx:τ.e]`.
    Closure(Rc<Closure>),
    /// A primitive operation as a value.
    Prim(Prim),
    /// A string.
    Str(std::sync::Arc<str>),
    /// A regex literal.
    Re(std::sync::Arc<rtr_solver::re::Regex>),
    /// The unit value (result of `set!` and friends).
    Unit,
}

/// A closure: captured environment plus lambda.
#[derive(Debug)]
pub struct Closure {
    /// The captured runtime environment ρ.
    pub env: RtEnv,
    /// The code.
    pub lambda: std::sync::Arc<Lambda>,
    /// For `letrec`-bound closures, the function's own name (looked up
    /// through itself on application).
    pub rec_name: Option<Symbol>,
}

impl Value {
    /// The paper's truthiness convention: everything but `false` is true.
    pub fn is_truthy(&self) -> bool {
        !matches!(self, Value::Bool(false))
    }

    /// Structural equality (`equal?`). Closures and primitives compare by
    /// identity-ish (never equal unless same primitive).
    pub fn structurally_equal(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Bv(a), Value::Bv(b)) => a == b,
            (Value::Unit, Value::Unit) => true,
            (Value::Pair(a1, b1), Value::Pair(a2, b2)) => {
                a1.structurally_equal(a2) && b1.structurally_equal(b2)
            }
            (Value::Vector(a), Value::Vector(b)) => {
                if Rc::ptr_eq(a, b) {
                    return true;
                }
                let (a, b) = (a.borrow(), b.borrow());
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.structurally_equal(y))
            }
            (Value::Prim(a), Value::Prim(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Re(a), Value::Re(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(true) => write!(f, "#t"),
            Value::Bool(false) => write!(f, "#f"),
            Value::Bv(v) => write!(f, "#x{v:x}"),
            Value::Pair(a, b) => write!(f, "⟨{a}, {b}⟩"),
            Value::Vector(v) => {
                write!(f, "(vec")?;
                for x in v.borrow().iter() {
                    write!(f, " {x}")?;
                }
                write!(f, ")")
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Re(r) => write!(f, "#rx\"{r}\""),
            Value::Closure(_) => write!(f, "#<procedure>"),
            Value::Prim(p) => write!(f, "#<procedure:{p}>"),
            Value::Unit => write!(f, "#<void>"),
        }
    }
}

/// A runtime environment ρ: a persistent map from variables to values.
///
/// Represented as an immutable cons-chain of frames so that `extend` (at
/// every `let`/application) and the environment capture in every closure
/// are O(1) pointer bumps instead of whole-map copies. Lookup walks the
/// chain innermost-first, which gives shadowing for free; environments
/// are shallow in practice, and the big-step interpreter extends far more
/// often than it looks up deeply.
#[derive(Clone, Debug, Default)]
pub struct RtEnv {
    head: Option<Rc<Frame>>,
}

#[derive(Debug)]
struct Frame {
    x: Symbol,
    // Cells make `set!` visible through closures, as in Racket.
    cell: Rc<RefCell<Value>>,
    parent: Option<Rc<Frame>>,
}

impl RtEnv {
    /// The empty environment.
    pub fn new() -> RtEnv {
        RtEnv::default()
    }

    fn find(&self, x: Symbol) -> Option<&Rc<RefCell<Value>>> {
        let mut cur = self.head.as_ref();
        while let Some(frame) = cur {
            if frame.x == x {
                return Some(&frame.cell);
            }
            cur = frame.parent.as_ref();
        }
        None
    }

    /// Looks up a variable's current value.
    pub fn lookup(&self, x: Symbol) -> Option<Value> {
        self.find(x).map(|c| c.borrow().clone())
    }

    /// Extends with a new binding (`ρ[x := v]`), persistently and in O(1).
    pub fn extend(&self, x: Symbol, v: Value) -> RtEnv {
        RtEnv {
            head: Some(Rc::new(Frame {
                x,
                cell: Rc::new(RefCell::new(v)),
                parent: self.head.clone(),
            })),
        }
    }

    /// Mutates an existing binding (`set!`).
    pub fn assign(&self, x: Symbol, v: Value) -> Result<(), EvalError> {
        match self.find(x) {
            Some(cell) => {
                *cell.borrow_mut() = v;
                Ok(())
            }
            None => Err(EvalError::Stuck(format!("set! of unbound variable {x}"))),
        }
    }

    /// Iterates over the visible bindings (used by the model relation):
    /// innermost first, shadowed outer bindings skipped.
    pub fn bindings(&self) -> impl Iterator<Item = (Symbol, Value)> + '_ {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut cur = self.head.as_ref();
        while let Some(frame) = cur {
            if seen.insert(frame.x) {
                out.push((frame.x, frame.cell.borrow().clone()));
            }
            cur = frame.parent.as_ref();
        }
        out.into_iter()
    }
}

/// Evaluation failure.
#[derive(Clone, PartialEq, Debug)]
pub enum EvalError {
    /// A dynamic type error — the thing Theorem 1 rules out.
    Stuck(String),
    /// A user-level `(error …)` (or a checked bounds failure).
    UserError(String),
    /// Fuel exhausted (possible divergence).
    OutOfFuel,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Stuck(m) => write!(f, "stuck: {m}"),
            EvalError::UserError(m) => write!(f, "error: {m}"),
            EvalError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for EvalError {}

const BV_MASK: u64 = 0xffff; // matches CheckerConfig::bv_width = 16

/// Evaluates `e` in the empty environment with a step budget.
pub fn eval_program(e: &Expr, fuel: u64) -> Result<Value, EvalError> {
    let mut fuel = fuel;
    eval(&RtEnv::new(), e, &mut fuel)
}

/// The big-step judgment `ρ ⊢ e ⇓ v` (Fig. 8).
pub fn eval(rho: &RtEnv, e: &Expr, fuel: &mut u64) -> Result<Value, EvalError> {
    // Span wrappers are free: they are bookkeeping for diagnostics, not
    // evaluation steps, so they consume no fuel.
    let e = e.peel_spans();
    if *fuel == 0 {
        return Err(EvalError::OutOfFuel);
    }
    *fuel -= 1;
    match e {
        // B-Val / B-Var / B-Abs.
        Expr::Int(n) => Ok(Value::Int(*n)),
        Expr::Bool(b) => Ok(Value::Bool(*b)),
        Expr::BvLit(v) => Ok(Value::Bv(*v & BV_MASK)),
        Expr::Str(s) => Ok(Value::Str(s.clone())),
        Expr::ReLit(r) => Ok(Value::Re(r.clone())),
        Expr::Prim(p) => Ok(Value::Prim(*p)),
        Expr::Var(x) => rho
            .lookup(*x)
            .ok_or_else(|| EvalError::Stuck(format!("unbound variable {x}"))),
        Expr::Lam(l) => Ok(Value::Closure(Rc::new(Closure {
            env: rho.clone(),
            lambda: l.clone(),
            rec_name: None,
        }))),
        // B-Beta / B-Prim.
        Expr::App(f, args) => {
            let fv = eval(rho, f, fuel)?;
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval(rho, a, fuel)?);
            }
            apply(&fv, &argv, fuel)
        }
        // B-IfTrue / B-IfFalse.
        Expr::If(c, t, f) => {
            let cv = eval(rho, c, fuel)?;
            if cv.is_truthy() {
                eval(rho, t, fuel)
            } else {
                eval(rho, f, fuel)
            }
        }
        // B-Let.
        Expr::Let(x, rhs, body) => {
            let v = eval(rho, rhs, fuel)?;
            eval(&rho.extend(*x, v), body, fuel)
        }
        Expr::LetRec(fname, _, lam, body) => {
            let clo = Value::Closure(Rc::new(Closure {
                env: rho.clone(),
                lambda: lam.clone(),
                rec_name: Some(*fname),
            }));
            eval(&rho.extend(*fname, clo), body, fuel)
        }
        // B-Pair / B-Fst / B-Snd.
        Expr::Cons(a, b) => {
            let av = eval(rho, a, fuel)?;
            let bv = eval(rho, b, fuel)?;
            Ok(Value::Pair(Rc::new(av), Rc::new(bv)))
        }
        Expr::Fst(a) => match eval(rho, a, fuel)? {
            Value::Pair(x, _) => Ok((*x).clone()),
            v => Err(EvalError::Stuck(format!("(fst {v}) on a non-pair"))),
        },
        Expr::Snd(a) => match eval(rho, a, fuel)? {
            Value::Pair(_, y) => Ok((*y).clone()),
            v => Err(EvalError::Stuck(format!("(snd {v}) on a non-pair"))),
        },
        Expr::VecLit(es) => {
            let mut out = Vec::with_capacity(es.len());
            for e in es {
                out.push(eval(rho, e, fuel)?);
            }
            Ok(Value::Vector(Rc::new(RefCell::new(out))))
        }
        Expr::Ann(inner, _) => eval(rho, inner, fuel),
        Expr::Error(msg) => Err(EvalError::UserError(msg.clone())),
        Expr::Set(x, rhs) => {
            let v = eval(rho, rhs, fuel)?;
            rho.assign(*x, v)?;
            Ok(Value::Unit)
        }
        Expr::Begin(es) => {
            let mut last = Value::Unit;
            for e in es {
                last = eval(rho, e, fuel)?;
            }
            Ok(last)
        }
        Expr::Spanned(..) => unreachable!("peeled above"),
    }
}

/// Applies a function value (B-Beta for closures, B-Prim/δ for
/// primitives).
pub fn apply(f: &Value, args: &[Value], fuel: &mut u64) -> Result<Value, EvalError> {
    match f {
        Value::Closure(c) => {
            if c.lambda.params.len() != args.len() {
                return Err(EvalError::Stuck(format!(
                    "arity mismatch: expected {}, got {}",
                    c.lambda.params.len(),
                    args.len()
                )));
            }
            let mut env = c.env.clone();
            if let Some(name) = c.rec_name {
                env = env.extend(name, f.clone());
            }
            for ((x, _), v) in c.lambda.params.iter().zip(args) {
                env = env.extend(*x, v.clone());
            }
            eval(&env, &c.lambda.body, fuel)
        }
        Value::Prim(p) => delta_rt(*p, args),
        v => Err(EvalError::Stuck(format!("application of non-function {v}"))),
    }
}

fn int1(p: Prim, args: &[Value]) -> Result<i64, EvalError> {
    match args {
        [Value::Int(a)] => Ok(*a),
        _ => Err(EvalError::Stuck(format!("({p} …): expected one integer"))),
    }
}

fn int2(p: Prim, args: &[Value]) -> Result<(i64, i64), EvalError> {
    match args {
        [Value::Int(a), Value::Int(b)] => Ok((*a, *b)),
        _ => Err(EvalError::Stuck(format!("({p} …): expected two integers"))),
    }
}

fn bv2(p: Prim, args: &[Value]) -> Result<(u64, u64), EvalError> {
    match args {
        [Value::Bv(a), Value::Bv(b)] => Ok((*a, *b)),
        _ => Err(EvalError::Stuck(format!(
            "({p} …): expected two bitvectors"
        ))),
    }
}

/// Shared handle to a runtime vector's storage.
type VecHandle = Rc<RefCell<Vec<Value>>>;

fn vec_and_index(p: Prim, args: &[Value]) -> Result<(VecHandle, i64), EvalError> {
    match args {
        [Value::Vector(v), Value::Int(i), ..] => Ok((v.clone(), *i)),
        _ => Err(EvalError::Stuck(format!(
            "({p} …): expected a vector and an index"
        ))),
    }
}

/// The runtime δ metafunction.
fn delta_rt(p: Prim, args: &[Value]) -> Result<Value, EvalError> {
    let arity_err = || EvalError::Stuck(format!("({p} …): wrong arity {}", args.len()));
    match p {
        Prim::IsInt => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Int(_)))),
            _ => Err(arity_err()),
        },
        Prim::IsBool => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Bool(_)))),
            _ => Err(arity_err()),
        },
        Prim::IsPair => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Pair(..)))),
            _ => Err(arity_err()),
        },
        Prim::IsVec => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Vector(_)))),
            _ => Err(arity_err()),
        },
        Prim::IsProc => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Closure(_) | Value::Prim(_)))),
            _ => Err(arity_err()),
        },
        Prim::IsBv => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Bv(_)))),
            _ => Err(arity_err()),
        },
        Prim::Not => match args {
            [v] => Ok(Value::Bool(!v.is_truthy())),
            _ => Err(arity_err()),
        },
        Prim::IsZero => Ok(Value::Bool(int1(p, args)? == 0)),
        Prim::IsEven => Ok(Value::Bool(int1(p, args)? % 2 == 0)),
        Prim::IsOdd => Ok(Value::Bool(int1(p, args)?.rem_euclid(2) == 1)),
        Prim::Add1 => Ok(Value::Int(int1(p, args)?.wrapping_add(1))),
        Prim::Sub1 => Ok(Value::Int(int1(p, args)?.wrapping_sub(1))),
        Prim::Plus => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Int(a.wrapping_add(b)))
        }
        Prim::Minus => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Int(a.wrapping_sub(b)))
        }
        Prim::Times => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Int(a.wrapping_mul(b)))
        }
        Prim::Quotient => {
            let (a, b) = int2(p, args)?;
            if b == 0 {
                return Err(EvalError::UserError("quotient: division by zero".into()));
            }
            Ok(Value::Int(a.wrapping_div(b)))
        }
        Prim::Remainder => {
            let (a, b) = int2(p, args)?;
            if b == 0 {
                return Err(EvalError::UserError("remainder: division by zero".into()));
            }
            Ok(Value::Int(a.wrapping_rem(b)))
        }
        Prim::Lt => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Bool(a < b))
        }
        Prim::Le => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Bool(a <= b))
        }
        Prim::Gt => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Bool(a > b))
        }
        Prim::Ge => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Bool(a >= b))
        }
        Prim::NumEq => {
            let (a, b) = int2(p, args)?;
            Ok(Value::Bool(a == b))
        }
        Prim::Equal => match args {
            [a, b] => Ok(Value::Bool(a.structurally_equal(b))),
            _ => Err(arity_err()),
        },
        Prim::Len => match args {
            [Value::Vector(v)] => Ok(Value::Int(v.borrow().len() as i64)),
            _ => Err(EvalError::Stuck(format!("({p} …): expected a vector"))),
        },
        Prim::VecRef => {
            // Dynamically checked: OOB is a *user* error (B-Prim is
            // defined; the program chose to signal).
            let (v, i) = vec_and_index(p, args)?;
            let v = v.borrow();
            if i < 0 || i as usize >= v.len() {
                return Err(EvalError::UserError(format!(
                    "vec-ref: index {i} out of range"
                )));
            }
            Ok(v[i as usize].clone())
        }
        Prim::UnsafeVecRef | Prim::SafeVecRef => {
            // Raw access: OOB is undefined behaviour, i.e. Stuck.
            let (v, i) = vec_and_index(p, args)?;
            let v = v.borrow();
            if i < 0 || i as usize >= v.len() {
                return Err(EvalError::Stuck(format!(
                    "{p}: out-of-bounds raw access at {i} (len {})",
                    v.len()
                )));
            }
            Ok(v[i as usize].clone())
        }
        Prim::VecSet => {
            let (v, i) = vec_and_index(p, args)?;
            let Some(x) = args.get(2) else {
                return Err(arity_err());
            };
            let mut v = v.borrow_mut();
            if i < 0 || i as usize >= v.len() {
                return Err(EvalError::UserError(format!(
                    "vec-set!: index {i} out of range"
                )));
            }
            v[i as usize] = x.clone();
            Ok(Value::Unit)
        }
        Prim::UnsafeVecSet | Prim::SafeVecSet => {
            let (v, i) = vec_and_index(p, args)?;
            let Some(x) = args.get(2) else {
                return Err(arity_err());
            };
            let mut v = v.borrow_mut();
            if i < 0 || i as usize >= v.len() {
                return Err(EvalError::Stuck(format!(
                    "{p}: out-of-bounds raw store at {i} (len {})",
                    v.len()
                )));
            }
            v[i as usize] = x.clone();
            Ok(Value::Unit)
        }
        Prim::MakeVec => match args {
            [Value::Int(n), init] => {
                if *n < 0 {
                    return Err(EvalError::Stuck(format!("make-vec: negative length {n}")));
                }
                Ok(Value::Vector(Rc::new(RefCell::new(vec![
                    init.clone();
                    *n as usize
                ]))))
            }
            _ => Err(EvalError::Stuck(
                "make-vec: expected an integer and a value".into(),
            )),
        },
        Prim::IsStr => match args {
            [v] => Ok(Value::Bool(matches!(v, Value::Str(_)))),
            _ => Err(arity_err()),
        },
        Prim::StrLen => match args {
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            _ => Err(EvalError::Stuck(format!("({p} …): expected a string"))),
        },
        Prim::StrEq => match args {
            [Value::Str(a), Value::Str(b)] => Ok(Value::Bool(a == b)),
            _ => Err(EvalError::Stuck(format!("({p} …): expected two strings"))),
        },
        Prim::StrMatch => match args {
            [Value::Re(r), Value::Str(s)] => Ok(Value::Bool(r.is_match(s))),
            _ => Err(EvalError::Stuck(format!(
                "({p} …): expected a regex and a string"
            ))),
        },
        Prim::BvAnd => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a & b))
        }
        Prim::BvOr => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a | b))
        }
        Prim::BvXor => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a ^ b))
        }
        Prim::BvAdd => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a.wrapping_add(b) & BV_MASK))
        }
        Prim::BvSub => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a.wrapping_sub(b) & BV_MASK))
        }
        Prim::BvMul => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bv(a.wrapping_mul(b) & BV_MASK))
        }
        Prim::BvNot => match args {
            [Value::Bv(a)] => Ok(Value::Bv(!a & BV_MASK)),
            _ => Err(EvalError::Stuck("bvnot: expected a bitvector".into())),
        },
        Prim::BvEq => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bool(a == b))
        }
        Prim::BvUle => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bool(a <= b))
        }
        Prim::BvUlt => {
            let (a, b) = bv2(p, args)?;
            Ok(Value::Bool(a < b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Ty;

    fn s(n: &str) -> Symbol {
        Symbol::intern(n)
    }

    fn run(e: &Expr) -> Result<Value, EvalError> {
        eval_program(e, 100_000)
    }

    #[test]
    fn literals_and_arith() {
        let e = Expr::prim_app(Prim::Plus, vec![Expr::Int(2), Expr::Int(3)]);
        assert!(matches!(run(&e), Ok(Value::Int(5))));
        let e = Expr::prim_app(Prim::Times, vec![Expr::Int(4), Expr::Int(-2)]);
        assert!(matches!(run(&e), Ok(Value::Int(-8))));
    }

    #[test]
    fn truthiness_follows_the_paper() {
        // (if 0 1 2) = 1 — zero is truthy; only #f is false.
        let e = Expr::if_(Expr::Int(0), Expr::Int(1), Expr::Int(2));
        assert!(matches!(run(&e), Ok(Value::Int(1))));
        let e = Expr::if_(Expr::Bool(false), Expr::Int(1), Expr::Int(2));
        assert!(matches!(run(&e), Ok(Value::Int(2))));
    }

    #[test]
    fn beta_and_closures() {
        let x = s("bx");
        let e = Expr::app(
            Expr::lam(
                vec![(x, Ty::Int)],
                Expr::prim_app(Prim::Add1, vec![Expr::Var(x)]),
            ),
            vec![Expr::Int(41)],
        );
        assert!(matches!(run(&e), Ok(Value::Int(42))));
    }

    #[test]
    fn letrec_recursion() {
        // (letrec (f (λ n. if (zero? n) 0 (+ 2 (f (sub1 n))))) (f 5)) = 10
        let (f, n) = (s("rf"), s("rn"));
        let body = Expr::if_(
            Expr::prim_app(Prim::IsZero, vec![Expr::Var(n)]),
            Expr::Int(0),
            Expr::prim_app(
                Prim::Plus,
                vec![
                    Expr::Int(2),
                    Expr::app(
                        Expr::Var(f),
                        vec![Expr::prim_app(Prim::Sub1, vec![Expr::Var(n)])],
                    ),
                ],
            ),
        );
        let e = Expr::LetRec(
            f,
            Ty::simple_fun(vec![Ty::Int], Ty::Int),
            std::sync::Arc::new(Lambda {
                params: vec![(n, Ty::Int)],
                body,
            }),
            Box::new(Expr::app(Expr::Var(f), vec![Expr::Int(5)])),
        );
        assert!(matches!(run(&e), Ok(Value::Int(10))));
    }

    #[test]
    fn divergence_hits_fuel() {
        let (f, n) = (s("df"), s("dn"));
        let e = Expr::LetRec(
            f,
            Ty::simple_fun(vec![Ty::Int], Ty::Int),
            std::sync::Arc::new(Lambda {
                params: vec![(n, Ty::Int)],
                body: Expr::app(Expr::Var(f), vec![Expr::Var(n)]),
            }),
            Box::new(Expr::app(Expr::Var(f), vec![Expr::Int(0)])),
        );
        // Keep the fuel modest: the evaluator is recursive, so fuel also
        // bounds Rust stack depth.
        assert!(matches!(eval_program(&e, 800), Err(EvalError::OutOfFuel)));
    }

    #[test]
    fn pairs_and_projections() {
        let e = Expr::Fst(Box::new(Expr::Cons(
            Box::new(Expr::Int(1)),
            Box::new(Expr::Bool(true)),
        )));
        assert!(matches!(run(&e), Ok(Value::Int(1))));
        let stuck = Expr::Fst(Box::new(Expr::Int(3)));
        assert!(matches!(run(&stuck), Err(EvalError::Stuck(_))));
    }

    #[test]
    fn vector_semantics() {
        let v = Expr::VecLit(vec![Expr::Int(10), Expr::Int(20)]);
        let e = Expr::prim_app(Prim::VecRef, vec![v.clone(), Expr::Int(1)]);
        assert!(matches!(run(&e), Ok(Value::Int(20))));
        // Checked access: user error. Raw access: stuck.
        let checked = Expr::prim_app(Prim::VecRef, vec![v.clone(), Expr::Int(5)]);
        assert!(matches!(run(&checked), Err(EvalError::UserError(_))));
        let raw = Expr::prim_app(Prim::UnsafeVecRef, vec![v.clone(), Expr::Int(5)]);
        assert!(matches!(run(&raw), Err(EvalError::Stuck(_))));
        // Stores mutate in place.
        let x = s("vx");
        let prog = Expr::let_(
            x,
            v,
            Expr::Begin(vec![
                Expr::prim_app(
                    Prim::VecSet,
                    vec![Expr::Var(x), Expr::Int(0), Expr::Int(99)],
                ),
                Expr::prim_app(Prim::VecRef, vec![Expr::Var(x), Expr::Int(0)]),
            ]),
        );
        assert!(matches!(run(&prog), Ok(Value::Int(99))));
    }

    #[test]
    fn set_mutates_through_closures() {
        // (let (c 0) (begin ((λ u. (set! c 7)) 0) c)) = 7
        let (c, u) = (s("sc"), s("su"));
        let e = Expr::let_(
            c,
            Expr::Int(0),
            Expr::Begin(vec![
                Expr::app(
                    Expr::lam(vec![(u, Ty::Int)], Expr::Set(c, Box::new(Expr::Int(7)))),
                    vec![Expr::Int(0)],
                ),
                Expr::Var(c),
            ]),
        );
        assert!(matches!(run(&e), Ok(Value::Int(7))));
    }

    #[test]
    fn error_propagates() {
        let e = Expr::prim_app(Prim::Add1, vec![Expr::Error("boom".into())]);
        assert!(matches!(run(&e), Err(EvalError::UserError(m)) if m == "boom"));
    }

    #[test]
    fn bitvector_ops() {
        let e = Expr::prim_app(
            Prim::BvAnd,
            vec![
                Expr::prim_app(Prim::BvMul, vec![Expr::BvLit(2), Expr::BvLit(0xab)]),
                Expr::BvLit(0xff),
            ],
        );
        match run(&e) {
            Ok(Value::Bv(v)) => assert_eq!(v, (2 * 0xab) & 0xff),
            other => panic!("expected bv, got {other:?}"),
        }
    }

    #[test]
    fn equal_is_structural() {
        let pair = |a: i64, b: i64| Expr::Cons(Box::new(Expr::Int(a)), Box::new(Expr::Int(b)));
        let e = Expr::prim_app(Prim::Equal, vec![pair(1, 2), pair(1, 2)]);
        assert!(matches!(run(&e), Ok(Value::Bool(true))));
        let e = Expr::prim_app(Prim::Equal, vec![pair(1, 2), pair(1, 3)]);
        assert!(matches!(run(&e), Ok(Value::Bool(false))));
    }
}
