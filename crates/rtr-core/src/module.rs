//! Module-level checking with multi-error recovery.
//!
//! [`crate::check::Checker::check_program`] is fail-fast: one nested
//! core expression, first error wins. The §5 workflow — classifying
//! *every* check site in a library — needs the opposite: check a whole
//! module and report **all** of its diagnostics. This module provides
//! the item-structured representation ([`ModuleItem`]) the surface
//! language elaborates into and the recovering driver
//! ([`Checker::check_module`]).
//!
//! Recovery works by *poisoning*: when a definition fails to check, its
//! binding is entered into the environment at its **declared** type (the
//! signature if there is one, `Any` otherwise) and checking continues,
//! so one ill-typed `define` yields one diagnostic instead of cascading
//! or aborting the module. A module with N independently ill-typed
//! definitions therefore produces N located diagnostics in one call.
//!
//! For well-typed modules the environments built here are *identical*
//! to the ones the nested encoding produces — both go through the
//! checker's shared `open_let_binding` and `letrec` binding logic —
//! so a module is clean under `check_module` exactly when
//! `check_program` accepts its nested encoding (the corpus equivalence
//! tests pin this).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::budget::LimitKind;
use crate::check::{attach_node, panic_detail, Checker};
use crate::diag::{Diagnostic, NodeId, Span};
use crate::env::Env;
use crate::mutation::mutated_vars;
use crate::syntax::{Expr, Lambda, Obj, Prop, Symbol, Ty, TyResult};

/// One top-level form of an elaborated module.
#[derive(Clone, Debug)]
pub enum ModuleItem {
    /// A definition with a signature: elaborates to `letrec`, so the
    /// function may recur.
    DefineRec {
        /// The defined name.
        name: Symbol,
        /// Its declared (signature) type.
        sig: Ty,
        /// The implementation.
        lam: Arc<Lambda>,
        /// The `define` form's span node.
        node: Option<NodeId>,
        /// The `(: name …)` signature form's span node.
        sig_node: Option<NodeId>,
    },
    /// A non-recursive value definition (`(define x e)`, possibly
    /// annotated — the annotation is already applied to `rhs`).
    Define {
        /// The defined name.
        name: Symbol,
        /// The declared type, when annotated (used for poisoning).
        sig: Option<Ty>,
        /// The right-hand side (annotation included).
        rhs: Expr,
        /// The `define` form's span node.
        node: Option<NodeId>,
        /// The annotation's span node, if any.
        sig_node: Option<NodeId>,
    },
    /// A trailing expression; the last one's type-result is the module's
    /// value.
    Expr {
        /// The expression.
        expr: Expr,
        /// Its span node.
        node: Option<NodeId>,
    },
    /// A definition whose body failed to elaborate: its name is bound at
    /// the declared type (or `Any`) and never checked, so later forms
    /// that mention it do not cascade into unbound-variable errors.
    Opaque {
        /// The defined name.
        name: Symbol,
        /// The type it is assumed at.
        ty: Ty,
    },
}

impl ModuleItem {
    /// The expression checked for this item, if any (used for the
    /// mutation pre-pass and the stack-depth probe).
    pub(crate) fn body(&self) -> Option<&Expr> {
        match self {
            ModuleItem::DefineRec { lam, .. } => Some(&lam.body),
            ModuleItem::Define { rhs, .. } => Some(rhs),
            ModuleItem::Expr { expr, .. } => Some(expr),
            ModuleItem::Opaque { .. } => None,
        }
    }

    /// The defined name, for definition items.
    pub fn name(&self) -> Option<Symbol> {
        match self {
            ModuleItem::DefineRec { name, .. }
            | ModuleItem::Define { name, .. }
            | ModuleItem::Opaque { name, .. } => Some(*name),
            ModuleItem::Expr { .. } => None,
        }
    }
}

/// The outcome for one checked item.
#[derive(Clone, Debug)]
pub struct ItemSummary {
    /// The defined name (`None` for trailing expressions).
    pub name: Option<Symbol>,
    /// The type the item was recorded at: the synthesized type for
    /// successful items, the declared type for poisoned ones.
    pub ty: Option<Ty>,
    /// Did this item fail to check, leaving its binding assumed at its
    /// declared type?
    pub poisoned: bool,
    /// The surface extent of the item's form, when the caller knows it.
    ///
    /// The core checker works on elaborated items and leaves this
    /// `None`; the surface layer (`rtr-lang`) stamps it *after* the
    /// check from the current parse — never from a cached summary, whose
    /// recorded positions would be stale after an incremental splice
    /// shifted its form. Hover-style consumers resolve a cursor to the
    /// enclosing item through this field.
    pub span: Option<Span>,
}

/// Everything `check_module` learned about a module.
#[derive(Clone, Debug, Default)]
pub struct ModuleCheck {
    /// All diagnostics, in source order (one per failing item).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-item outcomes, definitions first then trailing expressions
    /// (the order they are checked in).
    pub results: Vec<ItemSummary>,
    /// The type-result of the module's final trailing expression (the
    /// module's value), when it checked.
    pub value: Option<TyResult>,
}

impl ModuleCheck {
    /// No error-severity diagnostics (warnings allowed).
    pub fn is_clean(&self) -> bool {
        !self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_error()).count()
    }
}

impl Checker {
    /// Checks a whole module item by item, recovering from failures.
    ///
    /// Definitions are checked first (in order, each in scope for the
    /// later ones and for itself when recursive), then trailing
    /// expressions — the same scoping the nested `letrec`/`let` encoding
    /// produces. A failing definition is reported and *poisoned* (bound
    /// at its declared type); checking continues, so every independently
    /// ill-typed item contributes its own [`Diagnostic`].
    ///
    /// Diagnostics carry [`NodeId`]s; callers holding the elaborator's
    /// span table resolve them with
    /// [`Diagnostic::resolve_spans`].
    pub fn check_module(&self, items: &[ModuleItem]) -> ModuleCheck {
        let this = self.fork_check();
        let _live = crate::intern::check_guard();
        this.caches().reconcile_evictions();
        let deep = items
            .iter()
            .filter_map(ModuleItem::body)
            .any(|e| !this.fits_inline_stack(e));
        if !deep {
            return this.check_module_inner(items);
        }
        // Deep modules ride the persistent big-stack worker (warm stack
        // pages) when it is free; see `check_program`.
        let that = this.clone();
        let owned = items.to_vec();
        match crate::check::big_stack::run(move || that.check_module_inner(&owned)) {
            Some(r) => r,
            None => this.on_big_stack(|| this.check_module_inner(items)),
        }
    }

    fn check_module_inner(&self, items: &[ModuleItem]) -> ModuleCheck {
        let fuel = self.config().logic_fuel;
        let mut env = Env::new();
        for item in items {
            if let Some(e) = item.body() {
                for x in mutated_vars(e) {
                    env.mark_mutable(x);
                }
            }
        }

        let mut out = ModuleCheck::default();
        // The first governance limit that tripped in *any* earlier item.
        // Once set, later items ran against possibly-coarser bindings
        // (a starved definition poisons at its declared type, weakening
        // everything downstream), so their conservative failures are
        // reported as `E0202` too — a starved run's errors are exactly
        // "identical to fault-free, or exhausted", never a different
        // verdict. Item panics do *not* set it: the post-ICE environment
        // equals the ordinary poison-path environment.
        let mut degraded: Option<LimitKind> = None;
        // The binders opened along the way, innermost last. The nested
        // encoding existentializes every module-local binding out of
        // the final result at binder exit (T-Let's lifting
        // substitution); the item loop replays the same lifts on the
        // value before reporting it, so the module's value never
        // mentions out-of-scope names.
        let mut binders: Vec<(Symbol, Ty, Obj)> = Vec::new();

        // Definitions first: every define scopes over all trailing
        // expressions, exactly as in the nested encoding. Each item
        // checks on its own budget fork (salted by the item's *name*,
        // so chaos schedules are independent of thread scheduling and
        // stable when an edit inserts or reorders definitions) and
        // inside `catch_unwind`: an internal checker bug yields one
        // `E0203` ICE for the item, the binding is poisoned at its
        // declared type, and the rest of the module checks normally on
        // the surviving warm caches.
        for item in items {
            match item {
                ModuleItem::DefineRec {
                    name,
                    sig,
                    lam,
                    node,
                    sig_node,
                } => {
                    let c = self.fork_item(crate::fingerprint::item_salt(item));
                    c.chaos_item_entry();
                    let ctx = || format!("(define ({name} …) …)");
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        c.chaos_item_panic();
                        c.bind(&mut env, *name, sig, fuel);
                        c.check_lambda(&env, lam, sig, &ctx)
                    }));
                    c.budget().note_margin();
                    match caught {
                        Ok(Ok(())) => out.results.push(ItemSummary {
                            span: None,
                            name: Some(*name),
                            ty: Some(sig.clone()),
                            poisoned: false,
                        }),
                        Ok(Err(d)) => {
                            let d = c.degrade_with(
                                *attach_node(d, *node),
                                c.budget().tripped().or(degraded),
                                ctx,
                            );
                            self.poison(&mut out, d, *name, sig, *sig_node);
                        }
                        Err(p) => {
                            // Re-bind: the panic may have interrupted the
                            // original bind half-way.
                            c.bind(&mut env, *name, sig, fuel);
                            let d = Diagnostic::ice(ctx(), panic_detail(&*p)).at(*node);
                            self.poison(&mut out, d, *name, sig, *sig_node);
                        }
                    }
                    binders.push((*name, sig.clone(), Obj::Null));
                    degraded = degraded.or(c.budget().tripped());
                }
                ModuleItem::Define {
                    name,
                    sig,
                    rhs,
                    node,
                    sig_node,
                } => {
                    let c = self.fork_item(crate::fingerprint::item_salt(item));
                    c.chaos_item_entry();
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        c.chaos_item_panic();
                        let r1 = c.synth(&env, rhs)?;
                        let (o1, mutable) = c.open_let_binding(&mut env, *name, &r1);
                        Ok((r1, o1, mutable))
                    }));
                    c.budget().note_margin();
                    match caught {
                        Ok(Ok((r1, o1, mutable))) => {
                            let lift_obj = if mutable { Obj::Null } else { o1 };
                            binders.push((*name, r1.ty.clone(), lift_obj));
                            out.results.push(ItemSummary {
                                span: None,
                                name: Some(*name),
                                ty: Some(r1.ty),
                                poisoned: false,
                            });
                        }
                        Ok(Err(d)) => {
                            let assumed = sig.clone().unwrap_or(Ty::Top);
                            self.bind(&mut env, *name, &assumed, fuel);
                            binders.push((*name, assumed.clone(), Obj::Null));
                            let d = c.degrade_with(
                                *attach_node(d, *node),
                                c.budget().tripped().or(degraded),
                                || format!("(define {name} …)"),
                            );
                            self.poison(&mut out, d, *name, &assumed, *sig_node);
                        }
                        Err(p) => {
                            let assumed = sig.clone().unwrap_or(Ty::Top);
                            self.bind(&mut env, *name, &assumed, fuel);
                            binders.push((*name, assumed.clone(), Obj::Null));
                            let d =
                                Diagnostic::ice(format!("(define {name} …)"), panic_detail(&*p))
                                    .at(*node);
                            self.poison(&mut out, d, *name, &assumed, *sig_node);
                        }
                    }
                    degraded = degraded.or(c.budget().tripped());
                }
                ModuleItem::Opaque { name, ty } => {
                    self.bind(&mut env, *name, ty, fuel);
                    binders.push((*name, ty.clone(), Obj::Null));
                    out.results.push(ItemSummary {
                        span: None,
                        name: Some(*name),
                        ty: Some(ty.clone()),
                        poisoned: true,
                    });
                }
                ModuleItem::Expr { .. } => {}
            }
        }

        // Trailing expressions: all but the last are opened as
        // fresh-named `let` bindings (mirroring `begin_form`'s let
        // chain), the last one is the module's value.
        let trailing: Vec<(u64, &Expr, Option<NodeId>)> = items
            .iter()
            .filter_map(|item| match item {
                ModuleItem::Expr { expr, node } => {
                    Some((crate::fingerprint::item_salt(item), expr, *node))
                }
                _ => None,
            })
            .collect();
        let count = trailing.len();
        for (i, (salt, expr, node)) in trailing.into_iter().enumerate() {
            let c = self.fork_item(salt);
            c.chaos_item_entry();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                c.chaos_item_panic();
                c.synth(&env, expr)
            }));
            c.budget().note_margin();
            match caught {
                Ok(Ok(r)) => {
                    let last = i + 1 == count;
                    if last {
                        out.value = Some(r);
                    } else {
                        let tmp = Symbol::fresh("ignored");
                        let (o1, mutable) = self.open_let_binding(&mut env, tmp, &r);
                        let lift_obj = if mutable { Obj::Null } else { o1 };
                        binders.push((tmp, r.ty.clone(), lift_obj));
                    }
                    out.results.push(ItemSummary {
                        span: None,
                        name: None,
                        ty: out.value.as_ref().map(|r| r.ty.clone()).filter(|_| last),
                        poisoned: false,
                    });
                }
                Ok(Err(d)) => {
                    let d = c.degrade_with(
                        *attach_node(d, node),
                        c.budget().tripped().or(degraded),
                        || "this expression".to_owned(),
                    );
                    out.diagnostics.push(d);
                    out.results.push(ItemSummary {
                        span: None,
                        name: None,
                        ty: None,
                        poisoned: false,
                    });
                }
                Err(p) => {
                    out.diagnostics.push(
                        Diagnostic::ice("this expression".to_owned(), panic_detail(&*p)).at(node),
                    );
                    out.results.push(ItemSummary {
                        span: None,
                        name: None,
                        ty: None,
                        poisoned: false,
                    });
                }
            }
            degraded = degraded.or(c.budget().tripped());
        }
        if count == 0 {
            // The empty module's value is `#t`, as in the nested
            // encoding.
            out.value = Some(TyResult::new(Ty::True, Prop::TT, Prop::FF, Obj::Null));
        }
        if let Some(v) = out.value.take() {
            out.value = Some(v.lift_subst_all(&binders));
        }
        out
    }

    pub(crate) fn poison(
        &self,
        out: &mut ModuleCheck,
        d: Diagnostic,
        name: Symbol,
        assumed: &Ty,
        sig_node: Option<NodeId>,
    ) {
        let mut d = d.with_note(format!(
            "the definition of {name} is poisoned: later checks assume its declared type {assumed}"
        ));
        if sig_node.is_some() {
            d = d.with_label(sig_node, format!("{name} is declared here"));
        }
        out.diagnostics.push(d);
        out.results.push(ItemSummary {
            span: None,
            name: Some(name),
            ty: Some(assumed.clone()),
            poisoned: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use crate::syntax::Prim;

    fn int_to_int(name: &str) -> (Symbol, Ty) {
        let x = Symbol::intern("x");
        (
            Symbol::intern(name),
            Ty::fun(vec![(x, Ty::Int)], TyResult::of_type(Ty::Int)),
        )
    }

    fn bad_define(name: &str) -> ModuleItem {
        // (: f : Int -> Int) (define (f x) #t) — range mismatch.
        let (sym, sig) = int_to_int(name);
        ModuleItem::DefineRec {
            name: sym,
            sig,
            lam: Arc::new(Lambda {
                params: vec![(Symbol::intern("x"), Ty::Top)],
                body: Expr::Bool(true),
            }),
            node: None,
            sig_node: None,
        }
    }

    fn good_define(name: &str) -> ModuleItem {
        let (sym, sig) = int_to_int(name);
        ModuleItem::DefineRec {
            name: sym,
            sig,
            lam: Arc::new(Lambda {
                params: vec![(Symbol::intern("x"), Ty::Top)],
                body: Expr::prim_app(Prim::Add1, vec![Expr::Var(Symbol::intern("x"))]),
            }),
            node: None,
            sig_node: None,
        }
    }

    #[test]
    fn every_failing_define_reports() {
        let items = vec![
            bad_define("f1"),
            good_define("g"),
            bad_define("f2"),
            bad_define("f3"),
        ];
        let mc = Checker::default().check_module(&items);
        assert_eq!(mc.error_count(), 3, "{:?}", mc.diagnostics);
        assert!(mc.diagnostics.iter().all(|d| d.code == Code::TypeMismatch));
        assert_eq!(mc.results.iter().filter(|r| r.poisoned).count(), 3);
    }

    #[test]
    fn poisoned_bindings_keep_later_items_checkable() {
        // f is ill-typed, but `(f 1)` still checks against f's declared
        // signature.
        let items = vec![
            bad_define("f"),
            ModuleItem::Expr {
                expr: Expr::app(Expr::Var(Symbol::intern("f")), vec![Expr::Int(1)]),
                node: None,
            },
        ];
        let mc = Checker::default().check_module(&items);
        assert_eq!(mc.error_count(), 1);
        let value = mc
            .value
            .expect("trailing expr checks against the poisoned f");
        assert_eq!(value.ty, Ty::Int);
    }

    #[test]
    fn clean_modules_report_nothing_and_a_value() {
        let items = vec![
            good_define("g"),
            ModuleItem::Expr {
                expr: Expr::app(Expr::Var(Symbol::intern("g")), vec![Expr::Int(41)]),
                node: None,
            },
        ];
        let mc = Checker::default().check_module(&items);
        assert!(mc.is_clean());
        assert_eq!(mc.value.expect("value").ty, Ty::Int);
    }

    #[test]
    fn empty_module_value_is_true() {
        let mc = Checker::default().check_module(&[]);
        assert!(mc.is_clean());
        assert_eq!(mc.value.expect("value").ty, Ty::True);
    }
}
